#include "util/timeseries.h"

#include <gtest/gtest.h>

namespace delta::util {
namespace {

TEST(CumulativeSeriesTest, SamplesAtStride) {
  CumulativeSeries s{10};
  for (int i = 0; i < 35; ++i) {
    s.observe(i, static_cast<double>(i * 2));
  }
  s.finalize();
  // Samples at 0, 10, 20, 30 plus the final point 34.
  ASSERT_EQ(s.points().size(), 5u);
  EXPECT_EQ(s.points().front().event_index, 0);
  EXPECT_EQ(s.points().back().event_index, 34);
  EXPECT_DOUBLE_EQ(s.points().back().value, 68.0);
}

TEST(CumulativeSeriesTest, FinalizeIsIdempotent) {
  CumulativeSeries s{100};
  s.observe(0, 1.0);
  s.observe(5, 2.0);
  s.finalize();
  s.finalize();
  ASSERT_EQ(s.points().size(), 2u);
}

TEST(CumulativeSeriesTest, LastValueTracksLatestObservation) {
  CumulativeSeries s{1000};
  s.observe(0, 0.0);
  s.observe(999, 42.0);  // not sampled (stride), but tracked
  EXPECT_DOUBLE_EQ(s.last_value(), 42.0);
}

TEST(CumulativeSeriesTest, InterpolationClampsAndInterpolates) {
  CumulativeSeries s{10};
  s.observe(0, 0.0);
  s.observe(10, 100.0);
  s.observe(20, 200.0);
  s.finalize();
  EXPECT_DOUBLE_EQ(s.value_at(-5), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(25), 200.0);
  EXPECT_DOUBLE_EQ(s.value_at(15), 150.0);
  EXPECT_DOUBLE_EQ(s.value_at(10), 100.0);
}

TEST(CumulativeSeriesTest, RejectsTimeTravel) {
  CumulativeSeries s{10};
  s.observe(5, 1.0);
  EXPECT_THROW(s.observe(4, 2.0), std::logic_error);
}

}  // namespace
}  // namespace delta::util
