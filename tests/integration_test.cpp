// End-to-end and property tests over generated traces: the DESIGN.md §7
// invariants checked at system scale for every policy.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/benefit_policy.h"
#include "core/vcover_policy.h"
#include "core/yardsticks.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace delta::sim {
namespace {

/// Small but non-trivial world: ~40 MB objects, 6k events.
using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 3) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 3000;
  p.trace.update_count = 3000;
  p.trace.postwarmup_query_gb = 10.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  // Scale the hotspot placement cap with the small objects so the hot
  // set's demand/load-cost economics match the paper-scale setup.
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 600;
  return p;
}

TEST(IntegrationTest, NoCacheEqualsQueryCostsExactly) {
  const World setup{small_params()};
  const auto r = run_one(PolicyKind::kNoCache, setup.trace(),
                         setup.cache_capacity(), setup.params());
  EXPECT_EQ(r.total_traffic, setup.trace().total_query_cost());
  EXPECT_EQ(r.postwarmup_traffic,
            setup.trace().total_query_cost(
                setup.trace().info.warmup_end_event));
}

TEST(IntegrationTest, ReplicaEqualsUpdateCostsExactly) {
  const World setup{small_params()};
  const auto r = run_one(PolicyKind::kReplica, setup.trace(),
                         setup.cache_capacity(), setup.params());
  EXPECT_EQ(r.total_traffic, setup.trace().total_update_cost());
}

TEST(IntegrationTest, MechanismBreakdownSumsToTotal) {
  const World setup{small_params()};
  for (const PolicyKind kind :
       {PolicyKind::kVCover, PolicyKind::kBenefit, PolicyKind::kSOptimal}) {
    const auto r = run_one(kind, setup.trace(), setup.cache_capacity(),
                           setup.params());
    Bytes sum;
    for (const Bytes b : r.postwarmup_by_mechanism) sum += b;
    EXPECT_EQ(sum, r.postwarmup_traffic) << r.policy_name;
    EXPECT_LE(r.postwarmup_traffic, r.total_traffic) << r.policy_name;
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const World setup{small_params()};
  for (const PolicyKind kind :
       {PolicyKind::kVCover, PolicyKind::kBenefit, PolicyKind::kSOptimal}) {
    const auto a = run_one(kind, setup.trace(), setup.cache_capacity(),
                           setup.params());
    const auto b = run_one(kind, setup.trace(), setup.cache_capacity(),
                           setup.params());
    EXPECT_EQ(a.total_traffic, b.total_traffic) << a.policy_name;
    EXPECT_EQ(a.cache_fresh, b.cache_fresh) << a.policy_name;
    EXPECT_EQ(a.objects_loaded, b.objects_loaded) << a.policy_name;
  }
}

TEST(IntegrationTest, VCoverBeatsNoCacheOnDefaultWorkload) {
  const World setup{small_params()};
  const auto nocache = run_one(PolicyKind::kNoCache, setup.trace(),
                               setup.cache_capacity(), setup.params());
  const auto vcover = run_one(PolicyKind::kVCover, setup.trace(),
                              setup.cache_capacity(), setup.params());
  EXPECT_LT(vcover.postwarmup_traffic, nocache.postwarmup_traffic);
}

TEST(IntegrationTest, SOptimalIsTheStrongestYardstick) {
  const World setup{small_params()};
  const auto soptimal = run_one(PolicyKind::kSOptimal, setup.trace(),
                                setup.cache_capacity(), setup.params());
  const auto vcover = run_one(PolicyKind::kVCover, setup.trace(),
                              setup.cache_capacity(), setup.params());
  // The offline static optimum (loads excluded from the post-warm-up
  // window by construction) must not lose to the online algorithm.
  EXPECT_LE(soptimal.postwarmup_traffic.as_double(),
            vcover.postwarmup_traffic.as_double() * 1.05);
}

// The central correctness property (DESIGN.md §7.1): every query answered
// at the cache satisfies its currency requirement — all interacting updates
// older than t(q) have been applied (shipped or folded into a load).
TEST(IntegrationTest, VCoverCurrencyInvariantHolds) {
  const World setup{small_params(11)};
  const auto& trace = setup.trace();
  core::DeltaSystem system{&trace};
  core::VCoverOptions opts;
  opts.cache_capacity = setup.cache_capacity();
  core::VCoverPolicy policy{&system, opts};

  // Mirror of unapplied updates per object since its last load.
  std::map<ObjectId, std::vector<const workload::Update*>> unapplied;
  std::set<ObjectId> resident;

  const auto refresh_residency = [&] {
    std::set<ObjectId> now_resident;
    for (const ObjectId o : policy.store().resident_objects()) {
      now_resident.insert(o);
      if (resident.count(o) == 0) {
        unapplied[o].clear();  // fresh load folds all updates in
      }
    }
    for (const ObjectId o : resident) {
      if (now_resident.count(o) == 0) unapplied[o].clear();  // evicted
    }
    resident = std::move(now_resident);
  };

  std::int64_t cache_answers_checked = 0;
  for (const auto& e : trace.order) {
    if (e.kind == workload::Event::Kind::kUpdate) {
      const auto& u = trace.updates[static_cast<std::size_t>(e.index)];
      system.ingest_update(u);
      if (resident.count(u.object) > 0) unapplied[u.object].push_back(&u);
      refresh_residency();  // preshipping may have applied it already
      continue;
    }
    const auto& q = trace.queries[static_cast<std::size_t>(e.index)];
    const auto outcome = policy.on_query(q);
    // Remove updates the decision shipped.
    for (const UpdateId uid : outcome.shipped_update_ids) {
      const auto& u = trace.updates[static_cast<std::size_t>(uid.value())];
      auto& list = unapplied[u.object];
      list.erase(std::remove(list.begin(), list.end(), &u), list.end());
    }
    refresh_residency();
    if (outcome.path != core::QueryOutcome::Path::kShipped) {
      ++cache_answers_checked;
      for (const ObjectId o : q.objects) {
        ASSERT_TRUE(resident.count(o) > 0)
            << "cache answer with non-resident object at t=" << q.time;
        for (const workload::Update* u : unapplied[o]) {
          ASSERT_GT(u->time, q.time - q.staleness_tolerance)
              << "stale answer: query t=" << q.time << " tol="
              << q.staleness_tolerance << " missed update t=" << u->time;
        }
      }
    }
  }
  // The invariant must have been exercised.
  EXPECT_GT(cache_answers_checked, 50);
}

TEST(IntegrationTest, VCoverCapacityNeverExceededAtQueryBoundaries) {
  const World setup{small_params(13)};
  const auto& trace = setup.trace();
  core::DeltaSystem system{&trace};
  core::VCoverOptions opts;
  opts.cache_capacity = setup.cache_capacity();
  core::VCoverPolicy policy{&system, opts};
  for (const auto& e : trace.order) {
    if (e.kind == workload::Event::Kind::kUpdate) {
      system.ingest_update(trace.updates[static_cast<std::size_t>(e.index)]);
    } else {
      policy.on_query(trace.queries[static_cast<std::size_t>(e.index)]);
      ASSERT_LE(policy.store().used(), policy.store().capacity());
    }
  }
}

TEST(IntegrationTest, CacheRestartRecovers) {
  // Failure injection: wipe the cache mid-trace; the policy must keep
  // answering correctly (everything misses until re-warmed).
  const World setup{small_params(17)};
  const auto& trace = setup.trace();
  core::DeltaSystem system{&trace};
  core::VCoverOptions opts;
  opts.cache_capacity = setup.cache_capacity();
  core::VCoverPolicy policy{&system, opts};

  // Run the first half through the simulator-equivalent loop.
  const std::size_t half = trace.order.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const auto& e = trace.order[i];
    if (e.kind == workload::Event::Kind::kUpdate) {
      system.ingest_update(trace.updates[static_cast<std::size_t>(e.index)]);
    } else {
      policy.on_query(trace.queries[static_cast<std::size_t>(e.index)]);
    }
  }
  // Crash: build a fresh policy over the same (still running) repository.
  core::VCoverPolicy restarted{&system, opts};
  // The server still believes some objects are registered; a restarted
  // cache must re-register through loads. Deregister what the old cache
  // held (the middleware's recovery handshake).
  for (const ObjectId o : policy.store().resident_objects()) {
    system.notify_eviction(o);
  }
  for (std::size_t i = half; i < trace.order.size(); ++i) {
    const auto& e = trace.order[i];
    if (e.kind == workload::Event::Kind::kUpdate) {
      system.ingest_update(trace.updates[static_cast<std::size_t>(e.index)]);
    } else {
      const auto out = restarted.on_query(
          trace.queries[static_cast<std::size_t>(e.index)]);
      (void)out;
      ASSERT_LE(restarted.store().used(), restarted.store().capacity());
    }
  }
  // It re-warmed: some queries were answered at the cache again.
  EXPECT_GT(restarted.cache_answers(), 0);
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, InvariantsHoldAcrossSeeds) {
  SetupParams p = small_params(GetParam());
  const World setup{p};
  const auto nocache = run_one(PolicyKind::kNoCache, setup.trace(),
                               setup.cache_capacity(), p);
  const auto vcover = run_one(PolicyKind::kVCover, setup.trace(),
                              setup.cache_capacity(), p);
  const auto replica = run_one(PolicyKind::kReplica, setup.trace(),
                               setup.cache_capacity(), p);
  // Accounting identities.
  EXPECT_EQ(nocache.total_traffic, setup.trace().total_query_cost());
  EXPECT_EQ(replica.total_traffic, setup.trace().total_update_cost());
  // VCover never does worse than shipping everything plus loading the
  // whole repository once (a crude sanity ceiling).
  EXPECT_LT(vcover.total_traffic.as_double(),
            nocache.total_traffic.as_double() +
                setup.server_bytes().as_double());
  // Latency proxy: cache answers make the mean response time no worse
  // than NoCache's.
  if (vcover.cache_fresh + vcover.cache_after_updates > 0) {
    EXPECT_LE(vcover.postwarmup_latency.mean(),
              nocache.postwarmup_latency.mean() * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace delta::sim
