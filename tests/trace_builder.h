// Hand-built micro-traces for core-policy unit tests.
#pragma once

#include <vector>

#include "workload/trace.h"

namespace delta::testing {

class TraceBuilder {
 public:
  /// One partition per entry; entry = initial object size in bytes.
  explicit TraceBuilder(std::vector<std::int64_t> object_bytes) {
    trace_.info.seed = 0;
    trace_.info.base_level = 5;
    trace_.info.row_bytes = Bytes{2048};
    trace_.info.partition_count = object_bytes.size();
    for (const std::int64_t b : object_bytes) {
      trace_.initial_object_bytes.push_back(Bytes{b});
    }
  }

  TraceBuilder& query(std::vector<std::int64_t> objects, std::int64_t cost,
                      EventTime staleness_tolerance = 0) {
    workload::Query q;
    q.id = QueryId{static_cast<std::int64_t>(trace_.queries.size())};
    q.time = now_++;
    q.cost = Bytes{cost};
    q.staleness_tolerance = staleness_tolerance;
    for (const std::int64_t o : objects) {
      q.objects.push_back(ObjectId{o});
      q.base_cover.push_back(static_cast<std::int32_t>(o));
    }
    std::sort(q.objects.begin(), q.objects.end());
    trace_.order.push_back({workload::Event::Kind::kQuery,
                            static_cast<std::int64_t>(trace_.queries.size())});
    trace_.queries.push_back(std::move(q));
    return *this;
  }

  TraceBuilder& update(std::int64_t object, std::int64_t cost) {
    workload::Update u;
    u.id = UpdateId{static_cast<std::int64_t>(trace_.updates.size())};
    u.time = now_++;
    u.object = ObjectId{object};
    u.base_index = static_cast<std::int32_t>(object);
    u.cost = Bytes{cost};
    u.rows = static_cast<double>(cost) / 2048.0;
    trace_.order.push_back({workload::Event::Kind::kUpdate,
                            static_cast<std::int64_t>(trace_.updates.size())});
    trace_.updates.push_back(u);
    return *this;
  }

  [[nodiscard]] workload::Trace build(EventTime warmup_end = 0) {
    trace_.info.warmup_end_event = warmup_end;
    return trace_;
  }

 private:
  workload::Trace trace_;
  EventTime now_ = 0;
};

}  // namespace delta::testing
