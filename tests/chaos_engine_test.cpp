// Chaos suite (ISSUE 8): partition-then-heal convergence, overload
// admission, lossy-link retry/dedup accounting — and the two contracts
// that make the fault layer safe to ship: bit-identical results at any
// thread count with faults ON, and byte-identical goldens with the layer
// compiled in but disabled.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 11) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 1200;
  p.trace.update_count = 1200;
  p.trace.postwarmup_query_gb = 5.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

/// A workload the 100 Mbit link can actually carry: kilobyte-scale
/// transfers, so the clean network runs far below the protocol timeout and
/// the failure counters measure *faults*, not permanent overload. (The
/// saturated small_params regime is exercised by open_loop_engine_test;
/// with a timeout protocol armed it degenerates to a retransmit storm,
/// which is the admission test's job, not the partition test's.)
SetupParams chaos_params(std::uint64_t seed = 11) {
  SetupParams p = small_params(seed);
  // A repository the 100 Mbit link can actually carry: megabyte-scale
  // objects that are cheap against their query volume, so VCover registers
  // the hot set (invalidation traffic exists to disrupt) and the clean
  // network runs far below the protocol timeout. The saturated
  // small_params regime stays covered by open_loop_engine_test; with a
  // timeout protocol armed it degenerates to a retransmit storm, which is
  // the flash-crowd test's job, not the partition test's.
  p.total_rows = 4e4;
  p.trace.postwarmup_query_gb = 0.05;
  p.trace.mean_postwarmup_update_mb = 0.02;
  p.trace.hotspot_max_object_gb = 0.01;
  return p;
}

/// The hardened open-loop WAN config every chaos scenario builds on.
EventEngineOptions chaos_base(double rate) {
  EventEngineOptions options;
  options.default_link = net::LinkModel{12.5e6, 0.040};  // 100 Mbit/s, 40 ms
  options.open_loop.enabled = true;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.protocol.enabled = true;
  options.admission.enabled = true;
  return options;
}

void add_partition(EventEngineOptions& options, std::size_t endpoints,
                   double down, double heal) {
  options.fault_plan.enabled = true;
  for (std::size_t i = 0; i < endpoints; ++i) {
    options.fault_plan.partitions.push_back(net::LinkPartition{
        "server", "cache-" + std::to_string(i), /*duplex=*/true,
        {net::FaultWindow{down, heal}}});
  }
}

void expect_chaos_identical(const ChaosYardsticks& a,
                            const ChaosYardsticks& b) {
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.late_replies, b.late_replies);
  EXPECT_EQ(a.duplicate_notices_suppressed, b.duplicate_notices_suppressed);
  EXPECT_EQ(a.shed_replies, b.shed_replies);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.replayed_notices, b.replayed_notices);
  EXPECT_EQ(a.notices_applied, b.notices_applied);
  EXPECT_EQ(a.unavailable_seconds, b.unavailable_seconds);
  EXPECT_EQ(a.max_recovery_staleness_seconds,
            b.max_recovery_staleness_seconds);
  EXPECT_EQ(a.shed_queries, b.shed_queries);
  EXPECT_EQ(a.request_duplicates_suppressed, b.request_duplicates_suppressed);
  EXPECT_EQ(a.resyncs_served, b.resyncs_served);
  EXPECT_EQ(a.notices_logged, b.notices_logged);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_duplicated, b.faults_duplicated);
  EXPECT_EQ(a.faults_reordered, b.faults_reordered);
  EXPECT_EQ(a.partition_dropped, b.partition_dropped);
  EXPECT_EQ(a.crash_restarts, b.crash_restarts);
  EXPECT_EQ(a.crash_dropped, b.crash_dropped);
  EXPECT_EQ(a.cold_misses, b.cold_misses);
  EXPECT_EQ(a.budget_exceeded_retries, b.budget_exceeded_retries);
  EXPECT_EQ(a.crash_downtime_seconds, b.crash_downtime_seconds);
  EXPECT_EQ(a.max_reconvergence_seconds, b.max_reconvergence_seconds);
  EXPECT_EQ(a.post_restart_staleness_seconds,
            b.post_restart_staleness_seconds);
}

void expect_runs_identical(const EventRunResult& a, const EventRunResult& b) {
  EXPECT_EQ(a.replay.combined.queries, b.replay.combined.queries);
  EXPECT_EQ(a.replay.combined.total_traffic, b.replay.combined.total_traffic);
  EXPECT_EQ(a.replay.combined.overhead_traffic,
            b.replay.combined.overhead_traffic);
  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_EQ(a.response_p99(), b.response_p99());
  EXPECT_EQ(a.staleness_seconds.count(), b.staleness_seconds.count());
  EXPECT_EQ(a.staleness_seconds.mean(), b.staleness_seconds.mean());
  EXPECT_EQ(a.sim_duration_seconds, b.sim_duration_seconds);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.notice_messages, b.notice_messages);
  expect_chaos_identical(a.chaos, b.chaos);
}

// The tentpole acceptance: both server<->cache paths go dark for 20% of
// the run, then heal. Caches suspect the partition (timeouts, retries,
// an unavailability window), and on heal the epoch resync replays every
// missed invalidation: each cache's notice ledger balances exactly, and
// no query leaks — every one is completed, retried to completion, or
// accounted as shed/failed, so the combined count still equals the trace.
TEST(ChaosEngineTest, PartitionThenHealConvergesAndConservesQueries) {
  const World setup{chaos_params()};
  const double rate = 200.0;  // 2400 events -> ~12 s span, ~2.4 s dark
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  // A tight in-flight window would stall the arrival tape once the dark
  // window fills it with timing-out queries — the clock then leaps over
  // the partition and the updates it should have swallowed get ingested
  // after heal. Unbound the window so arrivals stay on schedule and the
  // partition genuinely eats in-window invalidation notices.
  options.open_loop.max_in_flight = 4096;
  add_partition(options, 2, 0.40 * duration, 0.60 * duration);
  // Replica subscribes to every update (kAll), so the dark window is
  // guaranteed to swallow invalidation notices — the traffic the resync
  // has to repair.
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  // Conservation: the partition ate messages, not queries.
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  EXPECT_GT(r.chaos.partition_dropped, 0);
  EXPECT_GT(r.chaos.timeouts, 0);
  EXPECT_GT(r.chaos.retries, 0);
  EXPECT_GT(r.chaos.unavailable_seconds, 0.0);

  // Recovery: the heal triggered at least one resync, and the replay
  // closed the staleness hole the dark window opened. (Served >= client
  // resyncs: a slow resync reply can provoke retransmits, each served
  // idempotently.)
  EXPECT_GE(r.chaos.resyncs, 1);
  EXPECT_GE(r.chaos.resyncs_served, r.chaos.resyncs);
  EXPECT_GT(r.chaos.replayed_notices, 0);
  EXPECT_GT(r.chaos.max_recovery_staleness_seconds, 0.0);

  // Convergence, per cache: the server's notice ledger for this cache is
  // exactly the set of notices the cache ended up applying.
  for (const auto& e : r.per_endpoint) {
    EXPECT_GT(e.notices_logged, 0);
    EXPECT_EQ(e.protocol.notices_applied, e.notices_logged);
  }
  EXPECT_EQ(r.chaos.notices_applied, r.chaos.notices_logged);
}

// Flash crowd: 10x the provisioned arrival rate, clean network. The
// admission controller sheds at the server instead of letting the backlog
// grow without bound — and shed queries still count.
TEST(ChaosEngineTest, FlashCrowdShedsButConservesQueries) {
  const World setup{chaos_params()};
  EventEngineOptions options = chaos_base(20'000.0);
  options.admission.shed_backlog_seconds = 0.5;
  options.admission.degrade_backlog_seconds = 0.1;
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  // The server counts every rejected *delivery* (retransmits of a shed
  // query get shed again); each cache counts one reject per completed
  // query — so served rejections dominate completed ones.
  EXPECT_GT(r.chaos.shed_replies, 0);
  EXPECT_GE(r.chaos.shed_queries, r.chaos.shed_replies);
  EXPECT_EQ(r.chaos.faults_dropped, 0);  // no fault plan in this scenario
}

// Policy-side degradation: with objects cheap enough that VCover caches
// the hot set, a flash crowd pressures the uplink and the admission
// controller's second lever fires — cached queries are answered as-is
// (stale but within t(q) plus the configured overload slack) instead of
// pushing cover traffic onto the congested link. Degraded answers still
// count as completed queries.
TEST(ChaosEngineTest, OverloadDegradesCachedQueriesWithinTolerance) {
  SetupParams params = chaos_params();
  params.total_rows = 400;  // tens-of-KB objects: loading pays off fast
  const World setup{params};
  EventEngineOptions options = chaos_base(20'000.0);
  options.admission.shed_backlog_seconds = 0.5;
  // Pressure = concurrency, not bytes: cached queries put only request
  // overhead on the uplink, so the backlog signal stays near zero even
  // mid-crowd. Outstanding round trips are the honest congestion signal.
  options.admission.degrade_in_flight = 4;
  // Overload slack: degraded answers may omit any outstanding update for
  // the duration of the crowd (the operator's "serve stale, stay up").
  options.admission.degrade_extra_tolerance = 1'000'000'000;
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  EXPECT_GT(r.chaos.degraded_queries, 0);
}

// Update storm: every link drops, duplicates, and reorders, with
// congestion batching coalescing notices on top. The retry budget and the
// two dedup windows keep the books exact: every query accounted, every
// notice applied exactly once (ledger balanced), duplicates suppressed
// rather than double-applied.
// Silent-loss detection: with Replica's local queries and fire-and-forget
// refreshes, a trace can leave the cache with NO request in flight across
// the dark window — nothing times out, so the suspicion/heal path never
// fires. The ledger stamps on live notices close that hole: the first
// post-heal notice exposes the gap in the stream and triggers the resync
// directly, so convergence never depends on a lucky in-flight round trip.
// (This seed reproduced exactly that silent regime before the stamps.)
TEST(ChaosEngineTest, SilentNoticeLossIsDetectedByLedgerGap) {
  const World setup{chaos_params(/*seed=*/7)};
  const double rate = 200.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  add_partition(options, 2, 0.40 * duration, 0.60 * duration);
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  EXPECT_GT(r.chaos.partition_dropped, 0);
  EXPECT_GE(r.chaos.resyncs, 1);
  EXPECT_GT(r.chaos.replayed_notices, 0);
  EXPECT_GT(r.chaos.max_recovery_staleness_seconds, 0.0);
  EXPECT_EQ(r.chaos.notices_applied, r.chaos.notices_logged);
}

TEST(ChaosEngineTest, LossyLinksRetryAndDedupKeepBooksExact) {
  const World setup{chaos_params()};
  EventEngineOptions options = chaos_base(2000.0);
  options.fault_plan.enabled = true;
  options.fault_plan.default_faults.drop = 0.02;
  options.fault_plan.default_faults.duplicate = 0.02;
  options.fault_plan.default_faults.reorder = 0.05;
  options.notice_batching.enabled = true;
  options.notice_batching.backlog_threshold_seconds = 0.0;
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  EXPECT_GT(r.chaos.faults_dropped, 0);
  EXPECT_GT(r.chaos.faults_duplicated, 0);
  EXPECT_GT(r.chaos.faults_reordered, 0);
  EXPECT_GT(r.chaos.retries, 0);
  EXPECT_GT(r.chaos.notices_logged, 0);
  EXPECT_EQ(r.chaos.notices_applied, r.chaos.notices_logged);
  EXPECT_GT(r.chaos.duplicate_notices_suppressed +
                r.chaos.request_duplicates_suppressed,
            0);
}

// The deterministic-merge contract survives the fault layer: message
// fates are a pure function of (plan seed, link, per-link seq), so the
// full chaos configuration — partition + lossy links + batching +
// admission — reproduces the sequential run bit-for-bit at any thread
// count.
TEST(ChaosEngineTest, ChaosSuiteBitIdenticalAcrossThreadCounts) {
  const World setup{chaos_params()};
  const double rate = 500.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  const auto run = [&](std::size_t threads) {
    EventEngineOptions options = chaos_base(rate);
    options.fault_plan.default_faults.drop = 0.01;
    options.fault_plan.default_faults.duplicate = 0.01;
    options.fault_plan.default_faults.reorder = 0.03;
    add_partition(options, 4, 0.40 * duration, 0.60 * duration);
    options.notice_batching.enabled = true;
    options.parallel.num_threads = threads;
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 4,
                         workload::SplitStrategy::kHashByRegion, options);
  };
  const EventRunResult sequential = run(1);
  EXPECT_GT(sequential.chaos.faults_dropped, 0);
  EXPECT_GT(sequential.chaos.partition_dropped, 0);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "T=" << threads);
    expect_runs_identical(run(threads), sequential);
  }
}

// The golden-table guard: a plan with the fault layer compiled in but
// every probability zero and no partition window never arms
// (faults_active() stays false), so the run — including the inline
// delivery fast path — is byte-identical to one that never saw a plan,
// and every chaos yardstick reads zero.
TEST(ChaosEngineTest, DisabledFaultLayerIsByteIdenticalToBaseline) {
  const World setup{small_params()};
  const auto run = [&](bool install_zero_plan) {
    EventEngineOptions options;  // zero-latency closed loop, protocol off
    if (install_zero_plan) {
      options.fault_plan.enabled = true;  // enabled, but nothing nonzero
    }
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult baseline = run(false);
  const EventRunResult planned = run(true);
  expect_runs_identical(planned, baseline);
  expect_chaos_identical(planned.chaos, ChaosYardsticks{});
}

// Arming the protocol on a clean, uncongested network is inert: no
// timeouts, no retries, no shedding — and the replay counters the golden
// tables are built from do not move.
TEST(ChaosEngineTest, ProtocolOnCleanNetworkIsQuiet) {
  const World setup{small_params()};
  const auto run = [&](bool protocol) {
    EventEngineOptions options;  // zero-latency closed loop
    options.protocol.enabled = protocol;
    options.admission.enabled = protocol;
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult off = run(false);
  const EventRunResult on = run(true);
  EXPECT_EQ(on.replay.combined.queries, off.replay.combined.queries);
  EXPECT_EQ(on.replay.combined.cache_fresh, off.replay.combined.cache_fresh);
  EXPECT_EQ(on.replay.combined.cache_after_updates,
            off.replay.combined.cache_after_updates);
  EXPECT_EQ(on.replay.combined.shipped, off.replay.combined.shipped);
  EXPECT_EQ(on.replay.combined.objects_loaded,
            off.replay.combined.objects_loaded);
  EXPECT_EQ(on.chaos.timeouts, 0);
  EXPECT_EQ(on.chaos.retries, 0);
  EXPECT_EQ(on.chaos.failed_requests, 0);
  EXPECT_EQ(on.chaos.shed_queries, 0);
  EXPECT_EQ(on.chaos.degraded_queries, 0);
  EXPECT_EQ(on.chaos.resyncs, 0);
  // The ledger runs whenever the protocol is armed — and balances.
  EXPECT_GT(on.chaos.notices_logged, 0);
  EXPECT_EQ(on.chaos.notices_applied, on.chaos.notices_logged);
}

}  // namespace
}  // namespace delta::sim
