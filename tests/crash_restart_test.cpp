// Crash-stop endpoint failures (ISSUE 10): deterministic process crashes,
// restart recovery, and cold-cache reconvergence.
//
// The contracts pinned here:
//  * zero-crash plans are byte-identical to no plan at all;
//  * a cache crash wipes its soft state, kills every in-flight request
//    (no query leaks), and cold recovery — re-register + ledger replay —
//    reconverges the notice books exactly;
//  * a server crash wipes registrations and ledgers, and caches detect the
//    new incarnation from reply stamps and rebuild via kRecoverRequest;
//  * crashed runs are bit-identical for any thread count;
//  * the prefilter conservatively stands down for crash-windowed replicas
//    without changing results (satellite 1);
//  * kLoadData/kResyncData retry past the attempt budget and converge once
//    a partition outlasting the ladder heals (satellite 2);
//  * a reply to a pre-crash correlation arriving at the restarted cache is
//    counted late and dropped, never applied (satellite 3).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams crash_params(std::uint64_t seed = 11) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e4;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 1200;
  p.trace.update_count = 1200;
  p.trace.postwarmup_query_gb = 0.05;
  p.trace.mean_postwarmup_update_mb = 0.02;
  p.trace.hotspot_max_object_gb = 0.01;
  p.benefit_window = 500;
  return p;
}

/// Objects cheap enough that VCover actually loads a working set — the
/// config whose crash produces a cold-miss burst worth measuring.
SetupParams loading_params(std::uint64_t seed = 11) {
  SetupParams p = crash_params(seed);
  p.total_rows = 400;
  return p;
}

EventEngineOptions chaos_base(double rate) {
  EventEngineOptions options;
  options.default_link = net::LinkModel{12.5e6, 0.040};  // 100 Mbit/s, 40 ms
  options.open_loop.enabled = true;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.protocol.enabled = true;
  options.admission.enabled = true;
  return options;
}

void add_crash(EventEngineOptions& options, const std::string& endpoint,
               double down, double heal) {
  options.fault_plan.enabled = true;
  options.fault_plan.crashes.push_back(
      net::CrashSchedule{endpoint, {net::FaultWindow{down, heal}}});
}

void expect_chaos_identical(const ChaosYardsticks& a,
                            const ChaosYardsticks& b) {
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.late_replies, b.late_replies);
  EXPECT_EQ(a.duplicate_notices_suppressed, b.duplicate_notices_suppressed);
  EXPECT_EQ(a.shed_replies, b.shed_replies);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.replayed_notices, b.replayed_notices);
  EXPECT_EQ(a.notices_applied, b.notices_applied);
  EXPECT_EQ(a.unavailable_seconds, b.unavailable_seconds);
  EXPECT_EQ(a.max_recovery_staleness_seconds,
            b.max_recovery_staleness_seconds);
  EXPECT_EQ(a.shed_queries, b.shed_queries);
  EXPECT_EQ(a.request_duplicates_suppressed, b.request_duplicates_suppressed);
  EXPECT_EQ(a.resyncs_served, b.resyncs_served);
  EXPECT_EQ(a.notices_logged, b.notices_logged);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_duplicated, b.faults_duplicated);
  EXPECT_EQ(a.faults_reordered, b.faults_reordered);
  EXPECT_EQ(a.partition_dropped, b.partition_dropped);
  EXPECT_EQ(a.crash_restarts, b.crash_restarts);
  EXPECT_EQ(a.crash_dropped, b.crash_dropped);
  EXPECT_EQ(a.cold_misses, b.cold_misses);
  EXPECT_EQ(a.budget_exceeded_retries, b.budget_exceeded_retries);
  EXPECT_EQ(a.crash_downtime_seconds, b.crash_downtime_seconds);
  EXPECT_EQ(a.max_reconvergence_seconds, b.max_reconvergence_seconds);
  EXPECT_EQ(a.post_restart_staleness_seconds,
            b.post_restart_staleness_seconds);
}

void expect_runs_identical(const EventRunResult& a, const EventRunResult& b) {
  EXPECT_EQ(a.replay.combined.queries, b.replay.combined.queries);
  EXPECT_EQ(a.replay.combined.total_traffic, b.replay.combined.total_traffic);
  EXPECT_EQ(a.replay.combined.overhead_traffic,
            b.replay.combined.overhead_traffic);
  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_EQ(a.response_p99(), b.response_p99());
  EXPECT_EQ(a.staleness_seconds.count(), b.staleness_seconds.count());
  EXPECT_EQ(a.staleness_seconds.mean(), b.staleness_seconds.mean());
  EXPECT_EQ(a.sim_duration_seconds, b.sim_duration_seconds);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.notice_messages, b.notice_messages);
  expect_chaos_identical(a.chaos, b.chaos);
}

void expect_books_balanced(const EventRunResult& r, std::size_t queries) {
  EXPECT_EQ(r.replay.combined.queries, static_cast<std::int64_t>(queries));
  for (const auto& e : r.per_endpoint) {
    EXPECT_EQ(e.protocol.notices_applied, e.notices_logged);
  }
  EXPECT_EQ(r.chaos.notices_applied, r.chaos.notices_logged);
}

// The zero-fault contract extends to crash schedules: a plan naming an
// endpoint but scheduling no windows never arms the fault layer, so the
// run is byte-identical to one that never saw a plan and every crash
// yardstick reads zero.
TEST(CrashRestartTest, ZeroCrashPlanIsByteIdentical) {
  const World setup{crash_params()};
  const auto run = [&](bool install_empty_schedule) {
    EventEngineOptions options;  // zero-latency closed loop, protocol off
    if (install_empty_schedule) {
      options.fault_plan.enabled = true;
      options.fault_plan.crashes.push_back(
          net::CrashSchedule{"cache-0", {}});
    }
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult baseline = run(false);
  const EventRunResult planned = run(true);
  expect_runs_identical(planned, baseline);
  expect_chaos_identical(planned.chaos, ChaosYardsticks{});
}

// The tentpole, cache side: cache-0 dies for 10% of the run and restarts
// cold. The crash kills its in-flight requests (accounted failed, never
// leaked), the transport eats everything to/from it while down, and the
// heal-time recovery — re-register + ledger replay under a fresh epoch —
// balances the notice books exactly.
TEST(CrashRestartTest, CacheCrashRestartConvergesAndReplaysMissedNotices) {
  const World setup{crash_params()};
  const double rate = 200.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  options.open_loop.max_in_flight = 4096;
  add_crash(options, "cache-0", 0.40 * duration, 0.50 * duration);
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  EXPECT_EQ(r.chaos.crash_restarts, 1);
  EXPECT_GT(r.chaos.crash_dropped, 0);
  EXPECT_GT(r.chaos.crash_downtime_seconds, 0.0);
  // Recovery launched at the heal instant and completed: the reconvergence
  // clock ran for at least the recover round trip.
  EXPECT_GE(r.chaos.resyncs, 1);
  EXPECT_GT(r.chaos.max_reconvergence_seconds, 0.0);
  EXPECT_GT(r.chaos.replayed_notices, 0);
  expect_books_balanced(r, setup.trace().queries.size());
}

// Cold-cache reconvergence: a VCover cache with a loaded working set dies
// mid-run. The restarted process re-warms by re-loading on demand — the
// cold-miss burst — and the books still balance.
TEST(CrashRestartTest, CacheCrashColdRestartReloadsWorkingSet) {
  const World setup{loading_params()};
  const double rate = 200.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  options.open_loop.max_in_flight = 4096;
  add_crash(options, "cache-0", 0.40 * duration, 0.50 * duration);
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  EXPECT_EQ(r.chaos.crash_restarts, 1);
  EXPECT_GT(r.chaos.cold_misses, 0);
  EXPECT_GT(r.chaos.max_reconvergence_seconds, 0.0);
  expect_books_balanced(r, setup.trace().queries.size());
}

// The tentpole, server side: the repository process dies for 10% of the
// run. Its registration rows, dedup windows, and notice ledgers are gone;
// caches detect the restart from the incarnation stamp on the first
// post-heal reply (the suspicion probe guarantees such a reply exists) and
// rebuild their registrations with kRecoverRequest. The epoch-based ledger
// accounting keeps logged == applied through the wipe.
TEST(CrashRestartTest, ServerCrashRestartReregistersAndConverges) {
  const World setup{loading_params()};
  const double rate = 200.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  options.open_loop.max_in_flight = 4096;
  add_crash(options, "server", 0.45 * duration, 0.55 * duration);
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  EXPECT_EQ(r.chaos.crash_restarts, 1);  // the server, counted once
  EXPECT_GT(r.chaos.crash_dropped, 0);
  EXPECT_GT(r.chaos.timeouts, 0);
  // Every cache detected the new incarnation and ran a recovery resync.
  EXPECT_GE(r.chaos.resyncs, 2);
  EXPECT_GT(r.chaos.max_reconvergence_seconds, 0.0);
  expect_books_balanced(r, setup.trace().queries.size());
}

// Determinism under crashes: both crash sides are pure functions of the
// plan (static windows, timing-only checks), so a crashed run reproduces
// the sequential run bit-for-bit at any thread count.
TEST(CrashRestartTest, CrashRunsBitIdenticalAcrossThreadCounts) {
  const World setup{loading_params()};
  const double rate = 500.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  const auto run = [&](bool server_crash, std::size_t threads) {
    EventEngineOptions options = chaos_base(rate);
    if (server_crash) {
      add_crash(options, "server", 0.45 * duration, 0.55 * duration);
    } else {
      add_crash(options, "cache-0", 0.30 * duration, 0.40 * duration);
      add_crash(options, "cache-2", 0.55 * duration, 0.65 * duration);
    }
    options.parallel.num_threads = threads;
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 4,
                         workload::SplitStrategy::kHashByRegion, options);
  };
  for (const bool server_crash : {false, true}) {
    SCOPED_TRACE(::testing::Message()
                 << (server_crash ? "server crash" : "cache crashes"));
    const EventRunResult sequential = run(server_crash, 1);
    EXPECT_GT(sequential.chaos.crash_restarts, 0);
    EXPECT_GT(sequential.chaos.crash_dropped, 0);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(::testing::Message() << "T=" << threads);
      expect_runs_identical(run(server_crash, threads), sequential);
    }
  }
}

// Satellite 1: crash-windowed replicas conservatively take the unfiltered
// update path, and the mixed run (cache-0 crashes, cache-1 still
// prefilters) is bit-identical to the fully unfiltered replay.
TEST(CrashRestartTest, PrefilterEquivalenceUnderCrashPlan) {
  const World setup{loading_params()};
  const double rate = 500.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  const auto run = [&](bool prefilter) {
    EventEngineOptions options = chaos_base(rate);
    add_crash(options, "cache-0", 0.40 * duration, 0.50 * duration);
    options.prefilter_updates = prefilter;
    // Region split: each replica's touch set is a strict subset of the
    // object space, so the surviving replicas have updates to skip.
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 4,
                         workload::SplitStrategy::kHashByRegion, options);
  };
  const EventRunResult filtered = run(true);
  const EventRunResult full = run(false);
  // The crash-free replica still prefilters; the crashed one stands down.
  EXPECT_GT(filtered.prefiltered_updates, 0);
  EXPECT_EQ(full.prefiltered_updates, 0);
  expect_runs_identical(filtered, full);
}

// Satellite 2: a hard partition that outlasts the whole retry ladder. Data
// requests exhaust their budget and fail, but kLoadData keeps retrying
// past it (budget_exceeded_retries counts those) — so once the link heals,
// the stranded loads complete and the heal resync balances the books.
TEST(CrashRestartTest, RetryPastBudgetOutlastsPartitionAndConverges) {
  const World setup{loading_params()};
  const double rate = 200.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  options.open_loop.max_in_flight = 4096;
  options.fault_plan.enabled = true;
  for (int i = 0; i < 2; ++i) {
    options.fault_plan.partitions.push_back(net::LinkPartition{
        "server", "cache-" + std::to_string(i), /*duplex=*/true,
        {net::FaultWindow{0.30 * duration, 0.75 * duration}}});
  }
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  EXPECT_GT(r.chaos.failed_requests, 0);
  EXPECT_GT(r.chaos.budget_exceeded_retries, 0);
  EXPECT_EQ(r.chaos.crash_restarts, 0);  // a partition, not a crash
  expect_books_balanced(r, setup.trace().queries.size());
}

// Satellite 3: a crash window shorter than the round trip. Replies to
// requests the dead process sent are still in flight across the restart;
// they land at the restarted cache, whose pending table no longer knows
// their correlation ids — counted late, dropped, never applied.
TEST(CrashRestartTest, LateReplyAfterRestartIsDroppedNotApplied) {
  const World setup{loading_params()};
  const double rate = 500.0;
  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  EventEngineOptions options = chaos_base(rate);
  // 40 ms each way -> 80+ ms round trip; the 50 ms outage fits inside it.
  const double down = 0.50 * duration;
  add_crash(options, "cache-0", down, down + 0.050);
  add_crash(options, "cache-1", down, down + 0.050);
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  EXPECT_EQ(r.chaos.crash_restarts, 2);
  EXPECT_GT(r.chaos.late_replies, 0);
  expect_books_balanced(r, setup.trace().queries.size());
}

}  // namespace
}  // namespace delta::sim
