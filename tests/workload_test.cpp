#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "htm/partition_map.h"
#include "storage/density_model.h"
#include "workload/hotspot_model.h"
#include "workload/scan_model.h"
#include "workload/trace_generator.h"
#include "workload/trace_io.h"
#include "workload/workload_stats.h"

namespace delta::workload {
namespace {

constexpr int kLevel = 4;

struct Fixture {
  std::shared_ptr<storage::DensityModel> density;
  std::shared_ptr<const htm::PartitionMap> map;
  TraceParams params;

  explicit Fixture(std::size_t objects = 30) {
    density = std::make_shared<storage::DensityModel>(kLevel, 17);
    density->scale_to_total_rows(4e7);
    map = std::make_shared<htm::PartitionMap>(
        htm::PartitionMap::build(kLevel, density->weights(), objects));
    params.query_count = 4000;
    params.update_count = 4000;
    params.postwarmup_query_gb = 12.0;
    params.mean_postwarmup_update_mb = 2.0;
  }

  [[nodiscard]] Trace make(std::uint64_t seed = 1) const {
    return TraceGenerator{map, *density, params}.generate(seed);
  }
};

TEST(HotspotModelTest, ClustersRelocateOverTime) {
  HotspotModel::Params p;
  p.mean_dwell_events = 500.0;
  HotspotModel model{p, util::Rng{3}};
  for (EventTime t = 0; t < 20000; t += 10) {
    (void)model.sample_query_center(t);
  }
  EXPECT_GT(model.relocation_count(), 10);
}

TEST(HotspotModelTest, CentersStayInFootprint) {
  HotspotModel::Params p;
  HotspotModel model{p, util::Rng{4}};
  for (EventTime t = 0; t < 5000; ++t) {
    const htm::Vec3 c = model.sample_query_center(t);
    EXPECT_LE(htm::angular_distance(c, p.footprint_center),
              p.footprint_radius_rad + 1e-9);
  }
}

TEST(ScanModelTest, PositionsStayInFootprintAndAreClustered) {
  ScanModel::Params p;
  ScanModel scan{p, util::Rng{5}};
  htm::Vec3 prev = scan.next_position();
  double total_step = 0.0;
  for (int i = 0; i < 500; ++i) {
    const htm::Vec3 cur = scan.next_position();
    EXPECT_LE(htm::angular_distance(cur, p.footprint_center),
              p.footprint_radius_rad + 1e-9);
    total_step += htm::angular_distance(prev, cur);
    prev = cur;
  }
  // Consecutive positions along a night's scan are close (clustered
  // updates): mean step far below random-point separation (~1 rad).
  EXPECT_LT(total_step / 500.0, 0.1);
}

TEST(TraceGeneratorTest, ProducesRequestedCounts) {
  const Fixture f;
  const Trace t = f.make();
  EXPECT_EQ(t.queries.size(), 4000u);
  EXPECT_EQ(t.updates.size(), 4000u);
  EXPECT_EQ(t.order.size(), 8000u);
  // validate() ran inside generate(); spot-check key invariants anyway.
  EXPECT_GT(t.info.warmup_end_event, 0);
  EXPECT_LT(t.info.warmup_end_event, t.event_count());
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  const Fixture f;
  const Trace a = f.make(42);
  const Trace b = f.make(42);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].cost, b.queries[i].cost);
    EXPECT_EQ(a.queries[i].objects, b.queries[i].objects);
    EXPECT_EQ(a.queries[i].staleness_tolerance,
              b.queries[i].staleness_tolerance);
  }
  for (std::size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].cost, b.updates[i].cost);
    EXPECT_EQ(a.updates[i].object, b.updates[i].object);
  }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  const Fixture f;
  const Trace a = f.make(1);
  const Trace b = f.make(2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.queries.size() && !any_diff; ++i) {
    any_diff = a.queries[i].cost != b.queries[i].cost;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGeneratorTest, CalibrationHitsTargets) {
  const Fixture f;
  const Trace t = f.make(7);
  const Bytes post_q = t.total_query_cost(t.info.warmup_end_event);
  // Clamping at the minimum cost can only push the total slightly above.
  EXPECT_NEAR(post_q.as_double(), 12e9, 12e9 * 0.02);
  Bytes post_u;
  std::int64_t post_u_count = 0;
  for (const Update& u : t.updates) {
    if (u.time >= t.info.warmup_end_event) {
      post_u += u.cost;
      ++post_u_count;
    }
  }
  ASSERT_GT(post_u_count, 0);
  EXPECT_NEAR(post_u.as_double() / static_cast<double>(post_u_count), 2e6,
              2e6 * 0.02);
}

TEST(TraceGeneratorTest, WarmupQueriesAreCheap) {
  const Fixture f;
  const Trace t = f.make(8);
  const Bytes pre = t.total_query_cost(0) -
                    t.total_query_cost(t.info.warmup_end_event);
  const Bytes post = t.total_query_cost(t.info.warmup_end_event);
  // Same number of queries in each half, but the warm-up half is cheaper
  // overall (sizes ramp from warmup_floor to full scale within it).
  EXPECT_LT(pre.as_double(), post.as_double());
  // The ramp itself: the first 10% of queries is far cheaper than an
  // equally sized slice of full-scale queries at the end of the warm-up.
  const auto q_at = [&](double frac) {
    return t.queries[static_cast<std::size_t>(
        frac * static_cast<double>(t.queries.size() - 1))];
  };
  double early = 0.0;
  double late = 0.0;
  const std::size_t slice = t.queries.size() / 10;
  for (std::size_t i = 0; i < slice; ++i) {
    early += t.queries[i].cost.as_double();
    late += t.queries[static_cast<std::size_t>(
                          q_at(0.45).id.value()) -
                      i]
                .cost.as_double();
  }
  EXPECT_LT(early, late * 0.25);
}

TEST(TraceGeneratorTest, QueryStreamIndependentOfUpdateCount) {
  Fixture f;
  const Trace base = f.make(5);
  f.params.update_count = 1000;  // fewer updates, same queries
  const Trace fewer = f.make(5);
  ASSERT_EQ(base.queries.size(), fewer.queries.size());
  for (std::size_t i = 0; i < base.queries.size(); i += 97) {
    EXPECT_EQ(base.queries[i].objects, fewer.queries[i].objects) << i;
    EXPECT_EQ(base.queries[i].base_cover, fewer.queries[i].base_cover) << i;
  }
}

TEST(TraceGeneratorTest, UpdatesTargetNonEmptyObjects) {
  const Fixture f;
  const Trace t = f.make(9);
  for (const Update& u : t.updates) {
    EXPECT_GT(
        t.initial_object_bytes[static_cast<std::size_t>(u.object.value())]
            .count(),
        0);
  }
}

TEST(TraceGeneratorTest, MultiObjectQueriesExist) {
  const Fixture f;
  const Trace t = f.make(10);
  std::size_t multi = 0;
  for (const Query& q : t.queries) {
    if (q.objects.size() > 1) ++multi;
  }
  // The decoupling problem is only "general" with multi-object queries.
  EXPECT_GT(multi, t.queries.size() / 20);
}

TEST(TraceGeneratorTest, RemapPreservesCostsAndCoversObjects) {
  Fixture f;
  Trace t = f.make(11);
  const auto costs_before = [&] {
    std::vector<Bytes> v;
    for (const Query& q : t.queries) v.push_back(q.cost);
    return v;
  }();

  const auto finer = std::make_shared<htm::PartitionMap>(
      htm::PartitionMap::build(kLevel, f.density->weights(), 90));
  t.remap(*finer);
  t.validate();
  EXPECT_EQ(t.info.partition_count, finer->partition_count());
  for (std::size_t i = 0; i < t.queries.size(); ++i) {
    EXPECT_EQ(t.queries[i].cost, costs_before[i]);
  }
  // Finer partitions: queries touch at least as many objects on average.
  // (Spot-check via totals.)
  std::size_t total_objects = 0;
  for (const Query& q : t.queries) total_objects += q.objects.size();
  EXPECT_GT(total_objects, t.queries.size());
}

TEST(TraceIoTest, RoundTripsExactly) {
  Fixture f;
  f.params.query_count = 300;
  f.params.update_count = 300;
  const Trace t = f.make(12);
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  ASSERT_EQ(r.queries.size(), t.queries.size());
  ASSERT_EQ(r.updates.size(), t.updates.size());
  ASSERT_EQ(r.order.size(), t.order.size());
  for (std::size_t i = 0; i < t.queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].id, t.queries[i].id);
    EXPECT_EQ(r.queries[i].time, t.queries[i].time);
    EXPECT_EQ(r.queries[i].kind, t.queries[i].kind);
    EXPECT_EQ(r.queries[i].cost, t.queries[i].cost);
    EXPECT_EQ(r.queries[i].staleness_tolerance,
              t.queries[i].staleness_tolerance);
    EXPECT_EQ(r.queries[i].base_cover, t.queries[i].base_cover);
    EXPECT_EQ(r.queries[i].objects, t.queries[i].objects);
  }
  for (std::size_t i = 0; i < t.updates.size(); ++i) {
    EXPECT_EQ(r.updates[i].id, t.updates[i].id);
    EXPECT_EQ(r.updates[i].time, t.updates[i].time);
    EXPECT_EQ(r.updates[i].object, t.updates[i].object);
    EXPECT_EQ(r.updates[i].cost, t.updates[i].cost);
    EXPECT_EQ(r.updates[i].base_index, t.updates[i].base_index);
  }
  for (std::size_t i = 0; i < t.order.size(); ++i) {
    EXPECT_EQ(r.order[i].kind, t.order[i].kind);
    EXPECT_EQ(r.order[i].index, t.order[i].index);
  }
  EXPECT_EQ(r.initial_object_bytes, t.initial_object_bytes);
}

TEST(WorkloadStatsTest, HotspotsAreConcentratedAndDecoupled) {
  Fixture f{60};
  f.params.query_count = 8000;
  f.params.update_count = 8000;
  const Trace t = f.make(13);
  const auto stats = WorkloadStats::compute(t, t.info.warmup_end_event);
  // Query traffic concentrates on a minority of objects.
  EXPECT_GT(stats.query_concentration(12), 0.5);
  // Query hotspots and update hotspots only partially overlap — the
  // precondition that makes decoupling profitable (Fig. 7a).
  EXPECT_LT(stats.hotspot_overlap(10), 0.75);
}

TEST(WorkloadStatsTest, ScatterSamplesMatchTrace) {
  Fixture f;
  f.params.query_count = 500;
  f.params.update_count = 500;
  const Trace t = f.make(14);
  const auto pts = sample_scatter(t, 10);
  ASSERT_FALSE(pts.empty());
  for (const auto& p : pts) {
    EXPECT_GE(p.time, 0);
    EXPECT_LT(p.time, t.event_count());
    EXPECT_TRUE(p.object.valid());
  }
}

}  // namespace
}  // namespace delta::workload
