#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/edmonds_karp.h"
#include "flow/network.h"

namespace delta::flow {
namespace {

// Classic CLRS example network with known max flow 23.
FlowNetwork clrs_network(NodeIndex& s, NodeIndex& t) {
  FlowNetwork net;
  s = net.add_node();
  const NodeIndex v1 = net.add_node();
  const NodeIndex v2 = net.add_node();
  const NodeIndex v3 = net.add_node();
  const NodeIndex v4 = net.add_node();
  t = net.add_node();
  net.add_edge(s, v1, 16);
  net.add_edge(s, v2, 13);
  net.add_edge(v1, v3, 12);
  net.add_edge(v2, v1, 4);
  net.add_edge(v2, v4, 14);
  net.add_edge(v3, v2, 9);
  net.add_edge(v3, t, 20);
  net.add_edge(v4, v3, 7);
  net.add_edge(v4, t, 4);
  return net;
}

TEST(EdmondsKarpTest, ClrsExample) {
  NodeIndex s{};
  NodeIndex t{};
  FlowNetwork net = clrs_network(s, t);
  EXPECT_EQ(max_flow_edmonds_karp(net, s, t), 23);
  EXPECT_TRUE(net.flow_is_feasible(s, t));
}

TEST(DinicTest, ClrsExample) {
  NodeIndex s{};
  NodeIndex t{};
  FlowNetwork net = clrs_network(s, t);
  EXPECT_EQ(max_flow_dinic(net, s, t), 23);
  EXPECT_TRUE(net.flow_is_feasible(s, t));
}

TEST(EdmondsKarpTest, DisconnectedSinkHasZeroFlow) {
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex m = net.add_node();
  const NodeIndex t = net.add_node();
  net.add_edge(s, m, 5);  // no edge to t
  EXPECT_EQ(max_flow_edmonds_karp(net, s, t), 0);
}

TEST(EdmondsKarpTest, ParallelEdgesAccumulate) {
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex t = net.add_node();
  net.add_edge(s, t, 3);
  net.add_edge(s, t, 4);
  EXPECT_EQ(max_flow_edmonds_karp(net, s, t), 7);
}

TEST(EdmondsKarpTest, IncrementalAugmentationAfterEdgeAddition) {
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex m = net.add_node();
  const NodeIndex t = net.add_node();
  const EdgeId sm = net.add_edge(s, m, 10);
  net.add_edge(m, t, 4);
  EdmondsKarp ek{net, s, t};
  EXPECT_EQ(ek.run_to_max(), 4);
  EXPECT_EQ(ek.total_flow(), 4);

  // Add capacity: previous flow stays valid; only the delta is augmented.
  net.add_edge(m, t, 5);
  EXPECT_EQ(ek.run_to_max(), 5);
  EXPECT_EQ(ek.total_flow(), 9);
  EXPECT_EQ(net.edge(sm).flow, 9);
  EXPECT_TRUE(net.flow_is_feasible(s, t));
}

TEST(EdmondsKarpTest, IncrementalMatchesScratchAfterGrowth) {
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex t = net.add_node();
  EdmondsKarp ek{net, s, t};

  std::vector<NodeIndex> mids;
  for (int round = 0; round < 8; ++round) {
    const NodeIndex m = net.add_node();
    mids.push_back(m);
    net.add_edge(s, m, round + 1);
    net.add_edge(m, t, 2 * (round % 3) + 1);
    ek.run_to_max();
    FlowNetwork scratch = net.zero_flow_copy();
    EXPECT_EQ(ek.total_flow(), max_flow_edmonds_karp(scratch, s, t))
        << "after round " << round;
  }
}

TEST(EdmondsKarpTest, ReachabilityIdentifiesMinCut) {
  // s -> a (cap 1) -> t (cap 100): cut is {s->a}, so only s reachable.
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex a = net.add_node();
  const NodeIndex t = net.add_node();
  net.add_edge(s, a, 1);
  net.add_edge(a, t, 100);
  EdmondsKarp ek{net, s, t};
  ek.run_to_max();
  ek.compute_reachability();
  EXPECT_TRUE(ek.reachable(s));
  EXPECT_FALSE(ek.reachable(a));
  EXPECT_FALSE(ek.reachable(t));
}

TEST(MaxFlowCrossCheckTest, RandomNetworksAgree) {
  // Compare EK and Dinic on pseudo-random layered networks.
  std::uint64_t state = 12345;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33);
  };
  for (int trial = 0; trial < 30; ++trial) {
    FlowNetwork net;
    const NodeIndex s = net.add_node();
    const NodeIndex t = net.add_node();
    std::vector<NodeIndex> layer1;
    std::vector<NodeIndex> layer2;
    for (int i = 0; i < 5; ++i) layer1.push_back(net.add_node());
    for (int i = 0; i < 5; ++i) layer2.push_back(net.add_node());
    for (const NodeIndex v : layer1) {
      net.add_edge(s, v, static_cast<Capacity>(next() % 20 + 1));
    }
    for (const NodeIndex v : layer1) {
      for (const NodeIndex w : layer2) {
        if (next() % 3 == 0) {
          net.add_edge(v, w, static_cast<Capacity>(next() % 15 + 1));
        }
      }
    }
    for (const NodeIndex w : layer2) {
      net.add_edge(w, t, static_cast<Capacity>(next() % 20 + 1));
    }
    FlowNetwork for_ek = net.zero_flow_copy();
    FlowNetwork for_dinic = net.zero_flow_copy();
    EXPECT_EQ(max_flow_edmonds_karp(for_ek, s, t),
              max_flow_dinic(for_dinic, s, t))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace delta::flow
