// Open-loop drive and congestion batching (ISSUE 7): arrival-process
// pacing through the async policy API — rate pressure shows up in the
// yardsticks, the in-flight window throttles dispatch, results stay
// bit-identical across thread counts — and the server's notice batching
// conserves the invalidation fan-out while coalescing messages under
// backlog (and degenerates to the unbatched byte stream when the uplink
// never congests).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "workload/arrival_process.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 11) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 1200;
  p.trace.update_count = 1200;
  p.trace.postwarmup_query_gb = 5.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

/// The 40 ms WAN duplex path on every cache (the ISSUE 7 bench config).
EventEngineOptions wan_open_loop(double rate,
                                 workload::ArrivalProcess::Kind kind =
                                     workload::ArrivalProcess::Kind::kPoisson) {
  EventEngineOptions options;
  options.default_link = net::LinkModel{12.5e6, 0.040};  // 100 Mbit/s, 40 ms
  options.open_loop.enabled = true;
  options.open_loop.arrival = kind;
  options.open_loop.rate_per_sec = rate;
  return options;
}

void expect_combined_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.cache_fresh, b.cache_fresh);
  EXPECT_EQ(a.cache_after_updates, b.cache_after_updates);
  EXPECT_EQ(a.shipped, b.shipped);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  EXPECT_EQ(a.postwarmup_traffic, b.postwarmup_traffic);
  EXPECT_EQ(a.overhead_traffic, b.overhead_traffic);
}

void expect_yardsticks_identical(const EventRunResult& a,
                                 const EventRunResult& b) {
  expect_combined_equal(a.replay.combined, b.replay.combined);
  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.variance(), b.response_seconds.variance());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_EQ(a.response_p50(), b.response_p50());
  EXPECT_EQ(a.response_p99(), b.response_p99());
  EXPECT_EQ(a.dispatch_lag_seconds.count(), b.dispatch_lag_seconds.count());
  EXPECT_EQ(a.dispatch_lag_seconds.mean(), b.dispatch_lag_seconds.mean());
  EXPECT_EQ(a.staleness_seconds.count(), b.staleness_seconds.count());
  EXPECT_EQ(a.staleness_seconds.mean(), b.staleness_seconds.mean());
  EXPECT_EQ(a.sim_duration_seconds, b.sim_duration_seconds);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.coalesced_notices, b.coalesced_notices);
  EXPECT_EQ(a.notice_messages, b.notice_messages);
}

// Every routed query completes and lands exactly one response sample; the
// per-endpoint samples partition the combined stream, as in closed loop.
TEST(OpenLoopEngineTest, EveryQueryCompletesWithOneSample) {
  const World setup{small_params()};
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin,
      wan_open_loop(2000.0));
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
  EXPECT_EQ(r.response_seconds.count(),
            r.replay.combined.postwarmup_latency.count());
  std::int64_t per_endpoint = 0;
  for (const auto& e : r.per_endpoint) {
    per_endpoint += e.response_seconds.count();
  }
  EXPECT_EQ(per_endpoint, r.response_seconds.count());
  EXPECT_GT(r.response_p99(), 0.0);
}

// Driving the same workload faster can only add pressure: simulated span
// shrinks toward the arrival horizon while responses grow with queueing.
TEST(OpenLoopEngineTest, RateSweepAddsQueueingPressure) {
  const World setup{small_params()};
  const auto run = [&](double rate) {
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin,
                         wan_open_loop(rate));
  };
  const EventRunResult slow = run(20.0);
  const EventRunResult fast = run(5000.0);
  EXPECT_GT(slow.sim_duration_seconds, fast.sim_duration_seconds);
  EXPECT_GT(fast.response_seconds.mean(), slow.response_seconds.mean());
  EXPECT_GE(fast.response_p99(), slow.response_p99());
}

// The in-flight window throttles dispatch: a window of 1 serializes the
// cache's queries (closed-loop-like lag), a wide window overlaps them.
TEST(OpenLoopEngineTest, InFlightWindowThrottlesDispatch) {
  const World setup{small_params()};
  const auto run = [&](std::size_t window) {
    EventEngineOptions options = wan_open_loop(5000.0);
    options.open_loop.max_in_flight = window;
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult narrow = run(1);
  const EventRunResult wide = run(64);
  EXPECT_EQ(narrow.response_seconds.count(), wide.response_seconds.count());
  // Window waits are dispatch lag; overlapping dispatch removes most of it.
  EXPECT_GT(narrow.dispatch_lag_seconds.mean(),
            wide.dispatch_lag_seconds.mean());
}

// The deterministic-merge contract extends to the open loop: any thread
// count reproduces the sequential run bit-for-bit, for each arrival kind.
TEST(OpenLoopEngineTest, BitIdenticalAcrossThreadCounts) {
  const World setup{small_params()};
  for (const auto kind : {workload::ArrivalProcess::Kind::kPoisson,
                          workload::ArrivalProcess::Kind::kBursty,
                          workload::ArrivalProcess::Kind::kDiurnal}) {
    const auto run = [&](std::size_t threads) {
      EventEngineOptions options = wan_open_loop(2000.0, kind);
      options.parallel.num_threads = threads;
      return run_one_event(PolicyKind::kVCover, setup.trace(),
                           setup.cache_capacity(), setup.params(), 4,
                           workload::SplitStrategy::kHashByRegion, options);
    };
    SCOPED_TRACE(workload::ArrivalProcess::kind_name(kind));
    const EventRunResult sequential = run(1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(::testing::Message() << "T=" << threads);
      expect_yardsticks_identical(run(threads), sequential);
    }
  }
}

// Congestion batching conserves the invalidation fan-out exactly: every
// notice the unbatched run sends is either a standalone message or rides
// coalesced behind another one — and under a bursty saturating drive some
// really do coalesce.
TEST(OpenLoopEngineTest, BatchingConservesAndCoalescesNotices) {
  const World setup{small_params()};
  const auto run = [&](bool batching) {
    EventEngineOptions options =
        wan_open_loop(5000.0, workload::ArrivalProcess::Kind::kBursty);
    options.notice_batching.enabled = batching;
    options.notice_batching.backlog_threshold_seconds = 0.0;
    return run_one_event(PolicyKind::kReplica, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult off = run(false);
  const EventRunResult on = run(true);
  EXPECT_EQ(off.coalesced_notices, 0);
  EXPECT_GT(on.coalesced_notices, 0);
  EXPECT_LT(on.notice_messages, off.notice_messages);
  EXPECT_EQ(on.notice_messages + on.coalesced_notices, off.notice_messages);
}

// A saturating drive parks thousands of invalidation notices back-to-back
// on the WAN link; Replica's handler does a blocking refresh per notice,
// and each blocking wait pumps the queue — which delivers the next notice.
// CacheNode flattens that re-entrancy (nested notices queue and drain
// iteratively), so a bench-scale backlog must complete instead of
// overflowing the stack with one handler frame per queued notice (the
// crash this pins ate ~40k frames).
TEST(OpenLoopEngineTest, DeepNoticeBacklogDoesNotRecurseHandlers) {
  SetupParams params = small_params();
  params.trace.query_count = 12'000;
  params.trace.update_count = 12'000;
  params.trace.postwarmup_query_gb = 300.0 * 12'000 / 250'000.0;
  const World setup{params};
  EventEngineOptions options = wan_open_loop(500.0);
  options.open_loop.response_sample_cap = 4'000;
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);
  EXPECT_EQ(r.replay.combined.queries,
            static_cast<std::int64_t>(setup.trace().queries.size()));
}

// Over links that never congest the backlog gate never holds a notice, so
// batching-on must reproduce the batching-off run byte-for-byte — the
// guarantee that keeps the golden (closed-loop, zero-latency) tables safe
// even with the feature compiled in everywhere.
TEST(OpenLoopEngineTest, BatchingIsByteIdenticalWhenUplinkNeverCongests) {
  const World setup{small_params()};
  const auto run = [&](bool batching) {
    EventEngineOptions options;  // zero-latency closed loop
    options.notice_batching.enabled = batching;
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kRoundRobin, options);
  };
  const EventRunResult off = run(false);
  const EventRunResult on = run(true);
  EXPECT_EQ(on.coalesced_notices, 0);
  expect_combined_equal(on.replay.combined, off.replay.combined);
  EXPECT_EQ(on.delivered_messages, off.delivered_messages);
  EXPECT_EQ(on.response_seconds.mean(), off.response_seconds.mean());
  EXPECT_EQ(on.notice_messages, off.notice_messages);
}

}  // namespace
}  // namespace delta::sim
