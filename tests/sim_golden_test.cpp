// Golden regression test: the full simulation output for a fixed-seed trace
// is pinned, per policy, so a refactor anywhere in the stack (htm → workload
// → cache → core → sim) cannot silently change simulation results. All
// randomness flows through util::Rng (xoshiro256**), so these numbers are
// stable across platforms and standard libraries.
//
// The parallel engine must reproduce the same goldens for every thread
// count — that is asserted here too, not just sequential-vs-parallel
// equality, so a bug that shifted BOTH engines the same way still trips.
//
// To regenerate after an *intentional* behavior change:
//   ./build/tests/sim_golden_test \
//       --gtest_also_run_disabled_tests --gtest_filter='*PrintGoldenTables*'
// and paste the printed rows below.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

/// The pinned world: small enough to replay five policies in seconds, big
/// enough that every mechanism (shipping, update pull, loading, eviction)
/// fires for every policy.
SetupParams golden_params() {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = 2718;
  p.trace.query_count = 2000;
  p.trace.update_count = 2000;
  p.trace.postwarmup_query_gb = 8.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

constexpr PolicyKind kAllKinds[] = {PolicyKind::kNoCache,
                                    PolicyKind::kReplica,
                                    PolicyKind::kBenefit, PolicyKind::kVCover,
                                    PolicyKind::kSOptimal};

struct GoldenRun {
  const char* policy;
  std::int64_t queries;
  std::int64_t cache_fresh;
  std::int64_t cache_after_updates;
  std::int64_t shipped;
  std::int64_t objects_loaded;
  std::int64_t total_traffic;
  std::int64_t postwarmup_traffic;
  std::int64_t by_query_ship;
  std::int64_t by_update_ship;
  std::int64_t by_object_load;
  std::int64_t overhead;
};

void expect_matches(const RunResult& r, const GoldenRun& g) {
  SCOPED_TRACE(g.policy);
  EXPECT_EQ(r.policy_name, g.policy);
  EXPECT_EQ(r.queries, g.queries);
  EXPECT_EQ(r.cache_fresh, g.cache_fresh);
  EXPECT_EQ(r.cache_after_updates, g.cache_after_updates);
  EXPECT_EQ(r.shipped, g.shipped);
  EXPECT_EQ(r.objects_loaded, g.objects_loaded);
  EXPECT_EQ(r.total_traffic.count(), g.total_traffic);
  EXPECT_EQ(r.postwarmup_traffic.count(), g.postwarmup_traffic);
  EXPECT_EQ(r.postwarmup_by_mechanism[0].count(), g.by_query_ship);
  EXPECT_EQ(r.postwarmup_by_mechanism[1].count(), g.by_update_ship);
  EXPECT_EQ(r.postwarmup_by_mechanism[2].count(), g.by_object_load);
  EXPECT_EQ(r.overhead_traffic.count(), g.overhead);
}

void print_row(const RunResult& r) {
  std::cout << "    {\"" << r.policy_name << "\", " << r.queries << ", "
            << r.cache_fresh << ", " << r.cache_after_updates << ", "
            << r.shipped << ", " << r.objects_loaded << ", "
            << r.total_traffic.count() << ", " << r.postwarmup_traffic.count()
            << ", " << r.postwarmup_by_mechanism[0].count() << ", "
            << r.postwarmup_by_mechanism[1].count() << ", "
            << r.postwarmup_by_mechanism[2].count() << ", "
            << r.overhead_traffic.count() << "},\n";
}

// ----------------------------------------------------------- golden tables

// Single-cache run_one over the golden trace, one row per policy.
constexpr GoldenRun kSingleCacheGolden[] = {
    {"NoCache", 2000, 0, 0, 2000, 0, 14635445515, 7999999508, 7999999508, 0, 0, 256000},
    {"Replica", 2000, 2000, 0, 0, 0, 3544553626, 2723999319, 0, 2723999319, 0, 384000},
    {"Benefit", 2000, 286, 0, 1714, 0, 14878100589, 7634332058, 7633086983, 1245075, 0, 347904},
    {"VCover", 2000, 1328, 2, 670, 3, 7707438424, 1238688276, 1218079838, 20608438, 0, 93824},
    {"SOptimal", 2000, 1854, 0, 146, 0, 4874712980, 1256046449, 1208306382, 47740067, 0, 39616},
};

// Multi-endpoint run_one_multi (VCover, N=4) combined + per-endpoint rows,
// one table per split strategy. The same tables must hold for the
// sequential engine and the parallel engine at every thread count.
struct GoldenMulti {
  workload::SplitStrategy strategy;
  GoldenRun combined;
  std::array<GoldenRun, 4> per_endpoint;
};

const GoldenMulti kMultiGolden[] = {
    {workload::SplitStrategy::kRoundRobin,
     {"VCover", 2000, 440, 2, 1558, 8, 18700273193, 11249914867, 5501706060, 354266, 5747854541, 201344},
     {{
         {"VCover", 500, 118, 0, 382, 2, 4923170220, 3066485943, 1422983716, 0, 1643502227, 24704},
         {"VCover", 500, 110, 1, 389, 2, 4575325703, 2981865224, 1338362997, 177133, 1643325094, 25280},
         {"VCover", 500, 95, 0, 405, 2, 4751133805, 3023776003, 1380273776, 0, 1643502227, 26176},
         {"VCover", 500, 117, 1, 382, 2, 4450643465, 2177787697, 1360085571, 177133, 817524993, 24832},
     }}},
    {workload::SplitStrategy::kHashByRegion,
     {"VCover", 2000, 709, 3, 1288, 5, 13030291767, 5573712881, 3028062329, 20785571, 2524864981, 175872},
     {{
         {"VCover", 315, 0, 0, 315, 0, 875668499, 534687299, 534687299, 0, 0, 20160},
         {"VCover", 20, 0, 0, 20, 0, 7947222, 3399751, 3399751, 0, 0, 1280},
         {"VCover", 1097, 366, 2, 729, 2, 5057927325, 2273469278, 1000644002, 20608438, 1252216838, 52736},
         {"VCover", 568, 343, 1, 224, 3, 7088748721, 2762156553, 1489331277, 177133, 1272648143, 17152},
     }}},
};

// ----------------------------------------------------------------- tests

TEST(SimGoldenTest, SingleCachePolicyRunsMatchGoldenTable) {
  const World setup{golden_params()};
  for (std::size_t i = 0; i < std::size(kAllKinds); ++i) {
    const RunResult r = run_one(kAllKinds[i], setup.trace(),
                                setup.cache_capacity(), setup.params());
    expect_matches(r, kSingleCacheGolden[i]);
  }
}

TEST(SimGoldenTest, MultiEndpointRunsMatchGoldenTable) {
  const World setup{golden_params()};
  for (const GoldenMulti& golden : kMultiGolden) {
    const MultiRunResult multi = run_one_multi(
        PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
        setup.params(), 4, golden.strategy);
    SCOPED_TRACE(workload::to_string(golden.strategy));
    expect_matches(multi.combined, golden.combined);
    ASSERT_EQ(multi.per_endpoint.size(), golden.per_endpoint.size());
    for (std::size_t e = 0; e < golden.per_endpoint.size(); ++e) {
      expect_matches(multi.per_endpoint[e], golden.per_endpoint[e]);
    }
  }
}

// The parallel engine reproduces the pinned goldens for every thread count
// (not merely "matches sequential": if both engines drifted together, this
// still fails).
TEST(SimGoldenTest, ParallelEngineReproducesGoldensForEveryThreadCount) {
  const World setup{golden_params()};
  for (const GoldenMulti& golden : kMultiGolden) {
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const MultiRunResult multi = run_one_multi(
          PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
          setup.params(), 4, golden.strategy, PolicyOverrides{}, 2000,
          ParallelOptions{threads, true});
      SCOPED_TRACE(::testing::Message()
                   << workload::to_string(golden.strategy) << " T=" << threads);
      expect_matches(multi.combined, golden.combined);
      ASSERT_EQ(multi.per_endpoint.size(), golden.per_endpoint.size());
      for (std::size_t e = 0; e < golden.per_endpoint.size(); ++e) {
        expect_matches(multi.per_endpoint[e], golden.per_endpoint[e]);
      }
    }
  }
}

// The event-driven engine over zero-latency links must reproduce the same
// pinned tables byte-for-byte: DelayedTransport delivery degenerates to
// synchronous order when every link is instantaneous, so any divergence
// means the asynchronous protocol changed replay semantics, not just
// timing. Single-cache rows cover all five policies; the multi tables the
// VCover N=4 splits. (At zero latency the simulated response times reduce
// to the execution surcharges and staleness to zero — the WAN behavior is
// covered by event_engine_test.)
TEST(SimGoldenTest, EventEngineAtZeroLatencyMatchesGoldenTables) {
  const World setup{golden_params()};
  for (std::size_t i = 0; i < std::size(kAllKinds); ++i) {
    const EventRunResult r = run_one_event(
        kAllKinds[i], setup.trace(), setup.cache_capacity(), setup.params(),
        1, workload::SplitStrategy::kRoundRobin);
    expect_matches(r.replay.combined, kSingleCacheGolden[i]);
    EXPECT_EQ(r.staleness_seconds.max(), 0.0) << kSingleCacheGolden[i].policy;
  }
  for (const GoldenMulti& golden : kMultiGolden) {
    const EventRunResult multi = run_one_event(
        PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
        setup.params(), 4, golden.strategy);
    SCOPED_TRACE(workload::to_string(golden.strategy));
    expect_matches(multi.replay.combined, golden.combined);
    ASSERT_EQ(multi.replay.per_endpoint.size(), golden.per_endpoint.size());
    for (std::size_t e = 0; e < golden.per_endpoint.size(); ++e) {
      expect_matches(multi.replay.per_endpoint[e], golden.per_endpoint[e]);
    }
  }
}

// The parallel per-partition event engine must reproduce the same pinned
// tables for every thread count at zero latency — the partitions replay
// replica worlds whose merge is the sequential stream, so no thread count
// may perturb a single byte (and if both engines drifted together, the
// pinned constants still catch it).
TEST(SimGoldenTest, ParallelEventEngineReproducesGoldensForEveryThreadCount) {
  const World setup{golden_params()};
  for (const GoldenMulti& golden : kMultiGolden) {
    for (const std::size_t threads : {2u, 4u, 8u}) {
      EventEngineOptions options;
      options.parallel.num_threads = threads;
      const EventRunResult multi = run_one_event(
          PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
          setup.params(), 4, golden.strategy, options);
      SCOPED_TRACE(::testing::Message()
                   << workload::to_string(golden.strategy)
                   << " T=" << threads);
      expect_matches(multi.replay.combined, golden.combined);
      ASSERT_EQ(multi.replay.per_endpoint.size(), golden.per_endpoint.size());
      for (std::size_t e = 0; e < golden.per_endpoint.size(); ++e) {
        expect_matches(multi.replay.per_endpoint[e], golden.per_endpoint[e]);
      }
      EXPECT_EQ(multi.staleness_seconds.max(), 0.0);
      EXPECT_EQ(multi.dispatch_lag_seconds.max(), 0.0);
    }
  }
}

// Regeneration helper, not a test: prints the golden tables in source form.
TEST(SimGoldenTest, DISABLED_PrintGoldenTables) {
  const World setup{golden_params()};
  std::cout << "constexpr GoldenRun kSingleCacheGolden[] = {\n";
  for (const PolicyKind kind : kAllKinds) {
    print_row(run_one(kind, setup.trace(), setup.cache_capacity(),
                      setup.params()));
  }
  std::cout << "};\n\nkMultiGolden rows:\n";
  for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                              workload::SplitStrategy::kHashByRegion}) {
    const MultiRunResult multi =
        run_one_multi(PolicyKind::kVCover, setup.trace(),
                      setup.cache_capacity(), setup.params(), 4, strategy);
    std::cout << "  // strategy = " << workload::to_string(strategy)
              << "\n  combined:\n";
    print_row(multi.combined);
    std::cout << "  per_endpoint:\n";
    for (const RunResult& r : multi.per_endpoint) print_row(r);
  }
}

}  // namespace
}  // namespace delta::sim
