#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "meter_invariants.h"
#include "net/link_model.h"
#include "net/message.h"
#include "net/traffic_meter.h"
#include "net/transport.h"

namespace delta::net {
namespace {

TEST(TrafficMeterTest, AccumulatesPerMechanism) {
  TrafficMeter m;
  m.record(Mechanism::kQueryShip, Bytes{100});
  m.record(Mechanism::kQueryShip, Bytes{50});
  m.record(Mechanism::kUpdateShip, Bytes{7});
  m.record(Mechanism::kObjectLoad, Bytes{1000});
  m.record(Mechanism::kOverhead, Bytes{64});
  EXPECT_EQ(m.total(Mechanism::kQueryShip).count(), 150);
  EXPECT_EQ(m.total(Mechanism::kUpdateShip).count(), 7);
  EXPECT_EQ(m.total(Mechanism::kObjectLoad).count(), 1000);
  EXPECT_EQ(m.message_count(Mechanism::kQueryShip), 2);
  // Figure totals exclude overhead, matching the paper's cost model.
  EXPECT_EQ(m.figure_total().count(), 1157);
}

TEST(TrafficMeterTest, ResetClears) {
  TrafficMeter m;
  m.record(Mechanism::kQueryShip, Bytes{5});
  m.reset();
  EXPECT_EQ(m.figure_total().count(), 0);
  EXPECT_EQ(m.message_count(Mechanism::kQueryShip), 0);
}

TEST(TrafficMeterTest, RejectsNegativeBytes) {
  TrafficMeter m;
  EXPECT_THROW(m.record(Mechanism::kQueryShip, Bytes{-1}), std::logic_error);
}

TEST(LoopbackTransportTest, DeliversToRegisteredEndpoint) {
  LoopbackTransport t;
  std::vector<Message> received;
  t.register_endpoint("cache", [&](const Message& m) {
    received.push_back(m);
  });
  Message msg;
  msg.kind = MessageKind::kUpdateShip;
  msg.payload = Bytes{12345};
  msg.subject_id = 9;
  t.send("cache", msg, Mechanism::kUpdateShip);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].subject_id, 9);
  EXPECT_EQ(t.meter().total(Mechanism::kUpdateShip).count(), 12345);
  EXPECT_EQ(t.meter().total(Mechanism::kOverhead), kMessageHeaderBytes);
  EXPECT_EQ(t.delivered_count(), 1);
}

TEST(LoopbackTransportTest, UnknownEndpointThrows) {
  LoopbackTransport t;
  EXPECT_THROW(t.send("nowhere", Message{}, Mechanism::kQueryShip),
               std::logic_error);
}

TEST(LoopbackTransportTest, UnregisteredEndpointIsCheckedFailureEvenWhenOthersExist) {
  LoopbackTransport t;
  t.register_endpoint("cache-0", [](const Message&) {});
  EXPECT_THROW(t.send("cache-1", Message{}, Mechanism::kUpdateShip),
               std::logic_error);
  // The failed delivery must not have been accounted anywhere.
  EXPECT_EQ(t.meter().figure_total().count(), 0);
  EXPECT_EQ(t.meter().total(Mechanism::kOverhead).count(), 0);
  EXPECT_EQ(t.delivered_count(), 0);
}

TEST(LoopbackTransportTest, PerEndpointMetersPartitionTheAggregate) {
  LoopbackTransport t;
  for (const char* name : {"server", "cache-0", "cache-1"}) {
    t.register_endpoint(name, [](const Message&) {});
  }
  Message msg;
  msg.kind = MessageKind::kQueryResult;
  msg.payload = Bytes{1000};
  t.send("cache-0", msg, Mechanism::kQueryShip);
  msg.payload = Bytes{250};
  t.send("cache-1", msg, Mechanism::kQueryShip);
  msg.kind = MessageKind::kUpdateShip;
  msg.payload = Bytes{77};
  t.send("cache-1", msg, Mechanism::kUpdateShip);
  msg.kind = MessageKind::kLoadRequest;
  msg.payload = Bytes{};
  t.send("server", msg, Mechanism::kOverhead);

  // Destination-keyed: each endpoint saw exactly its deliveries.
  EXPECT_EQ(t.endpoint_meter("cache-0").total(Mechanism::kQueryShip).count(),
            1000);
  EXPECT_EQ(t.endpoint_meter("cache-1").total(Mechanism::kQueryShip).count(),
            250);
  EXPECT_EQ(t.endpoint_meter("cache-1").total(Mechanism::kUpdateShip).count(),
            77);
  EXPECT_EQ(t.endpoint_meter("server").figure_total().count(), 0);

  // Partition property: per-endpoint totals sum exactly to the aggregate,
  // mechanism by mechanism, bytes and message counts alike.
  ASSERT_EQ(t.endpoint_names().size(), 3u);
  delta::testing::ExpectEndpointMetersPartitionAggregate(t);
}

// The meter's concurrency contract (single writer, concurrent readers):
// each of 8 worker threads hammers its OWN meter — the confinement model
// both simulation engines use — while a reader thread concurrently sums
// all meters. After the join barrier every per-meter total is exact, and
// the reader must only ever have seen untorn, monotonically-growing
// values. (Concurrent writers to one meter are explicitly NOT supported;
// the parallel engine folds per-worker meters after its barrier instead.)
TEST(TrafficMeterTest, SingleWriterMetersAreExactUnderConcurrentReads) {
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 50'000;
  std::array<TrafficMeter, kThreads> meters;
  std::atomic<bool> done{false};

  std::thread reader{[&] {
    // Concurrent reads must see untorn values: with each writer adding
    // bytes in 1..7, any torn read would show up as a wildly out-of-range
    // total. Monotonicity per (meter, mechanism) is the observable
    // guarantee of the relaxed stores.
    std::array<std::array<std::int64_t, kMechanismCount>, kThreads> last{};
    while (!done.load(std::memory_order_acquire)) {
      for (int t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < kMechanismCount; ++i) {
          const auto mech = static_cast<Mechanism>(i);
          const std::int64_t now = meters[static_cast<std::size_t>(t)]
                                       .total(mech)
                                       .count();
          ASSERT_GE(now, last[static_cast<std::size_t>(t)][i]);
          ASSERT_LE(now, kPerThread * 7);
          last[static_cast<std::size_t>(t)][i] = now;
        }
      }
    }
  }};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    writers.emplace_back([&meters, tid] {
      TrafficMeter& m = meters[static_cast<std::size_t>(tid)];
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        const auto mech = static_cast<Mechanism>((tid + i) % kMechanismCount);
        m.record(mech, Bytes{1 + (i % 7)});
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Fold after the barrier, exactly as the parallel engine merges
  // per-worker meters: the closed-form totals must be exact.
  std::int64_t total_bytes = 0;
  std::int64_t total_count = 0;
  for (const TrafficMeter& m : meters) {
    for (std::size_t i = 0; i < kMechanismCount; ++i) {
      const auto mech = static_cast<Mechanism>(i);
      total_bytes += m.total(mech).count();
      total_count += m.message_count(mech);
      EXPECT_EQ(m.message_count(mech),
                kPerThread / static_cast<std::int64_t>(kMechanismCount))
          << to_string(mech);
    }
  }
  std::int64_t expected_bytes = 0;
  for (std::int64_t i = 0; i < kPerThread; ++i) expected_bytes += 1 + (i % 7);
  EXPECT_EQ(total_bytes, expected_bytes * kThreads);
  EXPECT_EQ(total_count, kThreads * kPerThread);
}

TEST(LoopbackTransportTest, EndpointMeterUnknownNameThrows) {
  LoopbackTransport t;
  EXPECT_THROW(t.endpoint_meter("ghost"), std::logic_error);
  EXPECT_FALSE(t.has_endpoint("ghost"));
}

// The slot-addressed meter accessor (the hot-path variant CacheNode::meter
// uses) aliases the name-addressed meter exactly and validates its slot.
TEST(LoopbackTransportTest, SlotAddressedEndpointMeterAliasesNameLookup) {
  LoopbackTransport t;
  const std::size_t cache = t.register_endpoint("cache", [](const Message&) {});
  const std::size_t other = t.register_endpoint("other", [](const Message&) {});
  Message msg;
  msg.payload = Bytes{500};
  t.send("cache", msg, Mechanism::kObjectLoad);
  EXPECT_EQ(&t.endpoint_meter(cache), &t.endpoint_meter("cache"));
  EXPECT_EQ(&t.endpoint_meter(other), &t.endpoint_meter("other"));
  EXPECT_EQ(t.endpoint_meter(cache).total(Mechanism::kObjectLoad).count(),
            500);
  EXPECT_THROW(t.endpoint_meter(std::size_t{99}), std::logic_error);
}

TEST(LoopbackTransportTest, ReRegistrationKeepsEndpointMeter) {
  LoopbackTransport t;
  t.register_endpoint("cache", [](const Message&) {});
  Message msg;
  msg.payload = Bytes{500};
  t.send("cache", msg, Mechanism::kObjectLoad);
  t.register_endpoint("cache", [](const Message&) {});
  EXPECT_EQ(t.endpoint_meter("cache").total(Mechanism::kObjectLoad).count(),
            500);
}

TEST(LoopbackTransportTest, ReRegistrationReplacesHandler) {
  LoopbackTransport t;
  int first = 0;
  int second = 0;
  t.register_endpoint("server", [&](const Message&) { ++first; });
  t.register_endpoint("server", [&](const Message&) { ++second; });
  t.send("server", Message{}, Mechanism::kQueryShip);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(LinkModelTest, TransferTimeScalesLinearly) {
  const LinkModel link{1e6, 0.01};  // 1 MB/s, 10 ms RTT
  EXPECT_NEAR(link.transfer_seconds(Bytes{0}), 0.01, 1e-12);
  EXPECT_NEAR(link.transfer_seconds(Bytes{1'000'000}), 1.01, 1e-9);
  // Linear in size: the paper's proportional-cost assumption.
  const double t1 = link.transfer_seconds(Bytes{500'000});
  const double t2 = link.transfer_seconds(Bytes{1'000'000});
  EXPECT_NEAR(t2 - t1, 0.5, 1e-9);
}

TEST(MessageKindTest, NamesAreStable) {
  EXPECT_STREQ(to_string(MessageKind::kQueryRequest), "query_request");
  EXPECT_STREQ(to_string(Mechanism::kObjectLoad), "object_load");
}

}  // namespace
}  // namespace delta::net
