#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace delta::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJobExactlyOnce) {
  std::atomic<std::int64_t> sum{0};
  {
    ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 5050);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor joins after the queue drains; nothing is dropped.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool{2};
  auto future = pool.submit([] { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing job.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), threads,
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WaitsForAllJobsThenRethrows) {
  std::atomic<int> completed{0};
  const auto run = [&completed] {
    parallel_for(16, 4, [&completed](std::size_t i) {
      if (i == 3) throw std::runtime_error{"job failure"};
      completed.fetch_add(1);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Every non-throwing job still ran: the rethrow happens after the join.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelForTest, ZeroJobsIsANoOp) {
  EXPECT_NO_THROW(parallel_for(0, 4, [](std::size_t) { FAIL(); }));
}

}  // namespace
}  // namespace delta::util
