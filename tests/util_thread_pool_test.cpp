#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace delta::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJobExactlyOnce) {
  std::atomic<std::int64_t> sum{0};
  {
    ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 5050);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor joins after the queue drains; nothing is dropped.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool{2};
  auto future = pool.submit([] { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing job.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), threads,
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WaitsForAllJobsThenRethrows) {
  std::atomic<int> completed{0};
  const auto run = [&completed] {
    parallel_for(16, 4, [&completed](std::size_t i) {
      if (i == 3) throw std::runtime_error{"job failure"};
      completed.fetch_add(1);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Every non-throwing job still ran: the rethrow happens after the join.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelForTest, ZeroJobsIsANoOp) {
  EXPECT_NO_THROW(parallel_for(0, 4, [](std::size_t) { FAIL(); }));
}

TEST(LptAssignmentTest, IsADeterministicExactPartition) {
  const std::vector<double> weights{5.0, 1.0, 3.0, 3.0, 0.0, 8.0, 2.0};
  for (const std::size_t workers : {1u, 2u, 3u, 8u, 16u}) {
    const auto assignment = lpt_assignment(weights, workers);
    ASSERT_EQ(assignment.size(), workers);
    std::vector<int> hits(weights.size(), 0);
    for (const auto& jobs : assignment) {
      for (const std::size_t j : jobs) {
        ASSERT_LT(j, weights.size());
        ++hits[j];
      }
      // Owner pops front: each worker's list is heaviest-first.
      for (std::size_t k = 1; k < jobs.size(); ++k) {
        EXPECT_GE(weights[jobs[k - 1]], weights[jobs[k]]);
      }
    }
    for (std::size_t j = 0; j < weights.size(); ++j) {
      EXPECT_EQ(hits[j], 1) << "job " << j << " workers " << workers;
    }
    EXPECT_EQ(assignment, lpt_assignment(weights, workers));
  }
}

TEST(LptAssignmentTest, MakespanIsWithinTheGreedyBound) {
  // LPT guarantee: max worker load <= mean load + heaviest job. Checked
  // over a skewed profile at several worker counts.
  std::vector<double> weights;
  double total = 0.0;
  double heaviest = 0.0;
  for (std::size_t j = 0; j < 64; ++j) {
    weights.push_back(1000.0 / static_cast<double>(j + 1));
    total += weights.back();
    heaviest = std::max(heaviest, weights.back());
  }
  for (const std::size_t workers : {2u, 4u, 7u, 16u}) {
    const auto assignment = lpt_assignment(weights, workers);
    double makespan = 0.0;
    for (const auto& jobs : assignment) {
      double load = 0.0;
      for (const std::size_t j : jobs) load += weights[j];
      makespan = std::max(makespan, load);
    }
    EXPECT_LE(makespan,
              total / static_cast<double>(workers) + heaviest + 1e-9)
        << "workers " << workers;
  }
}

TEST(ParallelForDynamicTest, CoversEveryIndexExactlyOnce) {
  const std::vector<double> weights{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0,
                                    5.0, 3.0, 5.0, 8.0, 9.0, 7.0, 9.0, 3.0};
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(weights.size());
    parallel_for_dynamic(hits.size(), lpt_assignment(weights, workers),
                         [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ParallelForDynamicTest, StealsWhenOneOwnerHoldsEveryJob) {
  // Seed all jobs on worker 0 and have its first job block until another
  // job has run. Only a thief (workers 1..3 scanning worker 0's deque from
  // the back) can run that other job, so the returned steal count must be
  // positive — and the blocked owner proves stealing is what makes a
  // straggler stop serializing the join.
  constexpr std::size_t kJobs = 16;
  std::vector<std::vector<std::size_t>> assignment(4);
  for (std::size_t j = 0; j < kJobs; ++j) assignment[0].push_back(j);
  std::atomic<int> others_ran{0};
  const std::int64_t steals =
      parallel_for_dynamic(kJobs, assignment, [&others_ran](std::size_t i) {
        if (i == 0) {
          while (others_ran.load() == 0) std::this_thread::yield();
        } else {
          others_ran.fetch_add(1);
        }
      });
  EXPECT_GE(steals, 1);
  EXPECT_EQ(others_ran.load(), static_cast<int>(kJobs) - 1);
}

TEST(ParallelForDynamicTest, WaitsForAllJobsThenRethrowsFirstByIndex) {
  const std::vector<double> weights(16, 1.0);
  std::atomic<int> completed{0};
  const auto run = [&completed, &weights] {
    parallel_for_dynamic(16, lpt_assignment(weights, 4),
                         [&completed](std::size_t i) {
                           if (i == 3) throw std::runtime_error{"job 3"};
                           if (i == 11) throw std::runtime_error{"job 11"};
                           completed.fetch_add(1);
                         });
  };
  try {
    run();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    // Lowest-index error wins regardless of which worker hit it first.
    EXPECT_STREQ(e.what(), "job 3");
  }
  EXPECT_EQ(completed.load(), 14);
}

TEST(ParallelForDynamicTest, SingleWorkerRunsInlineAscending) {
  const std::vector<double> weights{1.0, 5.0, 2.0};
  std::vector<std::size_t> order;
  const std::int64_t steals = parallel_for_dynamic(
      3, lpt_assignment(weights, 1),
      [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(steals, 0);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParallelForDynamicTest, ZeroJobsIsANoOp) {
  EXPECT_EQ(parallel_for_dynamic(0, {}, [](std::size_t) { FAIL(); }), 0);
}

TEST(ParallelForDynamicTest, RejectsAnAssignmentThatIsNotAPartition) {
  // Job 1 assigned twice, job 2 never: both violations are checked.
  EXPECT_THROW(
      parallel_for_dynamic(3, {{0, 1}, {1}}, [](std::size_t) {}),
      std::logic_error);
  EXPECT_THROW(parallel_for_dynamic(3, {{0, 1}}, [](std::size_t) {}),
               std::logic_error);
}

}  // namespace
}  // namespace delta::util
