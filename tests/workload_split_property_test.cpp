// Property-based tests for workload::SplitStrategy: over randomized traces,
// the per-endpoint shards must form a disjoint exact partition of the query
// stream — every query routed exactly once, arrival order preserved within
// each shard — for every strategy and endpoint count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "trace_builder.h"
#include "util/rng.h"
#include "workload/trace_split.h"

namespace delta::workload {
namespace {

constexpr SplitStrategy kStrategies[] = {SplitStrategy::kRoundRobin,
                                         SplitStrategy::kHashByRegion,
                                         SplitStrategy::kBalancedByLoad};
constexpr std::size_t kEndpointCounts[] = {1, 2, 3, 5, 8};

/// A random trace: `object_count` objects with random sizes, a random
/// interleaving of queries (random object subsets — the subset's first
/// object is the spatial anchor) and updates.
Trace random_trace(util::Rng& rng) {
  const auto object_count =
      static_cast<std::size_t>(rng.uniform_int(2, 20));
  std::vector<std::int64_t> sizes;
  sizes.reserve(object_count);
  for (std::size_t i = 0; i < object_count; ++i) {
    sizes.push_back(rng.uniform_int(1'000, 1'000'000));
  }
  delta::testing::TraceBuilder builder{sizes};
  const std::int64_t events = rng.uniform_int(1, 300);
  for (std::int64_t e = 0; e < events; ++e) {
    if (rng.bernoulli(0.3)) {
      builder.update(
          rng.uniform_int(0, static_cast<std::int64_t>(object_count) - 1),
          rng.uniform_int(1, 10'000));
    } else {
      const auto span = rng.uniform_int(
          1, std::min<std::int64_t>(4, static_cast<std::int64_t>(object_count)));
      const auto first = rng.uniform_int(
          0, static_cast<std::int64_t>(object_count) - span);
      std::vector<std::int64_t> objects;
      for (std::int64_t o = first; o < first + span; ++o) objects.push_back(o);
      builder.query(objects, rng.uniform_int(1, 100'000));
    }
  }
  return builder.build();
}

/// Rebuilds the per-endpoint shards exactly as the simulation engine routes
/// them and asserts the partition properties.
void expect_exact_partition(const Trace& trace,
                            const std::vector<std::uint32_t>& assignment,
                            std::size_t endpoint_count) {
  ASSERT_EQ(assignment.size(), trace.queries.size());
  std::vector<std::vector<std::size_t>> shards(endpoint_count);
  for (std::size_t qi = 0; qi < assignment.size(); ++qi) {
    ASSERT_LT(assignment[qi], endpoint_count) << "query " << qi;
    shards[assignment[qi]].push_back(qi);
  }
  // Disjoint exact cover: each query index lands in exactly one shard, and
  // within a shard the arrival order is preserved (strictly increasing
  // indices — the engine replays each shard in trace order).
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t e = 0; e < endpoint_count; ++e) {
    for (std::size_t k = 0; k < shards[e].size(); ++k) {
      if (k > 0) {
        EXPECT_LT(shards[e][k - 1], shards[e][k])
            << "order broken in shard " << e;
      }
      EXPECT_TRUE(seen.insert(shards[e][k]).second)
          << "query " << shards[e][k] << " routed twice";
    }
    total += shards[e].size();
  }
  EXPECT_EQ(total, trace.queries.size());
}

TEST(SplitStrategyPropertyTest, ShardsAreADisjointExactPartition) {
  util::Rng rng{20260730};
  for (int iteration = 0; iteration < 50; ++iteration) {
    const Trace trace = random_trace(rng);
    for (const SplitStrategy strategy : kStrategies) {
      for (const std::size_t n : kEndpointCounts) {
        SCOPED_TRACE(::testing::Message()
                     << "iteration " << iteration << " strategy "
                     << to_string(strategy) << " endpoints " << n);
        expect_exact_partition(trace, assign_queries(trace, n, strategy), n);
      }
    }
  }
}

TEST(SplitStrategyPropertyTest, AssignmentIsAPureFunctionOfTheTrace) {
  util::Rng rng{77};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Trace trace = random_trace(rng);
    for (const SplitStrategy strategy : kStrategies) {
      for (const std::size_t n : kEndpointCounts) {
        EXPECT_EQ(assign_queries(trace, n, strategy),
                  assign_queries(trace, n, strategy))
            << to_string(strategy) << " n=" << n;
      }
    }
  }
}

TEST(SplitStrategyPropertyTest, RoundRobinDealsInArrivalOrder) {
  util::Rng rng{123};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Trace trace = random_trace(rng);
    for (const std::size_t n : kEndpointCounts) {
      const auto assignment =
          assign_queries(trace, n, SplitStrategy::kRoundRobin);
      for (std::size_t qi = 0; qi < assignment.size(); ++qi) {
        ASSERT_EQ(assignment[qi], qi % n) << "query " << qi << " n=" << n;
      }
    }
  }
}

TEST(SplitStrategyPropertyTest, BalancedByLoadKeepsAnchorsTogether) {
  // Like hash-by-region, the balanced split's atomic unit is the spatial
  // anchor — all queries sharing an anchor land on one endpoint, so a
  // region's working set is never split across caches.
  util::Rng rng{20260808};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Trace trace = random_trace(rng);
    for (const std::size_t n : kEndpointCounts) {
      const auto assignment =
          assign_queries(trace, n, SplitStrategy::kBalancedByLoad);
      std::unordered_map<std::int32_t, std::uint32_t> anchor_endpoint;
      for (std::size_t qi = 0; qi < trace.queries.size(); ++qi) {
        const auto& q = trace.queries[qi];
        if (q.base_cover.empty()) continue;
        const auto [it, inserted] =
            anchor_endpoint.emplace(q.base_cover.front(), assignment[qi]);
        EXPECT_EQ(it->second, assignment[qi])
            << "anchor " << q.base_cover.front() << " split across endpoints";
      }
    }
  }
}

TEST(SplitStrategyPropertyTest, BalancedByLoadBoundsTheImbalance) {
  // LPT guarantee at anchor granularity: the heaviest endpoint carries at
  // most the mean query load plus one whole anchor's queries (the split
  // cannot cut an anchor, so this is the best general bound).
  util::Rng rng{20260809};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Trace trace = random_trace(rng);
    if (trace.queries.empty()) continue;
    for (const std::size_t n : kEndpointCounts) {
      const auto assignment =
          assign_queries(trace, n, SplitStrategy::kBalancedByLoad);
      std::unordered_map<std::int64_t, std::size_t> anchor_queries;
      for (const auto& q : trace.queries) {
        const std::int64_t anchor =
            q.base_cover.empty()
                ? -1 - static_cast<std::int64_t>(q.id.value())
                : q.base_cover.front();
        ++anchor_queries[anchor];
      }
      std::size_t largest_anchor = 0;
      for (const auto& [anchor, count] : anchor_queries) {
        largest_anchor = std::max(largest_anchor, count);
      }
      std::vector<std::size_t> load(n, 0);
      for (const std::uint32_t e : assignment) ++load[e];
      const std::size_t max_load = *std::max_element(load.begin(), load.end());
      EXPECT_LE(static_cast<double>(max_load),
                static_cast<double>(trace.queries.size()) /
                        static_cast<double>(n) +
                    static_cast<double>(largest_anchor))
          << "n=" << n;
    }
  }
}

TEST(SplitStrategyPropertyTest, HashByRegionKeepsAnchorsTogether) {
  util::Rng rng{456};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Trace trace = random_trace(rng);
    for (const std::size_t n : kEndpointCounts) {
      const auto assignment =
          assign_queries(trace, n, SplitStrategy::kHashByRegion);
      std::unordered_map<std::int32_t, std::uint32_t> anchor_endpoint;
      for (std::size_t qi = 0; qi < trace.queries.size(); ++qi) {
        const auto& q = trace.queries[qi];
        if (q.base_cover.empty()) continue;
        const auto [it, inserted] =
            anchor_endpoint.emplace(q.base_cover.front(), assignment[qi]);
        EXPECT_EQ(it->second, assignment[qi])
            << "anchor " << q.base_cover.front() << " split across endpoints";
      }
    }
  }
}

}  // namespace
}  // namespace delta::workload
