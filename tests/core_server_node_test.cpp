// ServerNode/CacheNode unit tests: the multi-endpoint coherence protocol —
// per-cache registration, per-cache subscriptions, invalidation fan-out,
// and per-endpoint byte accounting on the shared transport.
#include <gtest/gtest.h>

#include <vector>

#include "core/cache_node.h"
#include "core/server_node.h"
#include "net/transport.h"
#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

workload::Trace two_object_trace() {
  TraceBuilder b{{1000, 2000}};
  b.query({0}, 300);
  b.update(1, 120);
  b.query({0, 1}, 500);
  return b.build();
}

struct TwoCacheHarness {
  workload::Trace trace = two_object_trace();
  net::LoopbackTransport transport;
  ServerNode server{&trace, &transport};
  CacheNode east{&trace, &server, &transport, "cache-east"};
  CacheNode west{&trace, &server, &transport, "cache-west"};
};

TEST(ServerNodeTest, AttachAssignsDistinctSlots) {
  TwoCacheHarness h;
  EXPECT_EQ(h.server.cache_count(), 2u);
  EXPECT_EQ(h.server.object_count(), 2u);
  EXPECT_TRUE(h.transport.has_endpoint("cache-east"));
  EXPECT_TRUE(h.transport.has_endpoint("cache-west"));
}

TEST(ServerNodeTest, DuplicateAttachIsCheckedFailure) {
  TwoCacheHarness h;
  const std::size_t east_slot = h.transport.endpoint_slot("cache-east");
  EXPECT_THROW(h.server.attach_cache("cache-east", east_slot),
               std::logic_error);
  EXPECT_THROW(h.server.attach_cache("server", east_slot), std::logic_error);
}

TEST(ServerNodeTest, RegistrationIsPerCache) {
  TwoCacheHarness h;
  h.east.load_object(ObjectId{0});
  EXPECT_TRUE(h.east.is_registered(ObjectId{0}));
  EXPECT_FALSE(h.west.is_registered(ObjectId{0}));
  h.west.load_object(ObjectId{0});
  h.east.notify_eviction(ObjectId{0});
  EXPECT_FALSE(h.east.is_registered(ObjectId{0}));
  EXPECT_TRUE(h.west.is_registered(ObjectId{0}));
}

TEST(ServerNodeTest, InvalidationFanOutFollowsPerCacheSubscription) {
  TwoCacheHarness h;
  int east_notices = 0;
  int west_notices = 0;
  h.east.set_subscription(MetadataSubscription::kAll);
  h.east.set_invalidation_handler([&](const workload::Update& u) {
    ++east_notices;
    EXPECT_EQ(u.id, h.trace.updates[0].id);
  });
  h.west.set_subscription(MetadataSubscription::kRegisteredOnly);
  h.west.set_invalidation_handler(
      [&](const workload::Update&) { ++west_notices; });

  h.server.ingest_update(h.trace.updates[0]);  // object 1; west not loaded
  EXPECT_EQ(east_notices, 1);
  EXPECT_EQ(west_notices, 0);

  h.west.load_object(ObjectId{1});
  h.server.ingest_update(h.trace.updates[0]);
  EXPECT_EQ(east_notices, 2);
  EXPECT_EQ(west_notices, 1);

  h.west.notify_eviction(ObjectId{1});
  h.server.ingest_update(h.trace.updates[0]);
  EXPECT_EQ(east_notices, 3);
  EXPECT_EQ(west_notices, 1);
}

TEST(ServerNodeTest, UpdatesGrowTheSharedRepositoryOnce) {
  TwoCacheHarness h;
  h.server.ingest_update(h.trace.updates[0]);
  EXPECT_EQ(h.server.object_bytes(ObjectId{1}).count(), 2120);
  EXPECT_EQ(h.east.server_object_bytes(ObjectId{1}).count(), 2120);
  EXPECT_EQ(h.west.server_object_bytes(ObjectId{1}).count(), 2120);
}

TEST(ServerNodeTest, RepliesAreAccountedToTheRequestingEndpoint) {
  TwoCacheHarness h;
  h.east.ship_query(h.trace.queries[0]);   // 300 result bytes -> east
  h.west.ship_update(h.trace.updates[0]);  // 120 update bytes -> west
  h.west.load_object(ObjectId{0});         // 1000 + framing    -> west

  const net::TrafficMeter& east = h.east.meter();
  const net::TrafficMeter& west = h.west.meter();
  EXPECT_EQ(east.total(net::Mechanism::kQueryShip).count(), 300);
  EXPECT_EQ(east.total(net::Mechanism::kUpdateShip).count(), 0);
  EXPECT_EQ(west.total(net::Mechanism::kUpdateShip).count(), 120);
  EXPECT_EQ(west.total(net::Mechanism::kObjectLoad),
            Bytes{1000} + ServerNode::kLoadOverheadBytes);

  // Per-endpoint meters partition the aggregate, mechanism by mechanism.
  for (std::size_t i = 0; i < net::kMechanismCount; ++i) {
    const auto mech = static_cast<net::Mechanism>(i);
    Bytes sum;
    for (const std::string& name : h.transport.endpoint_names()) {
      sum += h.transport.endpoint_meter(name).total(mech);
    }
    EXPECT_EQ(sum, h.transport.meter().total(mech)) << net::to_string(mech);
  }
}

TEST(ServerNodeTest, RequestFromUnattachedCacheIsCheckedFailure) {
  workload::Trace trace = two_object_trace();
  net::LoopbackTransport transport;
  ServerNode server{&trace, &transport};
  // A rogue endpoint on the wire that never attached to the server.
  transport.register_endpoint("rogue", [](const net::Message&) {});
  net::Message msg;
  msg.kind = net::MessageKind::kLoadRequest;
  msg.subject_id = 0;
  msg.sender = "rogue";
  EXPECT_THROW(transport.send("server", msg, net::Mechanism::kOverhead),
               std::logic_error);
}

}  // namespace
}  // namespace delta::core
