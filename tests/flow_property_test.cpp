// Property-based validation of the incremental min-weight vertex cover:
//  * cover weight equals a brute-force minimum on random small graphs;
//  * the cover stays valid (every edge covered) under random incremental
//    add/remove workloads mimicking the UpdateManager's remainder pruning;
//  * incremental flow equals from-scratch flow after every mutation batch.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flow/bipartite_cover.h"
#include "flow/edmonds_karp.h"
#include "util/rng.h"

namespace delta::flow {
namespace {

using UpdateNode = BipartiteCoverSolver::UpdateNode;
using QueryNode = BipartiteCoverSolver::QueryNode;

struct RandomGraph {
  std::vector<Capacity> update_weights;
  std::vector<Capacity> query_weights;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // (update, query)
};

RandomGraph make_random_graph(util::Rng& rng, std::size_t max_side) {
  RandomGraph g;
  const auto nu = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_side)));
  const auto nq = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_side)));
  for (std::size_t i = 0; i < nu; ++i) {
    g.update_weights.push_back(rng.uniform_int(1, 30));
  }
  for (std::size_t i = 0; i < nq; ++i) {
    g.query_weights.push_back(rng.uniform_int(1, 30));
  }
  for (std::size_t u = 0; u < nu; ++u) {
    for (std::size_t q = 0; q < nq; ++q) {
      if (rng.bernoulli(0.4)) g.edges.emplace_back(u, q);
    }
  }
  return g;
}

/// Exponential-time exact minimum-weight vertex cover over update subsets:
/// choosing the update subset determines the forced query side (any query
/// with an uncovered incident edge must be picked).
Capacity brute_force_cover(const RandomGraph& g) {
  const std::size_t nu = g.update_weights.size();
  Capacity best = kInfiniteCapacity;
  for (std::uint64_t mask = 0; mask < (1ULL << nu); ++mask) {
    Capacity weight = 0;
    for (std::size_t u = 0; u < nu; ++u) {
      if (mask & (1ULL << u)) weight += g.update_weights[u];
    }
    std::vector<bool> query_needed(g.query_weights.size(), false);
    for (const auto& [u, q] : g.edges) {
      if (!(mask & (1ULL << u))) query_needed[q] = true;
    }
    for (std::size_t q = 0; q < g.query_weights.size(); ++q) {
      if (query_needed[q]) weight += g.query_weights[q];
    }
    best = std::min(best, weight);
  }
  return best;
}

class CoverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverPropertyTest, MatchesBruteForceMinimum) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 25; ++trial) {
    const RandomGraph g = make_random_graph(rng, 7);
    BipartiteCoverSolver solver;
    std::vector<UpdateNode> us;
    std::vector<QueryNode> qs;
    us.reserve(g.update_weights.size());
    qs.reserve(g.query_weights.size());
    for (const Capacity w : g.update_weights) us.push_back(solver.add_update(w));
    for (const Capacity w : g.query_weights) qs.push_back(solver.add_query(w));
    for (const auto& [u, q] : g.edges) solver.connect(us[u], qs[q]);
    const auto cover = solver.compute();
    EXPECT_EQ(cover.weight, brute_force_cover(g)) << "trial " << trial;
    EXPECT_TRUE(solver.last_cover_is_valid());
  }
}

TEST_P(CoverPropertyTest, IncrementalEqualsScratchUnderChurn) {
  util::Rng rng{GetParam() * 977};
  BipartiteCoverSolver solver;
  std::vector<UpdateNode> live_updates;
  std::vector<QueryNode> live_queries;

  for (int step = 0; step < 120; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.35 || live_updates.empty()) {
      live_updates.push_back(solver.add_update(rng.uniform_int(1, 40)));
    } else if (roll < 0.7 || live_queries.empty()) {
      const auto q = solver.add_query(rng.uniform_int(1, 40));
      live_queries.push_back(q);
      // Connect to a few random live updates.
      const auto conns = rng.uniform_int(0, 3);
      for (std::int64_t c = 0; c < conns; ++c) {
        const auto ui = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live_updates.size()) - 1));
        solver.connect(live_updates[ui], live_queries.back());
      }
    } else if (roll < 0.85) {
      // Remove a random update (simulates shipping or eviction).
      const auto ui = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_updates.size()) - 1));
      solver.remove_update(live_updates[ui]);
      live_updates.erase(live_updates.begin() +
                         static_cast<std::ptrdiff_t>(ui));
      // Prune isolated queries, as the remainder rule does.
      for (std::size_t i = live_queries.size(); i-- > 0;) {
        if (solver.degree(live_queries[i]) == 0) {
          solver.remove_query(live_queries[i]);
          live_queries.erase(live_queries.begin() +
                             static_cast<std::ptrdiff_t>(i));
        }
      }
    }

    if (step % 5 == 0) {
      const auto cover = solver.compute();
      EXPECT_TRUE(solver.last_cover_is_valid()) << "step " << step;
      // Incremental flow value must match a from-scratch computation.
      FlowNetwork scratch = solver.network().zero_flow_copy();
      // Locate source/sink: they are nodes 0 and 1 by construction order.
      const Capacity scratch_flow = max_flow_edmonds_karp(scratch, 0, 1);
      EXPECT_EQ(cover.weight, scratch_flow) << "step " << step;
    }
  }
}

TEST_P(CoverPropertyTest, CoverWeightNeverExceedsEitherSide) {
  util::Rng rng{GetParam() * 31 + 7};
  for (int trial = 0; trial < 20; ++trial) {
    const RandomGraph g = make_random_graph(rng, 8);
    BipartiteCoverSolver solver;
    std::vector<UpdateNode> us;
    std::vector<QueryNode> qs;
    Capacity touched_updates = 0;
    Capacity touched_queries = 0;
    std::vector<bool> utouched(g.update_weights.size(), false);
    std::vector<bool> qtouched(g.query_weights.size(), false);
    for (const Capacity w : g.update_weights) us.push_back(solver.add_update(w));
    for (const Capacity w : g.query_weights) qs.push_back(solver.add_query(w));
    for (const auto& [u, q] : g.edges) {
      solver.connect(us[u], qs[q]);
      if (!utouched[u]) {
        utouched[u] = true;
        touched_updates += g.update_weights[u];
      }
      if (!qtouched[q]) {
        qtouched[q] = true;
        touched_queries += g.query_weights[q];
      }
    }
    const auto cover = solver.compute();
    // Taking all touched updates, or all touched queries, are both valid
    // covers; the minimum can be no worse.
    EXPECT_LE(cover.weight, touched_updates);
    EXPECT_LE(cover.weight, touched_queries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace delta::flow
