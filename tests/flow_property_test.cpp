// Property-based validation of the incremental min-weight vertex cover:
//  * cover weight equals a brute-force minimum on random small graphs;
//  * the cover stays valid (every edge covered) under random incremental
//    add/remove workloads mimicking the UpdateManager's remainder pruning;
//  * incremental flow equals from-scratch flow after every mutation batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "flow/bipartite_cover.h"
#include "flow/edmonds_karp.h"
#include "util/rng.h"

namespace delta::flow {
namespace {

using UpdateNode = BipartiteCoverSolver::UpdateNode;
using QueryNode = BipartiteCoverSolver::QueryNode;

struct RandomGraph {
  std::vector<Capacity> update_weights;
  std::vector<Capacity> query_weights;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // (update, query)
};

RandomGraph make_random_graph(util::Rng& rng, std::size_t max_side) {
  RandomGraph g;
  const auto nu = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_side)));
  const auto nq = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_side)));
  for (std::size_t i = 0; i < nu; ++i) {
    g.update_weights.push_back(rng.uniform_int(1, 30));
  }
  for (std::size_t i = 0; i < nq; ++i) {
    g.query_weights.push_back(rng.uniform_int(1, 30));
  }
  for (std::size_t u = 0; u < nu; ++u) {
    for (std::size_t q = 0; q < nq; ++q) {
      if (rng.bernoulli(0.4)) g.edges.emplace_back(u, q);
    }
  }
  return g;
}

/// Exponential-time exact minimum-weight vertex cover over update subsets:
/// choosing the update subset determines the forced query side (any query
/// with an uncovered incident edge must be picked).
Capacity brute_force_cover(const RandomGraph& g) {
  const std::size_t nu = g.update_weights.size();
  Capacity best = kInfiniteCapacity;
  for (std::uint64_t mask = 0; mask < (1ULL << nu); ++mask) {
    Capacity weight = 0;
    for (std::size_t u = 0; u < nu; ++u) {
      if (mask & (1ULL << u)) weight += g.update_weights[u];
    }
    std::vector<bool> query_needed(g.query_weights.size(), false);
    for (const auto& [u, q] : g.edges) {
      if (!(mask & (1ULL << u))) query_needed[q] = true;
    }
    for (std::size_t q = 0; q < g.query_weights.size(); ++q) {
      if (query_needed[q]) weight += g.query_weights[q];
    }
    best = std::min(best, weight);
  }
  return best;
}

class CoverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverPropertyTest, MatchesBruteForceMinimum) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 25; ++trial) {
    const RandomGraph g = make_random_graph(rng, 7);
    BipartiteCoverSolver solver;
    std::vector<UpdateNode> us;
    std::vector<QueryNode> qs;
    us.reserve(g.update_weights.size());
    qs.reserve(g.query_weights.size());
    for (const Capacity w : g.update_weights) us.push_back(solver.add_update(w));
    for (const Capacity w : g.query_weights) qs.push_back(solver.add_query(w));
    for (const auto& [u, q] : g.edges) solver.connect(us[u], qs[q]);
    const auto cover = solver.compute();
    EXPECT_EQ(cover.weight, brute_force_cover(g)) << "trial " << trial;
    EXPECT_TRUE(solver.last_cover_is_valid());
  }
}

TEST_P(CoverPropertyTest, IncrementalEqualsScratchUnderChurn) {
  util::Rng rng{GetParam() * 977};
  BipartiteCoverSolver solver;
  std::vector<UpdateNode> live_updates;
  std::vector<QueryNode> live_queries;

  for (int step = 0; step < 120; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.35 || live_updates.empty()) {
      live_updates.push_back(solver.add_update(rng.uniform_int(1, 40)));
    } else if (roll < 0.7 || live_queries.empty()) {
      const auto q = solver.add_query(rng.uniform_int(1, 40));
      live_queries.push_back(q);
      // Connect to a few random live updates.
      const auto conns = rng.uniform_int(0, 3);
      for (std::int64_t c = 0; c < conns; ++c) {
        const auto ui = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live_updates.size()) - 1));
        solver.connect(live_updates[ui], live_queries.back());
      }
    } else if (roll < 0.85) {
      // Remove a random update (simulates shipping or eviction).
      const auto ui = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_updates.size()) - 1));
      solver.remove_update(live_updates[ui]);
      live_updates.erase(live_updates.begin() +
                         static_cast<std::ptrdiff_t>(ui));
      // Prune isolated queries, as the remainder rule does.
      for (std::size_t i = live_queries.size(); i-- > 0;) {
        if (solver.degree(live_queries[i]) == 0) {
          solver.remove_query(live_queries[i]);
          live_queries.erase(live_queries.begin() +
                             static_cast<std::ptrdiff_t>(i));
        }
      }
    }

    if (step % 5 == 0) {
      const auto cover = solver.compute();
      EXPECT_TRUE(solver.last_cover_is_valid()) << "step " << step;
      // Incremental flow value must match a from-scratch computation.
      FlowNetwork scratch = solver.network().zero_flow_copy();
      // Locate source/sink: they are nodes 0 and 1 by construction order.
      const Capacity scratch_flow = max_flow_edmonds_karp(scratch, 0, 1);
      EXPECT_EQ(cover.weight, scratch_flow) << "step " << step;
    }
  }
}

TEST_P(CoverPropertyTest, CoverWeightNeverExceedsEitherSide) {
  util::Rng rng{GetParam() * 31 + 7};
  for (int trial = 0; trial < 20; ++trial) {
    const RandomGraph g = make_random_graph(rng, 8);
    BipartiteCoverSolver solver;
    std::vector<UpdateNode> us;
    std::vector<QueryNode> qs;
    Capacity touched_updates = 0;
    Capacity touched_queries = 0;
    std::vector<bool> utouched(g.update_weights.size(), false);
    std::vector<bool> qtouched(g.query_weights.size(), false);
    for (const Capacity w : g.update_weights) us.push_back(solver.add_update(w));
    for (const Capacity w : g.query_weights) qs.push_back(solver.add_query(w));
    for (const auto& [u, q] : g.edges) {
      solver.connect(us[u], qs[q]);
      if (!utouched[u]) {
        utouched[u] = true;
        touched_updates += g.update_weights[u];
      }
      if (!qtouched[q]) {
        qtouched[q] = true;
        touched_queries += g.query_weights[q];
      }
    }
    const auto cover = solver.compute();
    // Taking all touched updates, or all touched queries, are both valid
    // covers; the minimum can be no worse.
    EXPECT_LE(cover.weight, touched_updates);
    EXPECT_LE(cover.weight, touched_queries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ------------------------------------------------------------------------
// Differential suite: the Dinic-powered production solver and the retained
// Edmonds-Karp engine must agree on every randomized incremental
// add/remove sequence — not only on the max-flow value and cover weight,
// but on the exact cover membership: the extracted cover is the *minimal*
// source-side min cut, a flow-independent property of the network, so any
// correct engine yields the same vertex set. This is the invariant that
// lets the engine swap keep the sim golden tables byte-identical.

using DinicSolver = BasicBipartiteCoverSolver<Dinic>;
using EkSolver = BasicBipartiteCoverSolver<EdmondsKarp>;

class EngineDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

/// Drives both solvers through the same mutation and compares the covers.
struct SolverPair {
  DinicSolver dinic;
  EkSolver ek;
  std::vector<DinicSolver::UpdateNode> d_updates;
  std::vector<EkSolver::UpdateNode> e_updates;
  std::vector<DinicSolver::QueryNode> d_queries;
  std::vector<EkSolver::QueryNode> e_queries;

  void add_update(Capacity w) {
    d_updates.push_back(dinic.add_update(w));
    e_updates.push_back(ek.add_update(w));
  }
  void add_query(Capacity w) {
    d_queries.push_back(dinic.add_query(w));
    e_queries.push_back(ek.add_query(w));
  }
  void connect(std::size_t u, std::size_t q) {
    dinic.connect(d_updates[u], d_queries[q]);
    ek.connect(e_updates[u], e_queries[q]);
  }
  void remove_update(std::size_t u) {
    dinic.remove_update(d_updates[u]);
    ek.remove_update(e_updates[u]);
    d_updates.erase(d_updates.begin() + static_cast<std::ptrdiff_t>(u));
    e_updates.erase(e_updates.begin() + static_cast<std::ptrdiff_t>(u));
  }
  void remove_query_force(std::size_t q) {
    dinic.remove_query_force(d_queries[q]);
    ek.remove_query_force(e_queries[q]);
    d_queries.erase(d_queries.begin() + static_cast<std::ptrdiff_t>(q));
    e_queries.erase(e_queries.begin() + static_cast<std::ptrdiff_t>(q));
  }
  void prune_isolated_queries() {
    for (std::size_t i = d_queries.size(); i-- > 0;) {
      ASSERT_EQ(dinic.degree(d_queries[i]), ek.degree(e_queries[i]));
      if (dinic.degree(d_queries[i]) == 0) {
        dinic.remove_query(d_queries[i]);
        ek.remove_query(e_queries[i]);
        d_queries.erase(d_queries.begin() + static_cast<std::ptrdiff_t>(i));
        e_queries.erase(e_queries.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  /// Both engines built the network through identical operations, so node
  /// indices correspond one-to-one and cover sets compare by index.
  void expect_identical_covers(int step) {
    const auto& dc = dinic.compute();
    const auto& ec = ek.compute();
    EXPECT_EQ(dc.weight, ec.weight) << "step " << step;
    EXPECT_EQ(dinic.current_flow(), ek.current_flow()) << "step " << step;
    EXPECT_TRUE(dinic.last_cover_is_valid()) << "step " << step;
    EXPECT_TRUE(ek.last_cover_is_valid()) << "step " << step;

    const auto indices_of = [](const auto& nodes) {
      std::vector<NodeIndex> out;
      out.reserve(nodes.size());
      for (const auto& n : nodes) out.push_back(n.index);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(indices_of(dc.updates), indices_of(ec.updates))
        << "step " << step << ": cover update sets differ";
    EXPECT_EQ(indices_of(dc.queries), indices_of(ec.queries))
        << "step " << step << ": cover query sets differ";
  }
};

TEST_P(EngineDifferentialTest, DinicAndEdmondsKarpAgreeUnderChurn) {
  util::Rng rng{GetParam() * 7919 + 3};
  SolverPair pair;

  for (int step = 0; step < 150; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.30 || pair.d_updates.empty()) {
      pair.add_update(rng.uniform_int(1, 50));
    } else if (roll < 0.60 || pair.d_queries.empty()) {
      pair.add_query(rng.uniform_int(1, 50));
      const auto conns = rng.uniform_int(0, 3);
      for (std::int64_t c = 0; c < conns; ++c) {
        const auto ui = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pair.d_updates.size()) - 1));
        pair.connect(ui, pair.d_queries.size() - 1);
      }
    } else if (roll < 0.80) {
      // Ship/evict an update group, then prune isolated queries — the
      // remainder-rule shape UpdateManager drives.
      const auto ui = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pair.d_updates.size()) - 1));
      pair.remove_update(ui);
      pair.prune_isolated_queries();
      if (::testing::Test::HasFatalFailure()) return;
    } else if (!pair.d_queries.empty() && roll < 0.88) {
      // The forget-shipped-queries ablation shape.
      const auto qi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pair.d_queries.size()) - 1));
      pair.remove_query_force(qi);
    } else if (!pair.d_queries.empty()) {
      // Weight growth (query-vertex merging adds weight in place).
      const auto qi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pair.d_queries.size()) - 1));
      const Capacity extra = rng.uniform_int(1, 20);
      pair.dinic.add_weight(pair.d_queries[qi], extra);
      pair.ek.add_weight(pair.e_queries[qi], extra);
    }

    if (step % 4 == 0) {
      pair.expect_identical_covers(step);
    }
  }
  pair.expect_identical_covers(150);
}

// A same-weight tie that a naive "any min cut" extraction could break
// differently: two disjoint (update, query) pairs with equal weights. The
// minimal source-side cut puts every saturated update OUT of the reachable
// set, so both engines must pick the update vertices.
TEST(EngineDifferentialTest, EqualWeightTiesResolveIdentically) {
  DinicSolver dinic;
  EkSolver ek;
  const auto du1 = dinic.add_update(10);
  const auto du2 = dinic.add_update(10);
  const auto dq1 = dinic.add_query(10);
  const auto dq2 = dinic.add_query(10);
  dinic.connect(du1, dq1);
  dinic.connect(du2, dq2);
  const auto eu1 = ek.add_update(10);
  const auto eu2 = ek.add_update(10);
  const auto eq1 = ek.add_query(10);
  const auto eq2 = ek.add_query(10);
  ek.connect(eu1, eq1);
  ek.connect(eu2, eq2);

  const auto& dc = dinic.compute();
  const auto& ec = ek.compute();
  ASSERT_EQ(dc.weight, 20);
  ASSERT_EQ(ec.weight, 20);
  EXPECT_EQ(dc.updates.size(), ec.updates.size());
  EXPECT_EQ(dc.queries.size(), ec.queries.size());
  EXPECT_EQ(dinic.in_last_cover(du1), ek.in_last_cover(eu1));
  EXPECT_EQ(dinic.in_last_cover(du2), ek.in_last_cover(eu2));
  EXPECT_EQ(dinic.in_last_cover(dq1), ek.in_last_cover(eq1));
  EXPECT_EQ(dinic.in_last_cover(dq2), ek.in_last_cover(eq2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace delta::flow
