#include <gtest/gtest.h>

#include "core/delta_system.h"
#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

workload::Trace two_object_trace() {
  TraceBuilder b{{1000, 2000}};
  b.query({0}, 300);
  b.update(1, 120);
  b.query({0, 1}, 500);
  return b.build();
}

TEST(DeltaSystemTest, InitialObjectSizesFromTrace) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  EXPECT_EQ(sys.object_count(), 2u);
  EXPECT_EQ(sys.server_object_bytes(ObjectId{0}).count(), 1000);
  EXPECT_EQ(sys.server_object_bytes(ObjectId{1}).count(), 2000);
  EXPECT_EQ(sys.load_cost(ObjectId{0}),
            Bytes{1000} + DeltaSystem::kLoadOverheadBytes);
}

TEST(DeltaSystemTest, IngestGrowsServerObject) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(sys.server_object_bytes(ObjectId{1}).count(), 2120);
}

TEST(DeltaSystemTest, ShipQueryAccountsResultBytes) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  const Bytes got = sys.ship_query(trace.queries[0]);
  EXPECT_EQ(got.count(), 300);
  EXPECT_EQ(sys.meter().total(net::Mechanism::kQueryShip).count(), 300);
  EXPECT_GT(sys.meter().total(net::Mechanism::kOverhead).count(), 0);
}

TEST(DeltaSystemTest, ShipUpdateAccountsContentBytes) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  EXPECT_EQ(sys.ship_update(trace.updates[0]).count(), 120);
  EXPECT_EQ(sys.meter().total(net::Mechanism::kUpdateShip).count(), 120);
}

TEST(DeltaSystemTest, LoadRegistersAndAccountsBytes) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  EXPECT_FALSE(sys.is_registered(ObjectId{0}));
  const Bytes loaded = sys.load_object(ObjectId{0});
  EXPECT_EQ(loaded, Bytes{1000} + DeltaSystem::kLoadOverheadBytes);
  EXPECT_TRUE(sys.is_registered(ObjectId{0}));
  EXPECT_EQ(sys.meter().total(net::Mechanism::kObjectLoad), loaded);
  sys.notify_eviction(ObjectId{0});
  EXPECT_FALSE(sys.is_registered(ObjectId{0}));
}

TEST(DeltaSystemTest, SubscriptionNoneDeliversNothing) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  int delivered = 0;
  sys.set_subscription(MetadataSubscription::kNone);
  sys.set_invalidation_handler(
      [&](const workload::Update&) { ++delivered; });
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(delivered, 0);
}

TEST(DeltaSystemTest, SubscriptionAllDeliversEverything) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  int delivered = 0;
  sys.set_subscription(MetadataSubscription::kAll);
  sys.set_invalidation_handler([&](const workload::Update& u) {
    ++delivered;
    EXPECT_EQ(u.id, trace.updates[0].id);
  });
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(delivered, 1);
}

TEST(DeltaSystemTest, RegisteredOnlyFollowsRegistration) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  int delivered = 0;
  sys.set_subscription(MetadataSubscription::kRegisteredOnly);
  sys.set_invalidation_handler(
      [&](const workload::Update&) { ++delivered; });
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(delivered, 0);  // object 1 not registered
  sys.load_object(ObjectId{1});
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(delivered, 1);
  sys.notify_eviction(ObjectId{1});
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(delivered, 1);
}

TEST(DeltaSystemTest, InvalidationsAreOverheadOnly) {
  const auto trace = two_object_trace();
  DeltaSystem sys{&trace};
  sys.set_subscription(MetadataSubscription::kAll);
  sys.set_invalidation_handler([](const workload::Update&) {});
  sys.ingest_update(trace.updates[0]);
  EXPECT_EQ(sys.meter().figure_total().count(), 0);
  EXPECT_GT(sys.meter().total(net::Mechanism::kOverhead).count(), 0);
}

}  // namespace
}  // namespace delta::core
