// util::HeapMap: indexed-heap semantics (push/update/erase/pop, tie-broken
// (priority, key) ordering) and differential equivalence against a brute
// force arg-min scan under random churn — the property the eviction
// policies rely on for byte-identical victim selection.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/heap_map.h"
#include "util/rng.h"
#include "util/types.h"

namespace delta::util {
namespace {

TEST(HeapMapTest, PushTopPopOrdersByPriorityThenKey) {
  HeapMap<ObjectId, double> heap;
  EXPECT_TRUE(heap.empty());
  heap.push(ObjectId{3}, 2.0);
  heap.push(ObjectId{1}, 2.0);  // same priority: lower id wins
  heap.push(ObjectId{2}, 1.0);
  EXPECT_EQ(heap.size(), 3u);

  EXPECT_EQ(heap.top().key, ObjectId{2});
  heap.pop();
  EXPECT_EQ(heap.top().key, ObjectId{1});
  heap.pop();
  EXPECT_EQ(heap.top().key, ObjectId{3});
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

TEST(HeapMapTest, FindUpdateErase) {
  HeapMap<ObjectId, std::int64_t> heap;
  heap.push(ObjectId{10}, 5);
  heap.push(ObjectId{20}, 6);
  ASSERT_NE(heap.find(ObjectId{10}), nullptr);
  EXPECT_EQ(*heap.find(ObjectId{10}), 5);
  EXPECT_EQ(heap.find(ObjectId{99}), nullptr);

  heap.update(ObjectId{10}, 7);  // demote: 20 becomes the minimum
  EXPECT_EQ(heap.top().key, ObjectId{20});
  heap.update(ObjectId{10}, 1);  // promote back
  EXPECT_EQ(heap.top().key, ObjectId{10});

  EXPECT_TRUE(heap.erase(ObjectId{10}));
  EXPECT_FALSE(heap.erase(ObjectId{10}));
  EXPECT_FALSE(heap.contains(ObjectId{10}));
  EXPECT_EQ(heap.top().key, ObjectId{20});
}

TEST(HeapMapTest, PushPresentKeyThrows) {
  HeapMap<ObjectId, double> heap;
  heap.push(ObjectId{1}, 1.0);
  EXPECT_THROW(heap.push(ObjectId{1}, 2.0), std::logic_error);
  EXPECT_THROW(heap.update(ObjectId{2}, 2.0), std::logic_error);
}

// Differential churn: the heap's top must always equal the brute-force
// tie-broken arg-min over a mirrored std::map, across a long random mix of
// push / update / erase / pop.
TEST(HeapMapTest, DifferentialArgMinUnderChurn) {
  HeapMap<ObjectId, double> heap;
  std::map<std::int64_t, double> mirror;
  Rng rng{0xC0FFEE};

  const auto brute_min = [&]() -> std::int64_t {
    std::int64_t best = -1;
    double best_priority = 0.0;
    for (const auto& [id, priority] : mirror) {
      if (best < 0 || priority < best_priority ||
          (priority == best_priority && id < best)) {
        best = id;
        best_priority = priority;
      }
    }
    return best;
  };

  for (int step = 0; step < 20000; ++step) {
    const std::int64_t id = rng.uniform_int(0, 199);
    // Coarse priorities force frequent ties so the id tie-break is hot.
    const double priority = static_cast<double>(rng.uniform_int(0, 9));
    const int op = static_cast<int>(rng.uniform_int(0, 3));
    const bool present = mirror.count(id) > 0;
    if (op == 0) {
      if (!present) {
        heap.push(ObjectId{id}, priority);
        mirror[id] = priority;
      }
    } else if (op == 1) {
      if (present) {
        heap.update(ObjectId{id}, priority);
        mirror[id] = priority;
      }
    } else if (op == 2) {
      EXPECT_EQ(heap.erase(ObjectId{id}), present);
      mirror.erase(id);
    } else if (!mirror.empty()) {
      const std::int64_t expect = brute_min();
      EXPECT_EQ(heap.top().key.value(), expect);
      heap.pop();
      mirror.erase(expect);
    }
    ASSERT_EQ(heap.size(), mirror.size());
    if (!mirror.empty()) {
      ASSERT_EQ(heap.top().key.value(), brute_min());
    }
  }
}

}  // namespace
}  // namespace delta::util
