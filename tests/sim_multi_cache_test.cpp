// Multi-endpoint simulation tests: trace splitting, the N=1 equivalence
// guarantee, and the per-endpoint/aggregate accounting identities.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/yardsticks.h"
#include "meter_invariants.h"
#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "trace_builder.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 5) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 2000;
  p.trace.update_count = 2000;
  p.trace.postwarmup_query_gb = 8.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

constexpr PolicyKind kAllKinds[] = {PolicyKind::kNoCache,
                                    PolicyKind::kReplica,
                                    PolicyKind::kBenefit, PolicyKind::kVCover,
                                    PolicyKind::kSOptimal};

// ------------------------------------------------------------- splitting

TEST(TraceSplitTest, RoundRobinDealsEvenly) {
  const World setup{small_params()};
  const auto assignment = workload::assign_queries(
      setup.trace(), 4, workload::SplitStrategy::kRoundRobin);
  ASSERT_EQ(assignment.size(), setup.trace().queries.size());
  std::array<std::int64_t, 4> counts{};
  for (const std::uint32_t e : assignment) {
    ASSERT_LT(e, 4u);
    ++counts[e];
  }
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(TraceSplitTest, HashByRegionIsDeterministicAndSpatiallyConsistent) {
  const World setup{small_params()};
  const auto a = workload::assign_queries(
      setup.trace(), 4, workload::SplitStrategy::kHashByRegion);
  const auto b = workload::assign_queries(
      setup.trace(), 4, workload::SplitStrategy::kHashByRegion);
  EXPECT_EQ(a, b);
  // Queries anchored at the same base trixel always land together.
  std::unordered_map<std::int32_t, std::uint32_t> anchor_endpoint;
  for (std::size_t i = 0; i < setup.trace().queries.size(); ++i) {
    const auto& q = setup.trace().queries[i];
    if (q.base_cover.empty()) continue;
    const auto [it, inserted] =
        anchor_endpoint.emplace(q.base_cover.front(), a[i]);
    EXPECT_EQ(it->second, a[i]);
  }
  // And the split is non-trivial: more than one endpoint is used.
  std::set<std::uint32_t> used(a.begin(), a.end());
  EXPECT_GT(used.size(), 1u);
}

TEST(TraceSplitTest, SingleEndpointTakesEverything) {
  const World setup{small_params()};
  for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                              workload::SplitStrategy::kHashByRegion}) {
    const auto assignment =
        workload::assign_queries(setup.trace(), 1, strategy);
    for (const std::uint32_t e : assignment) EXPECT_EQ(e, 0u);
  }
}

// -------------------------------------------------- N=1 equivalence

// A multi-cache simulation with one endpoint must reproduce the
// single-cache RunResult byte-for-byte: total and per-mechanism
// post-warm-up traffic, overhead, and every decision counter.
TEST(MultiCacheSimTest, OneEndpointReproducesSingleCacheByteForByte) {
  const World setup{small_params()};
  for (const PolicyKind kind : kAllKinds) {
    const RunResult single = run_one(kind, setup.trace(),
                                     setup.cache_capacity(), setup.params());
    const MultiRunResult multi = run_one_multi(
        kind, setup.trace(), setup.cache_capacity(), setup.params(), 1,
        workload::SplitStrategy::kRoundRobin);
    ASSERT_EQ(multi.per_endpoint.size(), 1u);
    for (const RunResult* r : {&multi.combined, &multi.per_endpoint[0]}) {
      EXPECT_EQ(r->total_traffic, single.total_traffic) << r->policy_name;
      EXPECT_EQ(r->postwarmup_traffic, single.postwarmup_traffic)
          << r->policy_name;
      for (std::size_t m = 0; m < 3; ++m) {
        EXPECT_EQ(r->postwarmup_by_mechanism[m],
                  single.postwarmup_by_mechanism[m])
            << r->policy_name << " mechanism " << m;
      }
      EXPECT_EQ(r->queries, single.queries) << r->policy_name;
      EXPECT_EQ(r->cache_fresh, single.cache_fresh) << r->policy_name;
      EXPECT_EQ(r->cache_after_updates, single.cache_after_updates)
          << r->policy_name;
      EXPECT_EQ(r->shipped, single.shipped) << r->policy_name;
      EXPECT_EQ(r->objects_loaded, single.objects_loaded) << r->policy_name;
    }
    // The aggregate view also reproduces overhead and the latency proxy.
    EXPECT_EQ(multi.combined.overhead_traffic, single.overhead_traffic);
    EXPECT_DOUBLE_EQ(multi.combined.postwarmup_latency.mean(),
                     single.postwarmup_latency.mean());
  }
}

// ------------------------------------- per-endpoint accounting identities

TEST(MultiCacheSimTest, PerEndpointTrafficSumsToCombined) {
  const World setup{small_params(7)};
  for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                              workload::SplitStrategy::kHashByRegion}) {
    for (const std::size_t n : {2u, 4u}) {
      const MultiRunResult multi =
          run_one_multi(PolicyKind::kVCover, setup.trace(),
                        setup.cache_capacity(), setup.params(), n, strategy);
      ASSERT_EQ(multi.per_endpoint.size(), n);
      // All figure traffic is delivered to cache endpoints, so the
      // per-endpoint meters partition the combined figures exactly (and
      // request/invalidation overhead, landing partly on the server
      // endpoint, only under-counts) — the shared invariant helper.
      SCOPED_TRACE(std::string{workload::to_string(strategy)} +
                   " n=" + std::to_string(n));
      delta::testing::ExpectPerEndpointResultsPartitionCombined(multi);
      // Every query was routed to exactly one endpoint.
      EXPECT_EQ(multi.combined.queries,
                static_cast<std::int64_t>(setup.trace().queries.size()));
    }
  }
}

TEST(MultiCacheSimTest, DeterministicAcrossRuns) {
  const World setup{small_params(9)};
  for (const PolicyKind kind :
       {PolicyKind::kVCover, PolicyKind::kBenefit}) {
    const MultiRunResult a =
        run_one_multi(kind, setup.trace(), setup.cache_capacity(),
                      setup.params(), 4,
                      workload::SplitStrategy::kHashByRegion);
    const MultiRunResult b =
        run_one_multi(kind, setup.trace(), setup.cache_capacity(),
                      setup.params(), 4,
                      workload::SplitStrategy::kHashByRegion);
    EXPECT_EQ(a.combined.total_traffic, b.combined.total_traffic);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(a.per_endpoint[i].total_traffic,
                b.per_endpoint[i].total_traffic);
      EXPECT_EQ(a.per_endpoint[i].cache_fresh,
                b.per_endpoint[i].cache_fresh);
    }
  }
}

// SOptimal is offline: when sharded, each endpoint's hindsight must count
// only the queries routed to it, so disjoint shards choose disjoint sets
// instead of every endpoint loading the global optimum.
TEST(MultiCacheSimTest, ShardedSOptimalOptimizesPerEndpointQueries) {
  // Two equally hot objects; round-robin over the alternating query
  // sequence routes all object-0 queries to endpoint 0 and all object-1
  // queries to endpoint 1.
  delta::testing::TraceBuilder b{{1000, 1000}};
  for (int i = 0; i < 4; ++i) {
    b.query({0}, 600'000);
    b.query({1}, 600'000);
  }
  const workload::Trace trace = b.build();
  const auto assignment = workload::assign_queries(
      trace, 2, workload::SplitStrategy::kRoundRobin);

  // The policies live only for the duration of the run; snapshot each
  // endpoint's chosen set at construction.
  std::vector<std::unordered_set<ObjectId>> chosen(2);
  const MultiRunResult result = run_policy_multi(
      trace, 2, workload::SplitStrategy::kRoundRobin,
      [&](core::CacheNode& cache, std::size_t index) {
        core::SOptimalOptions opts;
        opts.cache_capacity = Bytes{10'000'000};
        opts.query_assignment = &assignment;
        opts.endpoint = static_cast<std::uint32_t>(index);
        auto policy = std::make_unique<core::SOptimalPolicy>(&cache, &trace,
                                                             opts);
        policy->chosen().for_each(
            [&, index](ObjectId o) { chosen[index].insert(o); });
        return policy;
      });

  // Each endpoint chose exactly its own object — the cross-shard queries
  // did not inflate its hindsight.
  EXPECT_EQ(chosen[0], std::unordered_set<ObjectId>{ObjectId{0}});
  EXPECT_EQ(chosen[1], std::unordered_set<ObjectId>{ObjectId{1}});
  // All queries answered at their shard's cache; the only figure traffic
  // is each endpoint loading its own object once (no duplicate loads).
  const Bytes one_load =
      Bytes{1000} + core::ServerNode::kLoadOverheadBytes;
  EXPECT_EQ(result.combined.total_traffic, one_load * 2);
  EXPECT_EQ(result.combined.cache_fresh, 8);
}

// Sharding sanity: with spatial splitting each endpoint sees a narrower
// working set, so per-endpoint caches answer queries locally too — the
// multi-endpoint system must still beat shipping everything.
TEST(MultiCacheSimTest, ShardedVCoverStillBeatsNoCache) {
  const World setup{small_params(10)};
  const RunResult nocache = run_one(PolicyKind::kNoCache, setup.trace(),
                                    setup.cache_capacity(), setup.params());
  const MultiRunResult sharded = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 4, workload::SplitStrategy::kHashByRegion);
  EXPECT_LT(sharded.combined.postwarmup_traffic,
            nocache.postwarmup_traffic);
  EXPECT_GT(sharded.combined.cache_fresh +
                sharded.combined.cache_after_updates,
            0);
}

}  // namespace
}  // namespace delta::sim
