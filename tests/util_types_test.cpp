#include "util/types.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/format.h"

namespace delta {
namespace {

TEST(BytesTest, ArithmeticAndComparison) {
  const Bytes a{100};
  const Bytes b{28};
  EXPECT_EQ((a + b).count(), 128);
  EXPECT_EQ((a - b).count(), 72);
  EXPECT_EQ((b * 4).count(), 112);
  EXPECT_LT(b, a);
  EXPECT_GE(a, b);
  Bytes c;
  c += a;
  c -= b;
  EXPECT_EQ(c.count(), 72);
}

TEST(BytesTest, Literals) {
  EXPECT_EQ((1_KiB).count(), 1024);
  EXPECT_EQ((2_MiB).count(), 2 * 1024 * 1024);
  EXPECT_EQ((3_GiB).count(), 3LL * 1024 * 1024 * 1024);
  EXPECT_EQ((7_B).count(), 7);
}

TEST(BytesTest, UnitConversions) {
  EXPECT_DOUBLE_EQ((1_GiB).gib(), 1.0);
  EXPECT_DOUBLE_EQ((512_MiB).gib(), 0.5);
  EXPECT_DOUBLE_EQ((3_MiB).mib(), 3.0);
}

TEST(BytesTest, StreamFormatting) {
  std::ostringstream os;
  os << Bytes{2'500'000'000};
  EXPECT_EQ(os.str(), "2.5 GB");
}

TEST(IdTest, DefaultIsInvalid) {
  ObjectId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ObjectId::invalid());
}

TEST(IdTest, DistinctTagTypesAreDistinctTypes) {
  static_assert(!std::is_same_v<ObjectId, QueryId>);
  static_assert(!std::is_same_v<QueryId, UpdateId>);
}

TEST(IdTest, OrderingAndHashing) {
  ObjectId a{1};
  ObjectId b{2};
  EXPECT_LT(a, b);
  std::unordered_set<ObjectId> set{a, b, ObjectId{1}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(FormatTest, HumanBytesScales) {
  using util::human_bytes;
  EXPECT_EQ(human_bytes(Bytes{17}), "17 B");
  EXPECT_EQ(human_bytes(Bytes{1'500}), "1.5 KB");
  EXPECT_EQ(human_bytes(Bytes{1'500'000}), "1.5 MB");
  EXPECT_EQ(human_bytes(Bytes{1'200'000'000'000}), "1.2 TB");
}

TEST(FormatTest, GbFixed) {
  EXPECT_EQ(util::gb_fixed(Bytes{12'340'000'000}), "12.34");
  EXPECT_EQ(util::gb_fixed(Bytes{500'000'000}, 1), "0.5");
}

TEST(FormatTest, TablePrinterAlignsColumns) {
  util::TablePrinter t({"policy", "GB"});
  t.add_row({"NoCache", "300.00"});
  t.add_row({"VCover", "150.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("|  policy |"), std::string::npos);  // right-aligned
  EXPECT_NE(out.find("| NoCache |"), std::string::npos);
  EXPECT_NE(out.find("|  VCover |"), std::string::npos);
}

}  // namespace
}  // namespace delta
