#include "core/vcover_policy.h"

#include <gtest/gtest.h>

#include "core/delta_system.h"
#include "net/delayed_transport.h"
#include "util/event_queue.h"
#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

constexpr std::int64_t kOverhead = 256 * 1024;  // DeltaSystem load framing

VCoverOptions options_for_tests(Bytes capacity) {
  VCoverOptions o;
  o.cache_capacity = capacity;
  // Deterministic counter-based loading makes unit expectations exact.
  o.loading.randomized = false;
  return o;
}

struct Harness {
  workload::Trace trace;
  DeltaSystem system;
  VCoverPolicy policy;

  Harness(workload::Trace t, Bytes capacity,
          VCoverOptions (*opt)(Bytes) = options_for_tests)
      : trace(std::move(t)), system(&trace), policy(&system, opt(capacity)) {}

  /// Replays the whole merged sequence, returning per-query outcomes.
  std::vector<QueryOutcome> replay() {
    std::vector<QueryOutcome> outcomes;
    for (const auto& e : trace.order) {
      if (e.kind == workload::Event::Kind::kUpdate) {
        system.ingest_update(
            trace.updates[static_cast<std::size_t>(e.index)]);
      } else {
        outcomes.push_back(policy.on_query(
            trace.queries[static_cast<std::size_t>(e.index)]));
      }
    }
    return outcomes;
  }
};

TEST(VCoverPolicyTest, BypassRuleLoadsAfterShippedCostCoversLoadCost) {
  // Object of 1 MB: load cost = 1 MB + framing. Queries of 600 KB each:
  // the accumulated counter crosses after 3 queries (1.8 MB > ~1.26 MB).
  const std::int64_t obj = 1'000'000;
  const std::int64_t qcost = 600'000;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 4; ++i) b.query({0}, qcost);
  Harness h{b.build(), Bytes{10'000'000}};
  const auto outcomes = h.replay();
  ASSERT_EQ(outcomes.size(), 4u);
  // Query 1: counter 600K < 1.26M -> no load. Query 2: 1.2M < 1.26M.
  // Query 3: 1.8M >= 1.26M -> load happens in its background.
  EXPECT_EQ(outcomes[0].objects_loaded, 0);
  EXPECT_EQ(outcomes[1].objects_loaded, 0);
  EXPECT_EQ(outcomes[2].objects_loaded, 1);
  EXPECT_EQ(outcomes[2].path, QueryOutcome::Path::kShipped);
  // Query 4 is answered at the cache.
  EXPECT_EQ(outcomes[3].path, QueryOutcome::Path::kCacheFresh);
  EXPECT_EQ(h.policy.cache_answers(), 1);
  // Traffic: 3 shipped queries + 1 load.
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kQueryShip).count(),
            3 * qcost);
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kObjectLoad).count(),
            obj + kOverhead);
}

TEST(VCoverPolicyTest, UpdateShippingDecisionFollowsCover) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  b.query({0}, 2'000'000);  // loads the object (counter covers load cost)
  b.update(0, 300'000);
  b.query({0}, 100'000);  // cheap: ship the query
  b.query({0}, 250'000);  // accumulated 350K > 300K: ship the update
  Harness h{b.build(), Bytes{10'000'000}};
  const auto outcomes = h.replay();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].objects_loaded, 1);
  EXPECT_EQ(outcomes[1].path, QueryOutcome::Path::kShipped);
  EXPECT_TRUE(outcomes[1].shipped_update_ids.empty());
  EXPECT_EQ(outcomes[2].path, QueryOutcome::Path::kCacheAfterUpdates);
  ASSERT_EQ(outcomes[2].shipped_update_ids.size(), 1u);
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kUpdateShip).count(),
            300'000);
}

TEST(VCoverPolicyTest, CachedObjectGrowsWithShippedUpdates) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  b.query({0}, 2'000'000);  // load
  b.update(0, 50'000);
  b.query({0}, 2'000'000);  // expensive: cover ships the update
  Harness h{b.build(), Bytes{10'000'000}};
  h.replay();
  EXPECT_EQ(h.policy.store().bytes_of(ObjectId{0}).count(), obj + 50'000);
  EXPECT_FALSE(h.policy.store().is_stale(ObjectId{0}));
}

TEST(VCoverPolicyTest, ToleranceAvoidsUpdateShipping) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  b.query({0}, 2'000'000);           // load (event 0)
  b.update(0, 500'000);              // event 1
  b.query({0}, 2'000'000, 100);      // event 2, tolerance covers the update
  Harness h{b.build(), Bytes{10'000'000}};
  const auto outcomes = h.replay();
  EXPECT_EQ(outcomes[1].path, QueryOutcome::Path::kCacheFresh);
  EXPECT_TRUE(outcomes[1].shipped_update_ids.empty());
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kUpdateShip).count(), 0);
}

TEST(VCoverPolicyTest, EvictionDropsOutstandingUpdatesAndDeregisters) {
  // Capacity fits one object; loading the second evicts the first.
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj, obj}};
  b.query({0}, 3'000'000);  // loads 0
  b.update(0, 100'000);     // outstanding on cached 0
  b.query({1}, 3'000'000);  // loads 1, evicting 0
  const auto trace = b.build();
  Harness h{trace, Bytes{1'500'000}};
  h.replay();
  EXPECT_FALSE(h.policy.store().contains(ObjectId{0}));
  EXPECT_TRUE(h.policy.store().contains(ObjectId{1}));
  EXPECT_FALSE(h.system.is_registered(ObjectId{0}));
  EXPECT_TRUE(h.system.is_registered(ObjectId{1}));
  EXPECT_EQ(h.policy.update_manager().graph_update_count(), 0u);
  EXPECT_EQ(h.policy.evictions(), 1);
}

TEST(VCoverPolicyTest, LoadedObjectIsFreshIncludingPriorUpdates) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  b.update(0, 400'000);     // arrives before the object is ever cached
  b.query({0}, 3'000'000);  // loads it (fresh, update folded in)
  b.query({0}, 100'000);    // must be answerable at cache with no shipping
  Harness h{b.build(), Bytes{10'000'000}};
  const auto outcomes = h.replay();
  EXPECT_EQ(outcomes[1].path, QueryOutcome::Path::kCacheFresh);
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kUpdateShip).count(), 0);
  // The load shipped the grown object (initial + update bytes).
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kObjectLoad).count(),
            obj + 400'000 + kOverhead);
}

TEST(VCoverPolicyTest, GrowthOverflowShedsToCapacity) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj, obj}};
  b.query({0}, 3'000'000);      // load 0
  b.query({1}, 3'000'000);      // load 1 (2.0 MB used of 2.2 MB)
  b.update(0, 400'000);
  b.query({0, 1}, 5'000'000);   // ships update for 0 -> 2.4 MB > capacity
  Harness h{b.build(), Bytes{2'200'000}};
  h.replay();
  EXPECT_LE(h.policy.store().used(), Bytes{2'200'000});
  EXPECT_FALSE(h.policy.store().over_capacity());
  EXPECT_EQ(h.policy.store().object_count(), 1u);
}

TEST(VCoverPolicyTest, RandomizedLoadingMatchesExpectationOverManyTrials) {
  // One object, queries of cost exactly half the load cost: each shipped
  // query proposes a load with probability 1/2. After many queries the
  // object is all but surely loaded.
  const std::int64_t obj = 1'000'000;
  const std::int64_t load_cost = obj + kOverhead;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 40; ++i) b.query({0}, load_cost / 2);
  VCoverOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.loading.randomized = true;
  workload::Trace trace = b.build();
  DeltaSystem system{&trace};
  VCoverPolicy policy{&system, opts};
  int loaded_at = -1;
  for (std::size_t i = 0; i < trace.queries.size(); ++i) {
    const auto out = policy.on_query(trace.queries[i]);
    if (out.objects_loaded > 0) {
      loaded_at = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(loaded_at, 0) << "object never loaded in 40 coin flips";
  EXPECT_LT(loaded_at, 39);
}

TEST(VCoverPolicyTest, NeverLoadsObjectLargerThanCache) {
  const std::int64_t obj = 5'000'000;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 10; ++i) b.query({0}, 20'000'000);
  Harness h{b.build(), Bytes{1'000'000}};
  const auto outcomes = h.replay();
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.objects_loaded, 0);
    EXPECT_EQ(out.path, QueryOutcome::Path::kShipped);
  }
  EXPECT_EQ(h.policy.store().object_count(), 0u);
}

TEST(VCoverPolicyTest, PreshipShipsUpdatesForHotObjects) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  b.query({0}, 3'000'000);  // load
  for (int i = 0; i < 6; ++i) b.query({0}, 100'000);  // heat up
  b.update(0, 200'000);
  b.query({0}, 100'000);  // should find the object already fresh
  VCoverOptions opts = options_for_tests(Bytes{10'000'000});
  opts.preship = true;
  opts.preship_heat_threshold = 3.0;
  workload::Trace trace = b.build();
  DeltaSystem system{&trace};
  VCoverPolicy policy{&system, opts};
  std::vector<QueryOutcome> outcomes;
  for (const auto& e : trace.order) {
    if (e.kind == workload::Event::Kind::kUpdate) {
      system.ingest_update(trace.updates[static_cast<std::size_t>(e.index)]);
    } else {
      outcomes.push_back(
          policy.on_query(trace.queries[static_cast<std::size_t>(e.index)]));
    }
  }
  EXPECT_EQ(policy.preshipped(), 1);
  EXPECT_EQ(outcomes.back().path, QueryOutcome::Path::kCacheFresh);
  EXPECT_EQ(system.meter().total(net::Mechanism::kUpdateShip).count(),
            200'000);
}

// An invalidation for a non-resident object is a protocol violation over
// inline delivery — but over an event-driven transport it is the
// legitimate eviction-notice-in-flight race and must be dropped, not
// crash the run.
TEST(VCoverPolicyTest, StaleInvalidationToleratedOnlyOverAsyncTransport) {
  TraceBuilder b{{1'000'000, 1'000'000}};
  b.query({0}, 600'000);
  b.update(1, 50'000);  // targets an object the cache never held
  {
    Harness h{b.build(), Bytes{10'000'000}};
    EXPECT_THROW(h.policy.on_update(h.trace.updates[0]), std::logic_error);
  }
  {
    workload::Trace trace = b.build();
    util::EventQueue events;
    net::DelayedTransport transport{&events, net::LinkModel{1e6, 0.020}};
    ServerNode server{&trace, &transport};
    CacheNode cache{&trace, &server, &transport};
    VCoverPolicy policy{&cache, options_for_tests(Bytes{10'000'000})};
    EXPECT_NO_THROW(policy.on_update(trace.updates[0]));
  }
}

}  // namespace
}  // namespace delta::core
