#include "htm/partition_map.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace delta::htm {
namespace {

std::vector<double> uniform_weights(int level, double w = 1.0) {
  return std::vector<double>(
      static_cast<std::size_t>(trixel_count_at_level(level)), w);
}

/// Weights concentrated in one footprint region (like the SDSS survey
/// footprint), elsewhere zero.
std::vector<double> footprint_weights(int level, util::Rng& rng) {
  const auto count = trixel_count_at_level(level);
  std::vector<double> w(static_cast<std::size_t>(count), 0.0);
  const Cone footprint{from_ra_dec(180.0, 30.0), 1.0};
  for (std::int64_t i = 0; i < count; ++i) {
    const Trixel t = Trixel::from_id(id_from_index(level, i));
    if (footprint.contains(t.center())) {
      w[static_cast<std::size_t>(i)] = rng.pareto(1.0, 1.2);
    }
  }
  return w;
}

TEST(PartitionMapTest, UniformWeightsSplitEvenly) {
  const auto map = PartitionMap::build(4, uniform_weights(4), 32);
  EXPECT_GE(map.object_count(), 32u);
  // Uniform density: every partition is non-empty.
  EXPECT_EQ(map.object_count(), map.partition_count());
}

TEST(PartitionMapTest, EveryBaseTrixelOwned) {
  util::Rng rng{5};
  const auto weights = footprint_weights(4, rng);
  const auto map = PartitionMap::build(4, weights, 30);
  for (std::int64_t i = 0; i < map.base_trixel_count(); ++i) {
    const ObjectId o = map.object_for_base_index(i);
    ASSERT_TRUE(o.valid());
    const auto [lo, hi] = map.base_range(o);
    EXPECT_GE(i, lo);
    EXPECT_LT(i, hi);
  }
}

TEST(PartitionMapTest, WeightsAreConserved) {
  util::Rng rng{6};
  const auto weights = footprint_weights(4, rng);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const auto map = PartitionMap::build(4, weights, 40);
  double partition_total = 0.0;
  for (std::size_t i = 0; i < map.partition_count(); ++i) {
    partition_total += map.partition_weight(ObjectId{static_cast<std::int64_t>(i)});
  }
  EXPECT_NEAR(partition_total, total, total * 1e-12);
}

TEST(PartitionMapTest, TargetCountReached) {
  util::Rng rng{7};
  const auto weights = footprint_weights(5, rng);
  for (const std::size_t target : {10u, 20u, 68u, 91u, 134u}) {
    const auto map = PartitionMap::build(5, weights, target);
    EXPECT_GE(map.object_count(), target);
    // Overshoot per split is at most 3.
    EXPECT_LE(map.object_count(), target + 3);
  }
}

TEST(PartitionMapTest, GranularityLadderIsMonotone) {
  util::Rng rng{8};
  const auto weights = footprint_weights(5, rng);
  std::size_t prev = 0;
  for (const std::size_t target : {10u, 20u, 68u, 134u, 285u, 532u}) {
    const auto map = PartitionMap::build(5, weights, target);
    EXPECT_GT(map.object_count(), prev);
    prev = map.object_count();
  }
}

TEST(PartitionMapTest, HeaviestRegionsSplitFinest) {
  // Two hotspots of very different density: the dense one should be split
  // into more partitions than the sparse one.
  const int level = 4;
  const auto count = trixel_count_at_level(level);
  std::vector<double> w(static_cast<std::size_t>(count), 0.0);
  const Cone dense{from_ra_dec(90.0, 0.0), 0.4};
  const Cone sparse{from_ra_dec(270.0, 0.0), 0.4};
  for (std::int64_t i = 0; i < count; ++i) {
    const Vec3 c = Trixel::from_id(id_from_index(level, i)).center();
    if (dense.contains(c)) {
      w[static_cast<std::size_t>(i)] = 100.0;
    } else if (sparse.contains(c)) {
      w[static_cast<std::size_t>(i)] = 1.0;
    }
  }
  const auto map = PartitionMap::build(level, w, 40);
  int dense_parts = 0;
  int sparse_parts = 0;
  for (std::size_t i = 0; i < map.partition_count(); ++i) {
    const ObjectId oid{static_cast<std::int64_t>(i)};
    if (map.is_empty_partition(oid)) continue;
    const Vec3 c = Trixel::from_id(map.partition_trixel(oid)).center();
    if (dense.contains(c)) ++dense_parts;
    if (sparse.contains(c)) ++sparse_parts;
  }
  EXPECT_GT(dense_parts, sparse_parts);
}

TEST(PartitionMapTest, RegionLookupFindsOwningObjects) {
  util::Rng rng{9};
  const auto weights = footprint_weights(5, rng);
  const auto map = PartitionMap::build(5, weights, 68);
  const Cone probe{from_ra_dec(180.0, 30.0), 0.05};
  const auto objects = map.objects_for_region(Region{probe});
  ASSERT_FALSE(objects.empty());
  // The object owning the cone's center must be among them.
  const ObjectId center_owner = map.object_for_point(probe.center);
  EXPECT_TRUE(std::binary_search(objects.begin(), objects.end(),
                                 center_owner));
}

TEST(PartitionMapTest, PointLookupConsistentWithRanges) {
  util::Rng rng{10};
  const auto weights = footprint_weights(4, rng);
  const auto map = PartitionMap::build(4, weights, 25);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = normalized({rng.normal(0, 1), rng.normal(0, 1),
                               rng.normal(0, 1)});
    const ObjectId o = map.object_for_point(p);
    const HtmId base = locate(p, 4);
    EXPECT_EQ(o, map.object_for_trixel(base));
  }
}

TEST(PartitionMapTest, DeterministicForSameInputs) {
  util::Rng rng1{11};
  util::Rng rng2{11};
  const auto w1 = footprint_weights(4, rng1);
  const auto w2 = footprint_weights(4, rng2);
  const auto m1 = PartitionMap::build(4, w1, 30);
  const auto m2 = PartitionMap::build(4, w2, 30);
  ASSERT_EQ(m1.partition_count(), m2.partition_count());
  for (std::size_t i = 0; i < m1.partition_count(); ++i) {
    const ObjectId oid{static_cast<std::int64_t>(i)};
    EXPECT_EQ(m1.partition_trixel(oid), m2.partition_trixel(oid));
  }
}

}  // namespace
}  // namespace delta::htm
