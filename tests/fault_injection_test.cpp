// Deterministic fault injection on DelayedTransport (ISSUE 8): drop /
// duplicate / reorder draws from per-link splitmix streams, scheduled
// partition windows, the zero-fault byte-identity contract, and the
// stream-independence properties (other links' traffic and registration
// order never perturb a link's fates).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/delayed_transport.h"
#include "net/fault_plan.h"
#include "util/event_queue.h"

namespace delta::net {
namespace {

struct Delivery {
  std::string endpoint;
  std::int64_t subject = -1;
  double at = 0.0;
};

struct Harness {
  util::EventQueue events;
  DelayedTransport transport;
  std::vector<Delivery> deliveries;

  explicit Harness(LinkModel default_link = LinkModel{1e6, 0.020})
      : transport(&events, default_link) {}

  std::size_t add_endpoint(const std::string& name) {
    return transport.register_endpoint(name, [this, name](const Message& m) {
      deliveries.push_back(Delivery{name, m.subject_id, events.now()});
    });
  }

  void send(const std::string& from, const std::string& to,
            std::int64_t subject, Bytes payload = Bytes{99'936}) {
    Message m;
    m.kind = MessageKind::kControl;
    m.payload = payload;
    m.sender = from;
    m.subject_id = subject;
    transport.send(to, m, Mechanism::kQueryShip);
  }
};

FaultPlan plan_with(LinkFaults faults) {
  FaultPlan plan;
  plan.enabled = true;
  plan.default_faults = faults;
  return plan;
}

TEST(FaultInjectionTest, CertainDropKillsEveryDeliveryButPaysSerialization) {
  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  LinkFaults faults;
  faults.drop = 1.0;
  h.transport.set_fault_plan(plan_with(faults));
  EXPECT_TRUE(h.transport.faults_active());
  for (int i = 0; i < 8; ++i) h.send("a", "b", i);
  h.events.run_until_idle();
  EXPECT_TRUE(h.deliveries.empty());
  EXPECT_EQ(h.transport.fault_stats().dropped, 8);
  // The wire ate the messages AFTER serialization: the egress link was
  // busy (the sender cannot know), but nothing was metered at delivery.
  const UplinkStats& uplink =
      h.transport.uplink_stats(h.transport.endpoint_slot("a"));
  EXPECT_EQ(uplink.sends, 8);
  EXPECT_GT(uplink.busy_seconds, 0.0);
  EXPECT_EQ(h.transport.endpoint_meter("b").figure_total(), Bytes{0});
}

TEST(FaultInjectionTest, CertainDuplicateDeliversTwiceOriginalFirst) {
  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  LinkFaults faults;
  faults.duplicate = 1.0;
  h.transport.set_fault_plan(plan_with(faults));
  h.send("a", "b", 7);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].subject, 7);
  EXPECT_EQ(h.deliveries[1].subject, 7);
  // The copy shares the original's timing (a retransmit artifact, not a
  // second serialization) and lands right after it by event order.
  EXPECT_EQ(h.deliveries[0].at, h.deliveries[1].at);
  EXPECT_EQ(h.transport.fault_stats().duplicated, 1);
  // Duplicated flights are not themselves re-drawn: exactly one copy.
  const UplinkStats& uplink =
      h.transport.uplink_stats(h.transport.endpoint_slot("a"));
  EXPECT_EQ(uplink.sends, 1);
}

TEST(FaultInjectionTest, CertainReorderDefersDeliveryWithinBound) {
  Harness clean;
  clean.add_endpoint("a");
  clean.add_endpoint("b");
  clean.send("a", "b", 0);
  clean.events.run_until_idle();
  ASSERT_EQ(clean.deliveries.size(), 1u);
  const double undisturbed = clean.deliveries[0].at;

  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  LinkFaults faults;
  faults.reorder = 1.0;
  faults.reorder_max_delay_seconds = 0.5;
  h.transport.set_fault_plan(plan_with(faults));
  h.send("a", "b", 0);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_GE(h.deliveries[0].at, undisturbed);
  EXPECT_LE(h.deliveries[0].at, undisturbed + 0.5);
  EXPECT_EQ(h.transport.fault_stats().reordered, 1);
}

TEST(FaultInjectionTest, PartitionWindowDropsExactlyItsSpan) {
  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  FaultPlan plan;
  plan.enabled = true;
  plan.partitions.push_back(
      LinkPartition{"a", "b", /*duplex=*/true, {FaultWindow{10.0, 20.0}}});
  h.transport.set_fault_plan(plan);
  EXPECT_TRUE(h.transport.faults_active());

  h.send("a", "b", 0);  // before the window: delivered
  h.events.run_until_idle();
  h.events.advance_until(10.0);
  h.send("a", "b", 1);  // inside [down, heal): dropped
  h.events.run_until_idle();
  h.events.advance_until(19.999);
  h.send("a", "b", 2);  // still inside (half-open): dropped
  h.events.run_until_idle();
  h.events.advance_until(20.0);
  h.send("a", "b", 3);  // healed: delivered
  h.events.run_until_idle();

  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].subject, 0);
  EXPECT_EQ(h.deliveries[1].subject, 3);
  EXPECT_EQ(h.transport.fault_stats().partition_dropped, 2);
  EXPECT_EQ(h.transport.fault_stats().dropped, 0);
}

TEST(FaultInjectionTest, DuplexPartitionKillsBothDirections) {
  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  FaultPlan plan;
  plan.enabled = true;
  plan.partitions.push_back(
      LinkPartition{"a", "b", /*duplex=*/true, {FaultWindow{0.0, 1.0}}});
  h.transport.set_fault_plan(plan);
  h.send("a", "b", 0);
  h.send("b", "a", 1);
  h.events.run_until_idle();
  EXPECT_TRUE(h.deliveries.empty());
  EXPECT_EQ(h.transport.fault_stats().partition_dropped, 2);
}

// The zero-fault contract: an enabled plan with no nonzero probability and
// no partition window leaves the transport byte-identical to one that
// never saw a plan — including the inline fast path (faults_active stays
// false, so delivery schedules are unchanged).
TEST(FaultInjectionTest, ZeroProbabilityPlanIsIdenticalToNoPlan) {
  Harness bare;
  Harness planned;
  for (Harness* h : {&bare, &planned}) {
    h->add_endpoint("a");
    h->add_endpoint("b");
  }
  planned.transport.set_fault_plan(plan_with(LinkFaults{}));
  EXPECT_FALSE(planned.transport.faults_active());
  for (int i = 0; i < 16; ++i) {
    bare.send("a", "b", i);
    planned.send("a", "b", i);
    if (i % 3 == 0) {
      bare.events.run_until_idle();
      planned.events.run_until_idle();
    }
  }
  bare.events.run_until_idle();
  planned.events.run_until_idle();
  ASSERT_EQ(bare.deliveries.size(), planned.deliveries.size());
  for (std::size_t i = 0; i < bare.deliveries.size(); ++i) {
    EXPECT_EQ(bare.deliveries[i].subject, planned.deliveries[i].subject);
    EXPECT_EQ(bare.deliveries[i].at, planned.deliveries[i].at);  // bitwise
  }
  EXPECT_EQ(planned.transport.fault_stats().dropped, 0);
}

// A link's fate stream is keyed by (seed, endpoint names, per-link seq):
// traffic on OTHER links must not perturb it.
TEST(FaultInjectionTest, LinkStreamsAreIndependentOfOtherLinksTraffic) {
  LinkFaults faults;
  faults.drop = 0.5;
  Harness quiet;
  Harness noisy;
  for (Harness* h : {&quiet, &noisy}) {
    h->add_endpoint("a");
    h->add_endpoint("b");
    h->add_endpoint("c");
    h->transport.set_fault_plan(plan_with(faults));
  }
  for (int i = 0; i < 64; ++i) {
    quiet.send("a", "b", i);
    noisy.send("a", "b", i);
    noisy.send("a", "c", 1000 + i);  // extra traffic on a different link
  }
  quiet.events.run_until_idle();
  noisy.events.run_until_idle();
  std::vector<std::int64_t> quiet_b;
  std::vector<std::int64_t> noisy_b;
  for (const Delivery& d : quiet.deliveries) {
    if (d.endpoint == "b") quiet_b.push_back(d.subject);
  }
  for (const Delivery& d : noisy.deliveries) {
    if (d.endpoint == "b") noisy_b.push_back(d.subject);
  }
  ASSERT_EQ(quiet_b, noisy_b);  // identical survivors, identical order
  EXPECT_GT(quiet_b.size(), 0u);
  EXPECT_LT(quiet_b.size(), 64u);  // the drop really did something
}

// Registration order must not perturb a link's stream either: endpoints
// registered AFTER traffic started (grid growth) leave earlier links'
// sequences intact.
TEST(FaultInjectionTest, GridGrowthPreservesLinkStreams) {
  LinkFaults faults;
  faults.drop = 0.5;
  Harness grown;
  grown.add_endpoint("a");
  grown.add_endpoint("b");
  grown.transport.set_fault_plan(plan_with(faults));
  Harness upfront;
  upfront.add_endpoint("a");
  upfront.add_endpoint("b");
  upfront.add_endpoint("c");
  upfront.transport.set_fault_plan(plan_with(faults));

  for (int i = 0; i < 32; ++i) {
    grown.send("a", "b", i);
    upfront.send("a", "b", i);
  }
  grown.events.run_until_idle();
  upfront.events.run_until_idle();
  grown.add_endpoint("c");  // grow the grid mid-run
  for (int i = 32; i < 64; ++i) {
    grown.send("a", "b", i);
    upfront.send("a", "b", i);
  }
  grown.events.run_until_idle();
  upfront.events.run_until_idle();

  std::vector<std::int64_t> grown_b;
  std::vector<std::int64_t> upfront_b;
  for (const Delivery& d : grown.deliveries) grown_b.push_back(d.subject);
  for (const Delivery& d : upfront.deliveries) upfront_b.push_back(d.subject);
  ASSERT_EQ(grown_b, upfront_b);
}

// Directed rules override the default, and a duplex rule covers the
// reverse direction.
TEST(FaultInjectionTest, RulesOverrideDefaultPerLink) {
  Harness h;
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.add_endpoint("c");
  FaultPlan plan;
  plan.enabled = true;
  plan.default_faults.drop = 1.0;  // everything dies...
  LinkFaultRule spare;             // ...except the a<->b pair
  spare.from = "a";
  spare.to = "b";
  spare.duplex = true;
  spare.faults = LinkFaults{};
  plan.rules.push_back(spare);
  h.transport.set_fault_plan(plan);

  h.send("a", "b", 0);
  h.send("b", "a", 1);
  h.send("a", "c", 2);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].subject, 0);
  EXPECT_EQ(h.deliveries[1].subject, 1);
  EXPECT_EQ(h.transport.fault_stats().dropped, 1);
}

}  // namespace
}  // namespace delta::net
