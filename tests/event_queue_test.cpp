// EventQueue/SimClock: the determinism contract the whole event-driven
// stack rests on — strict (time, schedule-sequence) execution order,
// forward-only clock, and well-defined advance/pump primitives.
#include "util/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace delta::util {
namespace {

TEST(SimClockTest, AdvancesForwardOnly) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance_to(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.advance_to(1.5);  // standing still is allowed
  EXPECT_THROW(clock.advance_to(1.0), std::logic_error);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(3.0, [&] { ran.push_back(3); });
  q.schedule(1.0, [&] { ran.push_back(1); });
  q.schedule(2.0, [&] { ran.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3);
}

// The determinism keystone: events scheduled for the same instant run in
// schedule order, regardless of how the internal heap breaks ties.
TEST(EventQueueTest, EqualTimestampsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> ran;
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    q.schedule(1.0, [&ran, i] { ran.push_back(i); });
  }
  q.run_until_idle();
  ASSERT_EQ(ran.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(ran[static_cast<size_t>(i)], i);
}

// An action scheduling at the *current* instant queues behind every event
// already scheduled for that instant (its sequence number is larger).
TEST(EventQueueTest, ActionsScheduledDuringRunKeepStableOrder) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(1.0, [&] {
    ran.push_back(0);
    q.schedule(1.0, [&] { ran.push_back(2); });
  });
  q.schedule(1.0, [&] { ran.push_back(1); });
  q.run_until_idle();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, AdvanceUntilRunsDueEventsAndMovesClock) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(1.0, [&] { ran.push_back(1); });
  q.schedule(2.0, [&] { ran.push_back(2); });
  q.schedule(3.0, [&] { ran.push_back(3); });
  q.advance_until(2.0);  // inclusive boundary
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  // Advancing into empty time still moves the clock.
  q.advance_until(2.5);
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunReadyOnlyRunsEventsDueNow) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(0.0, [&] { ran.push_back(0); });
  q.schedule(1.0, [&] { ran.push_back(1); });
  q.run_ready();  // clock is 0: only the first is due
  EXPECT_EQ(ran, (std::vector<int>{0}));
  EXPECT_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, SchedulingIntoThePastIsACheckedFailure) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_until_idle();
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_THROW(q.schedule(1.0, [] {}), std::logic_error);
}

TEST(EventQueueTest, PumpUntilStopsAtCondition) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 5; ++i) q.schedule(1.0 * i, [&] { ++count; });
  q.pump_until([&] { return count == 3; });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.pending(), 2u);
}

// Waiting for a completion that can no longer arrive (queue drained) is a
// protocol bug, not a hang — it must fail loudly.
TEST(EventQueueTest, PumpUntilOnDrainedQueueIsACheckedFailure) {
  EventQueue q;
  q.schedule(1.0, [] {});
  EXPECT_THROW(q.pump_until([] { return false; }), std::logic_error);
}

}  // namespace
}  // namespace delta::util
