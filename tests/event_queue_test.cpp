// EventQueue/SimClock: the determinism contract the whole event-driven
// stack rests on — strict (time, schedule-sequence) execution order,
// forward-only clock, and well-defined advance/pump primitives. Every
// ordering test runs against both scheduler backends (the calendar queue
// and the binary-heap oracle); the randomized cross-backend equivalence
// lives in event_queue_differential_test.cpp.
#include "util/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace delta::util {
namespace {

/// Typed-record test fixture state: the queue's EventFn is a function
/// pointer, so recorded values travel through the 64-bit argument and the
/// recorder travels through the context pointer.
struct Recorder {
  std::vector<int> ran;
  EventQueue* queue = nullptr;  // for events that schedule further events

  static void record(void* ctx, std::uint64_t arg) {
    static_cast<Recorder*>(ctx)->ran.push_back(static_cast<int>(arg));
  }
  static void nothing(void*, std::uint64_t) {}
};

class EventQueueBackendTest
    : public ::testing::TestWithParam<EventQueue::Backend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, EventQueueBackendTest,
    ::testing::Values(EventQueue::Backend::kCalendar,
                      EventQueue::Backend::kBinaryHeap),
    [](const auto& info) {
      return info.param == EventQueue::Backend::kCalendar ? "Calendar"
                                                          : "BinaryHeap";
    });

TEST(SimClockTest, AdvancesForwardOnly) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance_to(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.advance_to(1.5);  // standing still is allowed
  EXPECT_THROW(clock.advance_to(1.0), std::logic_error);
}

TEST_P(EventQueueBackendTest, RunsInTimeOrder) {
  EventQueue q{GetParam()};
  Recorder rec;
  q.schedule(3.0, Recorder::record, &rec, 3);
  q.schedule(1.0, Recorder::record, &rec, 1);
  q.schedule(2.0, Recorder::record, &rec, 2);
  q.run_until_idle();
  EXPECT_EQ(rec.ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3);
}

// The determinism keystone: events scheduled for the same instant run in
// schedule order, regardless of how the backend stores them.
TEST_P(EventQueueBackendTest, EqualTimestampsRunInScheduleOrder) {
  EventQueue q{GetParam()};
  Recorder rec;
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    q.schedule(1.0, Recorder::record, &rec,
               static_cast<std::uint64_t>(i));
  }
  q.run_until_idle();
  ASSERT_EQ(rec.ran.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(rec.ran[static_cast<size_t>(i)], i);
  }
}

// An action scheduling at the *current* instant queues behind every event
// already scheduled for that instant (its sequence number is larger).
TEST_P(EventQueueBackendTest, ActionsScheduledDuringRunKeepStableOrder) {
  EventQueue q{GetParam()};
  Recorder rec;
  rec.queue = &q;
  q.schedule(1.0,
             [](void* ctx, std::uint64_t) {
               auto* r = static_cast<Recorder*>(ctx);
               r->ran.push_back(0);
               r->queue->schedule(1.0, Recorder::record, r, 2);
             },
             &rec);
  q.schedule(1.0, Recorder::record, &rec, 1);
  q.run_until_idle();
  EXPECT_EQ(rec.ran, (std::vector<int>{0, 1, 2}));
}

TEST_P(EventQueueBackendTest, AdvanceUntilRunsDueEventsAndMovesClock) {
  EventQueue q{GetParam()};
  Recorder rec;
  q.schedule(1.0, Recorder::record, &rec, 1);
  q.schedule(2.0, Recorder::record, &rec, 2);
  q.schedule(3.0, Recorder::record, &rec, 3);
  q.advance_until(2.0);  // inclusive boundary
  EXPECT_EQ(rec.ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  // Advancing into empty time still moves the clock.
  q.advance_until(2.5);
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 1u);
}

// After a peek parks the scan at the earliest pending day, a newly
// scheduled earlier event must still run first (the cursor is pulled
// back) — the regression case for the calendar's forward-scan invariant.
TEST_P(EventQueueBackendTest, EarlierEventAfterPeekStillRunsFirst) {
  EventQueue q{GetParam()};
  Recorder rec;
  q.schedule(50.0, Recorder::record, &rec, 50);
  q.advance_until(10.0);  // peeks at the t=50 event, then moves the clock
  EXPECT_EQ(q.now(), 10.0);
  q.schedule(20.0, Recorder::record, &rec, 20);
  q.run_until_idle();
  EXPECT_EQ(rec.ran, (std::vector<int>{20, 50}));
}

TEST_P(EventQueueBackendTest, RunReadyOnlyRunsEventsDueNow) {
  EventQueue q{GetParam()};
  Recorder rec;
  q.schedule(0.0, Recorder::record, &rec, 0);
  q.schedule(1.0, Recorder::record, &rec, 1);
  q.run_ready();  // clock is 0: only the first is due
  EXPECT_EQ(rec.ran, (std::vector<int>{0}));
  EXPECT_EQ(q.now(), 0.0);
}

TEST_P(EventQueueBackendTest, SchedulingIntoThePastIsACheckedFailure) {
  EventQueue q{GetParam()};
  Recorder rec;
  q.schedule(2.0, Recorder::nothing, &rec);
  q.run_until_idle();
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_THROW(q.schedule(1.0, Recorder::nothing, &rec), std::logic_error);
}

TEST_P(EventQueueBackendTest, PumpUntilStopsAtCondition) {
  EventQueue q{GetParam()};
  int count = 0;
  const auto bump = [](void* ctx, std::uint64_t) {
    ++*static_cast<int*>(ctx);
  };
  for (int i = 0; i < 5; ++i) q.schedule(1.0 * i, bump, &count);
  q.pump_until([&] { return count == 3; });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.pending(), 2u);
}

// Waiting for a completion that can no longer arrive (queue drained) is a
// protocol bug, not a hang — it must fail loudly.
TEST_P(EventQueueBackendTest, PumpUntilOnDrainedQueueIsACheckedFailure) {
  EventQueue q{GetParam()};
  int unused = 0;
  q.schedule(1.0, Recorder::nothing, &unused);
  EXPECT_THROW(q.pump_until([] { return false; }), std::logic_error);
}

// Deep churn drives the calendar through grow/shrink resizes without
// losing events or order (pending() and executed() stay consistent).
TEST_P(EventQueueBackendTest, DeepQueueGrowsAndDrainsConsistently) {
  EventQueue q{GetParam()};
  Recorder rec;
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    // Interleaved times so insertion is far from monotone.
    const double t = static_cast<double>((i * 7919) % kEvents);
    q.schedule(t, Recorder::record, &rec, static_cast<std::uint64_t>(t));
  }
  EXPECT_EQ(q.pending(), static_cast<std::size_t>(kEvents));
  q.run_until_idle();
  EXPECT_EQ(q.executed(), kEvents);
  ASSERT_EQ(rec.ran.size(), static_cast<std::size_t>(kEvents));
  for (int i = 1; i < kEvents; ++i) {
    EXPECT_LE(rec.ran[static_cast<std::size_t>(i) - 1],
              rec.ran[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace delta::util
