#include "core/benefit_policy.h"

#include <gtest/gtest.h>

#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

constexpr std::int64_t kOverhead = 256 * 1024;

struct Harness {
  workload::Trace trace;
  DeltaSystem system;
  BenefitPolicy policy;

  Harness(workload::Trace t, BenefitOptions opts)
      : trace(std::move(t)), system(&trace), policy(&system, opts) {}

  void replay() {
    for (const auto& e : trace.order) {
      if (e.kind == workload::Event::Kind::kUpdate) {
        system.ingest_update(
            trace.updates[static_cast<std::size_t>(e.index)]);
      } else {
        policy.on_query(trace.queries[static_cast<std::size_t>(e.index)]);
      }
    }
  }
};

TEST(BenefitPolicyTest, LoadsProfitableObjectAtWindowBoundary) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  // Window of 4 events: hammer object 0 with queries far exceeding the
  // load cost; after the first window it should be cached.
  for (int i = 0; i < 8; ++i) b.query({0}, 2'000'000);
  BenefitOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.window = 4;
  opts.alpha = 1.0;  // no smoothing: react to the last window only
  Harness h{b.build(), opts};
  h.replay();
  EXPECT_TRUE(h.policy.store().contains(ObjectId{0}));
  EXPECT_EQ(h.policy.loads(), 1);
  // Queries 5..8 were answered at the cache: only 4 shipped.
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kQueryShip).count(),
            4 * 2'000'000);
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kObjectLoad).count(),
            obj + kOverhead);
}

TEST(BenefitPolicyTest, NegativeForecastObjectNotCached) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 8; ++i) b.query({0}, 1'000);  // tiny queries
  BenefitOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.window = 4;
  opts.alpha = 1.0;
  Harness h{b.build(), opts};
  h.replay();
  EXPECT_FALSE(h.policy.store().contains(ObjectId{0}));
  EXPECT_EQ(h.policy.loads(), 0);
}

TEST(BenefitPolicyTest, CachedObjectsReceiveUpdatesEagerly) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 4; ++i) b.query({0}, 2'000'000);
  b.update(0, 123'456);  // object is cached by now: shipped on arrival
  BenefitOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.window = 4;
  opts.alpha = 1.0;
  Harness h{b.build(), opts};
  h.replay();
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kUpdateShip).count(),
            123'456);
  EXPECT_EQ(h.policy.store().bytes_of(ObjectId{0}).count(), obj + 123'456);
}

TEST(BenefitPolicyTest, UpdateHeavyObjectGetsDropped) {
  const std::int64_t obj = 1'000'000;
  TraceBuilder b{{obj}};
  for (int i = 0; i < 4; ++i) b.query({0}, 2'000'000);  // window 1: cache it
  // Window 2+: only updates, far outweighing any query savings.
  for (int i = 0; i < 8; ++i) b.update(0, 3'000'000);
  BenefitOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.window = 4;
  opts.alpha = 1.0;
  Harness h{b.build(), opts};
  h.replay();
  EXPECT_FALSE(h.policy.store().contains(ObjectId{0}));
  EXPECT_GT(h.policy.evictions(), 0);
}

TEST(BenefitPolicyTest, ProportionalAttributionCausesThrash) {
  // Two objects; all queries touch both, so neither alone answers anything.
  // Object 1 is 4x larger and receives 4x the attributed counterfactual
  // benefit; with capacity for only one object, Benefit caches the big one
  // after window 1 — useless, since B(q) is still not fully cached. In
  // window 2 the cached object earns nothing (saved = 0) while the missing
  // one keeps accruing counterfactual benefit, so Benefit flips to it:
  // the attribution weakness the paper calls out, realized as thrash.
  TraceBuilder b{{1'000'000, 4'000'000}};
  for (int i = 0; i < 8; ++i) b.query({0, 1}, 20'000'000);
  BenefitOptions opts;
  opts.cache_capacity = Bytes{4'500'000};  // fits only the big object
  opts.window = 4;
  opts.alpha = 1.0;
  Harness h{b.build(), opts};
  h.replay();
  // After window 1: {1}. After window 2: flipped to {0}.
  EXPECT_TRUE(h.policy.store().contains(ObjectId{0}));
  EXPECT_FALSE(h.policy.store().contains(ObjectId{1}));
  EXPECT_EQ(h.policy.loads(), 2);
  EXPECT_EQ(h.policy.evictions(), 1);
  // And because B(q) is never fully cached, every query still ships.
  EXPECT_EQ(h.system.meter().total(net::Mechanism::kQueryShip).count(),
            8 * 20'000'000LL);
}

TEST(BenefitPolicyTest, SmoothingDampensReactionToUpdateBursts) {
  // Window 1: a huge query loads the object. Windows 2-3: update bursts
  // make the per-window benefit negative. With α=1 the forecast flips
  // negative after one bad window and the object is dropped; with α=0.1
  // the earlier query benefit dominates and the object survives.
  const auto build = [] {
    TraceBuilder b{{1'000'000}};
    b.query({0}, 50'000'000);
    for (int i = 0; i < 3; ++i) b.query({0}, 1'000);
    for (int i = 0; i < 8; ++i) b.update(0, 2'000'000);
    return b.build();
  };
  BenefitOptions smooth;
  smooth.cache_capacity = Bytes{30'000'000};
  smooth.window = 4;
  smooth.alpha = 0.1;
  Harness h{build(), smooth};
  h.replay();
  EXPECT_TRUE(h.policy.store().contains(ObjectId{0}));

  BenefitOptions reactive = smooth;
  reactive.alpha = 1.0;
  Harness h2{build(), reactive};
  h2.replay();
  EXPECT_FALSE(h2.policy.store().contains(ObjectId{0}));
}

TEST(BenefitPolicyTest, WindowCountMatchesEventCount) {
  TraceBuilder b{{1'000'000}};
  for (int i = 0; i < 10; ++i) b.query({0}, 1'000);
  for (int i = 0; i < 10; ++i) b.update(0, 1'000);
  BenefitOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  opts.window = 5;
  Harness h{b.build(), opts};
  h.replay();
  EXPECT_EQ(h.policy.windows_closed(), 4);  // 20 events / 5 per window
}

}  // namespace
}  // namespace delta::core
