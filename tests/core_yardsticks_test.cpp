#include "core/yardsticks.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

workload::Trace mixed_trace() {
  TraceBuilder b{{1'000'000, 2'000'000, 4'000'000}};
  b.query({0}, 500'000);
  b.update(1, 300'000);
  b.query({0, 1}, 700'000);
  b.update(0, 100'000);
  b.query({2}, 900'000);
  return b.build();
}

TEST(NoCacheTest, TotalEqualsSumOfQueryCosts) {
  const auto trace = mixed_trace();
  DeltaSystem system{&trace};
  NoCachePolicy policy{&system};
  const auto result = sim::run_policy(trace, system, policy);
  EXPECT_EQ(result.total_traffic, trace.total_query_cost());
  EXPECT_EQ(result.shipped, 3);
  EXPECT_EQ(result.cache_fresh, 0);
}

TEST(ReplicaTest, TotalEqualsSumOfUpdateCosts) {
  const auto trace = mixed_trace();
  DeltaSystem system{&trace};
  ReplicaPolicy policy{&system};
  const auto result = sim::run_policy(trace, system, policy);
  EXPECT_EQ(result.total_traffic, trace.total_update_cost());
  EXPECT_EQ(result.cache_fresh, 3);  // every query answered locally
  EXPECT_EQ(result.shipped, 0);
}

TEST(SOptimalTest, ChoosesProfitableStaticSet) {
  // Object 0: hammered by queries, no updates -> must be chosen.
  // Object 1: update-only -> must not be chosen.
  TraceBuilder b{{1'000'000, 1'000'000}};
  for (int i = 0; i < 10; ++i) b.query({0}, 2'000'000);
  for (int i = 0; i < 10; ++i) b.update(1, 2'000'000);
  const auto trace = b.build();
  DeltaSystem system{&trace};
  SOptimalOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  SOptimalPolicy policy{&system, &trace, opts};
  EXPECT_TRUE(policy.chosen().count(ObjectId{0}) > 0);
  EXPECT_TRUE(policy.chosen().count(ObjectId{1}) == 0);
  const auto result = sim::run_policy(trace, system, policy);
  // Loads up front; all queries at cache; no update traffic (object 1 not
  // registered).
  EXPECT_EQ(result.cache_fresh, 10);
  EXPECT_EQ(result.total_traffic.count(),
            1'000'000 + 256 * 1024);  // one load, nothing else
}

TEST(SOptimalTest, RespectsCapacityWithFinalSizes) {
  // Object grows by updates; the static set must fit its final size.
  TraceBuilder b{{2'000'000}};
  for (int i = 0; i < 5; ++i) b.query({0}, 10'000'000);
  for (int i = 0; i < 5; ++i) b.update(0, 1'000'000);  // final 7 MB
  const auto trace = b.build();
  DeltaSystem system{&trace};
  SOptimalOptions opts;
  opts.cache_capacity = Bytes{5'000'000};  // smaller than the final size
  SOptimalPolicy policy{&system, &trace, opts};
  EXPECT_TRUE(policy.chosen().empty());
}

TEST(SOptimalTest, LoadsHappenBeforeFirstEvent) {
  TraceBuilder b{{1'000'000}};
  for (int i = 0; i < 5; ++i) b.query({0}, 2'000'000);
  const auto trace = b.build();
  DeltaSystem system{&trace};
  SOptimalOptions opts;
  opts.cache_capacity = Bytes{10'000'000};
  SOptimalPolicy policy{&system, &trace, opts};
  // Construction already performed the load.
  EXPECT_GT(system.meter().total(net::Mechanism::kObjectLoad).count(), 0);
  EXPECT_TRUE(system.is_registered(ObjectId{0}));
}

TEST(SOptimalTest, LocalSearchNeverWorseThanHeuristic) {
  // Craft a case where proportional attribution misleads the heuristic:
  // queries touch {0,1} jointly; object 1 is large and update-heavy.
  TraceBuilder b{{1'000'000, 8'000'000, 1'000'000}};
  for (int i = 0; i < 20; ++i) b.query({0, 2}, 3'000'000);
  for (int i = 0; i < 10; ++i) b.update(1, 2'000'000);
  for (int i = 0; i < 4; ++i) b.query({1}, 1'000'000);
  const auto trace = b.build();

  const auto replay_cost = [&](bool local_search) {
    DeltaSystem system{&trace};
    SOptimalOptions opts;
    opts.cache_capacity = Bytes{10'000'000};
    opts.local_search = local_search;
    SOptimalPolicy policy{&system, &trace, opts};
    return sim::run_policy(trace, system, policy).total_traffic;
  };
  EXPECT_LE(replay_cost(true), replay_cost(false));
}

TEST(SOptimalTest, ShipsQueriesTouchingUnchosenObjects) {
  TraceBuilder b{{1'000'000, 1'000'000}};
  for (int i = 0; i < 10; ++i) b.query({0}, 2'000'000);
  b.query({0, 1}, 500);  // touches the unchosen object 1
  const auto trace = b.build();
  DeltaSystem system{&trace};
  SOptimalOptions opts;
  opts.cache_capacity = Bytes{1'500'000};  // fits only object 0
  SOptimalPolicy policy{&system, &trace, opts};
  ASSERT_TRUE(policy.chosen().count(ObjectId{0}) > 0);
  ASSERT_TRUE(policy.chosen().count(ObjectId{1}) == 0);
  const auto result = sim::run_policy(trace, system, policy);
  EXPECT_EQ(result.shipped, 1);
  EXPECT_EQ(result.cache_fresh, 10);
}

}  // namespace
}  // namespace delta::core
