#include "htm/trixel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace delta::htm {
namespace {

TEST(HtmIdTest, LevelEncoding) {
  EXPECT_EQ(level_of(8), 0);
  EXPECT_EQ(level_of(15), 0);
  EXPECT_EQ(level_of(32), 1);
  EXPECT_EQ(level_of(63), 1);
  EXPECT_EQ(level_of(8 * 4 * 4), 2);
  EXPECT_EQ(trixel_count_at_level(0), 8);
  EXPECT_EQ(trixel_count_at_level(3), 512);
  EXPECT_EQ(first_id_at_level(2), 128);
}

TEST(HtmIdTest, IndexRoundTrip) {
  for (int level = 0; level <= 4; ++level) {
    const auto count = trixel_count_at_level(level);
    for (std::int64_t i : {std::int64_t{0}, count / 2, count - 1}) {
      const HtmId id = id_from_index(level, i);
      EXPECT_EQ(level_of(id), level);
      EXPECT_EQ(index_in_level(id), i);
    }
  }
}

TEST(HtmIdTest, ParentChildRelation) {
  const HtmId id = 8;
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(parent_of(child_of(id, c)), id);
  }
  EXPECT_EQ(ancestor_at_level(child_of(child_of(9, 2), 3), 0), 9);
  EXPECT_EQ(ancestor_at_level(child_of(9, 2), 1), child_of(9, 2));
}

TEST(TrixelTest, RootsCoverTheSphere) {
  util::Rng rng{99};
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p = normalized({rng.normal(0, 1), rng.normal(0, 1),
                               rng.normal(0, 1)});
    int containers = 0;
    for (int r = 0; r < 8; ++r) {
      if (Trixel::root(r).contains(p)) ++containers;
    }
    EXPECT_GE(containers, 1) << "point not covered";
  }
}

TEST(TrixelTest, RootAreasSumToSphere) {
  double total = 0.0;
  for (int r = 0; r < 8; ++r) total += Trixel::root(r).area();
  EXPECT_NEAR(total, 4.0 * std::numbers::pi, 1e-9);
}

TEST(TrixelTest, ChildAreasSumToParent) {
  const Trixel parent = Trixel::root(3);
  double total = 0.0;
  for (int c = 0; c < 4; ++c) total += parent.child(c).area();
  EXPECT_NEAR(total, parent.area(), 1e-9);
}

TEST(TrixelTest, ChildrenContainedInParent) {
  util::Rng rng{7};
  Trixel t = Trixel::root(5);
  for (int level = 0; level < 5; ++level) {
    const Trixel child = t.child(static_cast<int>(rng.uniform_int(0, 3)));
    // The child's center and corners must lie in the parent.
    EXPECT_TRUE(t.contains(child.center()));
    for (const auto& v : child.vertices()) {
      EXPECT_TRUE(t.contains(v));
    }
    t = child;
  }
}

TEST(TrixelTest, FromIdReconstructsDescentPath) {
  const Trixel a = Trixel::root(2).child(1).child(3).child(0);
  const Trixel b = Trixel::from_id(a.id());
  EXPECT_EQ(a.id(), b.id());
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(angular_distance(a.vertices()[static_cast<std::size_t>(i)],
                                 b.vertices()[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(TrixelTest, LocateFindsContainingTrixel) {
  util::Rng rng{123};
  for (int i = 0; i < 500; ++i) {
    const Vec3 p = normalized({rng.normal(0, 1), rng.normal(0, 1),
                               rng.normal(0, 1)});
    for (int level : {0, 2, 5}) {
      const HtmId id = locate(p, level);
      EXPECT_EQ(level_of(id), level);
      EXPECT_TRUE(Trixel::from_id(id).contains(p));
    }
  }
}

TEST(TrixelTest, LocateConsistentWithAncestors) {
  util::Rng rng{321};
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = normalized({rng.normal(0, 1), rng.normal(0, 1),
                               rng.normal(0, 1)});
    const HtmId deep = locate(p, 6);
    const HtmId shallow = locate(p, 2);
    // Descent may differ on exact edges; ancestor containment must agree
    // for generic points.
    EXPECT_EQ(ancestor_at_level(deep, 2), shallow);
  }
}

TEST(TrixelTest, BoundingCircleContainsTrixel) {
  util::Rng rng{55};
  Trixel t = Trixel::root(1);
  for (int level = 0; level < 6; ++level) {
    const Vec3 c = t.center();
    const double r = t.bounding_radius();
    // Corners are within the bounding radius by construction; sample some
    // interior points too.
    for (int i = 0; i < 20; ++i) {
      double w0 = rng.next_double();
      double w1 = rng.next_double() * (1.0 - w0);
      const double w2 = 1.0 - w0 - w1;
      const Vec3 p = normalized(t.vertices()[0] * w0 + t.vertices()[1] * w1 +
                                t.vertices()[2] * w2);
      EXPECT_LE(angular_distance(c, p), r + 1e-12);
    }
    t = t.child(3);
  }
}

TEST(Vec3Test, RaDecRoundTrip) {
  for (double ra : {0.0, 45.0, 180.0, 359.0}) {
    for (double dec : {-89.0, -30.0, 0.0, 60.0, 89.0}) {
      const RaDec rd = to_ra_dec(from_ra_dec(ra, dec));
      EXPECT_NEAR(rd.ra_deg, ra, 1e-9);
      EXPECT_NEAR(rd.dec_deg, dec, 1e-9);
    }
  }
}

TEST(Vec3Test, AngularDistanceKnownValues) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_NEAR(angular_distance(x, y), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(angular_distance(x, x), 0.0, 1e-12);
  EXPECT_NEAR(angular_distance(x, {-1, 0, 0}), std::numbers::pi, 1e-12);
}

TEST(Vec3Test, DistanceToArc) {
  const Vec3 a{1, 0, 0};
  const Vec3 b{0, 1, 0};
  // Point above the arc's midpoint.
  const Vec3 p = normalized({1, 1, 0.5});
  const double d = distance_to_arc(p, a, b);
  EXPECT_NEAR(d, angular_distance(p, normalized({1, 1, 0})), 1e-9);
  // Point past endpoint a: closest point is a itself.
  const Vec3 q = normalized({1, -0.3, 0});
  EXPECT_NEAR(distance_to_arc(q, a, b), angular_distance(q, a), 1e-9);
}

}  // namespace
}  // namespace delta::htm
