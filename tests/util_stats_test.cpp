#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace delta::util {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(LogHistogramTest, CountsAndQuantiles) {
  LogHistogram h{1.0, 10.0, 6};
  for (int i = 0; i < 90; ++i) h.add(0.5);    // below base -> bucket 0
  for (int i = 0; i < 10; ++i) h.add(5000.0);  // large values
  EXPECT_EQ(h.total_count(), 100);
  EXPECT_LE(h.quantile(0.5), 1.0);
  EXPECT_GT(h.quantile(0.95), 1000.0);
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram h{1.0, 2.0, 4};
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ExactQuantiles) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
}

// Bounded mode: stride decimation retains every k-th tag, bounding the
// buffer while keeping the quantiles close to exact on smooth data.
TEST(QuantileSketchTest, StrideDecimationBoundsSizeAndTracksQuantiles) {
  QuantileSketch exact;
  QuantileSketch bounded;
  bounded.set_stride(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>(i);
    exact.add(v);
    bounded.add_tagged(v, i);
  }
  EXPECT_EQ(bounded.size(), 1000u);
  EXPECT_NEAR(bounded.quantile(0.5), exact.quantile(0.5), 10.0);
  EXPECT_NEAR(bounded.quantile(0.99), exact.quantile(0.99), 10.0);
}

// The retention decision depends only on the (globally assigned) tag, so
// sharded producers merge to exactly the single-stream bounded selection —
// the contract the parallel event engine's response sketch relies on.
TEST(QuantileSketchTest, ShardedTaggedMergeMatchesSingleStreamBitForBit) {
  constexpr int kN = 5000;
  constexpr std::int64_t kStride = 7;
  QuantileSketch single;
  single.set_stride(kStride);
  std::vector<QuantileSketch> shards(3);
  for (QuantileSketch& s : shards) s.set_stride(kStride);
  for (int i = 0; i < kN; ++i) {
    const double v = std::sin(static_cast<double>(i)) * 1e3;
    single.add_tagged(v, i);
    shards[static_cast<std::size_t>(i) % shards.size()].add_tagged(v, i);
  }
  QuantileSketch merged;
  merged.set_stride(kStride);
  for (const QuantileSketch& s : shards) merged.merge(s);
  ASSERT_EQ(merged.size(), single.size());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile(q), single.quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace delta::util
