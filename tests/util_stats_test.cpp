#include "util/stats.h"

#include <gtest/gtest.h>

namespace delta::util {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(LogHistogramTest, CountsAndQuantiles) {
  LogHistogram h{1.0, 10.0, 6};
  for (int i = 0; i < 90; ++i) h.add(0.5);    // below base -> bucket 0
  for (int i = 0; i < 10; ++i) h.add(5000.0);  // large values
  EXPECT_EQ(h.total_count(), 100);
  EXPECT_LE(h.quantile(0.5), 1.0);
  EXPECT_GT(h.quantile(0.95), 1000.0);
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram h{1.0, 2.0, 4};
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ExactQuantiles) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
}

}  // namespace
}  // namespace delta::util
