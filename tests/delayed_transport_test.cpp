// DelayedTransport: latency formula, FIFO-per-link with serialization
// occupancy, delivery-time metering, uplink contention stats, and the
// partition invariant the synchronous transport already guarantees.
#include "net/delayed_transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "meter_invariants.h"
#include "util/event_queue.h"

namespace delta::net {
namespace {

struct Delivery {
  std::string endpoint;
  Message message;
  double at = 0.0;
};

/// Queue + transport + recording endpoints, shared by the tests.
struct Harness {
  util::EventQueue events;
  DelayedTransport transport{&events};
  std::vector<Delivery> deliveries;

  explicit Harness(LinkModel default_link = LinkModel{})
      : transport(&events, default_link) {}

  std::size_t add_endpoint(const std::string& name) {
    return transport.register_endpoint(name, [this, name](const Message& m) {
      deliveries.push_back(Delivery{name, m, events.now()});
    });
  }

  static Message message_from(const std::string& sender, Bytes payload) {
    Message m;
    m.kind = MessageKind::kControl;
    m.payload = payload;
    m.sender = sender;
    return m;
  }
};

TEST(DelayedTransportTest, DeliversAfterSerializationPlusPropagation) {
  Harness h{LinkModel{1e6, 0.020}};  // 1 MB/s, 20 ms RTT
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.transport.send("b", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  EXPECT_EQ(h.transport.in_flight(), 1);
  EXPECT_TRUE(h.deliveries.empty());  // nothing moves until the clock does
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  // (999936 + 64 header) / 1e6 B/s = 1.0 s serialization, + RTT/2 = 10 ms.
  EXPECT_NEAR(h.deliveries[0].at, 1.010, 1e-12);
  EXPECT_EQ(h.deliveries[0].message.sim_sent_at, 0.0);
  EXPECT_NEAR(h.deliveries[0].message.sim_delivered_at, 1.010, 1e-12);
  EXPECT_EQ(h.transport.in_flight(), 0);
}

// Back-to-back sends on the same directed link serialize one after the
// other (occupancy) and arrive in send order.
TEST(DelayedTransportTest, FifoPerLinkWithSerializationOccupancy) {
  Harness h{LinkModel{1e6, 0.020}};
  h.add_endpoint("a");
  h.add_endpoint("b");
  Message first = Harness::message_from("a", Bytes{999'936});
  first.subject_id = 1;
  Message second = Harness::message_from("a", Bytes{499'936});
  second.subject_id = 2;
  h.transport.send("b", first, Mechanism::kQueryShip);
  h.transport.send("b", second, Mechanism::kQueryShip);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].message.subject_id, 1);
  EXPECT_EQ(h.deliveries[1].message.subject_id, 2);
  EXPECT_NEAR(h.deliveries[0].at, 1.010, 1e-12);
  // The second departs only after the first's 1.0 s serialization.
  EXPECT_NEAR(h.deliveries[1].at, 1.0 + 0.5 + 0.010, 1e-12);

  const UplinkStats& uplink =
      h.transport.uplink_stats(h.transport.endpoint_slot("a"));
  EXPECT_EQ(uplink.sends, 2);
  EXPECT_NEAR(uplink.busy_seconds, 1.5, 1e-12);
  EXPECT_NEAR(uplink.total_queue_wait, 1.0, 1e-12);  // second waited 1.0 s
  EXPECT_NEAR(uplink.max_queue_wait, 1.0, 1e-12);
}

// Distinct directed links do not share occupancy: a->b and a->c (and b->a)
// all depart immediately.
TEST(DelayedTransportTest, DistinctLinksDoNotQueueBehindEachOther) {
  Harness h{LinkModel{1e6, 0.020}};
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.add_endpoint("c");
  h.transport.send("b", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.transport.send("c", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.transport.send("a", Harness::message_from("b", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 3u);
  for (const Delivery& d : h.deliveries) EXPECT_NEAR(d.at, 1.010, 1e-12);
}

TEST(DelayedTransportTest, PerLinkConfigurationOverridesDefault) {
  Harness h{LinkModel{1e6, 0.020}};
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.add_endpoint("c");
  h.transport.set_link("a", "c", LinkModel{2e6, 0.100});
  h.transport.send("b", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.transport.send("c", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.events.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].endpoint, "c");  // faster wire, despite the RTT
  EXPECT_NEAR(h.deliveries[0].at, 0.5 + 0.050, 1e-12);
  EXPECT_EQ(h.deliveries[1].endpoint, "b");
  EXPECT_NEAR(h.deliveries[1].at, 1.010, 1e-12);
}

TEST(DelayedTransportTest, ZeroLatencyLinkDeliversAtTheSendInstant) {
  Harness h{LinkModel::zero_latency()};
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.transport.send("b", Harness::message_from("a", 1_GiB), Mechanism::kObjectLoad);
  h.events.run_ready();  // due at now == 0
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, 0.0);
}

// Meters are charged at delivery, not send: traffic in flight is invisible
// to the warm-up boundary snapshots.
TEST(DelayedTransportTest, MetersChargeAtDeliveryTime) {
  Harness h{LinkModel{1e6, 0.020}};
  h.add_endpoint("a");
  h.add_endpoint("b");
  h.transport.send("b", Harness::message_from("a", Bytes{1000}),
                   Mechanism::kQueryShip);
  EXPECT_EQ(h.transport.meter().total(Mechanism::kQueryShip), Bytes{0});
  h.events.run_until_idle();
  EXPECT_EQ(h.transport.meter().total(Mechanism::kQueryShip), Bytes{1000});
  EXPECT_EQ(h.transport.endpoint_meter("b").total(Mechanism::kQueryShip),
            Bytes{1000});
  // Slot-addressed accessor reads the same meter.
  EXPECT_EQ(&h.transport.endpoint_meter(h.transport.endpoint_slot("b")),
            &h.transport.endpoint_meter("b"));
}

// A scattered burst across several links and mechanisms preserves the
// accounting contract: per-endpoint meters partition the aggregate.
TEST(DelayedTransportTest, EndpointMetersPartitionAggregateAfterBurst) {
  Harness h{LinkModel{1e7, 0.004}};
  const std::vector<std::string> names = {"server", "cache-0", "cache-1"};
  for (const std::string& n : names) h.add_endpoint(n);
  h.transport.set_duplex_link("server", "cache-1", LinkModel{1e6, 0.080});
  int seq = 0;
  for (int round = 0; round < 20; ++round) {
    for (const std::string& from : names) {
      for (const std::string& to : names) {
        if (from == to) continue;
        Message m = Harness::message_from(from, Bytes{1000 + 17 * seq});
        m.kind = (seq % 3 == 0) ? MessageKind::kQueryResult
                                : MessageKind::kUpdateShip;
        h.transport.send(to, m,
                         (seq % 3 == 0) ? Mechanism::kQueryShip
                                        : Mechanism::kUpdateShip);
        ++seq;
      }
    }
  }
  h.events.run_until_idle();
  EXPECT_EQ(h.transport.delivered_count(), seq);
  delta::testing::ExpectEndpointMetersPartitionAggregate(h.transport);
}

TEST(DelayedTransportTest, DeliveryObserverSeesStampedMessages) {
  Harness h{LinkModel{1e6, 0.020}};
  h.add_endpoint("a");
  const std::size_t b_slot = h.add_endpoint("b");
  std::vector<std::pair<std::size_t, double>> observed;
  h.transport.set_delivery_observer(
      [](void* ctx, const Message& m, std::size_t slot) {
        static_cast<std::vector<std::pair<std::size_t, double>>*>(ctx)
            ->emplace_back(slot, m.sim_delivered_at - m.sim_sent_at);
      },
      &observed);
  h.transport.send("b", Harness::message_from("a", Bytes{999'936}),
                   Mechanism::kQueryShip);
  h.events.run_until_idle();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].first, b_slot);
  EXPECT_NEAR(observed[0].second, 1.010, 1e-12);
}

TEST(DelayedTransportTest, UnknownDestinationIsACheckedFailure) {
  Harness h;
  h.add_endpoint("a");
  EXPECT_THROW(h.transport.send("ghost", Harness::message_from("a", Bytes{1}),
                                Mechanism::kOverhead),
               std::logic_error);
}

}  // namespace
}  // namespace delta::net
