// LoadManager unit tests (paper Fig. 6): the bypass-caching rule in both
// implementations — exact per-object counters, and the paper's randomized
// attribution that matches the rule in expectation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/load_manager.h"

namespace delta::core {
namespace {

workload::Query query_costing(std::int64_t cost) {
  workload::Query q;
  q.cost = Bytes{cost};
  return q;
}

/// Fixed-size world: every object is `size` bytes, loads cost `load_cost`.
struct Sizes {
  Bytes size{1000};
  Bytes load_cost{1000};
  [[nodiscard]] auto size_fn() const {
    return [s = size](ObjectId) { return s; };
  }
  [[nodiscard]] auto cost_fn() const {
    return [c = load_cost](ObjectId) { return c; };
  }
};

/// Runs one attribution walk and returns the number of proposed candidates.
/// (consider() shuffles the missing list in place, so feed it a copy.)
template <typename SizeFn, typename CostFn>
std::int64_t propose(LoadManager& lm, const workload::Query& q,
                     std::vector<ObjectId> missing, SizeFn&& size_fn,
                     CostFn&& cost_fn) {
  return static_cast<std::int64_t>(
      lm.consider(q, missing, size_fn, cost_fn).size());
}

// Counter mode: the object is proposed exactly once per l(o) bytes of
// shipped-query demand attributed to it — queries of cost c propose every
// ceil(l/c)-th query and never in between.
TEST(LoadManagerTest, CounterModeProposesExactlyOncePerLoadCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;  // l(o) = 1000
  const ObjectId o{0};
  std::int64_t proposals = 0;
  for (int i = 1; i <= 20; ++i) {
    proposals += propose(lm, query_costing(250), {o}, sizes.size_fn(),
                         sizes.cost_fn());
    // 250 bytes per query against l=1000: a proposal exactly at every
    // 4th query, i.e. exactly once per 1000 attributed bytes.
    EXPECT_EQ(proposals, i / 4) << "after query " << i;
  }
  EXPECT_EQ(proposals, 5);
}

TEST(LoadManagerTest, CounterModeAttributionIsCappedByQueryCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  // One query shipping more than 2*l(o) still proposes the object once:
  // attribution per query is capped at l(o) (share = min(budget, l)).
  EXPECT_EQ(propose(lm, query_costing(5000), {ObjectId{0}}, sizes.size_fn(),
                    sizes.cost_fn()),
            1);
}

TEST(LoadManagerTest, BudgetWalksAcrossMissingObjects) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  // Cost 1000 over two missing objects of l=1000 each: the walk funds the
  // first object in (shuffled) order fully; the second accrues nothing
  // (budget exhausted). Exactly one proposal either way.
  EXPECT_EQ(propose(lm, query_costing(1000), {ObjectId{0}, ObjectId{1}},
                    sizes.size_fn(), sizes.cost_fn()),
            1);
  // A second identical query funds the other object to its threshold too.
  EXPECT_EQ(propose(lm, query_costing(1000), {ObjectId{0}, ObjectId{1}},
                    sizes.size_fn(), sizes.cost_fn()),
            1);
}

// Randomized mode matches the counter rule in expectation: over a long
// seeded run the proposal count concentrates around demand / l(o).
TEST(LoadManagerTest, RandomizedModeMatchesCounterModeInExpectation) {
  const Sizes sizes;  // l(o) = 1000
  const ObjectId o{0};
  const int kQueries = 5000;
  const std::int64_t kCost = 100;  // propose w.p. 0.1 per query

  LoadManager exact{{/*randomized=*/false, /*lazy=*/true}, util::Rng{7}};
  LoadManager randomized{{/*randomized=*/true, /*lazy=*/true},
                         util::Rng{7}};
  std::int64_t exact_count = 0;
  std::int64_t randomized_count = 0;
  for (int i = 0; i < kQueries; ++i) {
    exact_count += propose(exact, query_costing(kCost), {o}, sizes.size_fn(),
                           sizes.cost_fn());
    randomized_count += propose(randomized, query_costing(kCost), {o},
                                sizes.size_fn(), sizes.cost_fn());
  }
  // The exact rule: 5000 queries * 100 B / 1000 B = 500 proposals.
  EXPECT_EQ(exact_count, kQueries * kCost / 1000);
  // Binomial(5000, 0.1): mean 500, sd ~21. A 20% band is ~4.7 sd — tight
  // enough to catch a wrong probability, loose enough to never flake on
  // this fixed seed.
  EXPECT_NEAR(static_cast<double>(randomized_count),
              static_cast<double>(exact_count), 0.2 * exact_count);
}

TEST(LoadManagerTest, ForgetDropsTheCounter) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  const ObjectId o{0};
  const auto feed = [&] {
    return propose(lm, query_costing(400), {o}, sizes.size_fn(),
                   sizes.cost_fn());
  };
  EXPECT_EQ(feed(), 0);  // 400
  EXPECT_EQ(feed(), 0);  // 800
  lm.forget(o);          // load or eviction resets the shipped-cost memory
  EXPECT_EQ(feed(), 0);  // 400 again — without forget() this would propose
  EXPECT_EQ(feed(), 0);  // 800
  EXPECT_EQ(feed(), 1);  // 1200: the rule re-arms from zero
}

TEST(LoadManagerTest, SiblingCandidatesArriveAsOneBatch) {
  const Sizes sizes;
  // A query rich enough to fund both missing objects at once: consider()
  // proposes them together, and the lazy/eager option (how the caller then
  // slices the batch for the eviction policy) is carried in options().
  const workload::Query q = query_costing(2000);

  LoadManager lazy{{/*randomized=*/false, /*lazy=*/true}, util::Rng{3}};
  std::vector<ObjectId> missing{ObjectId{0}, ObjectId{1}};
  const auto& candidates =
      lazy.consider(q, missing, sizes.size_fn(), sizes.cost_fn());
  EXPECT_EQ(candidates.size(), 2u);  // siblings decided together
  EXPECT_TRUE(lazy.options().lazy);

  LoadManager eager{{/*randomized=*/false, /*lazy=*/false}, util::Rng{3}};
  std::vector<ObjectId> missing2{ObjectId{0}, ObjectId{1}};
  const auto& eager_candidates =
      eager.consider(q, missing2, sizes.size_fn(), sizes.cost_fn());
  EXPECT_EQ(eager_candidates.size(), 2u);
  EXPECT_FALSE(eager.options().lazy);  // caller applies one-element batches
}

TEST(LoadManagerTest, ConsiderReusesItsScratchAcrossCalls) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  std::vector<ObjectId> missing{ObjectId{0}};
  const auto& first =
      lm.consider(query_costing(5000), missing, sizes.size_fn(),
                  sizes.cost_fn());
  ASSERT_EQ(first.size(), 1u);
  // The same reference is refilled by the next call (documented contract).
  std::vector<ObjectId> missing2{ObjectId{1}};
  const auto& second =
      lm.consider(query_costing(5000), missing2, sizes.size_fn(),
                  sizes.cost_fn());
  EXPECT_EQ(&first, &second);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, ObjectId{1});
}

TEST(LoadManagerTest, CandidatesCarrySizeAndLoadCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  std::vector<ObjectId> missing{ObjectId{42}};
  const auto& candidates = lm.consider(
      query_costing(5000), missing,
      [](ObjectId) { return Bytes{1234}; },
      [](ObjectId) { return Bytes{1234 + 766}; });
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, ObjectId{42});
  EXPECT_EQ(candidates[0].size.count(), 1234);
  EXPECT_EQ(candidates[0].load_cost.count(), 1234 + 766);
}

}  // namespace
}  // namespace delta::core
