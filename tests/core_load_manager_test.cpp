// LoadManager unit tests (paper Fig. 6): the bypass-caching rule in both
// implementations — exact per-object counters, and the paper's randomized
// attribution that matches the rule in expectation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/load_manager.h"

namespace delta::core {
namespace {

workload::Query query_costing(std::int64_t cost) {
  workload::Query q;
  q.cost = Bytes{cost};
  return q;
}

/// Fixed-size world: every object is `size` bytes, loads cost `load_cost`.
struct Sizes {
  Bytes size{1000};
  Bytes load_cost{1000};
  [[nodiscard]] auto size_fn() const {
    return [s = size](ObjectId) { return s; };
  }
  [[nodiscard]] auto cost_fn() const {
    return [c = load_cost](ObjectId) { return c; };
  }
};

std::int64_t proposals_in(const LoadManager::Proposal& p) {
  std::int64_t n = 0;
  for (const auto& batch : p.batches) {
    n += static_cast<std::int64_t>(batch.size());
  }
  return n;
}

// Counter mode: the object is proposed exactly once per l(o) bytes of
// shipped-query demand attributed to it — queries of cost c propose every
// ceil(l/c)-th query and never in between.
TEST(LoadManagerTest, CounterModeProposesExactlyOncePerLoadCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;  // l(o) = 1000
  const ObjectId o{0};
  std::int64_t proposals = 0;
  for (int i = 1; i <= 20; ++i) {
    const auto p = lm.consider(query_costing(250), {o}, sizes.size_fn(),
                               sizes.cost_fn());
    proposals += proposals_in(p);
    // 250 bytes per query against l=1000: a proposal exactly at every
    // 4th query, i.e. exactly once per 1000 attributed bytes.
    EXPECT_EQ(proposals, i / 4) << "after query " << i;
  }
  EXPECT_EQ(proposals, 5);
}

TEST(LoadManagerTest, CounterModeAttributionIsCappedByQueryCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  // One query shipping more than 2*l(o) still proposes the object once:
  // attribution per query is capped at l(o) (share = min(budget, l)).
  const auto p = lm.consider(query_costing(5000), {ObjectId{0}},
                             sizes.size_fn(), sizes.cost_fn());
  EXPECT_EQ(proposals_in(p), 1);
}

TEST(LoadManagerTest, BudgetWalksAcrossMissingObjects) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  // Cost 1000 over two missing objects of l=1000 each: the walk funds the
  // first object in (shuffled) order fully; the second accrues nothing
  // (budget exhausted). Exactly one proposal either way.
  const auto p =
      lm.consider(query_costing(1000), {ObjectId{0}, ObjectId{1}},
                  sizes.size_fn(), sizes.cost_fn());
  EXPECT_EQ(proposals_in(p), 1);
  // A second identical query funds the other object to its threshold too.
  const auto p2 =
      lm.consider(query_costing(1000), {ObjectId{0}, ObjectId{1}},
                  sizes.size_fn(), sizes.cost_fn());
  EXPECT_EQ(proposals_in(p2), 1);
}

// Randomized mode matches the counter rule in expectation: over a long
// seeded run the proposal count concentrates around demand / l(o).
TEST(LoadManagerTest, RandomizedModeMatchesCounterModeInExpectation) {
  const Sizes sizes;  // l(o) = 1000
  const ObjectId o{0};
  const int kQueries = 5000;
  const std::int64_t kCost = 100;  // propose w.p. 0.1 per query

  LoadManager exact{{/*randomized=*/false, /*lazy=*/true}, util::Rng{7}};
  LoadManager randomized{{/*randomized=*/true, /*lazy=*/true},
                         util::Rng{7}};
  std::int64_t exact_count = 0;
  std::int64_t randomized_count = 0;
  for (int i = 0; i < kQueries; ++i) {
    exact_count += proposals_in(exact.consider(
        query_costing(kCost), {o}, sizes.size_fn(), sizes.cost_fn()));
    randomized_count += proposals_in(randomized.consider(
        query_costing(kCost), {o}, sizes.size_fn(), sizes.cost_fn()));
  }
  // The exact rule: 5000 queries * 100 B / 1000 B = 500 proposals.
  EXPECT_EQ(exact_count, kQueries * kCost / 1000);
  // Binomial(5000, 0.1): mean 500, sd ~21. A 20% band is ~4.7 sd — tight
  // enough to catch a wrong probability, loose enough to never flake on
  // this fixed seed.
  EXPECT_NEAR(static_cast<double>(randomized_count),
              static_cast<double>(exact_count), 0.2 * exact_count);
}

TEST(LoadManagerTest, ForgetDropsTheCounter) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const Sizes sizes;
  const ObjectId o{0};
  const auto feed = [&] {
    return proposals_in(lm.consider(query_costing(400), {o},
                                    sizes.size_fn(), sizes.cost_fn()));
  };
  EXPECT_EQ(feed(), 0);  // 400
  EXPECT_EQ(feed(), 0);  // 800
  lm.forget(o);          // load or eviction resets the shipped-cost memory
  EXPECT_EQ(feed(), 0);  // 400 again — without forget() this would propose
  EXPECT_EQ(feed(), 0);  // 800
  EXPECT_EQ(feed(), 1);  // 1200: the rule re-arms from zero
}

TEST(LoadManagerTest, LazyModeBatchesSiblingCandidates) {
  const Sizes sizes;
  // A query rich enough to fund both missing objects at once.
  const workload::Query q = query_costing(2000);

  LoadManager lazy{{/*randomized=*/false, /*lazy=*/true}, util::Rng{3}};
  const auto lazy_p = lazy.consider(q, {ObjectId{0}, ObjectId{1}},
                                    sizes.size_fn(), sizes.cost_fn());
  ASSERT_EQ(lazy_p.batches.size(), 1u);  // siblings decided together
  EXPECT_EQ(lazy_p.batches[0].size(), 2u);

  LoadManager eager{{/*randomized=*/false, /*lazy=*/false}, util::Rng{3}};
  const auto eager_p = eager.consider(q, {ObjectId{0}, ObjectId{1}},
                                      sizes.size_fn(), sizes.cost_fn());
  ASSERT_EQ(eager_p.batches.size(), 2u);  // one decision per candidate
  EXPECT_EQ(eager_p.batches[0].size(), 1u);
  EXPECT_EQ(eager_p.batches[1].size(), 1u);
}

TEST(LoadManagerTest, CandidatesCarrySizeAndLoadCost) {
  LoadManager lm{{/*randomized=*/false, /*lazy=*/true}, util::Rng{1}};
  const auto p = lm.consider(
      query_costing(5000), {ObjectId{42}},
      [](ObjectId) { return Bytes{1234}; },
      [](ObjectId) { return Bytes{1234 + 766}; });
  ASSERT_EQ(p.batches.size(), 1u);
  ASSERT_EQ(p.batches[0].size(), 1u);
  EXPECT_EQ(p.batches[0][0].id, ObjectId{42});
  EXPECT_EQ(p.batches[0][0].size.count(), 1234);
  EXPECT_EQ(p.batches[0][0].load_cost.count(), 1234 + 766);
}

}  // namespace
}  // namespace delta::core
