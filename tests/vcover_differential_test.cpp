// Incremental-vs-rebuild differential for the vertex-cover data plane: a
// long-lived BipartiteCoverSolver maintained incrementally through
// randomized update/query churn must produce covers byte-identical to a
// solver rebuilt from scratch on the current graph at every step. The
// cover is the minimal source-side min cut — a flow-independent property
// of the network — so any divergence means the incremental maintenance
// (flow cancellation on removal, weight raises, slot recycling) corrupted
// the graph. This is the property VCoverPolicy's per-decision sublinearity
// rests on: decisions may reuse yesterday's flow precisely because reuse
// is observationally identical to a full rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/bipartite_cover.h"
#include "util/rng.h"

namespace delta::flow {
namespace {

using Solver = BipartiteCoverSolver;

/// Stable-label mirror of the live graph (the rebuild recipe).
struct Mirror {
  struct Update {
    std::int64_t label;
    Capacity weight;
    Solver::UpdateNode node;  // handle into the incremental solver
  };
  struct Query {
    std::int64_t label;
    Capacity weight;
    std::vector<std::int64_t> update_labels;  // sorted, unique
    Solver::QueryNode node;
  };
  std::vector<Update> updates;  // insertion order = label order
  std::vector<Query> queries;
};

/// Cover as sorted label lists — the representation compared across
/// solvers (handles are solver-specific; labels are not).
struct CoverLabels {
  std::vector<std::int64_t> updates;
  std::vector<std::int64_t> queries;
  Capacity weight = 0;
  friend bool operator==(const CoverLabels&, const CoverLabels&) = default;
};

template <typename Node, typename Entries>
std::int64_t label_of(Node node, const Entries& entries) {
  for (const auto& e : entries) {
    if (e.node == node) return e.label;
  }
  ADD_FAILURE() << "cover selected a vertex outside the mirror";
  return -1;
}

CoverLabels labels_of(const Solver::Cover& cover, const Mirror& mirror) {
  CoverLabels out;
  out.weight = cover.weight;
  for (const auto u : cover.updates) {
    out.updates.push_back(label_of(u, mirror.updates));
  }
  for (const auto q : cover.queries) {
    out.queries.push_back(label_of(q, mirror.queries));
  }
  std::sort(out.updates.begin(), out.updates.end());
  std::sort(out.queries.begin(), out.queries.end());
  return out;
}

/// Rebuilds a fresh solver from the mirror and returns its cover labels.
CoverLabels rebuild_cover(const Mirror& mirror) {
  Solver fresh;
  std::vector<std::pair<std::int64_t, Solver::UpdateNode>> handles;
  Mirror rebuilt;
  for (const auto& u : mirror.updates) {
    Mirror::Update copy = u;
    copy.node = fresh.add_update(u.weight);
    rebuilt.updates.push_back(copy);
    handles.emplace_back(u.label, copy.node);
  }
  for (const auto& q : mirror.queries) {
    Mirror::Query copy = q;
    copy.node = fresh.add_query(q.weight);
    for (const std::int64_t ul : q.update_labels) {
      const auto it = std::find_if(
          handles.begin(), handles.end(),
          [ul](const auto& h) { return h.first == ul; });
      if (it == handles.end()) {
        ADD_FAILURE() << "dangling edge in mirror";
        continue;
      }
      fresh.connect(it->second, copy.node);
    }
    rebuilt.queries.push_back(copy);
  }
  const auto& cover = fresh.compute();
  EXPECT_TRUE(fresh.last_cover_is_valid());
  return labels_of(cover, rebuilt);
}

TEST(VCoverDifferentialTest, IncrementalCoverMatchesFullRebuildUnderChurn) {
  Solver solver;
  Mirror mirror;
  util::Rng rng{0xD1FF};
  std::int64_t next_label = 0;

  for (int step = 0; step < 400; ++step) {
    const std::int64_t op = rng.uniform_int(0, 9);
    if (op <= 3 || mirror.updates.empty()) {
      // Add an update vertex.
      Mirror::Update u;
      u.label = next_label++;
      u.weight = rng.uniform_int(1, 50);
      u.node = solver.add_update(u.weight);
      mirror.updates.push_back(u);
    } else if (op <= 6) {
      // Add a query vertex wired to a random subset of live updates.
      Mirror::Query q;
      q.label = next_label++;
      q.weight = rng.uniform_int(1, 50);
      q.node = solver.add_query(q.weight);
      const std::int64_t fanout = rng.uniform_int(
          1, std::min<std::int64_t>(
                 4, static_cast<std::int64_t>(mirror.updates.size())));
      for (std::int64_t f = 0; f < fanout; ++f) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(mirror.updates.size()) - 1));
        const Mirror::Update& u = mirror.updates[pick];
        if (std::find(q.update_labels.begin(), q.update_labels.end(),
                      u.label) != q.update_labels.end()) {
          continue;  // keep edges unique
        }
        solver.connect(u.node, q.node);
        q.update_labels.push_back(u.label);
      }
      std::sort(q.update_labels.begin(), q.update_labels.end());
      mirror.queries.push_back(std::move(q));
    } else if (op == 7) {
      // Raise a random vertex's weight in place (the group-merge path).
      if (rng.bernoulli(0.5) && !mirror.queries.empty()) {
        auto& q = mirror.queries[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(mirror.queries.size()) - 1))];
        const Capacity delta = rng.uniform_int(1, 20);
        solver.add_weight(q.node, delta);
        q.weight += delta;
      } else {
        auto& u = mirror.updates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(mirror.updates.size()) - 1))];
        const Capacity delta = rng.uniform_int(1, 20);
        solver.add_weight(u.node, delta);
        u.weight += delta;
      }
    } else if (op == 8) {
      // Remove an update (ship / evict): flow through it is cancelled and
      // its edges vanish from every query's neighborhood.
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mirror.updates.size()) - 1));
      const std::int64_t label = mirror.updates[pick].label;
      solver.remove_update(mirror.updates[pick].node);
      mirror.updates.erase(mirror.updates.begin() +
                           static_cast<std::ptrdiff_t>(pick));
      for (auto& q : mirror.queries) {
        q.update_labels.erase(std::remove(q.update_labels.begin(),
                                          q.update_labels.end(), label),
                              q.update_labels.end());
      }
    } else if (!mirror.queries.empty()) {
      // Force-remove a query (the forget-shipped-queries ablation path).
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mirror.queries.size()) - 1));
      solver.remove_query_force(mirror.queries[pick].node);
      mirror.queries.erase(mirror.queries.begin() +
                           static_cast<std::ptrdiff_t>(pick));
    }

    // Every step: incremental cover vs full-rebuild cover, byte-identical.
    const CoverLabels incremental = labels_of(solver.compute(), mirror);
    ASSERT_TRUE(solver.last_cover_is_valid());
    const CoverLabels rebuilt = rebuild_cover(mirror);
    ASSERT_EQ(incremental, rebuilt) << "diverged at churn step " << step;
  }
}

}  // namespace
}  // namespace delta::flow
