// Iteration-order-independence regression suite — pins the determinism
// audit behind the FlatMap migration (ISSUE 3).
//
// FlatMap visits entries in slot order, which depends on the
// insertion/erasure history. Every policy component that folds over a map
// must therefore produce decisions that do NOT depend on that order:
// arg-min folds carry explicit (value, id) tie-breaks, and batch decisions
// are totally ordered by an explicit sort. This suite builds the *same
// logical cache state* through different (shuffled, churned) insertion
// histories — so the underlying tables have genuinely different slot
// layouts — and asserts the observable decisions are identical. Together
// with tests/sim_golden_test.cpp (which pins the end-to-end figures), this
// is the regression net for "no policy decision depends on hash iteration
// order".
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache_store.h"
#include "cache/gds.h"
#include "cache/lru.h"
#include "util/rng.h"

namespace delta::cache {
namespace {

constexpr Bytes kCapacity{10'000};

struct CacheWorld {
  CacheStore store{kCapacity};
  GreedyDualSize gds{&store};

  // gds holds a pointer to the sibling store: the world must stay put.
  CacheWorld() = default;
  CacheWorld(const CacheWorld&) = delete;
  CacheWorld& operator=(const CacheWorld&) = delete;

  /// Loads `id` through the policy path so store and policy stay in sync.
  void load(ObjectId id, Bytes size) {
    std::vector<LoadCandidate> batch{{id, size, size}};
    const BatchDecision& d = gds.decide_batch(batch);
    for (const ObjectId v : d.evict) store.evict(v);
    for (const ObjectId o : d.load) store.load(o, size);
  }
  void evict(ObjectId id) {
    store.evict(id);
    gds.forget(id);
  }
};

/// Populates a world with objects 0..9 (1000 B each), arriving in the given
/// order, with extra churn entries loaded and evicted along the way so the
/// table layout (probe chains, backward shifts) differs per history.
void populate_world(CacheWorld& w, const std::vector<std::int64_t>& order,
                    const std::vector<std::int64_t>& churn) {
  std::size_t churn_cursor = 0;
  for (const std::int64_t id : order) {
    // Interleave a transient object to scramble slot layout.
    if (churn_cursor < churn.size()) {
      const ObjectId transient{100 + churn[churn_cursor++]};
      w.load(transient, Bytes{10});
      w.evict(transient);
    }
    w.load(ObjectId{id}, Bytes{1000});
  }
}

std::vector<std::int64_t> base_order() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
}

TEST(IterationOrderTest, GdsBatchDecisionIndependentOfInsertionOrder) {
  std::vector<std::int64_t> shuffled = base_order();
  util::Rng rng{99};
  rng.shuffle(shuffled);

  CacheWorld a;
  populate_world(a, base_order(), {});
  CacheWorld b;
  populate_world(b, shuffled, {5, 3, 7, 1, 9, 0, 2});

  // Same logical state: same residents, same credits (all entered with the
  // same cost ratio at inflation 0 and were never accessed).
  ASSERT_EQ(a.store.object_count(), b.store.object_count());
  for (const std::int64_t id : base_order()) {
    ASSERT_TRUE(a.store.contains(ObjectId{id}));
    ASSERT_TRUE(b.store.contains(ObjectId{id}));
    ASSERT_EQ(a.gds.credit_of(ObjectId{id}), b.gds.credit_of(ObjectId{id}));
  }

  // A batch that forces evictions: both worlds must pick identical victims
  // in identical order, regardless of their (different) table layouts.
  std::vector<LoadCandidate> batch{{ObjectId{50}, Bytes{2500}, Bytes{2500}},
                                   {ObjectId{51}, Bytes{2500}, Bytes{2500}}};
  const BatchDecision da = a.gds.decide_batch(batch);
  const BatchDecision db = b.gds.decide_batch(batch);
  EXPECT_EQ(da.load, db.load);
  EXPECT_EQ(da.evict, db.evict);
  EXPECT_FALSE(da.evict.empty());  // the batch must actually displace
}

TEST(IterationOrderTest, GdsShedOverflowIndependentOfInsertionOrder) {
  std::vector<std::int64_t> shuffled = base_order();
  util::Rng rng{123};
  rng.shuffle(shuffled);

  CacheWorld a;
  populate_world(a, base_order(), {2, 4, 6});
  CacheWorld b;
  populate_world(b, shuffled, {8, 1});

  // Touch the same subset in both worlds so credits diverge identically.
  for (const std::int64_t id : {3, 7, 7, 1}) {
    a.gds.on_access(ObjectId{id});
    b.gds.on_access(ObjectId{id});
  }
  // Grow one object past capacity, then shed: victim sequences must match.
  a.store.grow(ObjectId{4}, Bytes{2500});
  b.store.grow(ObjectId{4}, Bytes{2500});
  const std::vector<ObjectId> va = a.gds.shed_overflow();
  const std::vector<ObjectId> vb = b.gds.shed_overflow();
  EXPECT_EQ(va, vb);
  EXPECT_FALSE(va.empty());
}

TEST(IterationOrderTest, LruVictimIndependentOfInsertionOrder) {
  // Two LRU worlds with identical access clocks but different map layouts:
  // load order A is sequential, order B interleaves erases. The clock
  // stamps are assigned by explicit on_access calls below, so last_use_
  // CONTENT matches while slot order differs.
  CacheStore store_a{kCapacity};
  CacheStore store_b{kCapacity};
  LruPolicy lru_a{&store_a};
  LruPolicy lru_b{&store_b};

  const auto load = [](CacheStore& store, LruPolicy& lru, std::int64_t id) {
    std::vector<LoadCandidate> batch{{ObjectId{id}, Bytes{1000}, Bytes{1000}}};
    const BatchDecision& d = lru.decide_batch(batch);
    ASSERT_TRUE(d.evict.empty());
    for (const ObjectId o : d.load) store.load(o, Bytes{1000});
  };
  for (std::int64_t id = 0; id < 8; ++id) load(store_a, lru_a, id);
  // World B: same ids, loaded with interleaved transient churn.
  for (std::int64_t id = 7; id >= 0; --id) {
    load(store_b, lru_b, 100 + id);  // transient
    store_b.evict(ObjectId{100 + id});
    lru_b.forget(ObjectId{100 + id});
    load(store_b, lru_b, id);
  }
  // Equalize the recency stamps with one identical access pass.
  for (std::int64_t id = 0; id < 8; ++id) {
    lru_a.on_access(ObjectId{id});
    lru_b.on_access(ObjectId{id});
  }
  // Overflow both: the eviction sequences must be identical (oldest first,
  // ties by id — never by slot position).
  store_a.grow(ObjectId{3}, Bytes{2100});
  store_b.grow(ObjectId{3}, Bytes{2100});
  EXPECT_EQ(lru_a.shed_overflow(), lru_b.shed_overflow());
}

TEST(IterationOrderTest, ResidentVisitationFoldsAreOrderInsensitive) {
  std::vector<std::int64_t> shuffled = base_order();
  util::Rng rng{7};
  rng.shuffle(shuffled);
  CacheWorld a;
  populate_world(a, base_order(), {1, 2, 3, 4});
  CacheWorld b;
  populate_world(b, shuffled, {});

  // Order-independent folds over for_each_resident agree...
  Bytes sum_a, sum_b;
  std::int64_t count_a = 0, count_b = 0;
  a.store.for_each_resident([&](ObjectId, Bytes s) {
    sum_a += s;
    ++count_a;
  });
  b.store.for_each_resident([&](ObjectId, Bytes s) {
    sum_b += s;
    ++count_b;
  });
  EXPECT_EQ(sum_a, sum_b);
  EXPECT_EQ(count_a, count_b);

  // ...and the snapshots contain the same ids (as sets) even though the
  // visit order may differ between the two histories.
  std::vector<ObjectId> ra = a.store.resident_objects();
  std::vector<ObjectId> rb = b.store.resident_objects();
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb);
}

}  // namespace
}  // namespace delta::cache
