// Shared accounting-invariant checks for the per-endpoint / aggregate
// metering architecture. One definition, asserted from the net-layer tests
// (raw transport), the multi-cache sim tests, and the parallel-engine tests
// — the invariant itself is the contract both layers advertise.
#pragma once

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "net/transport.h"
#include "sim/multi_cache.h"

namespace delta::testing {

/// Per-endpoint meters partition the aggregate: for every mechanism, the
/// bytes and message counts summed over all registered endpoints reproduce
/// the transport's aggregate meter exactly (every send is accounted to
/// exactly one endpoint meter).
inline void ExpectEndpointMetersPartitionAggregate(const net::Transport& t) {
  for (std::size_t i = 0; i < net::kMechanismCount; ++i) {
    const auto mech = static_cast<net::Mechanism>(i);
    Bytes bytes_sum;
    std::int64_t count_sum = 0;
    for (const std::string& name : t.endpoint_names()) {
      bytes_sum += t.endpoint_meter(name).total(mech);
      count_sum += t.endpoint_meter(name).message_count(mech);
    }
    EXPECT_EQ(bytes_sum, t.meter().total(mech)) << net::to_string(mech);
    EXPECT_EQ(count_sum, t.meter().message_count(mech))
        << net::to_string(mech);
  }
}

/// Per-endpoint RunResults partition the combined figures: total and
/// post-warm-up traffic (overall and per mechanism) and the decision
/// counters sum exactly to the combined view, because all figure traffic is
/// delivered to cache endpoints. Overhead only under-counts: request and
/// eviction chatter is delivered to the server endpoint, which no
/// per-endpoint result owns.
inline void ExpectPerEndpointResultsPartitionCombined(
    const sim::MultiRunResult& multi) {
  Bytes total_sum;
  Bytes postwarmup_sum;
  Bytes overhead_sum;
  std::array<Bytes, 3> by_mechanism_sum{};
  std::int64_t queries_sum = 0;
  std::int64_t at_cache_sum = 0;
  std::int64_t shipped_sum = 0;
  std::int64_t loaded_sum = 0;
  for (const sim::RunResult& r : multi.per_endpoint) {
    total_sum += r.total_traffic;
    postwarmup_sum += r.postwarmup_traffic;
    overhead_sum += r.overhead_traffic;
    for (std::size_t m = 0; m < 3; ++m) {
      by_mechanism_sum[m] += r.postwarmup_by_mechanism[m];
    }
    queries_sum += r.queries;
    at_cache_sum += r.cache_fresh + r.cache_after_updates;
    shipped_sum += r.shipped;
    loaded_sum += r.objects_loaded;
  }
  EXPECT_EQ(total_sum, multi.combined.total_traffic);
  EXPECT_EQ(postwarmup_sum, multi.combined.postwarmup_traffic);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(by_mechanism_sum[m], multi.combined.postwarmup_by_mechanism[m])
        << "mechanism " << m;
  }
  EXPECT_EQ(queries_sum, multi.combined.queries);
  EXPECT_EQ(at_cache_sum,
            multi.combined.cache_fresh + multi.combined.cache_after_updates);
  EXPECT_EQ(shipped_sum, multi.combined.shipped);
  EXPECT_EQ(loaded_sum, multi.combined.objects_loaded);
  EXPECT_LE(overhead_sum, multi.combined.overhead_traffic);
}

}  // namespace delta::testing
