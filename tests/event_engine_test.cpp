// Event-driven engine tests: zero-latency equivalence with the synchronous
// multi-endpoint engine on a non-golden world, WAN yardsticks (simulated
// response times, per-cache staleness, uplink contention) being nonzero,
// deterministic across repeated runs, and divergent across asymmetric
// links — the scenario axis the synchronous engines cannot express.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "meter_invariants.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 11) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 1200;
  p.trace.update_count = 1200;
  p.trace.postwarmup_query_gb = 5.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

/// Two caches on asymmetric paths: cache-0 on a LAN, cache-1 across a
/// congested WAN (16 Mbit/s, 80 ms RTT) — the wan_latency_demo topology.
EventEngineOptions wan_options() {
  EventEngineOptions options;
  options.seconds_per_event = 0.002;
  options.default_link = net::LinkModel{125e6, 0.0004};  // 1 Gbit/s LAN
  options.cache_links = {net::LinkModel{125e6, 0.0004},
                         net::LinkModel{2e6, 0.080}};
  return options;
}

void expect_run_results_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.cache_fresh, b.cache_fresh);
  EXPECT_EQ(a.cache_after_updates, b.cache_after_updates);
  EXPECT_EQ(a.shipped, b.shipped);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  EXPECT_EQ(a.postwarmup_traffic, b.postwarmup_traffic);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(a.postwarmup_by_mechanism[m], b.postwarmup_by_mechanism[m]);
  }
  EXPECT_EQ(a.overhead_traffic, b.overhead_traffic);
}

// Beyond the pinned golden world (sim_golden_test), the zero-latency event
// engine must agree with the synchronous multi engine on any world — here
// a different seed/size, N=3, both policies with nontrivial caching.
TEST(EventEngineTest, ZeroLatencyMatchesSynchronousEngineByteForByte) {
  const World setup{small_params()};
  for (const PolicyKind kind : {PolicyKind::kVCover, PolicyKind::kBenefit}) {
    const MultiRunResult sync =
        run_one_multi(kind, setup.trace(), setup.cache_capacity(),
                      setup.params(), 3, workload::SplitStrategy::kRoundRobin);
    const EventRunResult event =
        run_one_event(kind, setup.trace(), setup.cache_capacity(),
                      setup.params(), 3, workload::SplitStrategy::kRoundRobin);
    SCOPED_TRACE(to_string(kind));
    expect_run_results_equal(event.replay.combined, sync.combined);
    ASSERT_EQ(event.replay.per_endpoint.size(), sync.per_endpoint.size());
    for (std::size_t e = 0; e < sync.per_endpoint.size(); ++e) {
      expect_run_results_equal(event.replay.per_endpoint[e],
                               sync.per_endpoint[e]);
    }
    // Instant links: no queueing, no staleness, responses collapse to the
    // execution surcharges.
    EXPECT_EQ(event.staleness_seconds.max(), 0.0);
    EXPECT_EQ(event.dispatch_lag_seconds.max(), 0.0);
    EXPECT_EQ(event.server_uplink.total_queue_wait, 0.0);
  }
}

TEST(EventEngineTest, WanYardsticksAreNonzero) {
  const World setup{small_params()};
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, wan_options());

  // Response times: every post-warm-up query produced a sample, and the
  // tail reflects genuine transfer/queueing time above the exec floor.
  EXPECT_GT(r.response_seconds.count(), 0);
  EXPECT_EQ(r.response_seconds.count(),
            r.replay.combined.postwarmup_latency.count());
  EXPECT_GT(r.response_p50(), 0.0);
  EXPECT_GE(r.response_p99(), r.response_p50());
  EXPECT_GT(r.response_seconds.max(), 0.10);  // beyond any pure-exec path

  // Staleness: invalidation notices took measurable time to reach caches.
  EXPECT_GT(r.staleness_seconds.count(), 0);
  EXPECT_GT(r.staleness_seconds.mean(), 0.0);

  // Uplink contention: the repository's egress links were busy and at some
  // point messages queued behind each other.
  EXPECT_GT(r.server_uplink.sends, 0);
  EXPECT_GT(r.server_uplink.busy_seconds, 0.0);

  // The accounting identities survive the asynchronous replay.
  delta::testing::ExpectPerEndpointResultsPartitionCombined(r.replay);
}

// The WAN cache must see strictly worse coherence latency than the LAN
// cache — per-cache divergence no analytic proxy could produce.
TEST(EventEngineTest, AsymmetricLinksDivergePerCacheStaleness) {
  const World setup{small_params()};
  // Replica subscribes every cache to all updates, so both endpoints
  // accumulate dense staleness samples over identical notice streams.
  const EventRunResult r = run_one_event(
      PolicyKind::kReplica, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, wan_options());
  ASSERT_EQ(r.per_endpoint.size(), 2u);
  const auto& lan = r.per_endpoint[0];
  const auto& wan = r.per_endpoint[1];
  EXPECT_GT(lan.staleness_seconds.count(), 0);
  EXPECT_GT(wan.staleness_seconds.count(), 0);
  EXPECT_GT(wan.staleness_seconds.mean(), 10.0 * lan.staleness_seconds.mean());
}

// Discrete-event determinism: identical runs produce identical yardsticks
// down to the last bit (stable (time, seq) order, no wall-clock leakage).
TEST(EventEngineTest, WanRunIsDeterministicAcrossRepeatedRuns) {
  const World setup{small_params()};
  const auto run = [&] {
    return run_one_event(PolicyKind::kVCover, setup.trace(),
                         setup.cache_capacity(), setup.params(), 2,
                         workload::SplitStrategy::kHashByRegion,
                         wan_options());
  };
  const EventRunResult a = run();
  const EventRunResult b = run();
  expect_run_results_equal(a.replay.combined, b.replay.combined);
  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_EQ(a.response_p50(), b.response_p50());
  EXPECT_EQ(a.response_p99(), b.response_p99());
  EXPECT_EQ(a.staleness_seconds.count(), b.staleness_seconds.count());
  EXPECT_EQ(a.staleness_seconds.mean(), b.staleness_seconds.mean());
  EXPECT_EQ(a.server_uplink.sends, b.server_uplink.sends);
  EXPECT_EQ(a.server_uplink.busy_seconds, b.server_uplink.busy_seconds);
  EXPECT_EQ(a.server_uplink.total_queue_wait, b.server_uplink.total_queue_wait);
  EXPECT_EQ(a.sim_duration_seconds, b.sim_duration_seconds);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
}

void expect_event_runs_identical(const EventRunResult& a,
                                 const EventRunResult& b) {
  expect_run_results_equal(a.replay.combined, b.replay.combined);
  ASSERT_EQ(a.replay.per_endpoint.size(), b.replay.per_endpoint.size());
  for (std::size_t e = 0; e < a.replay.per_endpoint.size(); ++e) {
    SCOPED_TRACE(::testing::Message() << "endpoint " << e);
    expect_run_results_equal(a.replay.per_endpoint[e],
                             b.replay.per_endpoint[e]);
    EXPECT_EQ(a.per_endpoint[e].response_seconds.count(),
              b.per_endpoint[e].response_seconds.count());
    EXPECT_EQ(a.per_endpoint[e].response_seconds.mean(),
              b.per_endpoint[e].response_seconds.mean());
    EXPECT_EQ(a.per_endpoint[e].staleness_seconds.count(),
              b.per_endpoint[e].staleness_seconds.count());
    EXPECT_EQ(a.per_endpoint[e].staleness_seconds.mean(),
              b.per_endpoint[e].staleness_seconds.mean());
    EXPECT_EQ(a.per_endpoint[e].staleness_seconds.max(),
              b.per_endpoint[e].staleness_seconds.max());
  }
  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.variance(), b.response_seconds.variance());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_EQ(a.response_p50(), b.response_p50());
  EXPECT_EQ(a.response_p99(), b.response_p99());
  EXPECT_EQ(a.dispatch_lag_seconds.count(), b.dispatch_lag_seconds.count());
  EXPECT_EQ(a.dispatch_lag_seconds.mean(), b.dispatch_lag_seconds.mean());
  EXPECT_EQ(a.staleness_seconds.count(), b.staleness_seconds.count());
  EXPECT_EQ(a.staleness_seconds.mean(), b.staleness_seconds.mean());
  EXPECT_EQ(a.staleness_seconds.max(), b.staleness_seconds.max());
  EXPECT_EQ(a.server_uplink.sends, b.server_uplink.sends);
  EXPECT_EQ(a.server_uplink.busy_seconds, b.server_uplink.busy_seconds);
  EXPECT_EQ(a.server_uplink.total_queue_wait,
            b.server_uplink.total_queue_wait);
  EXPECT_EQ(a.server_uplink.max_queue_wait, b.server_uplink.max_queue_wait);
  EXPECT_EQ(a.sim_duration_seconds, b.sim_duration_seconds);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
}

// The conservative per-partition parallel engine must be byte-identical to
// the sequential (T=1) engine for every thread count, on both the
// zero-latency and the 40 ms WAN configs — every yardstick, every counter,
// every byte. This is the determinism contract of the parallel DES: the
// partitions are replicas whose inbound messages are locally generated, so
// the merge in canonical order reproduces the T=1 stream exactly.
TEST(EventEngineTest, ParallelEngineByteIdenticalToSequentialAcrossThreads) {
  const World setup{small_params()};
  for (const bool wan : {false, true}) {
    EventEngineOptions base = wan ? wan_options() : EventEngineOptions{};
    const auto run = [&](std::size_t threads) {
      EventEngineOptions options = base;
      options.parallel.num_threads = threads;
      return run_one_event(PolicyKind::kVCover, setup.trace(),
                           setup.cache_capacity(), setup.params(), 4,
                           workload::SplitStrategy::kHashByRegion, options);
    };
    const EventRunResult sequential = run(1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(::testing::Message()
                   << (wan ? "wan" : "zero-latency") << " T=" << threads);
      expect_event_runs_identical(run(threads), sequential);
    }
  }
}

// Deliberately skewed routing (~80% of queries on endpoint 0 of 4): the
// LPT packing and work stealing that keep such a straggler from
// serializing the join must not change a single bit of the results — the
// partition stays the atomic determinism unit, stealing only moves which
// thread replays it. Pins the ISSUE 9 scheduling work to the engine's
// byte-identity contract under the exact load shape it exists for.
TEST(EventEngineTest, SkewedRoutingBitIdenticalAcrossThreadsWithStealing) {
  const World setup{small_params()};
  constexpr std::size_t kEndpoints = 4;
  std::vector<std::uint32_t> hot(setup.trace().queries.size(), 0);
  for (std::size_t qi = 0; qi < hot.size(); ++qi) {
    // 8 of 10 queries to endpoint 0, the rest dealt over endpoints 1..3.
    hot[qi] = qi % 10 < 8 ? 0 : 1 + static_cast<std::uint32_t>(qi % 3);
  }
  const auto run = [&](std::size_t threads) {
    EventEngineOptions options = wan_options();
    options.parallel.num_threads = threads;
    return run_policy_event(
        setup.trace(), kEndpoints, workload::SplitStrategy::kRoundRobin,
        [&](core::CacheNode& cache, std::size_t) {
          return make_policy(PolicyKind::kVCover, cache, setup.trace(),
                             setup.cache_capacity(), setup.params());
        },
        options, &hot);
  };
  const EventRunResult sequential = run(1);
  EXPECT_EQ(sequential.steal_count, 0);  // T=1 replays inline, no thieves
  // The measured balance reflects the skew: 80% on one of four endpoints.
  EXPECT_NEAR(sequential.shard_balance, 3.2, 0.05);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "T=" << threads);
    const EventRunResult parallel = run(threads);
    expect_event_runs_identical(parallel, sequential);
    EXPECT_EQ(parallel.shard_balance, sequential.shard_balance);
    EXPECT_EQ(parallel.prefiltered_updates, sequential.prefiltered_updates);
  }
}

// Per-partition update prefiltering must be invisible in every yardstick:
// the updates it skips are exactly those whose ingest the full replay
// would have made an unobservable repository-size bump (object outside the
// partition's touch set — never queried there, never registered, no notice
// fires). Replayed with the filter off vs on, every counter, byte total,
// and latency/staleness sample must match bit-for-bit; only the engine's
// own prefiltered_updates accounting may differ.
TEST(EventEngineTest, PrefilterEquivalentToFullTapeReplay) {
  // More objects than any one partition's queries can touch, so the filter
  // provably has something to skip for subscription != kAll policies.
  SetupParams params = small_params(17);
  params.object_target = 120;
  const World setup{params};
  for (const PolicyKind kind :
       {PolicyKind::kVCover, PolicyKind::kSOptimal, PolicyKind::kNoCache,
        PolicyKind::kReplica}) {
    SCOPED_TRACE(to_string(kind));
    const auto run = [&](bool prefilter) {
      EventEngineOptions options = wan_options();
      options.prefilter_updates = prefilter;
      return run_one_event(kind, setup.trace(), setup.cache_capacity(),
                           setup.params(), 4,
                           workload::SplitStrategy::kHashByRegion, options);
    };
    const EventRunResult full = run(false);
    const EventRunResult filtered = run(true);
    EXPECT_EQ(full.prefiltered_updates, 0);
    if (kind == PolicyKind::kReplica) {
      // kAll subscription: every update is observable, nothing to skip.
      EXPECT_EQ(filtered.prefiltered_updates, 0);
    } else {
      EXPECT_GT(filtered.prefiltered_updates, 0);
    }
    expect_event_runs_identical(filtered, full);
  }
}

// Partition invariants of the parallel engine: per-cache yardstick streams
// partition the combined streams (every sample belongs to exactly one
// partition), and the per-endpoint replay results partition the combined
// accounting exactly as in the synchronous engines.
TEST(EventEngineTest, ParallelPartitionsPartitionCombinedYardsticks) {
  const World setup{small_params()};
  EventEngineOptions options = wan_options();
  options.parallel.num_threads = 4;
  const EventRunResult r = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, options);

  std::int64_t response_samples = 0;
  std::int64_t staleness_samples = 0;
  double staleness_max = 0.0;
  for (const EndpointEventYardsticks& endpoint : r.per_endpoint) {
    response_samples += endpoint.response_seconds.count();
    staleness_samples += endpoint.staleness_seconds.count();
    staleness_max = std::max(staleness_max, endpoint.staleness_seconds.max());
  }
  EXPECT_EQ(response_samples, r.response_seconds.count());
  EXPECT_EQ(response_samples, r.replay.combined.postwarmup_latency.count());
  EXPECT_EQ(response_samples,
            static_cast<std::int64_t>(r.response_sketch.size()));
  EXPECT_EQ(staleness_samples, r.staleness_seconds.count());
  EXPECT_EQ(staleness_max, r.staleness_seconds.max());
  delta::testing::ExpectPerEndpointResultsPartitionCombined(r.replay);
}

// Slower links can only push simulated completion later, never earlier.
TEST(EventEngineTest, WanResponseTimesDominateZeroLatencyResponses) {
  const World setup{small_params()};
  const EventRunResult zero = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin);
  const EventRunResult wan = run_one_event(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 2, workload::SplitStrategy::kRoundRobin, wan_options());
  EXPECT_GT(wan.response_seconds.mean(), zero.response_seconds.mean());
  EXPECT_GE(wan.response_p99(), zero.response_p99());
  EXPECT_GT(wan.sim_duration_seconds, 0.0);
}

}  // namespace
}  // namespace delta::sim
