#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "htm/partition_map.h"
#include "storage/catalog.h"
#include "storage/density_model.h"
#include "storage/record_store.h"
#include "util/rng.h"

namespace delta::storage {
namespace {

constexpr int kLevel = 4;

std::shared_ptr<DensityModel> make_density(std::uint64_t seed = 1) {
  auto d = std::make_shared<DensityModel>(kLevel, seed);
  d->scale_to_total_rows(1e7);
  return d;
}

std::shared_ptr<const htm::PartitionMap> make_map(const DensityModel& d,
                                                  std::size_t target = 30) {
  return std::make_shared<htm::PartitionMap>(
      htm::PartitionMap::build(kLevel, d.weights(), target));
}

TEST(DensityModelTest, DeterministicForSeed) {
  DensityModel a{kLevel, 42};
  DensityModel b{kLevel, 42};
  EXPECT_EQ(a.weights(), b.weights());
  DensityModel c{kLevel, 43};
  EXPECT_NE(a.weights(), c.weights());
}

TEST(DensityModelTest, ZeroOutsideFootprint) {
  const auto d = make_density();
  // The antipode of the footprint center must have zero density.
  const htm::Vec3 anti =
      htm::from_ra_dec(185.0 - 180.0, -32.0);
  const htm::HtmId t = htm::locate(anti, kLevel);
  EXPECT_DOUBLE_EQ(d->rows_in_base_trixel(htm::index_in_level(t)), 0.0);
}

TEST(DensityModelTest, ScalingPreservesShape) {
  DensityModel d{kLevel, 7};
  const auto before = d.weights();
  d.scale_to_total_rows(5e6);
  EXPECT_NEAR(d.total_rows(), 5e6, 1.0);
  double sum = 0.0;
  for (const double w : d.weights()) sum += w;
  EXPECT_NEAR(sum, 5e6, 1e-3);
  // Ratios unchanged where nonzero.
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] > 0.0) {
      EXPECT_NEAR(d.weights()[i] / before[i],
                  d.weights()[0] > 0 && before[0] > 0
                      ? d.weights()[0] / before[0]
                      : d.weights()[i] / before[i],
                  1e-9);
    }
  }
}

TEST(DensityModelTest, HeavyTailedPartitionSizes) {
  const auto d = make_density(11);
  const auto map = make_map(*d, 68);
  double min_pos = 1e18;
  double max_w = 0.0;
  for (std::size_t i = 0; i < map->partition_count(); ++i) {
    const double w = map->partition_weight(ObjectId{static_cast<std::int64_t>(i)});
    if (w > 0.0) min_pos = std::min(min_pos, w);
    max_w = std::max(max_w, w);
  }
  // The paper's 68 objects span 50 MB to 90 GB: three orders of magnitude.
  EXPECT_GT(max_w / min_pos, 50.0);
}

TEST(SkyCatalogTest, TotalBytesMatchesDensity) {
  const auto d = make_density();
  const auto map = make_map(*d);
  SkyCatalog cat{map, *d};
  const double expected = 1e7 * kModeledRowBytes.as_double();
  EXPECT_NEAR(cat.total_bytes().as_double(), expected, expected * 1e-6);
}

TEST(SkyCatalogTest, ObjectRowsSumToTotal) {
  const auto d = make_density();
  const auto map = make_map(*d);
  SkyCatalog cat{map, *d};
  double rows = 0.0;
  for (std::size_t i = 0; i < cat.partition_count(); ++i) {
    rows += cat.object_rows(ObjectId{static_cast<std::int64_t>(i)});
  }
  EXPECT_NEAR(rows, 1e7, 1.0);
}

TEST(SkyCatalogTest, InsertGrowsObjectAndBumpsVersion) {
  const auto d = make_density();
  const auto map = make_map(*d);
  SkyCatalog cat{map, *d};
  // Find a non-empty object.
  ObjectId target = ObjectId::invalid();
  for (std::size_t i = 0; i < cat.partition_count(); ++i) {
    const ObjectId o{static_cast<std::int64_t>(i)};
    if (cat.object_rows(o) > 0) {
      target = o;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  const double before = cat.object_rows(target);
  EXPECT_EQ(cat.object_version(target), 0);
  cat.apply_insert(target, 1000.0);
  EXPECT_DOUBLE_EQ(cat.object_rows(target), before + 1000.0);
  EXPECT_EQ(cat.object_version(target), 1);
  EXPECT_DOUBLE_EQ(cat.initial_object_rows(target), before);
}

TEST(SkyCatalogTest, RegionAreaFormulas) {
  // Full-dec rect of 90 degrees ra spans a quarter sphere band.
  const htm::Region rect = htm::RaDecRect{0.0, 90.0, -90.0, 90.0};
  EXPECT_NEAR(SkyCatalog::region_area(rect), std::numbers::pi, 1e-9);
  const htm::Region cone = htm::Cone{{0, 0, 1}, std::numbers::pi};
  EXPECT_NEAR(SkyCatalog::region_area(cone), 4 * std::numbers::pi, 1e-9);
}

TEST(SkyCatalogTest, EstimateRowsScalesWithArea) {
  const auto d = make_density();
  const auto map = make_map(*d);
  SkyCatalog cat{map, *d};
  const htm::Vec3 c = htm::from_ra_dec(185.0, 32.0);
  const double small = cat.estimate_rows(htm::Cone{c, 0.02});
  const double big = cat.estimate_rows(htm::Cone{c, 0.2});
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small * 5.0);  // 100x area, allow density variation
}

TEST(SkyCatalogTest, EstimateRowsSeesGrowth) {
  const auto d = make_density();
  const auto map = make_map(*d);
  SkyCatalog cat{map, *d};
  const htm::Vec3 c = htm::from_ra_dec(185.0, 32.0);
  const htm::Region probe = htm::Cone{c, 0.1};
  const double before = cat.estimate_rows(probe);
  const ObjectId owner = map->object_for_point(c);
  cat.apply_insert(owner, cat.object_rows(owner));  // double the object
  const double after = cat.estimate_rows(probe);
  EXPECT_GT(after, before);
}

TEST(RecordStoreTest, MaterializesRequestedCount) {
  const auto d = make_density();
  const auto map = make_map(*d);
  RecordStore store{*map, *d, 20000, 99};
  EXPECT_NEAR(static_cast<double>(store.record_count()), 20000.0, 500.0);
}

TEST(RecordStoreTest, RecordsLieInTheirPartition) {
  const auto d = make_density();
  const auto map = make_map(*d);
  RecordStore store{*map, *d, 5000, 123};
  for (std::size_t i = 0; i < map->partition_count(); ++i) {
    const ObjectId o{static_cast<std::int64_t>(i)};
    for (const auto& rec : store.records_of(o)) {
      const htm::Vec3 p = htm::from_ra_dec(rec.ra_deg, rec.dec_deg);
      EXPECT_EQ(map->object_for_point(p), o);
    }
  }
}

TEST(RecordStoreTest, QueryReturnsOnlyContainedRecords) {
  const auto d = make_density();
  const auto map = make_map(*d);
  RecordStore store{*map, *d, 20000, 7};
  const htm::Region probe = htm::Cone{htm::from_ra_dec(185.0, 32.0), 0.15};
  const auto objects = map->objects_for_region(probe);
  const auto hits = store.query(probe, objects);
  for (const auto& rec : hits) {
    EXPECT_TRUE(htm::region_contains(
        probe, htm::from_ra_dec(rec.ra_deg, rec.dec_deg)));
  }
  // Cross-check against a full scan over all partitions.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < map->partition_count(); ++i) {
    for (const auto& rec :
         store.records_of(ObjectId{static_cast<std::int64_t>(i)})) {
      if (htm::region_contains(probe,
                               htm::from_ra_dec(rec.ra_deg, rec.dec_deg))) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(RecordStoreTest, InsertAppendsInsidePartition) {
  const auto d = make_density();
  const auto map = make_map(*d);
  RecordStore store{*map, *d, 1000, 5};
  util::Rng rng{77};
  ObjectId target = ObjectId::invalid();
  for (std::size_t i = 0; i < map->partition_count(); ++i) {
    const ObjectId o{static_cast<std::int64_t>(i)};
    if (!store.records_of(o).empty()) {
      target = o;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  const auto before = store.records_of(target).size();
  store.insert(target, 50, rng, /*run=*/3);
  EXPECT_EQ(store.records_of(target).size(), before + 50);
  for (std::size_t i = before; i < store.records_of(target).size(); ++i) {
    const auto& rec = store.records_of(target)[i];
    EXPECT_EQ(rec.run, 3);
    EXPECT_EQ(map->object_for_point(
                  htm::from_ra_dec(rec.ra_deg, rec.dec_deg)),
              target);
  }
}

}  // namespace
}  // namespace delta::storage
