#include <gtest/gtest.h>

#include "cache/cache_store.h"
#include "cache/gds.h"
#include "cache/lru.h"

namespace delta::cache {
namespace {

ObjectId oid(std::int64_t v) { return ObjectId{v}; }

LoadCandidate cand(std::int64_t id, std::int64_t size,
                   std::int64_t cost = -1) {
  return LoadCandidate{oid(id), Bytes{size},
                       Bytes{cost < 0 ? size : cost}};
}

void apply(CacheStore& store, const BatchDecision& d,
           const std::vector<LoadCandidate>& candidates) {
  for (const ObjectId v : d.evict) store.evict(v);
  for (const ObjectId l : d.load) {
    for (const auto& c : candidates) {
      if (c.id == l) {
        store.load(l, c.size);
        break;
      }
    }
  }
}

TEST(CacheStoreTest, LoadEvictAccounting) {
  CacheStore store{Bytes{100}};
  store.load(oid(1), Bytes{40});
  store.load(oid(2), Bytes{60});
  EXPECT_EQ(store.used().count(), 100);
  EXPECT_TRUE(store.contains(oid(1)));
  EXPECT_THROW(store.load(oid(3), Bytes{1}), std::logic_error);  // full
  store.evict(oid(1));
  EXPECT_EQ(store.used().count(), 60);
  EXPECT_FALSE(store.contains(oid(1)));
  EXPECT_THROW(store.evict(oid(1)), std::logic_error);
}

TEST(CacheStoreTest, DoubleLoadRejected) {
  CacheStore store{Bytes{100}};
  store.load(oid(1), Bytes{10});
  EXPECT_THROW(store.load(oid(1), Bytes{10}), std::logic_error);
}

TEST(CacheStoreTest, GrowthMayOverflowUntilShed) {
  CacheStore store{Bytes{100}};
  store.load(oid(1), Bytes{90});
  store.grow(oid(1), Bytes{20});
  EXPECT_TRUE(store.over_capacity());
  EXPECT_EQ(store.bytes_of(oid(1)).count(), 110);
  store.evict(oid(1));
  EXPECT_FALSE(store.over_capacity());
}

TEST(CacheStoreTest, StalenessFlags) {
  CacheStore store{Bytes{100}};
  store.load(oid(1), Bytes{10});
  EXPECT_FALSE(store.is_stale(oid(1)));
  store.mark_stale(oid(1));
  EXPECT_TRUE(store.is_stale(oid(1)));
  store.mark_fresh(oid(1));
  EXPECT_FALSE(store.is_stale(oid(1)));
}

TEST(CacheStoreTest, ClearResets) {
  CacheStore store{Bytes{100}};
  store.load(oid(1), Bytes{10});
  store.clear();
  EXPECT_EQ(store.used().count(), 0);
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(GdsTest, AdmitsWhenSpaceAvailable) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  const std::vector<LoadCandidate> batch{cand(1, 30), cand(2, 40)};
  const auto d = gds.decide_batch(batch);
  EXPECT_EQ(d.load.size(), 2u);
  EXPECT_TRUE(d.evict.empty());
  apply(store, d, batch);
  EXPECT_EQ(store.used().count(), 70);
}

TEST(GdsTest, RejectsObjectLargerThanCache) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  const std::vector<LoadCandidate> batch{cand(1, 101)};
  const auto d = gds.decide_batch(batch);
  EXPECT_TRUE(d.load.empty());
  EXPECT_TRUE(d.evict.empty());
}

TEST(GdsTest, EvictsLowestCreditResident) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  const std::vector<LoadCandidate> b1{cand(1, 50), cand(2, 50)};
  apply(store, gds.decide_batch(b1), b1);
  // Access object 2: its credit refreshes above object 1's.
  gds.on_access(oid(2));
  const std::vector<LoadCandidate> b2{cand(3, 40)};
  const auto d = gds.decide_batch(b2);
  ASSERT_EQ(d.load.size(), 1u);
  ASSERT_EQ(d.evict.size(), 1u);
  EXPECT_EQ(d.evict[0], oid(1));  // least credit
  apply(store, d, b2);
  EXPECT_TRUE(store.contains(oid(2)));
  EXPECT_TRUE(store.contains(oid(3)));
}

TEST(GdsTest, LazyBatchNeverLoadsThenEvictsSibling) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  // Batch exceeding capacity: some candidates are simply not loaded; no
  // resident churn happens for siblings of the same query.
  const std::vector<LoadCandidate> batch{cand(1, 60), cand(2, 60),
                                         cand(3, 60)};
  const auto d = gds.decide_batch(batch);
  EXPECT_EQ(d.load.size(), 1u);
  EXPECT_TRUE(d.evict.empty());
  apply(store, d, batch);
  EXPECT_LE(store.used().count(), 100);
}

TEST(GdsTest, InflationRisesWithEvictions) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  EXPECT_DOUBLE_EQ(gds.inflation(), 0.0);
  const std::vector<LoadCandidate> b1{cand(1, 100)};
  apply(store, gds.decide_batch(b1), b1);
  const std::vector<LoadCandidate> b2{cand(2, 100)};
  const auto d = gds.decide_batch(b2);
  ASSERT_EQ(d.evict.size(), 1u);
  EXPECT_GT(gds.inflation(), 0.0);
}

TEST(GdsTest, HigherCostPerByteSurvivesLonger) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  // Object 1 is costly to reload per byte; object 2 is cheap.
  const std::vector<LoadCandidate> b1{cand(1, 50, 200), cand(2, 50, 50)};
  apply(store, gds.decide_batch(b1), b1);
  const std::vector<LoadCandidate> b2{cand(3, 50)};
  const auto d = gds.decide_batch(b2);
  ASSERT_EQ(d.evict.size(), 1u);
  EXPECT_EQ(d.evict[0], oid(2));
}

TEST(GdsTest, ShedOverflowEvictsLowestCredit) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  // Object 2 is three times as expensive to reload per byte: higher credit.
  const std::vector<LoadCandidate> b{cand(1, 50, 50), cand(2, 50, 150)};
  apply(store, gds.decide_batch(b), b);
  store.grow(oid(2), Bytes{30});
  ASSERT_TRUE(store.over_capacity());
  const auto victims = gds.shed_overflow();
  for (const ObjectId v : victims) store.evict(v);
  EXPECT_FALSE(store.over_capacity());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], oid(1));  // lowest credit goes first
}

TEST(GdsTest, AccessAfterInflationProtectsObject) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  const std::vector<LoadCandidate> b1{cand(1, 50), cand(2, 50)};
  apply(store, gds.decide_batch(b1), b1);
  // Force an eviction to raise the inflation value L.
  const std::vector<LoadCandidate> b2{cand(3, 50)};
  const auto d2 = gds.decide_batch(b2);
  apply(store, d2, b2);
  ASSERT_EQ(d2.evict.size(), 1u);
  EXPECT_GT(gds.inflation(), 0.0);
  // The survivor of {1,2} now has a stale (low) credit; accessing it
  // refreshes its credit above the newly-loaded object's eviction point.
  const ObjectId survivor = d2.evict[0] == oid(1) ? oid(2) : oid(1);
  gds.on_access(survivor);
  EXPECT_GT(gds.credit_of(survivor), gds.inflation());
}

TEST(GdsTest, ForgetDropsTracking) {
  CacheStore store{Bytes{100}};
  GreedyDualSize gds{&store};
  const std::vector<LoadCandidate> b{cand(1, 50)};
  apply(store, gds.decide_batch(b), b);
  store.evict(oid(1));
  gds.forget(oid(1));
  EXPECT_THROW(gds.on_access(oid(1)), std::logic_error);
}

TEST(LruTest, EvictsOldestFirst) {
  CacheStore store{Bytes{100}};
  LruPolicy lru{&store};
  const std::vector<LoadCandidate> b1{cand(1, 40), cand(2, 40)};
  apply(store, lru.decide_batch(b1), b1);
  lru.on_access(oid(1));  // 2 is now oldest
  const std::vector<LoadCandidate> b2{cand(3, 40)};
  const auto d = lru.decide_batch(b2);
  ASSERT_EQ(d.evict.size(), 1u);
  EXPECT_EQ(d.evict[0], oid(2));
}

TEST(LruTest, DropsTrailingCandidatesWhenBatchTooBig) {
  CacheStore store{Bytes{100}};
  LruPolicy lru{&store};
  const std::vector<LoadCandidate> b{cand(1, 70), cand(2, 70)};
  const auto d = lru.decide_batch(b);
  EXPECT_EQ(d.load.size(), 1u);
  EXPECT_EQ(d.load[0], oid(1));
}

TEST(LruTest, ShedOverflow) {
  CacheStore store{Bytes{100}};
  LruPolicy lru{&store};
  const std::vector<LoadCandidate> b{cand(1, 60), cand(2, 40)};
  apply(store, lru.decide_batch(b), b);
  store.grow(oid(2), Bytes{30});
  const auto victims = lru.shed_overflow();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], oid(1));  // oldest
}

}  // namespace
}  // namespace delta::cache
