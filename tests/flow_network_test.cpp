#include "flow/network.h"

#include <gtest/gtest.h>

namespace delta::flow {
namespace {

TEST(FlowNetworkTest, AddNodesAndEdges) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  EXPECT_TRUE(net.is_active(a));
  EXPECT_TRUE(net.is_active(b));
  EXPECT_EQ(net.active_node_count(), 2u);

  const EdgeId e = net.add_edge(a, b, 10);
  EXPECT_EQ(net.active_edge_count(), 1u);
  EXPECT_EQ(net.edge(e).from, a);
  EXPECT_EQ(net.edge(e).to, b);
  EXPECT_EQ(net.edge(e).cap, 10);
  EXPECT_EQ(net.residual(e), 10);
  // Paired reverse edge.
  const EdgeId r = net.pair_of(e);
  EXPECT_EQ(net.edge(r).from, b);
  EXPECT_EQ(net.edge(r).to, a);
  EXPECT_EQ(net.edge(r).cap, 0);
}

TEST(FlowNetworkTest, FlowUpdatesBothDirections) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  const EdgeId e = net.add_edge(a, b, 10);
  net.add_flow(e, 7);
  EXPECT_EQ(net.residual(e), 3);
  EXPECT_EQ(net.residual(net.pair_of(e)), 7);
  net.add_flow(e, -2);
  EXPECT_EQ(net.residual(e), 5);
  EXPECT_EQ(net.outflow(a), 5);
}

TEST(FlowNetworkTest, RemoveEdgeRequiresZeroFlow) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  const EdgeId e = net.add_edge(a, b, 10);
  net.add_flow(e, 1);
  EXPECT_THROW(net.remove_edge(e), std::logic_error);
  net.add_flow(e, -1);
  net.remove_edge(e);
  EXPECT_EQ(net.active_edge_count(), 0u);
}

TEST(FlowNetworkTest, RemoveNodeDropsIncidentEdges) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  const NodeIndex c = net.add_node();
  net.add_edge(a, b, 1);
  net.add_edge(b, c, 2);
  net.add_edge(a, c, 3);
  EXPECT_EQ(net.active_edge_count(), 3u);
  net.remove_node(b);
  EXPECT_FALSE(net.is_active(b));
  EXPECT_EQ(net.active_edge_count(), 1u);  // only a->c remains
  EXPECT_NE(net.first_edge(a), kNoEdge);
  EXPECT_EQ(net.edge(net.first_edge(a)).to, c);
}

TEST(FlowNetworkTest, NodeSlotsAreRecycled) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  (void)b;
  net.remove_node(a);
  const NodeIndex c = net.add_node();
  EXPECT_EQ(c, a);  // slot reuse keeps memory proportional to live graph
  EXPECT_EQ(net.node_bound(), 2u);
}

TEST(FlowNetworkTest, EdgeSlotsAreRecycled) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  const EdgeId e1 = net.add_edge(a, b, 5);
  net.remove_edge(e1);
  const EdgeId e2 = net.add_edge(b, a, 9);
  EXPECT_EQ(e2, e1);
}

TEST(FlowNetworkTest, FeasibilityCheck) {
  FlowNetwork net;
  const NodeIndex s = net.add_node();
  const NodeIndex m = net.add_node();
  const NodeIndex t = net.add_node();
  const EdgeId e1 = net.add_edge(s, m, 10);
  const EdgeId e2 = net.add_edge(m, t, 10);
  EXPECT_TRUE(net.flow_is_feasible(s, t));
  net.add_flow(e1, 4);
  EXPECT_FALSE(net.flow_is_feasible(s, t));  // conservation broken at m
  net.add_flow(e2, 4);
  EXPECT_TRUE(net.flow_is_feasible(s, t));
}

TEST(FlowNetworkTest, ZeroFlowCopyPreservesStructure) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  const NodeIndex b = net.add_node();
  const EdgeId e = net.add_edge(a, b, 10);
  net.add_flow(e, 6);
  FlowNetwork copy = net.zero_flow_copy();
  EXPECT_EQ(copy.residual(e), 10);
  EXPECT_EQ(net.residual(e), 4);  // original untouched
  EXPECT_EQ(copy.active_edge_count(), 1u);
}

TEST(FlowNetworkTest, SelfLoopRejected) {
  FlowNetwork net;
  const NodeIndex a = net.add_node();
  EXPECT_THROW(net.add_edge(a, a, 1), std::logic_error);
}

TEST(FlowNetworkTest, IterationVisitsAllIncidentEdges) {
  FlowNetwork net;
  const NodeIndex hub = net.add_node();
  constexpr int kSpokes = 20;
  for (int i = 0; i < kSpokes; ++i) {
    const NodeIndex v = net.add_node();
    net.add_edge(hub, v, i + 1);
  }
  int count = 0;
  Capacity total_cap = 0;
  for (EdgeId e = net.first_edge(hub); e != kNoEdge; e = net.edge(e).next) {
    ++count;
    total_cap += net.edge(e).cap;
  }
  EXPECT_EQ(count, kSpokes);
  EXPECT_EQ(total_cap, kSpokes * (kSpokes + 1) / 2);
}

}  // namespace
}  // namespace delta::flow
