// util::FlatMap / FlatSet: open-addressing semantics (insert/find/erase,
// backward-shift deletion, growth), move-only values, and differential
// equivalence against std::unordered_map under random churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"
#include "util/rng.h"
#include "util/types.h"

namespace delta::util {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<std::int32_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_FALSE(map.erase(7));

  auto [v, inserted] = map.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 70);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(7));

  auto [v2, inserted2] = map.try_emplace(7, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 70);  // try_emplace does not overwrite

  map.insert_or_assign(7, 99);
  EXPECT_EQ(*map.find(7), 99);

  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.contains(7));
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, OperatorIndexDefaultConstructs) {
  FlatMap<ObjectId, double> map;
  double& h = map[ObjectId{5}];
  EXPECT_EQ(h, 0.0);
  h += 2.5;
  EXPECT_EQ(*map.find(ObjectId{5}), 2.5);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, GrowsPastInitialCapacityAndKeepsEntries) {
  FlatMap<std::int64_t, std::int64_t> map;
  for (std::int64_t i = 0; i < 10'000; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), 10'000u);
  for (std::int64_t i = 0; i < 10'000; ++i) {
    ASSERT_NE(map.find(i), nullptr) << i;
    EXPECT_EQ(*map.find(i), i * 3);
  }
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<std::int32_t, std::unique_ptr<int>> map;
  for (int i = 0; i < 100; ++i) {
    map.try_emplace(i, std::make_unique<int>(i));
  }
  // Erase half — backward shifting must move the unique_ptrs, not copy.
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(map.erase(i));
  EXPECT_EQ(map.size(), 50u);
  for (int i = 1; i < 100; i += 2) {
    ASSERT_NE(map.find(i), nullptr) << i;
    EXPECT_EQ(**map.find(i), i);
  }
}

TEST(FlatMapTest, ClearReleasesAndResets) {
  FlatMap<std::int32_t, std::unique_ptr<int>> map;
  for (int i = 0; i < 10; ++i) map.try_emplace(i, std::make_unique<int>(i));
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);
  map.try_emplace(3, std::make_unique<int>(33));
  EXPECT_EQ(**map.find(3), 33);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntryExactlyOnce) {
  FlatMap<std::int32_t, int> map;
  for (int i = 0; i < 257; ++i) map[i] = i;
  for (int i = 0; i < 257; i += 3) map.erase(i);
  std::vector<bool> seen(257, false);
  map.for_each([&](std::int32_t k, int v) {
    EXPECT_EQ(k, v);
    EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
    seen[static_cast<std::size_t>(k)] = true;
  });
  for (int i = 0; i < 257; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i % 3 != 0) << i;
  }
}

// The load-bearing property for the hot-path migration: under arbitrary
// interleaved insert/erase churn the table answers exactly like
// std::unordered_map (backward-shift deletion must never strand or
// duplicate an entry).
TEST(FlatMapTest, DifferentialChurnAgainstUnorderedMap) {
  util::Rng rng{20260730};
  FlatMap<std::int64_t, std::int64_t> flat;
  std::unordered_map<std::int64_t, std::int64_t> ref;
  for (int step = 0; step < 50'000; ++step) {
    const std::int64_t key = rng.uniform_int(0, 400);  // force collisions
    const double roll = rng.next_double();
    if (roll < 0.5) {
      const std::int64_t value = rng.uniform_int(0, 1'000'000);
      flat.insert_or_assign(key, value);
      ref[key] = value;
    } else if (roll < 0.8) {
      EXPECT_EQ(flat.erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const auto it = ref.find(key);
      const std::int64_t* found = flat.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr) << "step " << step;
      } else {
        ASSERT_NE(found, nullptr) << "step " << step;
        EXPECT_EQ(*found, it->second) << "step " << step;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
  }
  // Full final sweep.
  std::size_t visited = 0;
  flat.for_each([&](std::int64_t k, std::int64_t v) {
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<std::int32_t, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  for (int i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, StrongIdKeys) {
  FlatMap<ObjectId, Bytes> map;
  map.try_emplace(ObjectId{42}, Bytes{1024});
  map.try_emplace(ObjectId{0}, Bytes{1});
  EXPECT_EQ(map.find(ObjectId{42})->count(), 1024);
  EXPECT_EQ(map.find(ObjectId{0})->count(), 1);
  EXPECT_EQ(map.find(ObjectId{7}), nullptr);
}

// Million-key churn: the growth path (with and without reserve) and the
// backward-shift deletion must stay correct and rehash-free once reserved —
// the data-plane requirement for 10^6-object cache runs.
TEST(FlatMapTest, MillionKeyChurn) {
  constexpr std::int64_t kKeys = 1'000'000;

  // Growth path: no reserve, the table doubles its way up under inserts.
  FlatMap<ObjectId, std::int64_t> grown;
  for (std::int64_t k = 0; k < kKeys; ++k) {
    grown[ObjectId{k}] = k * 3;
  }
  ASSERT_EQ(grown.size(), static_cast<std::size_t>(kKeys));

  // Reserved path: capacity must not move again while size stays <= kKeys
  // (no rehash storms on the replay hot path).
  FlatMap<ObjectId, std::int64_t> map;
  map.reserve(static_cast<std::size_t>(kKeys));
  const std::size_t reserved_capacity = map.capacity();
  EXPECT_GE(reserved_capacity * 3, static_cast<std::size_t>(kKeys) * 4);
  for (std::int64_t k = 0; k < kKeys; ++k) {
    map[ObjectId{k}] = k;
  }
  EXPECT_EQ(map.capacity(), reserved_capacity);

  // Churn: erase a dense third (adjacent probe chains exercise the
  // backward shift), then re-insert under displaced ids.
  for (std::int64_t k = 0; k < kKeys; k += 3) {
    ASSERT_TRUE(map.erase(ObjectId{k}));
  }
  for (std::int64_t k = 0; k < kKeys; k += 3) {
    map[ObjectId{k + kKeys}] = k;
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));

  // Every survivor resolves to its value; every erased key is gone.
  for (std::int64_t k = 0; k < kKeys; ++k) {
    const std::int64_t* v = map.find(ObjectId{k});
    if (k % 3 == 0) {
      ASSERT_EQ(v, nullptr);
      const std::int64_t* moved = map.find(ObjectId{k + kKeys});
      ASSERT_NE(moved, nullptr);
      ASSERT_EQ(*moved, k);
    } else {
      ASSERT_NE(v, nullptr);
      ASSERT_EQ(*v, k);
    }
  }
  std::size_t visited = 0;
  map.for_each([&](ObjectId, std::int64_t) { ++visited; });
  EXPECT_EQ(visited, map.size());
}

TEST(FlatSetTest, InsertEraseContains) {
  FlatSet<ObjectId> set;
  EXPECT_TRUE(set.insert(ObjectId{1}));
  EXPECT_FALSE(set.insert(ObjectId{1}));
  EXPECT_TRUE(set.insert(ObjectId{2}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.count(ObjectId{1}), 1u);
  EXPECT_EQ(set.count(ObjectId{3}), 0u);
  EXPECT_TRUE(set.erase(ObjectId{1}));
  EXPECT_FALSE(set.erase(ObjectId{1}));
  EXPECT_FALSE(set.contains(ObjectId{1}));
  std::size_t n = 0;
  set.for_each([&](ObjectId id) {
    EXPECT_EQ(id, ObjectId{2});
    ++n;
  });
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace delta::util
