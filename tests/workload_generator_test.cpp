// Key generators and the synthetic YCSB trace layer: chi-square fits of the
// zipfian/latest samplers against their analytic rank laws, deterministic
// streams across seeds and thread-derived seeds, op-mix accounting for the
// YCSB presets, structural validity, endpoint splitting and trace_io
// round-trips of generated traces.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/rng.h"
#include "workload/key_generators.h"
#include "workload/synthetic_trace.h"
#include "workload/trace_io.h"
#include "workload/trace_split.h"

namespace delta::workload {
namespace {

/// Chi-square statistic of observed counts against expected probabilities.
double chi_square(const std::vector<std::int64_t>& counts,
                  const std::vector<double>& probs, std::int64_t samples) {
  double stat = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(samples);
    const double diff = static_cast<double>(counts[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

// df = 49; the p=0.001 critical value is 85.35. The seed is fixed, so this
// is a deterministic regression gate, not a flaky significance test.
constexpr double kChiSquareBound = 85.35;

TEST(KeyGeneratorsTest, ZipfianMatchesRankLawChiSquare) {
  const std::int64_t n = 50;
  const std::int64_t samples = 200'000;
  ZipfianKeys zipf{n, 0.8, /*scramble=*/false};
  util::Rng rng{0x2157F1A7};
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (std::int64_t s = 0; s < samples; ++s) {
    ++counts[static_cast<std::size_t>(zipf.next(rng))];
  }
  std::vector<double> probs;
  for (std::int64_t r = 0; r < n; ++r) {
    probs.push_back(zipf.rank_probability(r));
  }
  EXPECT_LT(chi_square(counts, probs, samples), kChiSquareBound);
}

TEST(KeyGeneratorsTest, LatestMatchesRecencyLawChiSquare) {
  const std::int64_t n = 50;
  const std::int64_t samples = 200'000;
  LatestKeys latest{n, 0.8};
  util::Rng rng{0x7A7E57};
  // Cursor starts at n-1, so recency offset = (n-1) - key without wrap.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (std::int64_t s = 0; s < samples; ++s) {
    const std::int64_t key = latest.next(rng);
    ASSERT_GE(key, 0);
    ASSERT_LT(key, n);
    ++counts[static_cast<std::size_t>(n - 1 - key)];
  }
  std::vector<double> probs;
  for (std::int64_t r = 0; r < n; ++r) {
    probs.push_back(latest.rank_probability(r));
  }
  EXPECT_LT(chi_square(counts, probs, samples), kChiSquareBound);
}

TEST(KeyGeneratorsTest, ScrambledZipfianStaysInRangeAndSkewed) {
  const std::int64_t n = 1000;
  ZipfianKeys zipf{n, 0.99, /*scramble=*/true};
  util::Rng rng{42};
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (int s = 0; s < 100'000; ++s) {
    const std::int64_t key = zipf.next(rng);
    ASSERT_GE(key, 0);
    ASSERT_LT(key, n);
    ++counts[static_cast<std::size_t>(key)];
  }
  // The hottest scrambled key still carries the zipfian head mass.
  const std::int64_t hottest = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(hottest, 100'000 / 20);
}

TEST(KeyGeneratorsTest, ExponentialConcentratesNearHead) {
  const std::int64_t n = 10'000;
  ExponentialKeys expo{n, 0.95, 0.8571};
  util::Rng rng{7};
  std::int64_t in_head = 0;
  const std::int64_t samples = 50'000;
  for (std::int64_t s = 0; s < samples; ++s) {
    const std::int64_t key = expo.next(rng);
    ASSERT_GE(key, 0);
    ASSERT_LT(key, n);
    if (key < static_cast<std::int64_t>(0.8571 * static_cast<double>(n))) {
      ++in_head;
    }
  }
  EXPECT_GT(static_cast<double>(in_head) / static_cast<double>(samples), 0.9);
}

TEST(KeyGeneratorsTest, StreamsDeterministicAcrossSeedsAndThreads) {
  // Same seed -> identical stream.
  ZipfianKeys zipf{1000, 0.99, true};
  util::Rng a{thread_seed(99, 0)};
  util::Rng b{thread_seed(99, 0)};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf.next(a), zipf.next(b));
  }
  // Distinct thread indexes -> distinct seeds and (overwhelmingly) streams.
  EXPECT_NE(thread_seed(99, 0), thread_seed(99, 1));
  EXPECT_NE(thread_seed(99, 1), thread_seed(100, 1));
  util::Rng t0{thread_seed(99, 0)};
  util::Rng t1{thread_seed(99, 1)};
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (zipf.next(t0) != zipf.next(t1)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(SyntheticTraceTest, GeneratesValidTraceWithRequestedMix) {
  SyntheticTraceParams p = ycsb_params(YcsbMix::kA, 2000, 6000);
  SyntheticTraceGenerator gen{p};
  const Trace trace = gen.generate(0xAB);  // generate() runs validate()
  EXPECT_EQ(trace.event_count(), 6000);
  EXPECT_EQ(trace.initial_object_bytes.size(), 2000u);
  // A is a 50/50 read/update mix.
  const double read_fraction =
      static_cast<double>(trace.queries.size()) /
      static_cast<double>(trace.order.size());
  EXPECT_NEAR(read_fraction, 0.5, 0.05);
  EXPECT_EQ(trace.info.warmup_end_event, 600);
  // Deterministic: same seed, same trace.
  const Trace again = gen.generate(0xAB);
  std::ostringstream s1, s2;
  write_trace(s1, trace);
  write_trace(s2, again);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(SyntheticTraceTest, ScanMixProducesBoundedSortedRanges) {
  SyntheticTraceParams p = ycsb_params(YcsbMix::kE, 500, 3000);
  p.max_scan_len = 8;
  const Trace trace = SyntheticTraceGenerator{p}.generate(3);
  ASSERT_FALSE(trace.queries.empty());
  for (const Query& q : trace.queries) {
    EXPECT_LE(q.objects.size(), 8u);
    EXPECT_TRUE(std::is_sorted(q.objects.begin(), q.objects.end()));
  }
}

TEST(SyntheticTraceTest, RmwMixPairsReadWithWriteback) {
  SyntheticTraceParams p = ycsb_params(YcsbMix::kF, 500, 3000);
  const Trace trace = SyntheticTraceGenerator{p}.generate(11);
  std::int64_t rmw_pairs = 0;
  for (std::size_t i = 0; i + 1 < trace.order.size(); ++i) {
    const Event& e = trace.order[i];
    if (e.kind != Event::Kind::kQuery) continue;
    const Query& q = trace.queries[static_cast<std::size_t>(e.index)];
    if (q.kind != QueryKind::kAggregation) continue;  // the RMW read
    const Event& next = trace.order[i + 1];
    ASSERT_EQ(next.kind, Event::Kind::kUpdate);
    const Update& u = trace.updates[static_cast<std::size_t>(next.index)];
    ASSERT_EQ(q.objects.size(), 1u);
    EXPECT_EQ(u.object, q.objects.front());
    ++rmw_pairs;
  }
  EXPECT_GT(rmw_pairs, 0);
}

TEST(SyntheticTraceTest, SplitsAcrossEndpointsWithoutCovers) {
  SyntheticTraceParams p = ycsb_params(YcsbMix::kB, 1000, 2000);
  const Trace trace = SyntheticTraceGenerator{p}.generate(5);
  // Synthetic queries carry no base cover: hash-by-region must fall back
  // to the query id and still produce a total, balanced-ish split.
  const auto assignment =
      assign_queries(trace, 4, SplitStrategy::kHashByRegion);
  ASSERT_EQ(assignment.size(), trace.queries.size());
  std::vector<std::int64_t> per_endpoint(4, 0);
  for (const std::uint32_t e : assignment) {
    ASSERT_LT(e, 4u);
    ++per_endpoint[e];
  }
  for (const std::int64_t c : per_endpoint) EXPECT_GT(c, 0);
}

TEST(SyntheticTraceTest, RoundTripsThroughTraceIo) {
  SyntheticTraceParams p = ycsb_params(YcsbMix::kD, 300, 1500);
  const Trace trace = SyntheticTraceGenerator{p}.generate(17);
  std::ostringstream os;
  write_trace(os, trace);
  std::istringstream is{os.str()};
  const Trace loaded = read_trace(is);
  std::ostringstream os2;
  write_trace(os2, loaded);
  EXPECT_EQ(os.str(), os2.str());
  EXPECT_EQ(loaded.queries.size(), trace.queries.size());
  EXPECT_EQ(loaded.updates.size(), trace.updates.size());
}

}  // namespace
}  // namespace delta::workload
