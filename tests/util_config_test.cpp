#include "util/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace delta::util {
namespace {

TEST(ConfigTest, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "cache_frac=0.3", "events=500000",
                        "policy=vcover"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_DOUBLE_EQ(cfg.get_double("cache_frac", 0.0), 0.3);
  EXPECT_EQ(cfg.get_int("events", 0), 500000);
  EXPECT_EQ(cfg.get_string("policy", ""), "vcover");
}

TEST(ConfigTest, FallbacksWhenMissing) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_FALSE(cfg.has("missing"));
}

TEST(ConfigTest, BoolParsing) {
  Config cfg;
  cfg.set("a", "true");
  cfg.set("b", "0");
  cfg.set("c", "yes");
  cfg.set("bad", "maybe");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_THROW((void)cfg.get_bool("bad", false), std::invalid_argument);
}

TEST(ConfigTest, IntListParsing) {
  Config cfg;
  cfg.set("objects", "10,20,68,91");
  const auto v = cfg.get_int_list("objects", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[3], 91);
  const auto fb = cfg.get_int_list("missing", {1, 2});
  ASSERT_EQ(fb.size(), 2u);
}

TEST(ConfigTest, RejectsMalformedToken) {
  const char* argv[] = {"prog", "novalue"};
  EXPECT_THROW(Config::from_args(2, argv), std::logic_error);
}

TEST(ConfigTest, LastSetWins) {
  Config cfg;
  cfg.set("k", "1");
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

}  // namespace
}  // namespace delta::util
