#include <gtest/gtest.h>

#include <numbers>

#include "htm/cover.h"
#include "htm/region.h"
#include "util/rng.h"

namespace delta::htm {
namespace {

TEST(RegionTest, ConeContainsAndDistance) {
  const Cone cone{from_ra_dec(180.0, 0.0), degrees_to_radians(5.0)};
  EXPECT_TRUE(cone.contains(from_ra_dec(180.0, 0.0)));
  EXPECT_TRUE(cone.contains(from_ra_dec(183.0, 2.0)));
  EXPECT_FALSE(cone.contains(from_ra_dec(180.0, 10.0)));
  EXPECT_NEAR(cone.distance_to(from_ra_dec(180.0, 10.0)),
              degrees_to_radians(5.0), 1e-9);
  EXPECT_DOUBLE_EQ(cone.distance_to(from_ra_dec(180.0, 0.0)), 0.0);
}

TEST(RegionTest, RectContains) {
  const RaDecRect rect{100.0, 120.0, -10.0, 10.0};
  EXPECT_TRUE(rect.contains(from_ra_dec(110.0, 0.0)));
  EXPECT_TRUE(rect.contains(from_ra_dec(100.0, -10.0)));
  EXPECT_FALSE(rect.contains(from_ra_dec(99.0, 0.0)));
  EXPECT_FALSE(rect.contains(from_ra_dec(110.0, 11.0)));
}

TEST(RegionTest, RectWrapsRa) {
  const RaDecRect rect{350.0, 10.0, 0.0, 20.0};
  EXPECT_TRUE(rect.contains(from_ra_dec(355.0, 10.0)));
  EXPECT_TRUE(rect.contains(from_ra_dec(5.0, 10.0)));
  EXPECT_FALSE(rect.contains(from_ra_dec(180.0, 10.0)));
}

TEST(RegionTest, RectDistanceIsLowerBound) {
  const RaDecRect rect{100.0, 120.0, -10.0, 10.0};
  util::Rng rng{42};
  for (int i = 0; i < 500; ++i) {
    const double ra = rng.uniform(0.0, 360.0);
    const double dec = rng.uniform(-90.0, 90.0);
    const Vec3 p = from_ra_dec(ra, dec);
    const double bound = rect.distance_to(p);
    if (rect.contains(p)) {
      EXPECT_DOUBLE_EQ(bound, 0.0);
      continue;
    }
    // The bound must not exceed the true distance to any sampled interior
    // point (lower-bound property used by the cover's Outside test).
    for (int j = 0; j < 30; ++j) {
      const Vec3 q = from_ra_dec(rng.uniform(100.0, 120.0),
                                 rng.uniform(-10.0, 10.0));
      ASSERT_LE(bound, angular_distance(p, q) + 1e-9);
    }
  }
}

TEST(RegionTest, BandContainsGreatCircle) {
  const GreatCircleBand band{{0.0, 0.0, 1.0}, degrees_to_radians(2.0)};
  // Pole at z: the band is the +/-2 degree equator strip.
  EXPECT_TRUE(band.contains(from_ra_dec(123.0, 0.0)));
  EXPECT_TRUE(band.contains(from_ra_dec(45.0, 1.5)));
  EXPECT_FALSE(band.contains(from_ra_dec(45.0, 3.0)));
  EXPECT_NEAR(band.distance_to(from_ra_dec(45.0, 12.0)),
              degrees_to_radians(10.0), 1e-9);
}

TEST(RegionTest, AnchorInsideRegion) {
  const Region cone = Cone{from_ra_dec(30.0, 40.0), 0.05};
  const Region rect = RaDecRect{10.0, 20.0, 30.0, 40.0};
  const Region band = GreatCircleBand{normalized({0.3, 0.4, 0.8}), 0.02};
  EXPECT_TRUE(region_contains(cone, region_anchor(cone)));
  EXPECT_TRUE(region_contains(rect, region_anchor(rect)));
  EXPECT_TRUE(region_contains(band, region_anchor(band)));
}

TEST(CoverTest, ConeCoverContainsSampledPoints) {
  util::Rng rng{77};
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 center = normalized(
        {rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)});
    const Cone cone{center, rng.uniform(0.01, 0.3)};
    const int level = 4;
    const auto cover = cover_region(Region{cone}, level);
    ASSERT_FALSE(cover.empty());
    // Every sampled point of the region must land in a covered trixel.
    for (int i = 0; i < 50; ++i) {
      // Rejection-sample a point inside the cone.
      Vec3 p;
      do {
        p = normalized({center.x + rng.normal(0, cone.radius_rad),
                        center.y + rng.normal(0, cone.radius_rad),
                        center.z + rng.normal(0, cone.radius_rad)});
      } while (!cone.contains(p));
      const HtmId id = locate(p, level);
      EXPECT_TRUE(std::binary_search(cover.begin(), cover.end(), id))
          << "trial " << trial;
    }
  }
}

TEST(CoverTest, CoverIsSortedUnique) {
  const Cone cone{from_ra_dec(200.0, 30.0), 0.2};
  const auto cover = cover_region(Region{cone}, 5);
  EXPECT_TRUE(std::is_sorted(cover.begin(), cover.end()));
  EXPECT_EQ(std::adjacent_find(cover.begin(), cover.end()), cover.end());
  for (const HtmId id : cover) EXPECT_EQ(level_of(id), 5);
}

TEST(CoverTest, TinyConeCoversFewTrixels) {
  const Cone cone{from_ra_dec(123.0, -45.0), 1e-4};
  const auto cover = cover_region(Region{cone}, 5);
  EXPECT_GE(cover.size(), 1u);
  EXPECT_LE(cover.size(), 8u);  // tiny cone touches at most a corner fan
}

TEST(CoverTest, FullSkyBandCoversManyTrixels) {
  const GreatCircleBand band{{0.0, 0.0, 1.0}, degrees_to_radians(5.0)};
  const auto cover = cover_region(Region{band}, 4);
  // The equator strip passes through all 8 roots.
  EXPECT_GT(cover.size(), 50u);
}

TEST(CoverTest, ConeAreaApproximatesCoverArea) {
  // The covered area should be within a small factor of the cone area for a
  // moderately fine level.
  const double radius = 0.15;
  const Cone cone{from_ra_dec(80.0, 20.0), radius};
  const auto cover = cover_region(Region{cone}, 6);
  double covered = 0.0;
  for (const HtmId id : cover) covered += Trixel::from_id(id).area();
  const double cone_area =
      2.0 * std::numbers::pi * (1.0 - std::cos(radius));
  EXPECT_GT(covered, cone_area);          // conservative inclusion
  EXPECT_LT(covered, cone_area * 2.0);    // but not wildly over
}

TEST(CoverTest, RectCoverMatchesContainedPoints) {
  const RaDecRect rect{140.0, 160.0, 20.0, 35.0};
  const auto cover = cover_region(Region{rect}, 5);
  util::Rng rng{31};
  for (int i = 0; i < 300; ++i) {
    const Vec3 p = from_ra_dec(rng.uniform(140.0, 160.0),
                               rng.uniform(20.0, 35.0));
    const HtmId id = locate(p, 5);
    EXPECT_TRUE(std::binary_search(cover.begin(), cover.end(), id));
  }
}

}  // namespace
}  // namespace delta::htm
