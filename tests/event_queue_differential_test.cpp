// Calendar-queue scheduler vs the binary-heap oracle: the two backends
// must produce the exact same (time, seq) execution order on any schedule
// — randomized interleavings of schedule/run, same-instant ties,
// schedule-during-execute, and a fuzz-style churn that drives the calendar
// through its resize and direct-search paths. This is the differential
// contract that lets the calendar replace the heap on the hot path while
// the heap remains the oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/event_queue.h"
#include "util/rng.h"

namespace delta::util {
namespace {

/// Drives a calendar queue and a heap queue through the same schedule and
/// records each backend's execution order (by the token passed as the
/// event argument).
class Lockstep {
 public:
  void schedule(SimTime time) {
    calendar_.schedule(time, &Lockstep::record, &calendar_ran_, next_token_);
    heap_.schedule(time, &Lockstep::record, &heap_ran_, next_token_);
    ++next_token_;
  }

  /// Runs one event on both backends; returns false when both are idle.
  bool run_one() {
    const bool calendar_ran = calendar_.run_one();
    const bool heap_ran = heap_.run_one();
    EXPECT_EQ(calendar_ran, heap_ran);
    return calendar_ran;
  }

  void expect_identical_history() {
    ASSERT_EQ(calendar_ran_.size(), heap_ran_.size());
    for (std::size_t i = 0; i < calendar_ran_.size(); ++i) {
      ASSERT_EQ(calendar_ran_[i], heap_ran_[i]) << "divergence at pop " << i;
    }
    EXPECT_EQ(calendar_.now(), heap_.now());
    EXPECT_EQ(calendar_.pending(), heap_.pending());
  }

  [[nodiscard]] SimTime now() const { return calendar_.now(); }
  [[nodiscard]] std::size_t pending() const { return calendar_.pending(); }
  [[nodiscard]] std::size_t executed() const { return calendar_ran_.size(); }

 private:
  static void record(void* ctx, std::uint64_t token) {
    static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(token);
  }

  EventQueue calendar_{EventQueue::Backend::kCalendar};
  EventQueue heap_{EventQueue::Backend::kBinaryHeap};
  std::vector<std::uint64_t> calendar_ran_;
  std::vector<std::uint64_t> heap_ran_;
  std::uint64_t next_token_ = 0;
};

// Random interleavings of scheduling and popping, with times drawn from a
// mixture that includes exact ties (same-instant events) and occasional
// far-future outliers that stretch the calendar's span.
TEST(EventQueueDifferentialTest, RandomizedSchedulesExecuteIdentically) {
  for (const std::uint64_t seed : {7u, 11u, 303u, 9001u}) {
    Lockstep queues;
    Rng rng{seed};
    std::vector<SimTime> recent;  // pool of reusable instants for ties
    for (int step = 0; step < 6000; ++step) {
      const bool want_pop =
          queues.pending() > 0 && (rng.bernoulli(0.45) ||
                                   queues.pending() > 400);
      if (want_pop) {
        queues.run_one();
        continue;
      }
      SimTime t;
      if (!recent.empty() && rng.bernoulli(0.25)) {
        // Same-instant tie with an event that may still be pending.
        t = recent[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(recent.size()) - 1))];
        if (t < queues.now()) t = queues.now();
      } else if (rng.bernoulli(0.05)) {
        t = queues.now() + rng.uniform(1e3, 1e6);  // far-future outlier
      } else {
        t = queues.now() + rng.uniform(0.0, 10.0);
      }
      queues.schedule(t);
      recent.push_back(t);
      if (recent.size() > 32) recent.erase(recent.begin());
    }
    while (queues.run_one()) {
    }
    queues.expect_identical_history();
  }
}

/// Context for self-scheduling events: each execution may schedule more
/// events on BOTH backends at the same offsets (keeping them in lockstep),
/// including zero-offset events at the currently executing instant.
struct Cascade {
  Lockstep* queues = nullptr;
  Rng* rng = nullptr;
  int budget = 0;
};

// Schedule-during-execute: events scheduled from inside a running event —
// including at the *current* instant — take fresh sequence numbers and
// execute after everything already queued for that instant, identically on
// both backends.
TEST(EventQueueDifferentialTest, ScheduleDuringExecuteKeepsBackendsInLockstep) {
  Lockstep queues;
  Rng rng{42};
  Cascade cascade{&queues, &rng, 4000};

  // A separate driver queue decides, deterministically, what each executed
  // event schedules next. (The recorded history itself only depends on the
  // schedule, which is identical for both backends by construction.)
  for (int i = 0; i < 64; ++i) {
    queues.schedule(rng.uniform(0.0, 4.0));
  }
  while (queues.pending() > 0) {
    // Before each pop, maybe inject events at exactly the next instant to
    // force same-instant races with cascade-scheduled events.
    if (cascade.budget > 0 && rng.bernoulli(0.6)) {
      --cascade.budget;
      const double offset = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 2.0);
      queues.schedule(queues.now() + offset);
    }
    queues.run_one();
  }
  queues.expect_identical_history();
}

// Fuzz-style churn: depth ramps up into the thousands (forcing calendar
// grow-resizes), drains to near-empty (shrink-resizes), and jumps across
// long empty stretches (direct-search path), with heavy same-instant
// bursts throughout.
TEST(EventQueueDifferentialTest, ChurnFuzzAcrossResizesAndSparseYears) {
  Lockstep queues;
  Rng rng{2024};
  for (int cycle = 0; cycle < 3; ++cycle) {
    // Ramp up: bursty near-monotone inserts (the link-serialization shape).
    SimTime horizon = queues.now();
    for (int i = 0; i < 3000; ++i) {
      if (rng.bernoulli(0.2)) horizon += rng.exponential(0.5);
      const int burst = static_cast<int>(rng.uniform_int(1, 4));
      for (int b = 0; b < burst; ++b) {
        queues.schedule(horizon);  // same-instant burst
      }
      if (rng.bernoulli(0.3)) queues.run_one();
    }
    // Drain almost dry.
    while (queues.pending() > 5) queues.run_one();
    // Jump far ahead: the next events live many "years" past the cursor.
    queues.schedule(queues.now() + 1e7 + rng.uniform(0.0, 1e3));
    while (queues.run_one()) {
    }
  }
  queues.expect_identical_history();
  EXPECT_GT(queues.executed(), 9000u);
}

// Deep steady hold with decaying increments: the drift-narrow bench shape
// that used to collapse the calendar (ISSUE 7). The backlog is built past
// 4k pending, then held there — every pop schedules one replacement —
// while the inter-event gap decays by four orders of magnitude, so the
// occupied span narrows under the cursor and the calendar must retune
// (ladder rung splits) without ever draining. Same-instant injections
// exercise schedule-during-execute ties at depth.
TEST(EventQueueDifferentialTest, DeepSteadyHoldWithDecayingIncrements) {
  Lockstep queues;
  Rng rng{777};
  SimTime horizon = 0.0;
  for (int i = 0; i < 4500; ++i) {
    horizon += rng.exponential(1.0);
    queues.schedule(horizon);
  }
  ASSERT_GE(queues.pending(), 4500u);

  double mean = 1.0;
  std::size_t min_depth = queues.pending();
  for (int step = 0; step < 30000; ++step) {
    queues.run_one();
    // Decay the increment scale ~1.0 -> 1e-4 across the hold.
    mean = mean > 1e-4 ? mean * 0.9997 : 1e-4;
    if (rng.bernoulli(0.02)) {
      queues.schedule(queues.now());  // same-instant tie at depth
    }
    horizon += rng.exponential(mean);
    queues.schedule(horizon < queues.now() ? queues.now() : horizon);
    min_depth = queues.pending() < min_depth ? queues.pending() : min_depth;
  }
  EXPECT_GE(min_depth, 4000u);  // the hold really stayed deep
  while (queues.run_one()) {
  }
  queues.expect_identical_history();
}

void note(void* ctx, std::uint64_t token) {
  static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(token);
}

// O(1) timer cancellation (ISSUE 8 satellite): a cancelled timer's queued
// record becomes a tombstone that pops as a no-op, slots recycle through a
// free list, and generations make stale ids inert — identically on both
// backends, since cancellation never touches the scheduler's storage.
TEST(EventQueueDifferentialTest, CancelIsExactAcrossSlotRecycling) {
  for (const auto backend :
       {EventQueue::Backend::kCalendar, EventQueue::Backend::kBinaryHeap}) {
    EventQueue q{backend};
    std::vector<std::uint64_t> fired;
    const EventQueue::TimerId a =
        q.schedule_cancellable(1.0, &note, &fired, 1);
    EXPECT_TRUE(q.cancel(a));
    EXPECT_FALSE(q.cancel(a));  // second cancel: harmless no-op
    // The freed slot is recycled immediately; the stale id must not be
    // able to hit the new occupant (generation check).
    const EventQueue::TimerId b =
        q.schedule_cancellable(2.0, &note, &fired, 2);
    EXPECT_EQ(a.slot, b.slot);
    EXPECT_NE(a.generation, b.generation);
    EXPECT_FALSE(q.cancel(a));
    q.run_until_idle();
    ASSERT_EQ(fired, (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(q.cancelled_timers(), 1);
    EXPECT_FALSE(q.cancel(b));  // already fired: no-op
    EXPECT_FALSE(q.cancel(EventQueue::TimerId{}));  // inert default id
  }
}

// Randomized arm/cancel/fire churn driven in lockstep on both backends:
// execution histories must match event for event, every cancel() verdict
// must agree, and no timer cancelled-while-pending may ever fire.
TEST(EventQueueDifferentialTest, CancellationChurnKeepsBackendsInLockstep) {
  EventQueue cal{EventQueue::Backend::kCalendar};
  EventQueue heap{EventQueue::Backend::kBinaryHeap};
  std::vector<std::uint64_t> cal_fired;
  std::vector<std::uint64_t> heap_fired;
  std::vector<std::pair<EventQueue::TimerId, EventQueue::TimerId>> ids;
  std::vector<std::uint64_t> cancelled;  // tokens cancelled while pending
  std::vector<std::uint64_t> id_tokens;
  Rng rng{555};
  std::uint64_t token = 0;
  for (int step = 0; step < 6000; ++step) {
    if (!ids.empty() && rng.bernoulli(0.25)) {
      // Cancel a random armed-at-some-point timer; it may have fired
      // already, in which case both backends must refuse identically.
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1));
      const bool on_cal = cal.cancel(ids[idx].first);
      const bool on_heap = heap.cancel(ids[idx].second);
      ASSERT_EQ(on_cal, on_heap);
      if (on_cal) cancelled.push_back(id_tokens[idx]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(idx));
      id_tokens.erase(id_tokens.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (rng.bernoulli(0.55)) {
      const SimTime t = cal.now() + rng.uniform(0.0, 5.0);
      ids.emplace_back(cal.schedule_cancellable(t, &note, &cal_fired, token),
                       heap.schedule_cancellable(t, &note, &heap_fired,
                                                 token));
      id_tokens.push_back(token);
      ++token;
    } else {
      // Plain events interleave with timers in the same (time, seq) order.
      const SimTime t = cal.now() + rng.uniform(0.0, 5.0);
      cal.schedule(t, &note, &cal_fired, token);
      heap.schedule(t, &note, &heap_fired, token);
      ++token;
    }
    if (rng.bernoulli(0.4)) {
      ASSERT_EQ(cal.run_one(), heap.run_one());
    }
  }
  for (;;) {
    const bool cal_ran = cal.run_one();
    const bool heap_ran = heap.run_one();
    ASSERT_EQ(cal_ran, heap_ran);
    if (!cal_ran) break;
  }
  ASSERT_EQ(cal_fired, heap_fired);
  EXPECT_EQ(cal.cancelled_timers(), heap.cancelled_timers());
  EXPECT_EQ(cal.cancelled_timers(),
            static_cast<std::int64_t>(cancelled.size()));
  for (const std::uint64_t dead : cancelled) {
    for (const std::uint64_t t : cal_fired) {
      ASSERT_NE(t, dead) << "cancelled timer fired";
    }
  }
}

}  // namespace
}  // namespace delta::util
