#include "flow/bipartite_cover.h"

#include <gtest/gtest.h>

namespace delta::flow {
namespace {

using UpdateNode = BipartiteCoverSolver::UpdateNode;
using QueryNode = BipartiteCoverSolver::QueryNode;

TEST(BipartiteCoverTest, EmptyGraphHasEmptyCover) {
  BipartiteCoverSolver solver;
  const auto cover = solver.compute();
  EXPECT_TRUE(cover.updates.empty());
  EXPECT_TRUE(cover.queries.empty());
  EXPECT_EQ(cover.weight, 0);
}

TEST(BipartiteCoverTest, IsolatedVerticesNeverCovered) {
  BipartiteCoverSolver solver;
  solver.add_update(5);
  solver.add_query(7);
  const auto cover = solver.compute();
  EXPECT_EQ(cover.weight, 0);
  EXPECT_TRUE(cover.updates.empty());
  EXPECT_TRUE(cover.queries.empty());
}

TEST(BipartiteCoverTest, SingleEdgePicksCheaperSide) {
  {
    BipartiteCoverSolver solver;
    const auto u = solver.add_update(3);
    const auto q = solver.add_query(10);
    solver.connect(u, q);
    const auto cover = solver.compute();
    EXPECT_EQ(cover.weight, 3);
    ASSERT_EQ(cover.updates.size(), 1u);
    EXPECT_EQ(cover.updates[0], u);
    EXPECT_TRUE(cover.queries.empty());
    EXPECT_TRUE(solver.last_cover_is_valid());
  }
  {
    BipartiteCoverSolver solver;
    const auto u = solver.add_update(10);
    const auto q = solver.add_query(3);
    solver.connect(u, q);
    const auto cover = solver.compute();
    EXPECT_EQ(cover.weight, 3);
    EXPECT_TRUE(cover.updates.empty());
    ASSERT_EQ(cover.queries.size(), 1u);
    EXPECT_EQ(cover.queries[0], q);
    EXPECT_TRUE(solver.last_cover_is_valid());
  }
}

// The paper's ski-rental intuition: a cheap update facing many queries is
// shipped once enough query weight has accumulated against it.
TEST(BipartiteCoverTest, UpdateChosenOnceQueriesAccumulate) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(10);
  const auto q1 = solver.add_query(6);
  solver.connect(u, q1);
  auto cover = solver.compute();
  // One query of weight 6 < 10: cheaper to ship the query.
  EXPECT_EQ(cover.weight, 6);
  ASSERT_EQ(cover.queries.size(), 1u);

  const auto q2 = solver.add_query(6);
  solver.connect(u, q2);
  cover = solver.compute();
  // Two queries of total weight 12 > 10: now ship the update.
  EXPECT_EQ(cover.weight, 10);
  ASSERT_EQ(cover.updates.size(), 1u);
  EXPECT_EQ(cover.updates[0], u);
  EXPECT_TRUE(cover.queries.empty());
}

TEST(BipartiteCoverTest, PaperExampleInternalGraph) {
  // Fig. 2's internal interaction graph: u1(1 GB), u6(2 GB) vs q7(3 GB),
  // with edges (u1,q7), (u6,q7). Covering with q7 costs 3; covering with
  // {u1, u6} also costs 3 — both optimal. The cover weight must be 3.
  BipartiteCoverSolver solver;
  const auto u1 = solver.add_update(1);
  const auto u6 = solver.add_update(2);
  const auto q7 = solver.add_query(3);
  solver.connect(u1, q7);
  solver.connect(u6, q7);
  const auto cover = solver.compute();
  EXPECT_EQ(cover.weight, 3);
  EXPECT_TRUE(solver.last_cover_is_valid());
}

TEST(BipartiteCoverTest, StarOfExpensiveQueries) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(100);
  std::vector<QueryNode> queries;
  for (int i = 0; i < 5; ++i) {
    const auto q = solver.add_query(10);
    solver.connect(u, q);
    queries.push_back(q);
  }
  // 5 * 10 = 50 < 100: ship the queries.
  const auto cover = solver.compute();
  EXPECT_EQ(cover.weight, 50);
  EXPECT_EQ(cover.queries.size(), 5u);
  EXPECT_TRUE(cover.updates.empty());
}

TEST(BipartiteCoverTest, RemoveUpdateCancelsFlow) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(5);
  const auto q = solver.add_query(20);
  solver.connect(u, q);
  auto cover = solver.compute();
  EXPECT_EQ(cover.weight, 5);

  solver.remove_update(u);
  EXPECT_EQ(solver.update_count(), 0u);
  EXPECT_EQ(solver.current_flow(), 0);
  cover = solver.compute();
  EXPECT_EQ(cover.weight, 0);

  // q is now isolated and removable.
  EXPECT_EQ(solver.degree(q), 0u);
  solver.remove_query(q);
  EXPECT_EQ(solver.query_count(), 0u);
}

TEST(BipartiteCoverTest, RemoveQueryRequiresIsolation) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(5);
  const auto q = solver.add_query(20);
  solver.connect(u, q);
  EXPECT_THROW(solver.remove_query(q), std::logic_error);
  solver.remove_update(u);
  solver.remove_query(q);  // fine once isolated
}

TEST(BipartiteCoverTest, StaleHandleRejected) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(5);
  const auto q = solver.add_query(20);
  solver.connect(u, q);
  solver.remove_update(u);
  EXPECT_THROW(solver.connect(u, q), std::logic_error);
  // Slot reuse must not resurrect the old handle.
  const auto u2 = solver.add_update(7);
  EXPECT_THROW(solver.connect(u, q), std::logic_error);
  solver.connect(u2, q);
}

TEST(BipartiteCoverTest, RemainderStyleWorkflow) {
  // Simulates the UpdateManager lifecycle: queries arrive one by one; after
  // each cover, covered updates are shipped (removed) and un-covered queries
  // are pruned once isolated.
  BipartiteCoverSolver solver;
  const auto u1 = solver.add_update(8);
  const auto u2 = solver.add_update(3);

  const auto qa = solver.add_query(5);
  solver.connect(u1, qa);
  solver.connect(u2, qa);
  auto cover = solver.compute();
  // Options: qa (5) vs u1+u2 (11) vs mixed (u2+qa would double-count qa).
  EXPECT_EQ(cover.weight, 5);
  ASSERT_EQ(cover.queries.size(), 1u);  // ship qa; updates stay outstanding

  const auto qb = solver.add_query(9);
  solver.connect(u1, qb);
  auto cover2 = solver.compute();
  // Edges: (u1,qa),(u2,qa),(u1,qb). qa already shipped (still weight 5).
  // Min cover: {u1, qa?}: u1=8 covers (u1,qa),(u1,qb); (u2,qa) needs u2 or
  // qa. Candidates: u1+u2=11, u1+qa=13, qa+qb=14, u2+qb... qb=9 covers only
  // (u1,qb); qa=5 covers (u1,qa),(u2,qa). So qa+qb=14, u1+u2=11,
  // u2+qb=12, u1+qa=13 -> minimum is 11.
  EXPECT_EQ(cover2.weight, 11);
  EXPECT_EQ(cover2.updates.size(), 2u);
  EXPECT_TRUE(solver.last_cover_is_valid());

  // Ship both updates; queries become isolated and are pruned.
  solver.remove_update(u1);
  solver.remove_update(u2);
  EXPECT_EQ(solver.degree(qa), 0u);
  EXPECT_EQ(solver.degree(qb), 0u);
  solver.remove_query(qa);
  solver.remove_query(qb);
  EXPECT_EQ(solver.interaction_count(), 0u);
  EXPECT_EQ(solver.compute().weight, 0);
}

TEST(BipartiteCoverTest, InLastCoverMatchesCoverLists) {
  BipartiteCoverSolver solver;
  const auto u1 = solver.add_update(2);
  const auto u2 = solver.add_update(50);
  const auto q1 = solver.add_query(30);
  const auto q2 = solver.add_query(3);
  solver.connect(u1, q1);
  solver.connect(u2, q2);
  const auto cover = solver.compute();
  // Expect u1 (2 < 30) and q2 (3 < 50).
  EXPECT_EQ(cover.weight, 5);
  EXPECT_TRUE(solver.in_last_cover(u1));
  EXPECT_FALSE(solver.in_last_cover(u2));
  EXPECT_FALSE(solver.in_last_cover(q1));
  EXPECT_TRUE(solver.in_last_cover(q2));
}

TEST(BipartiteCoverTest, CoverQueryAfterMutationRejected) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(2);
  const auto q = solver.add_query(30);
  solver.connect(u, q);
  solver.compute();
  solver.add_update(4);  // mutation invalidates the cached cover
  EXPECT_THROW((void)solver.in_last_cover(u), std::logic_error);
}

TEST(BipartiteCoverTest, InteractionCountTracksEdges) {
  BipartiteCoverSolver solver;
  const auto u = solver.add_update(1);
  const auto q1 = solver.add_query(1);
  const auto q2 = solver.add_query(1);
  EXPECT_EQ(solver.interaction_count(), 0u);
  solver.connect(u, q1);
  solver.connect(u, q2);
  EXPECT_EQ(solver.interaction_count(), 2u);
  solver.remove_update(u);
  EXPECT_EQ(solver.interaction_count(), 0u);
}

}  // namespace
}  // namespace delta::flow
