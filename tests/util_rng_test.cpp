#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace delta::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBoundsAndCoversRange) {
  Rng rng{3};
  std::vector<int> seen(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v + 5)];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng{13};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ParetoLowerBound) {
  Rng rng{19};
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, WeightedIndexDistribution) {
  Rng rng{23};
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hits[rng.weighted_index(w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng{29};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a{31};
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng b{31};
  b.next_u64();  // parent consumed one word for the fork
  EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  Rng rng{37};
  ZipfSampler zipf{10, 1.0};
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 50000; ++i) ++hits[zipf.sample(rng)];
  EXPECT_GT(hits[0], hits[4]);
  EXPECT_GT(hits[0], hits[9]);
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng{41};
  ZipfSampler zipf{1, 1.2};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace delta::util
