#include "core/update_manager.h"

#include <gtest/gtest.h>

#include "trace_builder.h"

namespace delta::core {
namespace {

using testing::TraceBuilder;

TEST(UpdateManagerTest, FreshObjectsNeedNoDecision) {
  TraceBuilder b{{100, 100}};
  b.query({0, 1}, 50);
  const auto trace = b.build();
  UpdateManager mgr;
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_FALSE(d.ship_query);
  EXPECT_TRUE(d.ship_updates.empty());
  EXPECT_EQ(mgr.graph_query_count(), 0u);  // fast path adds no vertex
}

TEST(UpdateManagerTest, CheapUpdateShippedForExpensiveQuery) {
  TraceBuilder b{{100}};
  b.update(0, 10);
  b.query({0}, 500);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  EXPECT_TRUE(mgr.is_stale(ObjectId{0}));
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_FALSE(d.ship_query);
  ASSERT_EQ(d.ship_updates.size(), 1u);
  EXPECT_EQ(d.ship_updates[0]->id, trace.updates[0].id);
  EXPECT_FALSE(mgr.is_stale(ObjectId{0}));
  // Remainder rule: both vertices are gone.
  EXPECT_EQ(mgr.graph_query_count(), 0u);
  EXPECT_EQ(mgr.graph_update_count(), 0u);
}

TEST(UpdateManagerTest, CheapQueryShippedAgainstExpensiveUpdate) {
  TraceBuilder b{{100}};
  b.update(0, 500);
  b.query({0}, 10);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_TRUE(d.ship_query);
  EXPECT_TRUE(d.ship_updates.empty());
  EXPECT_TRUE(mgr.is_stale(ObjectId{0}));  // update still outstanding
  // Shipped query stays in the remainder graph (ski-rental memory).
  EXPECT_EQ(mgr.graph_query_count(), 1u);
  EXPECT_EQ(mgr.graph_update_count(), 1u);
}

TEST(UpdateManagerTest, SkiRentalFlipsAfterEnoughQueries) {
  // Update of cost 100 vs queries of cost 40: the first two queries ship
  // (40 < 100, then 80 < 100), the third flips the cover (120 > 100).
  TraceBuilder b{{100}};
  b.update(0, 100);
  b.query({0}, 40);
  b.query({0}, 40);
  b.query({0}, 40);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);

  const auto d1 = mgr.decide(trace.queries[0]);
  EXPECT_TRUE(d1.ship_query);
  const auto d2 = mgr.decide(trace.queries[1]);
  EXPECT_TRUE(d2.ship_query);
  const auto d3 = mgr.decide(trace.queries[2]);
  EXPECT_FALSE(d3.ship_query);
  ASSERT_EQ(d3.ship_updates.size(), 1u);
  // After shipping, the old query vertices become isolated and are pruned.
  EXPECT_EQ(mgr.graph_query_count(), 0u);
  EXPECT_EQ(mgr.graph_update_count(), 0u);
}

TEST(UpdateManagerTest, WithoutShippedQueryMemoryNoFlipHappens) {
  TraceBuilder b{{100}};
  b.update(0, 100);
  for (int i = 0; i < 6; ++i) b.query({0}, 40);
  const auto trace = b.build();
  UpdateManager mgr{/*remember_shipped_queries=*/false};
  mgr.add_outstanding(trace.updates[0]);
  for (int i = 0; i < 6; ++i) {
    const auto d = mgr.decide(trace.queries[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(d.ship_query) << "query " << i;
    EXPECT_TRUE(d.ship_updates.empty());
  }
  EXPECT_EQ(mgr.graph_query_count(), 0u);  // forgotten immediately
}

TEST(UpdateManagerTest, StalenessToleranceExcludesRecentUpdates) {
  TraceBuilder b{{100}};
  b.update(0, 50);                    // time 0
  b.query({0}, 10, /*tolerance=*/5);  // time 1: update within tolerance
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  const auto d = mgr.decide(trace.queries[0]);
  // The only outstanding update arrived within t(q): nothing to do.
  EXPECT_FALSE(d.ship_query);
  EXPECT_TRUE(d.ship_updates.empty());
  EXPECT_EQ(mgr.graph_query_count(), 0u);
}

TEST(UpdateManagerTest, OldUpdateStillBindsUnderTolerance) {
  TraceBuilder b{{100}};
  b.update(0, 5);  // time 0
  for (int i = 0; i < 10; ++i) b.query({0}, 100);  // advance time
  b.query({0}, 100, /*tolerance=*/3);  // time 11, update at 0 needed
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  const auto d = mgr.decide(trace.queries.back());
  // Cheap update against an expensive query: ship the update.
  EXPECT_FALSE(d.ship_query);
  ASSERT_EQ(d.ship_updates.size(), 1u);
}

TEST(UpdateManagerTest, MultiObjectQueryInteractsAcrossObjects) {
  TraceBuilder b{{100, 100, 100}};
  b.update(0, 30);
  b.update(1, 30);
  b.query({0, 1, 2}, 40);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  const auto d = mgr.decide(trace.queries[0]);
  // Query (40) vs both updates (60): ship the query.
  EXPECT_TRUE(d.ship_query);
  EXPECT_TRUE(d.ship_updates.empty());
  // A second identical query accumulates: 80 > 60 flips to updates.
  TraceBuilder b2{{100, 100, 100}};
  b2.update(0, 30);
  b2.update(1, 30);
  b2.query({0, 1, 2}, 40);
  b2.query({0, 1, 2}, 40);
  const auto trace2 = b2.build();
  UpdateManager mgr2;
  mgr2.add_outstanding(trace2.updates[0]);
  mgr2.add_outstanding(trace2.updates[1]);
  (void)mgr2.decide(trace2.queries[0]);
  const auto d2 = mgr2.decide(trace2.queries[1]);
  EXPECT_FALSE(d2.ship_query);
  EXPECT_EQ(d2.ship_updates.size(), 2u);
}

TEST(UpdateManagerTest, DropObjectRemovesItsUpdatesAndPrunes) {
  TraceBuilder b{{100, 100}};
  b.update(0, 500);
  b.update(1, 500);
  b.query({0, 1}, 10);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_TRUE(d.ship_query);
  EXPECT_EQ(mgr.graph_update_count(), 2u);
  EXPECT_EQ(mgr.graph_query_count(), 1u);

  mgr.drop_object(ObjectId{0});  // evicted
  EXPECT_FALSE(mgr.is_stale(ObjectId{0}));
  EXPECT_TRUE(mgr.is_stale(ObjectId{1}));
  EXPECT_EQ(mgr.graph_update_count(), 1u);
  EXPECT_EQ(mgr.graph_query_count(), 1u);  // still tied to object 1's update

  mgr.drop_object(ObjectId{1});
  EXPECT_EQ(mgr.graph_update_count(), 0u);
  EXPECT_EQ(mgr.graph_query_count(), 0u);  // became isolated, pruned
}

TEST(UpdateManagerTest, PartialCoversShipOnlyJustifiedUpdates) {
  // Two updates on different objects; queries hammer object 0 only. The
  // cover should ship object 0's update but keep object 1's outstanding.
  TraceBuilder b{{100, 100}};
  b.update(0, 50);
  b.update(1, 50);
  b.query({0}, 80);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_FALSE(d.ship_query);
  ASSERT_EQ(d.ship_updates.size(), 1u);
  EXPECT_EQ(d.ship_updates[0]->object, ObjectId{0});
  EXPECT_TRUE(mgr.is_stale(ObjectId{1}));
}

TEST(UpdateManagerTest, GraphStatsTrackPeak) {
  TraceBuilder b{{100}};
  b.update(0, 1000);
  b.update(0, 1000);
  b.query({0}, 10);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  (void)mgr.decide(trace.queries[0]);
  // Both pending updates of the object materialize as ONE group vertex.
  EXPECT_EQ(mgr.peak_graph_nodes(), 2u);
  EXPECT_EQ(mgr.covers_computed(), 1);
  EXPECT_GT(mgr.flow_bfs_count(), 0);
}

TEST(UpdateManagerTest, GroupedUpdatesShipTogether) {
  // Two cheap updates on the same object against an expensive query: the
  // group (cost 20+30=50) is covered and both members ship together.
  TraceBuilder b{{100}};
  b.update(0, 20);
  b.update(0, 30);
  b.query({0}, 500);
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  const auto d = mgr.decide(trace.queries[0]);
  EXPECT_FALSE(d.ship_query);
  EXPECT_EQ(d.ship_updates.size(), 2u);
  EXPECT_FALSE(mgr.is_stale(ObjectId{0}));
}

TEST(UpdateManagerTest, TolerancePrefixMaterializesLazily) {
  // Query 1 (tolerance 2, at time 2) needs only the first update: the
  // second stays pending outside the graph. Query 2 (strict, at time 3)
  // needs both: the pending remainder extends the object's group vertex.
  TraceBuilder b{{100}};
  b.update(0, 40);                 // time 0
  b.update(0, 40);                 // time 1
  b.query({0}, 10, /*tol=*/2);     // time 2: needs update at 0 only
  b.query({0}, 10);                // time 3: needs everything
  const auto trace = b.build();
  UpdateManager mgr;
  mgr.add_outstanding(trace.updates[0]);
  mgr.add_outstanding(trace.updates[1]);
  const auto d1 = mgr.decide(trace.queries[0]);
  EXPECT_TRUE(d1.ship_query);  // 10 < 40
  EXPECT_EQ(mgr.graph_update_count(), 1u);  // only the needed prefix
  EXPECT_EQ(mgr.graph_interaction_count(), 1u);
  const auto d2 = mgr.decide(trace.queries[1]);
  EXPECT_TRUE(d2.ship_query);
  // Still one group vertex per object, now carrying both updates (80) and
  // one merged query vertex carrying both shipped queries (20).
  EXPECT_EQ(mgr.graph_update_count(), 1u);
  EXPECT_EQ(mgr.graph_query_count(), 1u);
}

}  // namespace
}  // namespace delta::core
