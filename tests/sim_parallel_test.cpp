// Parallel simulation engine tests: the headline guarantee (any thread
// count reproduces the sequential engine's RunResults bit-for-bit), the
// repeated-run determinism of the parallel path itself, and the accounting
// invariants on parallel results.
#include <gtest/gtest.h>

#include <string>

#include "meter_invariants.h"
#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "workload/trace_split.h"

namespace delta::sim {
namespace {

using World = Setup;  // ::testing::Test::Setup shadows sim::Setup in TESTs

SetupParams small_params(std::uint64_t seed = 21) {
  SetupParams p;
  p.base_level = 4;
  p.total_rows = 4e7;
  p.object_target = 30;
  p.trace_seed = seed;
  p.trace.query_count = 2000;
  p.trace.update_count = 2000;
  p.trace.postwarmup_query_gb = 8.0;
  p.trace.mean_postwarmup_update_mb = 2.0;
  p.trace.hotspot_max_object_gb = 1.0;
  p.benefit_window = 500;
  return p;
}

/// Bitwise equality of two RunResults, wall_seconds excepted (it is real
/// elapsed time). Doubles are compared with EXPECT_EQ on purpose: the
/// deterministic engine promises bit-identical output, not approximate.
void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.warmup_end, b.warmup_end);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  EXPECT_EQ(a.postwarmup_traffic, b.postwarmup_traffic);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(a.postwarmup_by_mechanism[m], b.postwarmup_by_mechanism[m])
        << "mechanism " << m;
  }
  EXPECT_EQ(a.overhead_traffic, b.overhead_traffic);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.cache_fresh, b.cache_fresh);
  EXPECT_EQ(a.cache_after_updates, b.cache_after_updates);
  EXPECT_EQ(a.shipped, b.shipped);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  ASSERT_EQ(a.series.points().size(), b.series.points().size());
  for (std::size_t k = 0; k < a.series.points().size(); ++k) {
    EXPECT_EQ(a.series.points()[k].event_index,
              b.series.points()[k].event_index)
        << "point " << k;
    EXPECT_EQ(a.series.points()[k].value, b.series.points()[k].value)
        << "point " << k;
  }
  EXPECT_EQ(a.postwarmup_latency.count(), b.postwarmup_latency.count());
  EXPECT_EQ(a.postwarmup_latency.mean(), b.postwarmup_latency.mean());
  EXPECT_EQ(a.postwarmup_latency.variance(), b.postwarmup_latency.variance());
  EXPECT_EQ(a.postwarmup_latency.min(), b.postwarmup_latency.min());
  EXPECT_EQ(a.postwarmup_latency.max(), b.postwarmup_latency.max());
  EXPECT_EQ(a.postwarmup_latency.sum(), b.postwarmup_latency.sum());
}

void expect_identical(const MultiRunResult& a, const MultiRunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.strategy, b.strategy);
  ASSERT_EQ(a.per_endpoint.size(), b.per_endpoint.size());
  expect_identical(a.combined, b.combined, label + " combined");
  for (std::size_t i = 0; i < a.per_endpoint.size(); ++i) {
    expect_identical(a.per_endpoint[i], b.per_endpoint[i],
                     label + " endpoint " + std::to_string(i));
  }
}

// The acceptance guarantee: for T ∈ {2, 4, 8} the parallel engine's output
// is byte-identical to the sequential engine (T=1), per endpoint and
// combined, across policies and split strategies.
TEST(ParallelSimTest, ByteIdenticalToSequentialAcrossThreadCounts) {
  const World setup{small_params()};
  for (const PolicyKind kind :
       {PolicyKind::kVCover, PolicyKind::kBenefit, PolicyKind::kSOptimal}) {
    for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                                workload::SplitStrategy::kHashByRegion}) {
      const MultiRunResult sequential = run_one_multi(
          kind, setup.trace(), setup.cache_capacity(), setup.params(), 4,
          strategy, PolicyOverrides{}, 2000, ParallelOptions{1, true});
      for (const std::size_t threads : {2u, 4u, 8u}) {
        const MultiRunResult parallel = run_one_multi(
            kind, setup.trace(), setup.cache_capacity(), setup.params(), 4,
            strategy, PolicyOverrides{}, 2000,
            ParallelOptions{threads, true});
        expect_identical(sequential, parallel,
                         std::string{to_string(kind)} + "/" +
                             workload::to_string(strategy) + "/T=" +
                             std::to_string(threads));
      }
    }
  }
}

// Same seed, same thread count, run twice: the parallel engine is
// repeatable against itself (no dependence on scheduling).
TEST(ParallelSimTest, RepeatedParallelRunsAreIdentical) {
  const World setup{small_params(22)};
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto run = [&] {
      return run_one_multi(PolicyKind::kVCover, setup.trace(),
                           setup.cache_capacity(), setup.params(), 8,
                           workload::SplitStrategy::kHashByRegion,
                           PolicyOverrides{}, 2000,
                           ParallelOptions{threads, true});
    };
    expect_identical(run(), run(), "T=" + std::to_string(threads));
  }
}

// More workers than endpoints and a single-endpoint parallel run are both
// legal and still reproduce the sequential engine.
TEST(ParallelSimTest, DegenerateShapesMatchSequential) {
  const World setup{small_params(23)};
  const MultiRunResult seq1 = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 1, workload::SplitStrategy::kRoundRobin);
  const MultiRunResult par1 = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 1, workload::SplitStrategy::kRoundRobin,
      PolicyOverrides{}, 2000, ParallelOptions{8, true});
  expect_identical(seq1, par1, "N=1 T=8");
}

// Parallel results satisfy the same partition invariant as sequential ones:
// per-endpoint figures partition the combined view exactly.
TEST(ParallelSimTest, ParallelResultsSatisfyPartitionInvariant) {
  const World setup{small_params(24)};
  const MultiRunResult parallel = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 4, workload::SplitStrategy::kHashByRegion,
      PolicyOverrides{}, 2000, ParallelOptions{4, true});
  delta::testing::ExpectPerEndpointResultsPartitionCombined(parallel);
}

// deterministic=false trades the bit-identical combined latency fold for
// less bookkeeping: every integer-valued figure must still match exactly;
// the folded latency moments agree to floating-point accuracy.
TEST(ParallelSimTest, FastMergeMatchesOnAllIntegerFigures) {
  const World setup{small_params(25)};
  const MultiRunResult det = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 4, workload::SplitStrategy::kHashByRegion,
      PolicyOverrides{}, 2000, ParallelOptions{4, true});
  const MultiRunResult fast = run_one_multi(
      PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
      setup.params(), 4, workload::SplitStrategy::kHashByRegion,
      PolicyOverrides{}, 2000, ParallelOptions{4, false});
  EXPECT_EQ(det.combined.total_traffic, fast.combined.total_traffic);
  EXPECT_EQ(det.combined.postwarmup_traffic,
            fast.combined.postwarmup_traffic);
  EXPECT_EQ(det.combined.overhead_traffic, fast.combined.overhead_traffic);
  EXPECT_EQ(det.combined.queries, fast.combined.queries);
  EXPECT_EQ(det.combined.cache_fresh, fast.combined.cache_fresh);
  EXPECT_EQ(det.combined.shipped, fast.combined.shipped);
  EXPECT_EQ(det.combined.postwarmup_latency.count(),
            fast.combined.postwarmup_latency.count());
  EXPECT_EQ(det.combined.postwarmup_latency.min(),
            fast.combined.postwarmup_latency.min());
  EXPECT_EQ(det.combined.postwarmup_latency.max(),
            fast.combined.postwarmup_latency.max());
  EXPECT_NEAR(det.combined.postwarmup_latency.mean(),
              fast.combined.postwarmup_latency.mean(), 1e-12);
  // Per-endpoint views never depend on the merge mode.
  ASSERT_EQ(det.per_endpoint.size(), fast.per_endpoint.size());
  for (std::size_t i = 0; i < det.per_endpoint.size(); ++i) {
    expect_identical(det.per_endpoint[i], fast.per_endpoint[i],
                     "endpoint " + std::to_string(i));
  }
}

}  // namespace
}  // namespace delta::sim
