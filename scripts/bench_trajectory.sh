#!/usr/bin/env bash
# Runs the perf-trajectory bench and writes BENCH_<label>.json at the repo
# root, so each PR can commit a comparable measurement next to the previous
# one (see README "Performance"). Since PR 4 the file also carries an
# "event_engine" section: events/sec through the discrete-event engine and
# the p50/p99 *simulated* response times, with the "single_cache" section
# as the synchronous same-file baseline.
#
#   scripts/bench_trajectory.sh [label] [extra bench args...]
#
#   label     suffix for the output file (default: the short git revision),
#             e.g. "PR4" -> BENCH_PR4.json
#   extra     forwarded to bench_trajectory (e.g. smoke=1 repeats=5)
#
# The build directory defaults to ./build (Release); override with
# BUILD_DIR=... . The bench must already be built:
#   cmake -B build -S . && cmake --build build -j --target bench_trajectory
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BENCH="${BUILD_DIR}/bench/bench_trajectory"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built; run:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j --target bench_trajectory" >&2
  exit 1
fi

LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
shift || true

OUT="BENCH_${LABEL}.json"
"${BENCH}" out="${OUT}" "$@"
echo "trajectory written to ${OUT}"
