// Quickstart: build a small synthetic sky, generate a workload trace, run
// Delta's VCover policy through the middleware, and print what happened.
//
//   ./build/examples/quickstart [key=value ...]
//
// This walks the full public API surface: density model -> partition map ->
// trace generator -> DeltaSystem + VCoverPolicy -> simulator -> metrics.
#include <iostream>
#include <memory>

#include "core/vcover_policy.h"
#include "htm/partition_map.h"
#include "sim/simulator.h"
#include "storage/density_model.h"
#include "util/config.h"
#include "util/format.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  // 1. A synthetic sky at HTM level 4, scaled to ~8 GB of catalog data,
  //    partitioned into ~24 spatial data objects.
  auto density = std::make_shared<storage::DensityModel>(
      /*base_level=*/4, /*seed=*/cfg.get_int("sky_seed", 7));
  density->scale_to_total_rows(4e6);  // 4M rows * 2 KiB = 8 GiB
  const auto map = std::make_shared<htm::PartitionMap>(
      htm::PartitionMap::build(4, density->weights(),
                               static_cast<std::size_t>(
                                   cfg.get_int("objects", 24))));
  std::cout << "sky: " << map->object_count() << " data objects over a "
            << "level-4 HTM grid\n";

  // 2. A workload: 5k queries + 5k updates, calibrated to ~4 GB of query
  //    results and ~1 MB mean updates.
  workload::TraceParams tp;
  tp.query_count = cfg.get_int("queries", 5000);
  tp.update_count = cfg.get_int("updates", 5000);
  tp.postwarmup_query_gb = 4.0;
  tp.mean_postwarmup_update_mb = 1.0;
  tp.hotspot_max_object_gb = 1.0;
  const workload::TraceGenerator generator{map, *density, tp};
  const workload::Trace trace =
      generator.generate(static_cast<std::uint64_t>(cfg.get_int("seed", 1)));
  std::cout << "trace: " << trace.queries.size() << " queries + "
            << trace.updates.size() << " updates; post-warm-up query bytes "
            << util::human_bytes(
                   trace.total_query_cost(trace.info.warmup_end_event))
            << "\n";

  // 3. The middleware: repository + cache joined by a metered transport,
  //    with VCover deciding between query shipping, update shipping and
  //    object loading.
  core::DeltaSystem system{&trace};
  core::VCoverOptions options;
  Bytes server;
  for (const Bytes b : trace.initial_object_bytes) server += b;
  options.cache_capacity = Bytes{static_cast<std::int64_t>(
      server.as_double() * cfg.get_double("cache_frac", 0.3))};
  core::VCoverPolicy policy{&system, options};
  std::cout << "cache: " << util::human_bytes(options.cache_capacity)
            << " (" << cfg.get_double("cache_frac", 0.3) * 100
            << "% of the " << util::human_bytes(server) << " repository)\n\n";

  // 4. Replay the merged event sequence.
  const sim::RunResult result = sim::run_policy(trace, system, policy);

  // 5. Report.
  std::cout << "=== results (post-warm-up) ===\n";
  std::cout << "traffic total:   "
            << util::human_bytes(result.postwarmup_traffic) << "\n";
  std::cout << "  query shipping: "
            << util::human_bytes(result.postwarmup_by_mechanism[0]) << "\n";
  std::cout << "  update shipping: "
            << util::human_bytes(result.postwarmup_by_mechanism[1]) << "\n";
  std::cout << "  object loading: "
            << util::human_bytes(result.postwarmup_by_mechanism[2]) << "\n";
  std::cout << "queries answered at cache: "
            << result.cache_fresh + result.cache_after_updates << " / "
            << result.queries << "\n";
  std::cout << "objects loaded: " << policy.loads()
            << ", evicted: " << policy.evictions() << "\n";
  std::cout << "interaction graph peak: "
            << policy.update_manager().peak_graph_nodes() << " vertices, "
            << policy.update_manager().covers_computed()
            << " covers computed\n";
  std::cout << "mean response-time proxy: "
            << util::fixed(result.postwarmup_latency.mean() * 1000, 1)
            << " ms\n";
  const Bytes nocache = trace.total_query_cost(trace.info.warmup_end_event);
  std::cout << "vs NoCache: " << util::human_bytes(nocache) << " ("
            << util::fixed(nocache.as_double() /
                               result.postwarmup_traffic.as_double(),
                           2)
            << "x reduction)\n";
  return 0;
}
