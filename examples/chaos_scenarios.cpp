// Chaos scenarios (ISSUE 8): the failure-model demo. Drives the open-loop
// WAN engine with deterministic fault injection and the hardened protocol
// armed, and prints the failure/recovery yardsticks for one of three
// scenarios:
//
//   scenario=partition    both server<->cache paths go dark mid-run, then
//                         heal; the caches suspect the partition (timeouts,
//                         retries with backoff), ride it out, and on heal
//                         run an epoch resync that replays every missed
//                         invalidation — the staleness hole closes and the
//                         per-cache notice ledgers balance.
//   scenario=flash_crowd  4x arrival overload, no faults: the admission
//                         controller sheds at the server (kQueryReject)
//                         and degrades at the policy (stale-within-t(q)
//                         answers) instead of collapsing the uplink.
//   scenario=update_storm lossy links everywhere (drop/duplicate/reorder)
//                         under congestion batching: the retry budget and
//                         the dedup windows keep every query accounted and
//                         every notice applied exactly once.
//
// Every message fate is a pure function of (plan seed, link, message seq),
// so reruns — at ANY thread count — are bit-identical.
//
//   ./build/examples/chaos_scenarios [scenario=partition] [threads=N] ...
#include <iostream>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/link_model.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  const std::string scenario = cfg.get_string("scenario", "partition");
  const std::size_t endpoints =
      static_cast<std::size_t>(cfg.get_int("endpoints", 2));

  // Provisioned so faults — not raw overload — dominate: MB-scale objects
  // and update deltas the 100 Mbit link can carry at the demo arrival rate
  // with headroom. (GB-scale payloads here would saturate the uplink and
  // turn every scenario into the same retransmit storm.)
  sim::SetupParams params;
  params.base_level = 4;
  params.total_rows = 4e4;
  params.object_target = 30;
  params.trace.query_count = cfg.get_int("queries", 8'000);
  params.trace.update_count = cfg.get_int("updates", 8'000);
  params.trace.postwarmup_query_gb =
      0.05 * static_cast<double>(params.trace.query_count) / 1200.0;
  params.trace.mean_postwarmup_update_mb = 0.02;
  params.trace.hotspot_max_object_gb = 0.01;
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  const sim::Setup setup{params};

  const double rate = cfg.get_double("rate", 500.0);
  sim::EventEngineOptions options;
  options.default_link = net::LinkModel{12.5e6, 0.040};  // 100 Mbit WAN
  options.open_loop.enabled = true;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.protocol.enabled = true;
  options.admission.enabled = true;
  options.parallel.num_threads =
      static_cast<std::size_t>(cfg.get_int("threads", 1));

  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  if (scenario == "partition") {
    const net::FaultWindow window{0.40 * duration, 0.60 * duration};
    for (std::size_t i = 0; i < endpoints; ++i) {
      options.fault_plan.partitions.push_back(net::LinkPartition{
          "server", "cache-" + std::to_string(i), true, {window}});
    }
    options.fault_plan.enabled = true;
    std::cout << "Partition-then-heal: all server<->cache paths dark over ["
              << util::fixed(window.down_seconds, 2) << "s, "
              << util::fixed(window.heal_seconds, 2) << "s)\n";
  } else if (scenario == "flash_crowd") {
    options.open_loop.rate_per_sec = 4.0 * rate;
    options.admission.shed_backlog_seconds = 0.5;
    options.admission.degrade_backlog_seconds = 0.1;
    std::cout << "Flash crowd: arrivals at " << 4.0 * rate
              << "/s against a link provisioned for ~" << rate << "/s\n";
  } else if (scenario == "update_storm") {
    options.fault_plan.enabled = true;
    options.fault_plan.default_faults.drop = 0.02;
    options.fault_plan.default_faults.duplicate = 0.02;
    options.fault_plan.default_faults.reorder = 0.05;
    options.notice_batching.enabled = true;
    options.notice_batching.backlog_threshold_seconds = 0.0;
    std::cout << "Update storm: every link drops 2%, duplicates 2%, "
                 "reorders 5% (congestion batching on)\n";
  } else {
    std::cerr << "unknown scenario '" << scenario
              << "' (partition | flash_crowd | update_storm)\n";
    return 1;
  }

  // The partition and storm scenarios exist to disrupt invalidation
  // traffic, so they run the full-replica policy (subscribed to every
  // update — the server's notice ledger is guaranteed non-empty); the
  // flash crowd exercises the admission/degrade path, which lives in the
  // VCover policy.
  const sim::PolicyKind policy = scenario == "flash_crowd"
                                     ? sim::PolicyKind::kVCover
                                     : sim::PolicyKind::kReplica;
  const Bytes per_endpoint{static_cast<std::int64_t>(
      setup.cache_capacity().as_double() / static_cast<double>(endpoints))};
  const sim::EventRunResult r = sim::run_one_event(
      policy, setup.trace(), per_endpoint, params, endpoints,
      workload::SplitStrategy::kRoundRobin, options);
  const sim::ChaosYardsticks& ch = r.chaos;

  std::cout << "\n" << endpoints << " caches, "
            << setup.trace().order.size() << " events, sim duration "
            << util::fixed(r.sim_duration_seconds, 2) << "s\n\n";
  util::TablePrinter table{{"yardstick", "value"}};
  table.add_row({"queries (all accounted)",
                 std::to_string(r.replay.combined.queries)});
  table.add_row({"response p50 / p99",
                 util::fixed(r.response_p50(), 3) + "s / " +
                     util::fixed(r.response_p99(), 3) + "s"});
  table.add_row({"timeouts / retries", std::to_string(ch.timeouts) + " / " +
                                           std::to_string(ch.retries)});
  table.add_row({"failed (budget exhausted)",
                 std::to_string(ch.failed_requests)});
  table.add_row({"shed at server / degraded at policy",
                 std::to_string(ch.shed_queries) + " / " +
                     std::to_string(ch.degraded_queries)});
  table.add_row({"duplicates suppressed (req / notice)",
                 std::to_string(ch.request_duplicates_suppressed) + " / " +
                     std::to_string(ch.duplicate_notices_suppressed)});
  table.add_row({"faults (drop/dup/reorder/partition)",
                 std::to_string(ch.faults_dropped) + "/" +
                     std::to_string(ch.faults_duplicated) + "/" +
                     std::to_string(ch.faults_reordered) + "/" +
                     std::to_string(ch.partition_dropped)});
  table.add_row({"unavailable window",
                 util::fixed(ch.unavailable_seconds, 2) + "s"});
  table.add_row({"resyncs (client / served)",
                 std::to_string(ch.resyncs) + " / " +
                     std::to_string(ch.resyncs_served)});
  table.add_row({"notices replayed by resync",
                 std::to_string(ch.replayed_notices)});
  table.add_row({"max staleness repaired",
                 util::fixed(ch.max_recovery_staleness_seconds, 2) + "s"});
  table.add_row({"notice ledger (logged == applied)",
                 std::to_string(ch.notices_logged) + " == " +
                     std::to_string(ch.notices_applied)});
  table.print(std::cout);

  if (scenario == "partition") {
    std::cout << "\nConvergence: after the heal + resync every cache has "
                 "applied exactly the notices the server logged for it"
              << (ch.notices_logged == ch.notices_applied ? " -- holds."
                                                          : " -- VIOLATED!")
              << "\n";
  }
  return 0;
}
