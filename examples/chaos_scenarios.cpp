// Chaos scenarios (ISSUE 8): the failure-model demo. Drives the open-loop
// WAN engine with deterministic fault injection and the hardened protocol
// armed, and prints the failure/recovery yardsticks for one of three
// scenarios:
//
//   scenario=partition    both server<->cache paths go dark mid-run, then
//                         heal; the caches suspect the partition (timeouts,
//                         retries with backoff), ride it out, and on heal
//                         run an epoch resync that replays every missed
//                         invalidation — the staleness hole closes and the
//                         per-cache notice ledgers balance.
//   scenario=flash_crowd  4x arrival overload, no faults: the admission
//                         controller sheds at the server (kQueryReject)
//                         and degrades at the policy (stale-within-t(q)
//                         answers) instead of collapsing the uplink.
//   scenario=update_storm lossy links everywhere (drop/duplicate/reorder)
//                         under congestion batching: the retry budget and
//                         the dedup windows keep every query accounted and
//                         every notice applied exactly once.
//   scenario=rolling_restart (ISSUE 10) the caches crash-stop one after
//                         another — each loses its store, pending table and
//                         notice high-water mark, restarts cold, and
//                         recovers by re-registering + replaying the ledger
//                         (kRecoverRequest); cold misses re-warm the
//                         working set and the books balance per cache.
//   scenario=server_crash_during_update_storm (ISSUE 10) the repository
//                         process dies mid-storm over lossy links: its
//                         registrations, dedup windows and ledgers are
//                         wiped; caches detect the new incarnation from
//                         reply stamps and rebuild. Loss + crash can leave
//                         genuinely unrecoverable notices (fault-dropped
//                         before the crash, replay source wiped with it) —
//                         the ledger gap, if any, is printed honestly.
//
// Every message fate is a pure function of (plan seed, link, message seq),
// so reruns — at ANY thread count — are bit-identical.
//
//   ./build/examples/chaos_scenarios [scenario=partition] [threads=N] ...
#include <iostream>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/link_model.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  const std::string scenario = cfg.get_string("scenario", "partition");
  const std::size_t endpoints =
      static_cast<std::size_t>(cfg.get_int("endpoints", 2));

  // Provisioned so faults — not raw overload — dominate: MB-scale objects
  // and update deltas the 100 Mbit link can carry at the demo arrival rate
  // with headroom. (GB-scale payloads here would saturate the uplink and
  // turn every scenario into the same retransmit storm.)
  sim::SetupParams params;
  params.base_level = 4;
  params.total_rows = 4e4;
  params.object_target = 30;
  params.trace.query_count = cfg.get_int("queries", 8'000);
  params.trace.update_count = cfg.get_int("updates", 8'000);
  params.trace.postwarmup_query_gb =
      0.05 * static_cast<double>(params.trace.query_count) / 1200.0;
  params.trace.mean_postwarmup_update_mb = 0.02;
  params.trace.hotspot_max_object_gb = 0.01;
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  if (scenario == "rolling_restart" ||
      scenario == "server_crash_during_update_storm") {
    // Crash scenarios want a *loaded* working set: tens-of-KB objects whose
    // load cost pays off fast, so the caches hold real state worth losing —
    // the cold-miss burst after a restart is the point of the demo.
    params.total_rows = 400;
  }
  const sim::Setup setup{params};

  const double rate = cfg.get_double("rate", 500.0);
  sim::EventEngineOptions options;
  options.default_link = net::LinkModel{12.5e6, 0.040};  // 100 Mbit WAN
  options.open_loop.enabled = true;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.protocol.enabled = true;
  options.admission.enabled = true;
  options.parallel.num_threads =
      static_cast<std::size_t>(cfg.get_int("threads", 1));

  const double duration =
      static_cast<double>(setup.trace().order.size()) / rate;
  if (scenario == "partition") {
    const net::FaultWindow window{0.40 * duration, 0.60 * duration};
    for (std::size_t i = 0; i < endpoints; ++i) {
      options.fault_plan.partitions.push_back(net::LinkPartition{
          "server", "cache-" + std::to_string(i), true, {window}});
    }
    options.fault_plan.enabled = true;
    std::cout << "Partition-then-heal: all server<->cache paths dark over ["
              << util::fixed(window.down_seconds, 2) << "s, "
              << util::fixed(window.heal_seconds, 2) << "s)\n";
  } else if (scenario == "flash_crowd") {
    options.open_loop.rate_per_sec = 4.0 * rate;
    options.admission.shed_backlog_seconds = 0.5;
    options.admission.degrade_backlog_seconds = 0.1;
    std::cout << "Flash crowd: arrivals at " << 4.0 * rate
              << "/s against a link provisioned for ~" << rate << "/s\n";
  } else if (scenario == "update_storm") {
    options.fault_plan.enabled = true;
    options.fault_plan.default_faults.drop = 0.02;
    options.fault_plan.default_faults.duplicate = 0.02;
    options.fault_plan.default_faults.reorder = 0.05;
    options.notice_batching.enabled = true;
    options.notice_batching.backlog_threshold_seconds = 0.0;
    std::cout << "Update storm: every link drops 2%, duplicates 2%, "
                 "reorders 5% (congestion batching on)\n";
  } else if (scenario == "rolling_restart") {
    options.fault_plan.enabled = true;
    // A tight in-flight window would stall the arrival tape as soon as the
    // dead cache fills it with timing-out queries; unbound it so traffic
    // keeps flowing at the crashed endpoint (that traffic IS the cold-miss
    // and late-reply story).
    options.open_loop.max_in_flight = 4096;
    // Staggered windows: cache-i dies at (0.3 + 0.2i) of the run for 10%
    // of it, so at most one cache is down at a time (the rolling deploy).
    for (std::size_t i = 0; i < endpoints; ++i) {
      const double down = (0.30 + 0.20 * static_cast<double>(i)) * duration;
      options.fault_plan.crashes.push_back(net::CrashSchedule{
          "cache-" + std::to_string(i),
          {net::FaultWindow{down, down + 0.10 * duration}}});
    }
    std::cout << "Rolling restart: each cache crash-stops for "
              << util::fixed(0.10 * duration, 2)
              << "s in turn, restarts cold, and recovers\n";
  } else if (scenario == "server_crash_during_update_storm") {
    options.fault_plan.enabled = true;
    options.open_loop.max_in_flight = 4096;
    options.fault_plan.default_faults.drop = 0.02;
    options.fault_plan.default_faults.duplicate = 0.02;
    options.fault_plan.default_faults.reorder = 0.05;
    options.fault_plan.crashes.push_back(net::CrashSchedule{
        "server",
        {net::FaultWindow{0.45 * duration, 0.55 * duration}}});
    std::cout << "Server crash during update storm: lossy links everywhere "
                 "and the repository dead over ["
              << util::fixed(0.45 * duration, 2) << "s, "
              << util::fixed(0.55 * duration, 2) << "s)\n";
  } else {
    std::cerr << "unknown scenario '" << scenario
              << "' (partition | flash_crowd | update_storm | "
                 "rolling_restart | server_crash_during_update_storm)\n";
    return 1;
  }

  // The partition and storm scenarios exist to disrupt invalidation
  // traffic, so they run the full-replica policy (subscribed to every
  // update — the server's notice ledger is guaranteed non-empty); the
  // flash crowd exercises the admission/degrade path, which lives in the
  // VCover policy. The crash scenarios also run VCover: a loaded working
  // set is what makes a cold restart measurable, and its request traffic
  // is what lets a cache detect a restarted server (a quiet full replica
  // answers locally and would never see an incarnation stamp).
  const bool crash_scenario = scenario == "rolling_restart" ||
                              scenario == "server_crash_during_update_storm";
  const sim::PolicyKind policy =
      scenario == "flash_crowd" || crash_scenario ? sim::PolicyKind::kVCover
                                                  : sim::PolicyKind::kReplica;
  const Bytes per_endpoint{static_cast<std::int64_t>(
      setup.cache_capacity().as_double() / static_cast<double>(endpoints))};
  const sim::EventRunResult r = sim::run_one_event(
      policy, setup.trace(), per_endpoint, params, endpoints,
      workload::SplitStrategy::kRoundRobin, options);
  const sim::ChaosYardsticks& ch = r.chaos;

  std::cout << "\n" << endpoints << " caches, "
            << setup.trace().order.size() << " events, sim duration "
            << util::fixed(r.sim_duration_seconds, 2) << "s\n\n";
  util::TablePrinter table{{"yardstick", "value"}};
  table.add_row({"queries (all accounted)",
                 std::to_string(r.replay.combined.queries)});
  table.add_row({"response p50 / p99",
                 util::fixed(r.response_p50(), 3) + "s / " +
                     util::fixed(r.response_p99(), 3) + "s"});
  table.add_row({"timeouts / retries", std::to_string(ch.timeouts) + " / " +
                                           std::to_string(ch.retries)});
  table.add_row({"failed (budget exhausted)",
                 std::to_string(ch.failed_requests)});
  table.add_row({"shed at server / degraded at policy",
                 std::to_string(ch.shed_queries) + " / " +
                     std::to_string(ch.degraded_queries)});
  table.add_row({"duplicates suppressed (req / notice)",
                 std::to_string(ch.request_duplicates_suppressed) + " / " +
                     std::to_string(ch.duplicate_notices_suppressed)});
  table.add_row({"faults (drop/dup/reorder/partition)",
                 std::to_string(ch.faults_dropped) + "/" +
                     std::to_string(ch.faults_duplicated) + "/" +
                     std::to_string(ch.faults_reordered) + "/" +
                     std::to_string(ch.partition_dropped)});
  table.add_row({"unavailable window",
                 util::fixed(ch.unavailable_seconds, 2) + "s"});
  table.add_row({"resyncs (client / served)",
                 std::to_string(ch.resyncs) + " / " +
                     std::to_string(ch.resyncs_served)});
  table.add_row({"notices replayed by resync",
                 std::to_string(ch.replayed_notices)});
  table.add_row({"max staleness repaired",
                 util::fixed(ch.max_recovery_staleness_seconds, 2) + "s"});
  table.add_row({"notice ledger (logged == applied)",
                 std::to_string(ch.notices_logged) + " == " +
                     std::to_string(ch.notices_applied)});
  if (crash_scenario) {
    const double availability =
        r.sim_duration_seconds > 0.0
            ? 1.0 - ch.crash_downtime_seconds / r.sim_duration_seconds
            : 1.0;
    table.add_row({"crash restarts", std::to_string(ch.crash_restarts)});
    table.add_row({"dropped while endpoint down",
                   std::to_string(ch.crash_dropped)});
    table.add_row({"downtime / availability",
                   util::fixed(ch.crash_downtime_seconds, 2) + "s / " +
                       util::fixed(100.0 * availability, 2) + "%"});
    table.add_row({"cold misses (re-warm loads)",
                   std::to_string(ch.cold_misses)});
    table.add_row({"retries past budget (load/resync)",
                   std::to_string(ch.budget_exceeded_retries)});
    table.add_row({"max time to reconvergence",
                   util::fixed(ch.max_reconvergence_seconds, 2) + "s"});
    table.add_row({"post-restart staleness repaired",
                   util::fixed(ch.post_restart_staleness_seconds, 2) + "s"});
  }
  table.print(std::cout);

  if (scenario == "partition" || scenario == "rolling_restart") {
    std::cout << "\nConvergence: after the heal + resync every cache has "
                 "applied exactly the notices the server logged for it"
              << (ch.notices_logged == ch.notices_applied ? " -- holds."
                                                          : " -- VIOLATED!")
              << "\n";
  } else if (scenario == "server_crash_during_update_storm") {
    // Loss + crash is the one combination with genuinely unrecoverable
    // notices: a notice the lossy link dropped BEFORE the crash was owed
    // from the pre-crash ledger, and that replay source died with the
    // server. Clean-network crashes converge exactly (pinned by
    // crash_restart_test); here the residual gap is reported, not hidden.
    const std::int64_t gap = ch.notices_logged - ch.notices_applied;
    std::cout << "\nLedger gap after loss+crash: " << gap
              << (gap == 0 ? " (this seed lost nothing unrecoverable)"
                           : " notices dropped pre-crash whose replay "
                             "source died with the server")
              << "\n";
  }
  return 0;
}
