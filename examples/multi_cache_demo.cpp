// Multi-cache demo: one repository (ServerNode) serving several cache
// endpoints (CacheNodes), each running its own VCover policy instance, with
// queries sharded across endpoints by sky region.
//
//   ./build/examples/multi_cache_demo [key=value ...]
//     endpoints=3 strategy=hash|rr queries=5000 updates=5000 cache_frac=0.3
//     threads=1   (0 = one per hardware core; >1 runs the parallel engine,
//                  which produces byte-identical results to threads=1)
//
// This walks the multi-endpoint API surface: trace -> split strategy ->
// run_one_multi -> per-endpoint RunResults + combined figures, and checks
// the accounting identity (per-endpoint traffic sums to the aggregate).
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "util/config.h"
#include "util/format.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  // 1. A small world: ~8 GB repository over ~24 spatial objects.
  sim::SetupParams params;
  params.base_level = 4;
  params.sky_seed = static_cast<std::uint64_t>(cfg.get_int("sky_seed", 7));
  params.total_rows = 4e6;
  params.object_target = static_cast<std::size_t>(cfg.get_int("objects", 24));
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  params.trace.query_count = cfg.get_int("queries", 5000);
  params.trace.update_count = cfg.get_int("updates", 5000);
  // Keep per-query magnitudes fixed as the trace length is overridden.
  params.trace.postwarmup_query_gb =
      4.0 * static_cast<double>(params.trace.query_count) / 5000.0;
  params.trace.mean_postwarmup_update_mb = 1.0;
  params.trace.hotspot_max_object_gb = 1.0;
  const sim::Setup setup{params};

  const std::int64_t endpoints_arg = cfg.get_int("endpoints", 3);
  if (endpoints_arg < 1 || endpoints_arg > 1024) {
    std::cerr << "endpoints must be in [1, 1024], got " << endpoints_arg
              << "\n";
    return 2;
  }
  const auto endpoints = static_cast<std::size_t>(endpoints_arg);
  const std::string strategy_arg = cfg.get_string("strategy", "hash");
  if (strategy_arg != "hash" && strategy_arg != "rr") {
    std::cerr << "strategy must be 'hash' or 'rr', got '" << strategy_arg
              << "'\n";
    return 2;
  }
  const workload::SplitStrategy strategy =
      strategy_arg == "rr" ? workload::SplitStrategy::kRoundRobin
                           : workload::SplitStrategy::kHashByRegion;
  // Each endpoint is its own cache workstation with its own disk, so each
  // is provisioned cache_frac of the repository (bench/micro_multi_endpoint
  // sweeps the other regime: one fixed budget sliced across endpoints).
  const double frac = cfg.get_double("cache_frac", 0.3);
  const Bytes per_endpoint{
      static_cast<std::int64_t>(setup.server_bytes().as_double() * frac)};
  const std::int64_t threads_arg = cfg.get_int("threads", 1);
  if (threads_arg < 0 || threads_arg > 1024) {
    std::cerr << "threads must be in [0, 1024], got " << threads_arg << "\n";
    return 2;
  }
  sim::ParallelOptions parallel;
  parallel.num_threads = static_cast<std::size_t>(threads_arg);

  std::cout << "world: " << setup.map()->object_count() << " objects, "
            << util::human_bytes(setup.server_bytes()) << " repository; "
            << endpoints << " cache endpoints ("
            << util::human_bytes(per_endpoint) << " each), split="
            << workload::to_string(strategy) << ", threads="
            << (parallel.num_threads == 0 ? std::string{"auto"}
                                          : std::to_string(threads_arg))
            << "\n\n";

  // 2. One ServerNode + N CacheNodes, a VCover policy per endpoint.
  const sim::MultiRunResult result = sim::run_one_multi(
      sim::PolicyKind::kVCover, setup.trace(), per_endpoint, params,
      endpoints, strategy, sim::PolicyOverrides{}, 2000, parallel);

  // 3. Per-endpoint report.
  std::cout << "endpoint      queries  at-cache  post-warm-up traffic\n";
  Bytes sum;
  for (std::size_t i = 0; i < result.per_endpoint.size(); ++i) {
    const sim::RunResult& r = result.per_endpoint[i];
    sum += r.postwarmup_traffic;
    std::cout << "cache-" << i << "        " << r.queries << "     "
              << r.cache_fresh + r.cache_after_updates << "      "
              << util::human_bytes(r.postwarmup_traffic) << "\n";
  }
  std::cout << "combined       " << result.combined.queries << "     "
            << result.combined.cache_fresh +
                   result.combined.cache_after_updates
            << "      " << util::human_bytes(result.combined.postwarmup_traffic)
            << "\n\n";

  // 4. The accounting identity the architecture guarantees.
  std::cout << "per-endpoint sum " << util::human_bytes(sum)
            << (sum == result.combined.postwarmup_traffic
                    ? " == combined (exact)"
                    : " != combined (BUG)")
            << "\n";
  const Bytes nocache = setup.trace().total_query_cost(
      setup.trace().info.warmup_end_event);
  std::cout << "vs NoCache: " << util::human_bytes(nocache) << " ("
            << util::fixed(nocache.as_double() /
                               result.combined.postwarmup_traffic.as_double(),
                           2)
            << "x reduction)\n";
  return sum == result.combined.postwarmup_traffic ? 0 : 1;
}
