// Granularity explorer: how the choice of data-object size changes Delta's
// behaviour (the Fig. 8b question, interactively). Builds one sky, re-maps
// one workload across several partition granularities and shows where the
// traffic, the load churn and the interaction-graph pressure go.
//
//   ./build/examples/granularity_explorer [granularities=8,32,128 ...]
#include <iostream>

#include "core/vcover_policy.h"
#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  sim::SetupParams params;
  params.base_level = 4;
  params.total_rows = 4e7;
  params.object_target = 32;
  params.trace.query_count = cfg.get_int("queries", 20'000);
  params.trace.update_count = cfg.get_int("updates", 20'000);
  params.trace.postwarmup_query_gb = 20.0;
  params.trace.mean_postwarmup_update_mb = 1.0;
  params.trace.hotspot_max_object_gb = 1.5;
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 5));

  sim::Setup setup{params};
  const auto granularities =
      cfg.get_int_list("granularities", {8, 16, 32, 64, 128, 256});

  std::cout << "One sky (" << util::human_bytes(setup.server_bytes())
            << "), one workload, " << granularities.size()
            << " partitionings; cache "
            << util::human_bytes(setup.cache_capacity()) << "\n\n";

  util::TablePrinter table{{"objects", "median obj", "traffic", "loads",
                            "evictions", "cache answers", "graph peak"}};
  workload::Trace& trace = setup.mutable_trace();
  for (const std::int64_t target : granularities) {
    const auto map =
        setup.map_with_objects(static_cast<std::size_t>(target));
    trace.remap(*map);

    core::DeltaSystem system{&trace};
    core::VCoverOptions options;
    options.cache_capacity = setup.cache_capacity();
    core::VCoverPolicy policy{&system, options};
    const auto result = sim::run_policy(trace, system, policy);

    // Median non-empty object size under this partitioning.
    std::vector<std::int64_t> sizes;
    for (const Bytes b : trace.initial_object_bytes) {
      if (b.count() > 0) sizes.push_back(b.count());
    }
    std::sort(sizes.begin(), sizes.end());
    const Bytes median{sizes.empty() ? 0 : sizes[sizes.size() / 2]};

    table.add_row({std::to_string(map->object_count()),
                   util::human_bytes(median),
                   util::human_bytes(result.postwarmup_traffic),
                   std::to_string(policy.loads()),
                   std::to_string(policy.evictions()),
                   std::to_string(result.cache_fresh +
                                  result.cache_after_updates),
                   std::to_string(policy.update_manager().peak_graph_nodes())});
  }
  table.print(std::cout);
  std::cout << "\nCoarse objects waste cache space and make loads "
               "expensive; fine objects pack the cache tightly at the cost "
               "of more load decisions and graph bookkeeping.\n";
  return 0;
}
