// Adaptive-workload demo: the robustness story of §1/§4. Splices two
// workload phases with disjoint hotspots (a simulated "serendipitous
// discovery" that moves the community's interest overnight) and shows how
// VCover re-decouples — evicting the old hot set, loading the new one —
// while the window-based Benefit heuristic lags and thrashes.
//
//   ./build/examples/adaptive_workload [queries=N ...]
#include <iostream>

#include "core/benefit_policy.h"
#include "core/vcover_policy.h"
#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  sim::SetupParams params;
  params.base_level = 4;
  params.total_rows = 4e7;
  params.object_target = 40;
  params.trace.query_count = cfg.get_int("queries", 30'000);
  params.trace.update_count = cfg.get_int("updates", 15'000);
  params.trace.postwarmup_query_gb = 25.0;
  params.trace.mean_postwarmup_update_mb = 1.0;
  params.trace.hotspot_max_object_gb = 1.5;
  // An abrupt regime: short dwells, always-global jumps.
  params.trace.hotspot.cluster_count = 3;
  params.trace.hotspot.mean_dwell_events =
      static_cast<double>(cfg.get_int("dwell", 12'000));
  params.trace.hotspot.global_jump_fraction = 1.0;
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 9));
  params.benefit_window = cfg.get_int("benefit_window", 3000);

  sim::Setup setup{params};
  std::cout << "Abruptly evolving workload: 3 clusters, global jumps every "
            << "~" << params.trace.hotspot.mean_dwell_events
            << " events, over " << setup.map()->object_count()
            << " objects\n\n";

  const auto run = [&](sim::PolicyKind kind) {
    return sim::run_one(kind, setup.trace(), setup.cache_capacity(), params,
                        sim::PolicyOverrides{}, 1000);
  };
  const auto nocache = run(sim::PolicyKind::kNoCache);
  const auto benefit = run(sim::PolicyKind::kBenefit);
  const auto vcover = run(sim::PolicyKind::kVCover);

  util::TablePrinter table{
      {"policy", "traffic", "cache answers", "loads+evicts"}};
  table.add_row({"NoCache", util::human_bytes(nocache.postwarmup_traffic),
                 "0", "-"});
  table.add_row({"Benefit", util::human_bytes(benefit.postwarmup_traffic),
                 std::to_string(benefit.cache_fresh +
                                benefit.cache_after_updates),
                 std::to_string(benefit.objects_loaded)});
  table.add_row({"VCover", util::human_bytes(vcover.postwarmup_traffic),
                 std::to_string(vcover.cache_fresh +
                                vcover.cache_after_updates),
                 std::to_string(vcover.objects_loaded)});
  table.print(std::cout);

  std::cout << "\nCumulative traffic at quarters of the post-warm-up "
               "window (GB):\n";
  util::TablePrinter q{{"quarter", "NoCache", "Benefit", "VCover"}};
  const EventTime warmup = setup.trace().info.warmup_end_event;
  const EventTime end = setup.trace().event_count() - 1;
  for (int c = 1; c <= 4; ++c) {
    const EventTime t = warmup + (end - warmup) * c / 4;
    q.add_row({std::to_string(c),
               util::gb_fixed(Bytes{static_cast<std::int64_t>(
                   nocache.postwarmup_value_at(t))}),
               util::gb_fixed(Bytes{static_cast<std::int64_t>(
                   benefit.postwarmup_value_at(t))}),
               util::gb_fixed(Bytes{static_cast<std::int64_t>(
                   vcover.postwarmup_value_at(t))})});
  }
  q.print(std::cout);
  std::cout << "\nVCover's cover decisions are grounded in the accumulated "
               "past only (remainder graph), so each regime shift costs it "
               "one re-decoupling; Benefit must first re-learn its "
               "forecasts window by window.\n";
  return 0;
}
