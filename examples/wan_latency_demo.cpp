// WAN latency demo: two cache endpoints sharing one repository, one on a
// LAN and one across a 40 ms WAN, replayed on the event-driven engine
// (sim/event_engine.h) — the scenario the synchronous engines cannot
// express, because they deliver every message inline and only *price*
// latency analytically.
//
//   ./build/examples/wan_latency_demo [key=value ...]
//     queries=2000 updates=2000 seed=2718 cache_frac=0.3
//     wan_mbit=50 wan_rtt_ms=40  (cache-1's link; cache-0 stays on the LAN)
//     tick_ms=500                (simulated ms per trace event tick)
//     threads=1                  (worker threads for the per-partition
//                                 parallel replay; any value reproduces the
//                                 same numbers bit-for-bit)
//
// For every policy it reports what only the event engine can measure:
// simulated response-time percentiles (actual transfer + queueing, not a
// formula), the ingest->invalidation staleness per cache, and the
// repository-uplink contention. Watch the WAN cache's staleness sit ~three
// orders of magnitude above the LAN cache's, and the response tail of
// ship-heavy policies blow up while cache-resident policies stay flat.
#include <iostream>
#include <string>
#include <vector>

#include "net/link_model.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  // The golden-test world: big enough that the caching policies genuinely
  // cache (VCover answers ~2/3 of queries locally), small enough to replay
  // five policies in seconds.
  sim::SetupParams params;
  params.base_level = 4;
  params.total_rows = 4e7;
  params.object_target = static_cast<std::size_t>(cfg.get_int("objects", 30));
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 2718));
  params.trace.query_count = cfg.get_int("queries", 2000);
  params.trace.update_count = cfg.get_int("updates", 2000);
  params.trace.postwarmup_query_gb =
      8.0 * static_cast<double>(params.trace.query_count) / 2000.0;
  params.trace.mean_postwarmup_update_mb = 2.0;
  params.trace.hotspot_max_object_gb = 1.0;
  params.benefit_window = 500;
  const sim::Setup setup{params};

  const double frac = cfg.get_double("cache_frac", 0.3);
  const Bytes per_endpoint{
      static_cast<std::int64_t>(setup.server_bytes().as_double() * frac)};

  // cache-0: machine-room LAN. cache-1: remote observatory behind a WAN.
  const double wan_mbit = cfg.get_double("wan_mbit", 50.0);
  const double wan_rtt = cfg.get_double("wan_rtt_ms", 40.0) / 1000.0;
  const net::LinkModel lan{125e6, 0.0004};
  const net::LinkModel wan{wan_mbit * 1e6 / 8.0, wan_rtt};

  sim::EventEngineOptions engine;
  engine.seconds_per_event = cfg.get_double("tick_ms", 500.0) / 1000.0;
  engine.default_link = lan;
  engine.cache_links = {lan, wan};
  engine.parallel.num_threads =
      static_cast<std::size_t>(cfg.get_int("threads", 1));

  std::cout << "world: " << setup.map()->object_count() << " objects, "
            << util::human_bytes(setup.server_bytes())
            << " repository; 2 cache endpoints ("
            << util::human_bytes(per_endpoint) << " each)\n"
            << "links: cache-0 LAN 1 Gbit/s 0.4 ms RTT | cache-1 WAN "
            << util::fixed(wan_mbit, 0) << " Mbit/s "
            << util::fixed(wan_rtt * 1000.0, 0) << " ms RTT | tick "
            << util::fixed(engine.seconds_per_event * 1000.0, 1) << " ms\n\n";

  util::TablePrinter table{{"policy", "resp p50", "resp p99", "stale LAN",
                            "stale WAN", "uplink busy", "traffic"}};
  for (const sim::PolicyKind kind :
       {sim::PolicyKind::kNoCache, sim::PolicyKind::kReplica,
        sim::PolicyKind::kBenefit, sim::PolicyKind::kVCover,
        sim::PolicyKind::kSOptimal}) {
    const sim::EventRunResult r = sim::run_one_event(
        kind, setup.trace(), per_endpoint, params, 2,
        workload::SplitStrategy::kRoundRobin, engine);
    const auto stale = [&](std::size_t e) {
      return r.per_endpoint[e].staleness_seconds.count() == 0
                 ? std::string{"-"}
                 : util::fixed(r.per_endpoint[e].staleness_seconds.mean() *
                                   1000.0,
                               2) +
                       " ms";
    };
    table.add_row({sim::to_string(kind),
                   util::fixed(r.response_p50(), 3) + " s",
                   util::fixed(r.response_p99(), 3) + " s", stale(0),
                   stale(1),
                   util::fixed(r.server_uplink.busy_seconds, 1) + " s",
                   util::human_bytes(r.replay.combined.postwarmup_traffic)});
  }
  table.print(std::cout);
  std::cout << "\n";

  std::cout
      << "Response times are *simulated* (request/reply transfers, FIFO\n"
         "links, serialization occupancy), not the analytic proxy; the\n"
         "staleness columns are the measured ingest->invalidation gap per\n"
         "cache. Re-run with wan_rtt_ms=0.4 wan_mbit=1000 to watch the\n"
         "divergence collapse.\n";
  return 0;
}
