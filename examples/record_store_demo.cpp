// Record-store demo: the storage substrate below the byte-level simulation.
// Materializes actual PhotoObj-style records, runs a real cone search
// against the partitioned store, applies an update batch and re-runs —
// demonstrating that the result sizes the cost model charges correspond to
// an executable query path.
//
//   ./build/examples/record_store_demo [records=200000 ...]
#include <iostream>
#include <memory>

#include "htm/partition_map.h"
#include "storage/catalog.h"
#include "storage/density_model.h"
#include "storage/record_store.h"
#include "util/config.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  const int level = 4;

  auto density = std::make_shared<storage::DensityModel>(level, 11);
  const auto records = cfg.get_int("records", 200'000);
  density->scale_to_total_rows(static_cast<double>(records));
  const auto map = std::make_shared<htm::PartitionMap>(
      htm::PartitionMap::build(level, density->weights(), 30));
  storage::SkyCatalog catalog{map, *density};
  storage::RecordStore store{*map, *density, records, /*seed=*/3};
  std::cout << "materialized " << store.record_count() << " records across "
            << map->object_count() << " partitions ("
            << util::human_bytes(catalog.total_bytes())
            << " modeled)\n\n";

  // A cone search where the survey is dense.
  const htm::Vec3 center = htm::from_ra_dec(185.0, 32.0);
  const htm::Region cone = htm::Cone{center, 0.12};
  const auto objects = map->objects_for_region(cone);
  std::cout << "cone search (ra=185, dec=32, r~6.9deg) touches "
            << objects.size() << " partitions: B(q) = {";
  for (std::size_t i = 0; i < objects.size(); ++i) {
    std::cout << (i ? "," : "") << objects[i].value();
  }
  std::cout << "}\n";

  const auto hits = store.query(cone, objects);
  const double estimated = catalog.estimate_rows(cone);
  std::cout << "  actual rows: " << hits.size()
            << ", density-model estimate: "
            << static_cast<std::int64_t>(estimated) << " ("
            << util::fixed(estimated / static_cast<double>(hits.size()), 2)
            << "x)\n";

  // Apply an update batch (a telescope visit) to the densest partition.
  ObjectId target = objects.front();
  for (const ObjectId o : objects) {
    if (store.records_of(o).size() > store.records_of(target).size()) {
      target = o;
    }
  }
  util::Rng rng{99};
  const std::int64_t batch = cfg.get_int("batch", 5000);
  store.insert(target, batch, rng, /*run=*/1);
  catalog.apply_insert(target, static_cast<double>(batch));
  std::cout << "\napplied an update batch of " << batch
            << " new observations to partition " << target.value()
            << " (version now " << catalog.object_version(target) << ")\n";

  const auto hits2 = store.query(cone, objects);
  const double estimated2 = catalog.estimate_rows(cone);
  std::cout << "  rerun: actual rows " << hits2.size()
            << ", estimate " << static_cast<std::int64_t>(estimated2)
            << " — the estimate tracks repository growth, which is what "
               "keeps ν(q) current as the repository grows\n";
  return 0;
}
