// Astronomy-survey scenario: the paper's §6 evaluation in miniature, as an
// application would drive it — compares all five policies on an SDSS-style
// workload and prints the decision narrative (what each policy shipped,
// loaded and answered locally), plus the response-time proxy that motivates
// the preshipping extension.
//
//   ./build/examples/astronomy_survey [queries=N updates=N objects=K ...]
#include <iostream>

#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);

  sim::SetupParams params;
  params.base_level = 4;  // example scale: fast enough for a laptop demo
  params.total_rows = cfg.get_double("total_rows", 4e7);
  params.object_target = static_cast<std::size_t>(cfg.get_int("objects", 40));
  params.trace.query_count = cfg.get_int("queries", 30'000);
  params.trace.update_count = cfg.get_int("updates", 30'000);
  params.trace.postwarmup_query_gb = cfg.get_double("query_gb", 30.0);
  params.trace.mean_postwarmup_update_mb = cfg.get_double("update_mb", 1.0);
  params.trace.hotspot_max_object_gb = 1.5;
  params.cache_fraction = cfg.get_double("cache_frac", 0.30);
  params.benefit_window = cfg.get_int("benefit_window", 6000);
  params.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  sim::Setup setup{params};
  std::cout << "Survey repository: " << setup.map()->object_count()
            << " spatial objects, "
            << util::human_bytes(setup.server_bytes()) << "; cache "
            << util::human_bytes(setup.cache_capacity()) << "\n";
  std::cout << "Workload: " << params.trace.query_count << " queries + "
            << params.trace.update_count
            << " updates (cone searches, range scans, self-joins, "
               "aggregations, scan chunks)\n\n";

  const auto results = sim::run_all_policies(
      setup.trace(), setup.cache_capacity(), params, /*stride=*/1000);

  util::TablePrinter table{{"policy", "traffic", "q-ship", "u-ship", "loads",
                            "cache answers", "mean latency"}};
  double vcover = 0.0;
  double nocache = 0.0;
  for (const auto& r : results) {
    table.add_row({r.policy_name,
                   util::human_bytes(r.postwarmup_traffic),
                   util::human_bytes(r.postwarmup_by_mechanism[0]),
                   util::human_bytes(r.postwarmup_by_mechanism[1]),
                   util::human_bytes(r.postwarmup_by_mechanism[2]),
                   std::to_string(r.cache_fresh + r.cache_after_updates) +
                       "/" + std::to_string(r.queries),
                   util::fixed(r.postwarmup_latency.mean() * 1000, 1) +
                       " ms"});
    if (r.policy_name == "VCover") vcover = r.postwarmup_traffic.as_double();
    if (r.policy_name == "NoCache") {
      nocache = r.postwarmup_traffic.as_double();
    }
  }
  std::cout << "Post-warm-up comparison:\n";
  table.print(std::cout);
  std::cout << "\nDelta (VCover) moved "
            << util::fixed((1.0 - vcover / nocache) * 100.0, 1)
            << "% less data than routing every query to the repository.\n";
  return 0;
}
