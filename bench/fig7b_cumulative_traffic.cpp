// Reproduces Fig. 7(b): cumulative network traffic along the query/update
// event sequence for NoCache, Replica, Benefit, VCover and SOptimal, over
// the post-warm-up measurement window, plus the headline comparisons the
// paper calls out (VCover ≈ half of NoCache; ≥2x better than Benefit;
// ~1.5x better than Replica; within ~1.4x of SOptimal).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);

  sim::Setup setup{params};
  const Bytes cache = setup.cache_capacity();
  bench::print_header("Figure 7(b): cumulative traffic cost", params,
                      setup.server_bytes(), cache);

  std::vector<sim::RunResult> results;
  const std::string filter = cfg.get_string("policies", "all");
  for (const auto& [token, kind] :
       {std::pair{"nocache", sim::PolicyKind::kNoCache},
        std::pair{"replica", sim::PolicyKind::kReplica},
        std::pair{"benefit", sim::PolicyKind::kBenefit},
        std::pair{"vcover", sim::PolicyKind::kVCover},
        std::pair{"soptimal", sim::PolicyKind::kSOptimal}}) {
    if (filter != "all" && filter.find(token) == std::string::npos) continue;
    results.push_back(sim::run_one(kind, setup.trace(), cache, params,
                                   bench::overrides_from_config(cfg), 2000));
    std::cerr << "[fig7b] " << results.back().policy_name << " done in "
              << util::fixed(results.back().wall_seconds, 1) << "s\n";
  }
  if (results.empty()) {
    std::cerr << "no policies matched '" << filter << "'\n";
    return 1;
  }

  // Series table: post-warm-up cumulative GB at evenly spaced checkpoints.
  const EventTime warmup = setup.trace().info.warmup_end_event;
  const EventTime end = setup.trace().event_count() - 1;
  constexpr int kCheckpoints = 9;
  util::TablePrinter table{[&] {
    std::vector<std::string> headers{"event"};
    for (const auto& r : results) headers.push_back(r.policy_name);
    return headers;
  }()};
  for (int c = 1; c <= kCheckpoints; ++c) {
    const EventTime t =
        warmup + (end - warmup) * c / kCheckpoints;
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& r : results) {
      row.push_back(bench::gb(r.postwarmup_value_at(t)));
    }
    table.add_row(std::move(row));
  }
  std::cout << "Post-warm-up cumulative traffic (GB) along the event "
               "sequence:\n";
  table.print(std::cout);

  std::cout << "\nFinal post-warm-up totals:\n";
  util::TablePrinter totals{{"policy", "total GB", "query-ship GB",
                             "update-ship GB", "load GB", "queries@cache"}};
  double nocache = 0.0;
  double replica = 0.0;
  double benefit = 0.0;
  double vcover = 0.0;
  double soptimal = 0.0;
  for (const auto& r : results) {
    totals.add_row(
        {r.policy_name, bench::gb(r.postwarmup_traffic),
         bench::gb(r.postwarmup_by_mechanism[0]),
         bench::gb(r.postwarmup_by_mechanism[1]),
         bench::gb(r.postwarmup_by_mechanism[2]),
         std::to_string(r.cache_fresh + r.cache_after_updates)});
    const double total = r.postwarmup_traffic.as_double();
    if (r.policy_name == "NoCache") nocache = total;
    if (r.policy_name == "Replica") replica = total;
    if (r.policy_name == "Benefit") benefit = total;
    if (r.policy_name == "VCover") vcover = total;
    if (r.policy_name == "SOptimal") soptimal = total;
  }
  totals.print(std::cout);

  if (nocache <= 0 || replica <= 0 || benefit <= 0 || vcover <= 0 ||
      soptimal <= 0) {
    return 0;  // partial policy set: totals table only
  }
  std::cout << "\nHeadline ratios (paper expectations in parentheses):\n";
  std::cout << "  NoCache / VCover  = " << util::fixed(nocache / vcover, 2)
            << "   (~2: \"reduces the traffic by nearly half\")\n";
  std::cout << "  Benefit / VCover  = " << util::fixed(benefit / vcover, 2)
            << "   (>=2: \"outperforms Benefit by a factor of 2-5\")\n";
  std::cout << "  Replica / VCover  = " << util::fixed(replica / vcover, 2)
            << "   (~1.5)\n";
  std::cout << "  VCover / SOptimal = " << util::fixed(vcover / soptimal, 2)
            << "   (~1.4: \"final cost about 40% higher\")\n";
  return 0;
}
