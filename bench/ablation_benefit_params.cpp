// Ablation A2: Benefit's sensitivity to its window size δ and smoothing α.
// The paper tuned δ=1000 for its trace; on this synthetic trace the
// heuristic needs far larger windows before any object's per-window benefit
// exceeds its load cost — and even at its own optimum it stays well behind
// VCover (the paper's §5 weaknesses: proportional attribution, window
// dependence, per-object state).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  const Bytes cache = setup.cache_capacity();
  std::cout << "=== Ablation A2: Benefit window/alpha sensitivity ===\n\n";

  const auto vcover =
      sim::run_one(sim::PolicyKind::kVCover, setup.trace(), cache, params,
                   bench::overrides_from_config(cfg), 5000);
  std::cout << "VCover reference: " << bench::gb(vcover.postwarmup_traffic)
            << " GB\n\n";

  util::TablePrinter wtable{{"window delta", "Benefit GB", "vs VCover",
                             "loads", "cache answers"}};
  for (const std::int64_t window :
       {std::int64_t{1000}, std::int64_t{5000}, std::int64_t{20000},
        std::int64_t{50000}, std::int64_t{125000}}) {
    sim::PolicyOverrides o;
    o.benefit.window = window;
    o.benefit.alpha = params.benefit_alpha;
    const auto r = sim::run_one(sim::PolicyKind::kBenefit, setup.trace(),
                                cache, params, o, 5000);
    wtable.add_row({std::to_string(window),
                    bench::gb(r.postwarmup_traffic),
                    util::fixed(r.postwarmup_traffic.as_double() /
                                    vcover.postwarmup_traffic.as_double(),
                                2),
                    std::to_string(r.objects_loaded),
                    std::to_string(r.cache_fresh + r.cache_after_updates)});
    std::cerr << "[A2] window=" << window << " done\n";
  }
  std::cout << "Window sweep (alpha=" << params.benefit_alpha << "):\n";
  wtable.print(std::cout);

  util::TablePrinter atable{{"alpha", "Benefit GB", "cache answers"}};
  for (const double alpha : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    sim::PolicyOverrides o;
    o.benefit.window = params.benefit_window;
    o.benefit.alpha = alpha;
    const auto r = sim::run_one(sim::PolicyKind::kBenefit, setup.trace(),
                                cache, params, o, 5000);
    atable.add_row({util::fixed(alpha, 1), bench::gb(r.postwarmup_traffic),
                    std::to_string(r.cache_fresh + r.cache_after_updates)});
    std::cerr << "[A2] alpha=" << alpha << " done\n";
  }
  std::cout << "\nAlpha sweep (window=" << params.benefit_window << "):\n";
  atable.print(std::cout);
  return 0;
}
