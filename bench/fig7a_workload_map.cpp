// Reproduces Fig. 7(a): the object-IDs touched by each query/update event
// along the sequence — the workload's evolving query hotspots and
// (partially disjoint) update hotspots — plus the quantitative workload
// diagnostics that determine cacheability: per-object traffic ranking,
// query-byte concentration, hotspot overlap, and the coverage curve
// (what fraction of query bytes a top-k static object set could answer).
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "workload/workload_stats.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  const auto& trace = setup.trace();
  bench::print_header("Figure 7(a): query/update event map", params,
                      setup.server_bytes(), setup.cache_capacity());

  // --- Scatter sample: object-IDs per sampled event (the figure's dots).
  const std::int64_t stride = cfg.get_int("scatter_stride", 2500);
  std::cout << "Scatter sample (event, kind, object-ids), stride="
            << stride << ":\n";
  const auto points = workload::sample_scatter(trace, stride);
  std::int64_t shown = 0;
  const std::int64_t max_rows = cfg.get_int("scatter_rows", 40);
  EventTime last_time = -1;
  for (const auto& p : points) {
    if (p.time == last_time) {
      std::cout << "," << p.object.value();
      continue;
    }
    if (last_time >= 0) std::cout << "\n";
    if (++shown > max_rows) break;
    last_time = p.time;
    std::cout << "  " << p.time << " " << (p.is_update ? "U" : "Q") << " "
              << p.object.value();
  }
  std::cout << "\n  ... (" << points.size() << " sampled points total)\n\n";

  // --- Post-warm-up per-object ranking (query vs update hotspots).
  const auto stats =
      workload::WorkloadStats::compute(trace, trace.info.warmup_end_event);
  util::TablePrinter top{{"rank", "query-hot obj", "query GB", "update-hot obj",
                          "update GB"}};
  const auto qtop = stats.top_query_objects(10);
  const auto utop = stats.top_update_objects(10);
  for (std::size_t i = 0; i < 10 && (i < qtop.size() || i < utop.size());
       ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    if (i < qtop.size()) {
      const auto o = static_cast<std::size_t>(qtop[i].value());
      row.push_back(std::to_string(qtop[i].value()));
      row.push_back(bench::gb(stats.query_bytes[o]));
    } else {
      row.insert(row.end(), {"-", "-"});
    }
    if (i < utop.size()) {
      const auto o = static_cast<std::size_t>(utop[i].value());
      row.push_back(std::to_string(utop[i].value()));
      row.push_back(bench::gb(stats.update_bytes[o]));
    } else {
      row.insert(row.end(), {"-", "-"});
    }
    top.add_row(std::move(row));
  }
  std::cout << "Post-warm-up hotspot ranking:\n";
  top.print(std::cout);

  std::cout << "\nConcentration: top-10 objects carry "
            << util::fixed(stats.query_concentration(10) * 100, 1)
            << "% of attributed query bytes; top-20: "
            << util::fixed(stats.query_concentration(20) * 100, 1) << "%\n";
  std::cout << "Hotspot overlap (Jaccard of top-10 query vs update "
               "objects): "
            << util::fixed(stats.hotspot_overlap(10), 2) << "\n";

  // --- Coverage curve: fraction of post-warm-up query bytes fully
  // answerable from the top-k query objects (B(q) containment), with the
  // cumulative size of that object set.
  std::cout << "\nCoverage curve (static top-k query-hot objects):\n";
  util::TablePrinter cov{{"k", "set size GB", "coverable query GB",
                          "% of query bytes"}};
  const auto ranked = stats.top_query_objects(trace.info.partition_count);
  double total_bytes = 0.0;
  for (const auto& q : trace.queries) {
    if (q.time >= trace.info.warmup_end_event) {
      total_bytes += q.cost.as_double();
    }
  }
  std::vector<bool> in_set(trace.info.partition_count, false);
  Bytes set_size;
  std::size_t next_k = 5;
  for (std::size_t k = 1; k <= ranked.size(); ++k) {
    const auto o = static_cast<std::size_t>(ranked[k - 1].value());
    in_set[o] = true;
    set_size += trace.initial_object_bytes[o];
    if (k != next_k && k != ranked.size()) continue;
    next_k += 5;
    double coverable = 0.0;
    for (const auto& q : trace.queries) {
      if (q.time < trace.info.warmup_end_event) continue;
      const bool covered = std::all_of(
          q.objects.begin(), q.objects.end(), [&](ObjectId obj) {
            return in_set[static_cast<std::size_t>(obj.value())];
          });
      if (covered) coverable += q.cost.as_double();
    }
    cov.add_row({std::to_string(k), bench::gb(set_size),
                 bench::gb(coverable),
                 util::fixed(coverable / total_bytes * 100, 1)});
  }
  cov.print(std::cout);

  // --- B(q) cardinality profile.
  std::vector<std::int64_t> card_hist(9, 0);
  util::StreamingStats card;
  for (const auto& q : trace.queries) {
    card.add(static_cast<double>(q.objects.size()));
    const auto bucket = std::min<std::size_t>(q.objects.size(), 8);
    ++card_hist[bucket];
  }
  std::cout << "\n|B(q)| mean=" << util::fixed(card.mean(), 2)
            << " max=" << card.max() << "; histogram (1..8+): ";
  for (std::size_t i = 1; i < card_hist.size(); ++i) {
    std::cout << card_hist[i] << (i + 1 < card_hist.size() ? "/" : "\n");
  }
  return 0;
}
