// Shared helpers for the figure-reproduction harnesses: default paper-scale
// parameters, command-line overrides (key=value), and table printing.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/config.h"
#include "util/format.h"

namespace delta::bench {

/// Paper-scale defaults; override with key=value args, e.g.
///   queries=50000 updates=50000 objects=68 cache_frac=0.3 seed=1
inline sim::SetupParams setup_from_config(const util::Config& cfg) {
  sim::SetupParams p;
  p.base_level = static_cast<int>(cfg.get_int("base_level", 5));
  p.sky_seed = static_cast<std::uint64_t>(cfg.get_int("sky_seed", 2010));
  p.total_rows = cfg.get_double("total_rows", 4.0e8);
  p.object_target =
      static_cast<std::size_t>(cfg.get_int("objects", 68));
  p.trace_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  p.cache_fraction = cfg.get_double("cache_frac", 0.30);
  p.benefit_window = cfg.get_int("benefit_window", 50'000);
  p.benefit_alpha = cfg.get_double("benefit_alpha", 0.3);
  p.trace.query_count = cfg.get_int("queries", 250'000);
  p.trace.update_count = cfg.get_int("updates", 250'000);
  // The 300 GB post-warm-up target scales with the query count so smaller
  // smoke-test runs keep the paper's per-query magnitudes.
  p.trace.postwarmup_query_gb = cfg.get_double("query_gb", 300.0) *
                                static_cast<double>(p.trace.query_count) /
                                250'000.0;
  p.trace.mean_postwarmup_update_mb = cfg.get_double("update_mb", 2.1);
  return p;
}

inline void print_header(const std::string& title,
                         const sim::SetupParams& p, Bytes server,
                         Bytes cache) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "setup: objects=" << p.object_target
            << " queries=" << p.trace.query_count
            << " updates=" << p.trace.update_count
            << " server=" << util::human_bytes(server)
            << " cache=" << util::human_bytes(cache) << " ("
            << p.cache_fraction * 100 << "% of server)"
            << " seed=" << p.trace_seed << "\n\n";
}

inline std::string gb(Bytes b) { return util::gb_fixed(b, 2); }
inline std::string gb(double bytes) {
  return util::fixed(bytes / 1e9, 2);
}

/// VCover knobs exposed to every bench: vcover_seed, vcover_randomized,
/// vcover_lazy, vcover_remember, vcover_lru, vcover_preship.
inline sim::PolicyOverrides overrides_from_config(const util::Config& cfg) {
  sim::PolicyOverrides o;
  o.vcover.rng_seed =
      static_cast<std::uint64_t>(cfg.get_int("vcover_seed", 0xD517A));
  o.vcover.loading.randomized = cfg.get_bool("vcover_randomized", false);
  o.vcover.loading.lazy = cfg.get_bool("vcover_lazy", true);
  o.vcover.remember_shipped_queries = cfg.get_bool("vcover_remember", true);
  o.vcover.use_lru = cfg.get_bool("vcover_lru", false);
  o.vcover.preship = cfg.get_bool("vcover_preship", false);
  o.soptimal.local_search = cfg.get_bool("soptimal_local", true);
  return o;
}

/// VCover's LoadManager is randomized (Fig. 6); sweep benches report the
/// mean over a few loading seeds so shape trends aren't hidden by
/// single-coin-flip variance. Other policies are deterministic per trace.
inline const std::vector<std::uint64_t>& vcover_seeds() {
  static const std::vector<std::uint64_t> kSeeds{0xD517A, 1234567, 424242};
  return kSeeds;
}

inline std::vector<sim::RunResult> run_vcover_seeds(
    const workload::Trace& trace, Bytes cache, const sim::SetupParams& params,
    std::int64_t stride = 5000) {
  std::vector<sim::RunResult> runs;
  for (const std::uint64_t seed : vcover_seeds()) {
    sim::PolicyOverrides overrides;
    overrides.vcover.rng_seed = seed;
    runs.push_back(sim::run_one(sim::PolicyKind::kVCover, trace, cache,
                                params, overrides, stride));
  }
  return runs;
}

inline double mean_postwarmup_gb(const std::vector<sim::RunResult>& runs) {
  double total = 0.0;
  for (const auto& r : runs) total += r.postwarmup_traffic.as_double();
  return total / static_cast<double>(runs.size()) / 1e9;
}

}  // namespace delta::bench
