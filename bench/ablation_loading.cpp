// Ablation A3: the LoadManager's two design knobs.
//  * randomized attribution (the paper's counter-free trick) vs exact
//    per-object counters — identical in expectation, but the randomized
//    variant adds variance-driven load traffic on objects whose demand is
//    close to their load cost;
//  * lazy (batched per query) vs eager (per candidate) GDS admission — the
//    paper's lazy variant avoids loading an object only to evict it for a
//    sibling candidate of the same query;
//  * Greedy-Dual-Size vs plain LRU as the object caching algorithm.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  std::cout << "=== Ablation A3: loading machinery ===\n\n";

  struct Variant {
    const char* name;
    bool randomized;
    bool lazy;
    bool lru;
  };
  const Variant variants[] = {
      {"counters + lazy GDS (default)", false, true, false},
      {"randomized + lazy GDS (paper)", true, true, false},
      {"counters + eager GDS", false, false, false},
      {"randomized + eager GDS", true, false, false},
      {"counters + lazy LRU", false, true, true},
  };

  // Two regimes: the paper-default cache (uncontended once the hot set
  // fits) and a tight cache where admission/eviction choices actually bite.
  for (const double frac : {params.cache_fraction, 0.12}) {
    const Bytes cache{static_cast<std::int64_t>(
        setup.server_bytes().as_double() * frac)};
    std::cout << "cache = " << util::fixed(frac * 100, 0) << "% of server ("
              << util::human_bytes(cache) << "):\n";
  util::TablePrinter table{{"variant", "traffic GB", "loads GB", "loads",
                            "cache answers"}};
  for (const Variant& v : variants) {
    // Randomized variants: mean over seeds; deterministic ones: one run.
    const auto seeds = v.randomized
                           ? bench::vcover_seeds()
                           : std::vector<std::uint64_t>{0xD517A};
    double loads_gb = 0.0;
    double loads = 0.0;
    double answers = 0.0;
    double total = 0.0;
    for (const std::uint64_t seed : seeds) {
      sim::PolicyOverrides o;
      o.vcover.loading.randomized = v.randomized;
      o.vcover.loading.lazy = v.lazy;
      o.vcover.use_lru = v.lru;
      o.vcover.rng_seed = seed;
      const auto r = sim::run_one(sim::PolicyKind::kVCover, setup.trace(),
                                  cache, params, o, 5000);
      total += r.postwarmup_traffic.as_double();
      loads_gb += r.postwarmup_by_mechanism[2].as_double();
      loads += static_cast<double>(r.objects_loaded);
      answers += static_cast<double>(r.cache_fresh + r.cache_after_updates);
    }
    const double n = static_cast<double>(seeds.size());
    table.add_row({v.name, bench::gb(total / n), bench::gb(loads_gb / n),
                   util::fixed(loads / n, 1), util::fixed(answers / n, 0)});
    std::cerr << "[A3] " << v.name << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n";
  }
  std::cout << "\nExpected: randomized variants trade per-object counter "
               "state for variance (more load traffic); eager admission "
               "churns on multi-object queries; LRU ignores load costs.\n";
  return 0;
}
