// Micro benchmark A7: substrate throughput — HTM point location and region
// covers (the q -> B(q) semantic mapping), Greedy-Dual-Size batch
// decisions, and trace-generation throughput. These bound the middleware's
// per-event bookkeeping cost.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "cache/cache_store.h"
#include "cache/gds.h"
#include "htm/cover.h"
#include "htm/partition_map.h"
#include "storage/density_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/trace_generator.h"

namespace {

using namespace delta;

void BM_HtmLocate(benchmark::State& state) {
  util::Rng rng{1};
  std::vector<htm::Vec3> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back(htm::normalized(
        {rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)}));
  }
  const int level = static_cast<int>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::locate(points[i++ & 1023], level));
  }
}
BENCHMARK(BM_HtmLocate)->Arg(5)->Arg(8);

void BM_HtmConeCover(benchmark::State& state) {
  util::Rng rng{2};
  std::vector<htm::Region> cones;
  for (int i = 0; i < 256; ++i) {
    cones.push_back(htm::Cone{
        htm::normalized({rng.normal(0, 1), rng.normal(0, 1),
                         rng.normal(0, 1)}),
        rng.uniform(0.005, 0.05)});
  }
  const int level = static_cast<int>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::cover_region(cones[i++ & 255], level));
  }
}
BENCHMARK(BM_HtmConeCover)->Arg(5)->Arg(6);

void BM_GdsBatchDecision(benchmark::State& state) {
  const std::size_t resident = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    cache::CacheStore store{Bytes{static_cast<std::int64_t>(resident) * 100}};
    cache::GreedyDualSize gds{&store};
    std::vector<cache::LoadCandidate> warm;
    for (std::size_t i = 0; i < resident; ++i) {
      warm.push_back({ObjectId{static_cast<std::int64_t>(i)}, Bytes{100},
                      Bytes{100}});
    }
    const auto d0 = gds.decide_batch(warm);
    for (const ObjectId o : d0.load) store.load(o, Bytes{100});
    state.ResumeTiming();
    // One contended batch: two candidates that force evictions.
    const std::vector<cache::LoadCandidate> batch{
        {ObjectId{1'000'000}, Bytes{150}, Bytes{150}},
        {ObjectId{1'000'001}, Bytes{150}, Bytes{150}}};
    benchmark::DoNotOptimize(gds.decide_batch(batch));
  }
}
BENCHMARK(BM_GdsBatchDecision)->Arg(16)->Arg(64)->Arg(256);

void BM_TraceGeneration(benchmark::State& state) {
  const auto events = state.range(0);
  auto density = std::make_shared<storage::DensityModel>(4, 7);
  density->scale_to_total_rows(4e7);
  const auto map = std::make_shared<htm::PartitionMap>(
      htm::PartitionMap::build(4, density->weights(), 30));
  workload::TraceParams params;
  params.query_count = events / 2;
  params.update_count = events / 2;
  params.postwarmup_query_gb = 1.0;
  params.hotspot_max_object_gb = 1.0;
  const workload::TraceGenerator generator{map, *density, params};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(++seed));
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_TraceGeneration)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// Work-stealing substrate (ISSUE 9): 64 jobs with a zipf-like skewed cost
// profile (job j spins ~1/(j+1) of the heaviest job's work), LPT-packed
// onto T workers and drained through util::parallel_for_dynamic. Measures
// the scheduling + stealing overhead the parallel replay engines pay on a
// deliberately imbalanced shard set — the case stealing exists for.
void BM_ParallelForDynamicSkewed(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kJobs = 64;
  constexpr std::size_t kHeaviestSpin = 1 << 14;
  std::vector<double> weights(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    weights[j] = static_cast<double>(kHeaviestSpin / (j + 1));
  }
  const auto assignment = util::lpt_assignment(weights, threads);
  for (auto _ : state) {
    std::atomic<std::uint64_t> sink{0};
    util::parallel_for_dynamic(kJobs, assignment, [&](std::size_t j) {
      const auto spins = static_cast<std::uint64_t>(weights[j]);
      std::uint64_t acc = j;
      for (std::uint64_t s = 0; s < spins; ++s) {
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_ParallelForDynamicSkewed)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
