// Reproduces Fig. 8(a): final post-warm-up traffic for each policy as the
// number of updates varies (paper sweep: 125 k .. 375 k) while the query
// stream stays fixed. Expected shapes: NoCache flat (~300 GB); Replica
// linear in the update count (3x updates -> 3x cost); Benefit, VCover and
// SOptimal rise only slightly (they compensate by caching fewer objects).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);

  const std::vector<std::int64_t> update_counts = cfg.get_int_list(
      "update_counts",
      {params.trace.update_count / 2, (params.trace.update_count * 3) / 4,
       params.trace.update_count, (params.trace.update_count * 5) / 4,
       (params.trace.update_count * 3) / 2});

  std::cout << "=== Figure 8(a): final traffic vs number of updates ===\n";
  std::cout << "query stream fixed at " << params.trace.query_count
            << " queries; updates swept over {";
  for (std::size_t i = 0; i < update_counts.size(); ++i) {
    std::cout << (i ? ", " : "") << update_counts[i];
  }
  std::cout << "}\n\n";

  util::TablePrinter table{{"updates", "NoCache", "Replica", "Benefit",
                            "VCover", "SOptimal"}};
  std::vector<double> vcover_totals;
  std::vector<double> benefit_totals;
  std::vector<double> replica_totals;
  for (const std::int64_t updates : update_counts) {
    sim::SetupParams p = params;
    p.trace.update_count = updates;
    sim::Setup setup{p};
    const Bytes cache = setup.cache_capacity();
    std::vector<std::string> row{std::to_string(updates)};
    for (const sim::PolicyKind kind :
         {sim::PolicyKind::kNoCache, sim::PolicyKind::kReplica,
          sim::PolicyKind::kBenefit}) {
      const auto r = sim::run_one(kind, setup.trace(), cache, p,
                                  sim::PolicyOverrides{}, 5000);
      row.push_back(bench::gb(r.postwarmup_traffic));
      if (kind == sim::PolicyKind::kBenefit) {
        benefit_totals.push_back(r.postwarmup_traffic.as_double());
      }
      if (kind == sim::PolicyKind::kReplica) {
        replica_totals.push_back(r.postwarmup_traffic.as_double());
      }
    }
    // VCover: mean over randomized-loading seeds.
    const auto vruns = bench::run_vcover_seeds(setup.trace(), cache, p);
    const double vmean_gb = bench::mean_postwarmup_gb(vruns);
    vcover_totals.push_back(vmean_gb * 1e9);
    row.push_back(util::fixed(vmean_gb, 2));
    const auto s = sim::run_one(sim::PolicyKind::kSOptimal, setup.trace(),
                                cache, p, sim::PolicyOverrides{}, 5000);
    row.push_back(bench::gb(s.postwarmup_traffic));
    table.add_row(std::move(row));
    std::cerr << "[fig8a] updates=" << updates << " done\n";
  }
  std::cout << "Final post-warm-up traffic (GB):\n";
  table.print(std::cout);

  if (replica_totals.size() >= 2) {
    std::cout << "\nShape checks:\n";
    std::cout << "  Replica scaling over the sweep: "
              << util::fixed(replica_totals.back() / replica_totals.front(), 2)
              << "x for "
              << util::fixed(static_cast<double>(update_counts.back()) /
                                 static_cast<double>(update_counts.front()),
                             2)
              << "x updates (paper: proportional)\n";
    std::cout << "  VCover rise over the sweep: "
              << util::fixed(vcover_totals.back() / vcover_totals.front(), 2)
              << "x (paper: slight increase)\n";
    std::cout << "  Benefit/VCover range: "
              << util::fixed(benefit_totals.front() / vcover_totals.front(), 2)
              << " .. "
              << util::fixed(benefit_totals.back() / vcover_totals.back(), 2)
              << " (paper: 2-5 under different conditions)\n";
  }
  return 0;
}
