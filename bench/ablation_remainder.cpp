// Ablation A4: the remainder-subgraph rule's memory. VCover keeps shipped
// query vertices in the interaction graph so that accumulated past demand
// justifies shipping an update later (ski-rental). Turning the memory off
// makes each cover see only the current query: updates on hot cached
// objects are almost never shipped, so currency-constrained queries keep
// being shipped forever. Also reports interaction-graph footprints.
#include <iostream>

#include "bench_common.h"
#include "core/vcover_policy.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  const Bytes cache = setup.cache_capacity();
  std::cout << "=== Ablation A4: remainder-rule memory ===\n\n";

  util::TablePrinter table{{"variant", "traffic GB", "q-ship GB",
                            "u-ship GB", "cache answers", "graph peak",
                            "covers", "flow BFS"}};
  for (const bool remember : {true, false}) {
    core::DeltaSystem system{&setup.trace()};
    core::VCoverOptions opts;
    opts.cache_capacity = cache;
    opts.remember_shipped_queries = remember;
    core::VCoverPolicy policy{&system, opts};
    const auto r = sim::run_policy(setup.trace(), system, policy, 5000);
    table.add_row(
        {remember ? "remember shipped queries (paper)" : "forget (naive)",
         bench::gb(r.postwarmup_traffic),
         bench::gb(r.postwarmup_by_mechanism[0]),
         bench::gb(r.postwarmup_by_mechanism[1]),
         std::to_string(r.cache_fresh + r.cache_after_updates),
         std::to_string(policy.update_manager().peak_graph_nodes()),
         std::to_string(policy.update_manager().covers_computed()),
         std::to_string(policy.update_manager().flow_bfs_count())});
    std::cerr << "[A4] remember=" << remember << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected: forgetting shipped queries starves update "
               "shipping of its justification, so stale cached objects are "
               "answered by shipping queries instead — more query traffic "
               "and fewer cache answers.\n";
  return 0;
}
