// Reproduces Fig. 8(b): VCover's cumulative traffic for different choices
// of data-object granularity. The same trace (queries, updates, costs) is
// re-mapped onto partition maps of {10, 20, 68, 91, 134, 285, 532} objects
// built over the same sky. Expected shape: cost improves as objects refine
// (less cache space wasted, finer hotspot decoupling) down to a sweet spot
// (~91 in the paper), then worsens again as queries spill across too-small
// objects ("future queries access data close to, rather than exactly, the
// data accessed by current queries").
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);

  const std::vector<std::int64_t> targets = cfg.get_int_list(
      "granularities", {10, 20, 68, 91, 134, 285, 532});

  sim::Setup setup{params};
  bench::print_header("Figure 8(b): VCover traffic vs object granularity",
                      params, setup.server_bytes(), setup.cache_capacity());

  struct SeriesRow {
    std::size_t objects;
    std::vector<sim::RunResult> runs;  // one per loading seed
  };
  std::vector<SeriesRow> rows;
  workload::Trace& trace = setup.mutable_trace();
  for (const std::int64_t target : targets) {
    const auto map =
        setup.map_with_objects(static_cast<std::size_t>(target));
    trace.remap(*map);
    auto runs =
        bench::run_vcover_seeds(trace, setup.cache_capacity(), params);
    std::cerr << "[fig8b] objects=" << map->object_count() << " done ("
              << runs.size() << " seeds)\n";
    rows.push_back({map->object_count(), std::move(runs)});
  }

  // Cumulative series at checkpoints (the figure's curves).
  const EventTime warmup = trace.info.warmup_end_event;
  const EventTime end = trace.event_count() - 1;
  constexpr int kCheckpoints = 8;
  util::TablePrinter series{[&] {
    std::vector<std::string> headers{"event"};
    for (const auto& row : rows) {
      headers.push_back(std::to_string(row.objects) + " objects");
    }
    return headers;
  }()};
  for (int c = 1; c <= kCheckpoints; ++c) {
    const EventTime t = warmup + (end - warmup) * c / kCheckpoints;
    std::vector<std::string> line{std::to_string(t)};
    for (const auto& row : rows) {
      double sum = 0.0;
      for (const auto& r : row.runs) sum += r.postwarmup_value_at(t);
      line.push_back(bench::gb(sum / static_cast<double>(row.runs.size())));
    }
    series.add_row(std::move(line));
  }
  std::cout << "VCover post-warm-up cumulative traffic (GB, mean over "
            << bench::vcover_seeds().size() << " loading seeds):\n";
  series.print(std::cout);

  std::cout << "\nFinal totals (mean over loading seeds):\n";
  util::TablePrinter totals{{"objects", "total GB", "query-ship GB",
                             "update-ship GB", "load GB", "queries@cache"}};
  double best = 1e30;
  std::size_t best_objects = 0;
  for (const auto& row : rows) {
    const double n = static_cast<double>(row.runs.size());
    double total = 0.0;
    std::array<double, 3> mech{};
    double answered = 0.0;
    for (const auto& r : row.runs) {
      total += r.postwarmup_traffic.as_double();
      for (std::size_t i = 0; i < 3; ++i) {
        mech[i] += r.postwarmup_by_mechanism[i].as_double();
      }
      answered += static_cast<double>(r.cache_fresh + r.cache_after_updates);
    }
    total /= n;
    totals.add_row({std::to_string(row.objects), bench::gb(total),
                    bench::gb(mech[0] / n), bench::gb(mech[1] / n),
                    bench::gb(mech[2] / n),
                    std::to_string(static_cast<std::int64_t>(answered / n))});
    if (total < best) {
      best = total;
      best_objects = row.objects;
    }
  }
  totals.print(std::cout);
  std::cout << "\nSweet spot: " << best_objects << " objects ("
            << bench::gb(best)
            << " GB). Paper: improves to ~91 objects, then slightly "
               "worsens.\n";
  return 0;
}
