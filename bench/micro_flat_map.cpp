// Micro benchmark: util::FlatMap vs std::unordered_map on the hot-path
// shapes the middleware actually has — ObjectId-keyed tables of a few dozen
// to a few thousand entries (cache stores, eviction bookkeeping, preship
// heat, load counters), exercised by point lookups, mixed churn
// (insert/erase under backward-shift deletion), and full iteration (the
// GDS batch scan).
//
//   ./build/bench/micro_flat_map [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "util/flat_map.h"
#include "util/rng.h"
#include "util/types.h"

namespace {

using namespace delta;

/// Key stream matching the replay loop: a small hot id space with skew.
std::vector<ObjectId> make_keys(std::size_t universe, std::size_t n,
                                std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<ObjectId> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(ObjectId{
        rng.uniform_int(0, static_cast<std::int64_t>(universe) - 1)});
  }
  return keys;
}

template <typename Map>
void insert_key(Map& m, ObjectId k, std::int64_t v);
template <>
void insert_key(util::FlatMap<ObjectId, std::int64_t>& m, ObjectId k,
                std::int64_t v) {
  m.insert_or_assign(k, v);
}
template <>
void insert_key(std::unordered_map<ObjectId, std::int64_t>& m, ObjectId k,
                std::int64_t v) {
  m[k] = v;
}

template <typename Map>
const std::int64_t* find_key(const Map& m, ObjectId k);
template <>
const std::int64_t* find_key(const util::FlatMap<ObjectId, std::int64_t>& m,
                             ObjectId k) {
  return m.find(k);
}
template <>
const std::int64_t* find_key(const std::unordered_map<ObjectId, std::int64_t>& m,
                             ObjectId k) {
  const auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

// ---- find: resident-check shape (CacheStore::contains per query object)

template <typename Map>
void BM_Find(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Map map;
  for (std::size_t i = 0; i < universe; i += 2) {  // 50% resident
    insert_key(map, ObjectId{static_cast<std::int64_t>(i)},
               static_cast<std::int64_t>(i));
  }
  const auto probes = make_keys(universe, 4096, 42);
  std::size_t cursor = 0;
  for (auto _ : state) {
    const ObjectId k = probes[cursor++ & 4095];
    benchmark::DoNotOptimize(find_key(map, k));
  }
}
BENCHMARK_TEMPLATE(BM_Find, delta::util::FlatMap<delta::ObjectId, std::int64_t>)
    ->Arg(68)
    ->Arg(1024)
    ->Arg(16384);
BENCHMARK_TEMPLATE(BM_Find,
                   std::unordered_map<delta::ObjectId, std::int64_t>)
    ->Arg(68)
    ->Arg(1024)
    ->Arg(16384);

// ---- churn: load/evict shape (insert + erase at a steady load factor)

template <typename Map>
void BM_Churn(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(universe, 8192, 7);
  Map map;
  // Warm to ~half occupancy.
  for (std::size_t i = 0; i < universe; i += 2) {
    insert_key(map, ObjectId{static_cast<std::int64_t>(i)},
               static_cast<std::int64_t>(i));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const ObjectId k = keys[cursor++ & 8191];
    if (find_key(map, k) != nullptr) {
      map.erase(k);
    } else {
      insert_key(map, k, k.value());
    }
  }
}
BENCHMARK_TEMPLATE(BM_Churn,
                   delta::util::FlatMap<delta::ObjectId, std::int64_t>)
    ->Arg(68)
    ->Arg(1024)
    ->Arg(16384);
BENCHMARK_TEMPLATE(BM_Churn,
                   std::unordered_map<delta::ObjectId, std::int64_t>)
    ->Arg(68)
    ->Arg(1024)
    ->Arg(16384);

// ---- iterate: the GDS decide_batch scan over every tracked object

void BM_IterateFlat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::FlatMap<ObjectId, std::int64_t> map;
  for (std::size_t i = 0; i < n; ++i) {
    map.insert_or_assign(ObjectId{static_cast<std::int64_t>(i)},
                         static_cast<std::int64_t>(i));
  }
  for (auto _ : state) {
    std::int64_t sum = 0;
    map.for_each([&sum](ObjectId, std::int64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IterateFlat)->Arg(68)->Arg(1024)->Arg(16384);

void BM_IterateUnordered(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::unordered_map<ObjectId, std::int64_t> map;
  for (std::size_t i = 0; i < n; ++i) {
    map[ObjectId{static_cast<std::int64_t>(i)}] =
        static_cast<std::int64_t>(i);
  }
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (const auto& [k, v] : map) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IterateUnordered)->Arg(68)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
