// Micro benchmark A6: the incremental max-flow claim. The paper argues that
// maintaining the flow incrementally across cover computations costs
// O(nm^2) total — one full computation — versus O(n^2 m^2) for recomputing
// from scratch at every query (§4). This benchmark grows a bipartite
// interaction graph query by query and compares:
//   * incremental Edmonds-Karp (reuse the previous flow),
//   * from-scratch Edmonds-Karp per step,
//   * from-scratch Dinic per step.
#include <benchmark/benchmark.h>

#include "flow/bipartite_cover.h"
#include "flow/dinic.h"
#include "flow/edmonds_karp.h"
#include "util/rng.h"

namespace {

using namespace delta;
using delta::flow::BipartiteCoverSolver;

/// Deterministic stream of (query weight, update targets) steps.
struct Step {
  flow::Capacity weight;
  std::vector<std::size_t> updates;  // indices of groups the query needs
};

std::vector<Step> make_steps(std::size_t queries, std::size_t updates,
                             std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<Step> steps;
  steps.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    Step s;
    s.weight = rng.uniform_int(1, 100);
    const auto degree = rng.uniform_int(1, 3);
    for (std::int64_t d = 0; d < degree; ++d) {
      s.updates.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(updates) - 1)));
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

void BM_IncrementalCover(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = queries / 4 + 1;
  const auto steps = make_steps(queries, updates, 42);
  std::int64_t total_bfs = 0;
  for (auto _ : state) {
    BipartiteCoverSolver solver;
    std::vector<BipartiteCoverSolver::UpdateNode> unodes;
    for (std::size_t u = 0; u < updates; ++u) {
      unodes.push_back(solver.add_update(50));
    }
    for (const Step& s : steps) {
      const auto q = solver.add_query(s.weight);
      for (const std::size_t u : s.updates) {
        if (solver.alive(unodes[u])) solver.connect(unodes[u], q);
      }
      const auto cover = solver.compute();
      benchmark::DoNotOptimize(cover.weight);
    }
    total_bfs += solver.bfs_count();
  }
  state.counters["bfs_per_query"] =
      static_cast<double>(total_bfs) /
      static_cast<double>(state.iterations() * queries);
}
BENCHMARK(BM_IncrementalCover)->Arg(64)->Arg(256)->Arg(1024);

void BM_ScratchEdmondsKarp(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = queries / 4 + 1;
  const auto steps = make_steps(queries, updates, 42);
  for (auto _ : state) {
    BipartiteCoverSolver solver;
    std::vector<BipartiteCoverSolver::UpdateNode> unodes;
    for (std::size_t u = 0; u < updates; ++u) {
      unodes.push_back(solver.add_update(50));
    }
    for (const Step& s : steps) {
      const auto q = solver.add_query(s.weight);
      for (const std::size_t u : s.updates) {
        solver.connect(unodes[u], q);
      }
      // From-scratch recomputation on a zeroed copy each step.
      flow::FlowNetwork scratch = solver.network().zero_flow_copy();
      benchmark::DoNotOptimize(flow::max_flow_edmonds_karp(scratch, 0, 1));
    }
  }
}
BENCHMARK(BM_ScratchEdmondsKarp)->Arg(64)->Arg(256)->Arg(1024);

void BM_ScratchDinic(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = queries / 4 + 1;
  const auto steps = make_steps(queries, updates, 42);
  for (auto _ : state) {
    BipartiteCoverSolver solver;
    std::vector<BipartiteCoverSolver::UpdateNode> unodes;
    for (std::size_t u = 0; u < updates; ++u) {
      unodes.push_back(solver.add_update(50));
    }
    for (const Step& s : steps) {
      const auto q = solver.add_query(s.weight);
      for (const std::size_t u : s.updates) {
        solver.connect(unodes[u], q);
      }
      flow::FlowNetwork scratch = solver.network().zero_flow_copy();
      benchmark::DoNotOptimize(flow::max_flow_dinic(scratch, 0, 1));
    }
  }
}
BENCHMARK(BM_ScratchDinic)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
