// Extension E1 (paper §4 Discussion): preshipping. Proactively pushing
// updates for hot cached objects trades extra update traffic for response
// time: currency-constrained queries find their objects already fresh
// instead of waiting for a synchronous update ship. Reports the traffic /
// latency trade-off across preship heat thresholds.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  const Bytes cache = setup.cache_capacity();
  std::cout << "=== Extension E1: preshipping updates for hot objects ===\n\n";

  util::TablePrinter table{{"variant", "traffic GB", "u-ship GB",
                            "mean latency ms", "p-latency @cache+updates",
                            "cache answers"}};
  struct Variant {
    const char* name;
    bool preship;
    double threshold;
  };
  const Variant variants[] = {
      {"no preshipping (baseline)", false, 0.0},
      {"preship, heat threshold 6", true, 6.0},
      {"preship, heat threshold 3", true, 3.0},
      {"preship, heat threshold 1.5", true, 1.5},
  };
  for (const Variant& v : variants) {
    sim::PolicyOverrides o = bench::overrides_from_config(cfg);
    o.vcover.preship = v.preship;
    o.vcover.preship_heat_threshold = v.threshold;
    const auto r = sim::run_one(sim::PolicyKind::kVCover, setup.trace(),
                                cache, params, o, 5000);
    const double frac_after_updates =
        r.cache_fresh + r.cache_after_updates > 0
            ? static_cast<double>(r.cache_after_updates) /
                  static_cast<double>(r.cache_fresh + r.cache_after_updates)
            : 0.0;
    table.add_row({v.name, bench::gb(r.postwarmup_traffic),
                   bench::gb(r.postwarmup_by_mechanism[1]),
                   util::fixed(r.postwarmup_latency.mean() * 1000, 2),
                   util::fixed(frac_after_updates * 100, 1) + "%",
                   std::to_string(r.cache_fresh + r.cache_after_updates)});
    std::cerr << "[E1] " << v.name << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected: lower thresholds preship more aggressively — "
               "update traffic rises slightly while the share of cache "
               "answers that had to wait for a synchronous update ship "
               "falls, improving the response-time proxy.\n";
  return 0;
}
