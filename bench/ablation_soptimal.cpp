// Ablation A5: the SOptimal yardstick's two constructions — the paper's
// literal rule (Benefit's proportional hindsight ranking applied as one
// trace-sized window) vs the local-search refinement against the exact
// replay cost (our default, a strictly stronger yardstick).
#include <iostream>

#include "bench_common.h"
#include "core/yardsticks.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  const Bytes cache = setup.cache_capacity();
  std::cout << "=== Ablation A5: SOptimal construction ===\n\n";

  const auto vcover =
      sim::run_one(sim::PolicyKind::kVCover, setup.trace(), cache, params,
                   bench::overrides_from_config(cfg), 5000);

  util::TablePrinter table{{"yardstick", "traffic GB", "set size",
                            "cache answers", "VCover/SOptimal"}};
  for (const bool local : {false, true}) {
    core::DeltaSystem system{&setup.trace()};
    core::SOptimalOptions opts;
    opts.cache_capacity = cache;
    opts.local_search = local;
    core::SOptimalPolicy policy{&system, &setup.trace(), opts};
    const auto r = sim::run_policy(setup.trace(), system, policy, 5000);
    table.add_row(
        {local ? "local-search refined (default)"
               : "Benefit-ranking (paper literal)",
         bench::gb(r.postwarmup_traffic),
         std::to_string(policy.chosen().size()),
         std::to_string(r.cache_fresh + r.cache_after_updates),
         util::fixed(vcover.postwarmup_traffic.as_double() /
                         r.postwarmup_traffic.as_double(),
                     2)});
    std::cerr << "[A5] local=" << local << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nVCover reference: " << bench::gb(vcover.postwarmup_traffic)
            << " GB. The refined set is the honest 'best static set'; the "
               "proportional ranking under-covers multi-object query "
               "neighbourhoods.\n";
  return 0;
}
