// Micro benchmark: EventQueue scheduler backends — calendar queue vs the
// binary-heap oracle — under the classic "hold" model at steady queue
// depths {16, 256, 4k, 64k}.
//
// Each hold operation pops the earliest event and schedules a replacement
// at now + increment, the steady-state pattern of a discrete-event
// transport (every delivery usually schedules the next one). Two increment
// shapes are measured per depth:
//   * near-monotone  — small jittered increments, the link-serialization
//     shape the calendar queue is tuned for (most inserts land in the
//     current or next "day");
//   * bursty-ties    — a mixture with frequent zero increments (same-
//     instant bursts, the zero-latency configuration) and occasional long
//     jumps that stretch the calendar span.
// Deep cells (>= 4k pending) additionally measure a third shape:
//   * drift-narrow   — a deep steady hold whose increment scale decays
//     smoothly by ~100x before snapping back, so the live event window
//     keeps drifting away from whatever day width the calendar last tuned
//     for. This is the known calendar-vs-heap pathology cell: it exists to
//     keep the pathology measured and visible in bench-smoke output, not
//     to flatter the calendar (the ladder-queue rung split that would fix
//     it is a ROADMAP item).
// The binary heap pays O(log n) per operation; the calendar holds
// amortized O(1) while its day width matches the live event density.
// Honest caveat the numbers show: under a deep steady *hold* the pending
// window slowly drifts narrower than the tuned width, and although a
// density watchdog retunes the width (rate-limited to stay robust against
// tie-heavy schedules), the deep near-monotone cells still favor the heap
// — the classic calendar-queue drift pathology a ladder queue would fix
// (see ROADMAP). The engine's operating regime is the shallow and
// tie-burst cells: closed-loop replay keeps a handful of events pending,
// and zero-latency runs schedule same-instant bursts. Both backends
// produce the identical (time, seq) execution order (pinned by
// tests/event_queue_differential_test.cpp), so this bench is purely about
// throughput.
//
//   ./build/bench/micro_event_queue [key=value ...]
//     ops=2000000   hold operations measured per cell
//     repeats=3     timed repetitions (best is reported)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "util/config.h"
#include "util/event_queue.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

using namespace delta;

enum class Shape { kNearMonotone, kBurstyTies, kDriftNarrow };

const char* label(Shape s) {
  switch (s) {
    case Shape::kNearMonotone:
      return "near-monotone";
    case Shape::kBurstyTies:
      return "bursty-ties  ";
    case Shape::kDriftNarrow:
      return "drift-narrow ";
  }
  return "?";
}

/// Increment generator: deterministic per (shape, op index), so both
/// backends replay the identical schedule. The drift shape carries state:
/// its scale decays ~0.01%/op until the window is ~100x narrower than at
/// the last snap, then snaps back — the live density never stays where the
/// calendar's width watchdog last tuned for.
struct IncrementStream {
  Shape shape;
  double drift_scale = 0.002;
  double next(util::Rng& rng) {
    switch (shape) {
      case Shape::kNearMonotone:
        return 0.0005 + rng.uniform(0.0, 0.002);
      case Shape::kBurstyTies: {
        const double roll = rng.next_double();
        if (roll < 0.45) return 0.0;             // same-instant burst
        if (roll < 0.95) return rng.uniform(0.0, 0.01);
        return rng.uniform(10.0, 100.0);         // far jump (sparse years)
      }
      case Shape::kDriftNarrow: {
        drift_scale *= 0.9999;
        if (drift_scale < 2e-5) drift_scale = 0.002;  // snap back out
        return 0.25 * drift_scale + rng.uniform(0.0, drift_scale);
      }
    }
    return 0.0;
  }
};

long long g_sink = 0;  // defeat dead-code elimination

void consume(void*, std::uint64_t arg) { g_sink += static_cast<long long>(arg); }

double run_cell(util::EventQueue::Backend backend, std::size_t depth,
                Shape shape, std::int64_t ops, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    util::EventQueue q{backend};
    util::Rng rng{depth * 31 + static_cast<std::size_t>(shape) * 7};
    IncrementStream inc{shape};
    double horizon = 0.0;
    for (std::size_t i = 0; i < depth; ++i) {
      horizon += inc.next(rng);
      q.schedule(horizon, consume, nullptr, 1);
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < ops; ++i) {
      q.run_one();
      q.schedule(q.now() + inc.next(rng), consume, nullptr, 1);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (rep == 0 || wall < best) best = wall;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const std::int64_t ops = cfg.get_int("ops", 2'000'000);
  const int repeats = static_cast<int>(cfg.get_int("repeats", 3));

  std::cout << "EventQueue scheduler hold-model throughput (" << ops
            << " ops/cell, best of " << repeats << ")\n\n";
  std::cout << "  depth  shape          heap ns/op  calendar ns/op  speedup\n";
  for (const std::size_t depth : {16u, 256u, 4096u, 65536u}) {
    std::vector<Shape> shapes{Shape::kNearMonotone, Shape::kBurstyTies};
    // The deep-steady-hold pathology regime: only meaningful when the
    // pending population is large enough for width drift to hurt.
    if (depth >= 4096u) shapes.push_back(Shape::kDriftNarrow);
    for (const Shape shape : shapes) {
      const double heap = run_cell(util::EventQueue::Backend::kBinaryHeap,
                                   depth, shape, ops, repeats);
      const double calendar = run_cell(util::EventQueue::Backend::kCalendar,
                                       depth, shape, ops, repeats);
      const double per_op = 1e9 / static_cast<double>(ops);
      std::cout << "  " << util::fixed(static_cast<double>(depth), 0);
      std::cout << "  " << label(shape);
      std::cout << "  " << util::fixed(heap * per_op, 1) << "        "
                << util::fixed(calendar * per_op, 1) << "            "
                << util::fixed(heap / std::max(calendar, 1e-12), 2) << "x\n";
    }
  }
  std::cout << "\n(sink " << g_sink << ")\n";
  return 0;
}
