// Micro benchmark: EventQueue scheduler backends — calendar queue vs the
// binary-heap oracle — under the classic "hold" model at steady queue
// depths {16, 256, 4k, 64k}.
//
// Each hold operation pops the earliest event and schedules a replacement
// at now + increment, the steady-state pattern of a discrete-event
// transport (every delivery usually schedules the next one). Two increment
// shapes are measured per depth:
//   * near-monotone  — small jittered increments, the link-serialization
//     shape the calendar queue is tuned for (most inserts land in the
//     current or next "day");
//   * bursty-ties    — a mixture with frequent zero increments (same-
//     instant bursts, the zero-latency configuration) and occasional long
//     jumps that stretch the calendar span.
// Deep cells (>= 4k pending) additionally measure a third shape:
//   * drift-narrow   — a deep steady hold whose increment scale decays
//     smoothly by ~100x before snapping back, so the live event window
//     keeps drifting away from whatever day width the calendar last tuned
//     for. This was the calendar-vs-heap pathology cell (0.71x at 4096
//     pending in BENCH_PR6); the ladder rung split — degenerate days are
//     split into sub-rungs recursively instead of re-sorted, with a
//     backoff-throttled width retune — fixed it, and this cell is now the
//     regression gate that keeps it fixed (gate=1 below).
// The binary heap pays O(log n) per operation; the calendar holds
// amortized O(1) while its day width matches the live event density; when
// it doesn't, the rung ladder bounds the damage to ~O(log n) splits per
// event instead of an O(n log n) re-sort per pop. The engine's operating
// regimes are all covered: closed-loop replay keeps a handful of events
// pending (shallow cells), zero-latency runs schedule same-instant bursts
// (tie cells), and open-loop arrival processes hold thousands pending
// (deep cells). Both backends produce the identical (time, seq) execution
// order (pinned by tests/event_queue_differential_test.cpp), so this
// bench is purely about throughput.
//
//   ./build/bench/micro_event_queue [key=value ...]
//     ops=2000000   hold operations measured per cell
//     repeats=3     timed repetitions (best + median are reported)
//     gate=0        1 -> exit nonzero unless the deep-steady-hold cell
//                   (drift-narrow @ 4096) keeps calendar >= gate_min x heap
//     gate_min=1.0  ratio floor enforced by gate=1 (median-of-repeats)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "util/config.h"
#include "util/event_queue.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

using namespace delta;

enum class Shape { kNearMonotone, kBurstyTies, kDriftNarrow };

const char* label(Shape s) {
  switch (s) {
    case Shape::kNearMonotone:
      return "near-monotone";
    case Shape::kBurstyTies:
      return "bursty-ties  ";
    case Shape::kDriftNarrow:
      return "drift-narrow ";
  }
  return "?";
}

/// Increment generator: deterministic per (shape, op index), so both
/// backends replay the identical schedule. The drift shape carries state:
/// its scale decays ~0.01%/op until the window is ~100x narrower than at
/// the last snap, then snaps back — the live density never stays where the
/// calendar's width watchdog last tuned for.
struct IncrementStream {
  Shape shape;
  double drift_scale = 0.002;
  double next(util::Rng& rng) {
    switch (shape) {
      case Shape::kNearMonotone:
        return 0.0005 + rng.uniform(0.0, 0.002);
      case Shape::kBurstyTies: {
        const double roll = rng.next_double();
        if (roll < 0.45) return 0.0;             // same-instant burst
        if (roll < 0.95) return rng.uniform(0.0, 0.01);
        return rng.uniform(10.0, 100.0);         // far jump (sparse years)
      }
      case Shape::kDriftNarrow: {
        drift_scale *= 0.9999;
        if (drift_scale < 2e-5) drift_scale = 0.002;  // snap back out
        return 0.25 * drift_scale + rng.uniform(0.0, drift_scale);
      }
    }
    return 0.0;
  }
};

long long g_sink = 0;  // defeat dead-code elimination

void consume(void*, std::uint64_t arg) { g_sink += static_cast<long long>(arg); }

/// Best and median wall time over the timed repetitions. Best-of tracks
/// the machine's capability; median-of is what the regression gate uses,
/// because a single lucky (or unlucky) rep should not flip a CI verdict.
struct CellTiming {
  double best = 0.0;
  double median = 0.0;
};

CellTiming run_cell(util::EventQueue::Backend backend, std::size_t depth,
                    Shape shape, std::int64_t ops, int repeats) {
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(repeats));
  for (int rep = 0; rep < repeats; ++rep) {
    util::EventQueue q{backend};
    util::Rng rng{depth * 31 + static_cast<std::size_t>(shape) * 7};
    IncrementStream inc{shape};
    double horizon = 0.0;
    for (std::size_t i = 0; i < depth; ++i) {
      horizon += inc.next(rng);
      q.schedule(horizon, consume, nullptr, 1);
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < ops; ++i) {
      q.run_one();
      q.schedule(q.now() + inc.next(rng), consume, nullptr, 1);
    }
    walls.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  std::sort(walls.begin(), walls.end());
  return CellTiming{walls.front(), walls[walls.size() / 2]};
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const std::int64_t ops = cfg.get_int("ops", 2'000'000);
  const int repeats = static_cast<int>(cfg.get_int("repeats", 3));
  const bool gate = cfg.get_int("gate", 0) != 0;
  const double gate_min = cfg.get_double("gate_min", 1.0);

  std::cout << "EventQueue scheduler hold-model throughput (" << ops
            << " ops/cell, best of " << repeats << ")\n\n";
  std::cout << "  depth  shape          heap ns/op  calendar ns/op  "
               "speedup  (median)\n";
  double gate_ratio = -1.0;  // median calendar speedup on drift-narrow@4096
  for (const std::size_t depth : {16u, 256u, 4096u, 65536u}) {
    std::vector<Shape> shapes{Shape::kNearMonotone, Shape::kBurstyTies};
    // The deep-steady-hold regime: only meaningful when the pending
    // population is large enough for width drift to hurt.
    if (depth >= 4096u) shapes.push_back(Shape::kDriftNarrow);
    for (const Shape shape : shapes) {
      const auto heap = run_cell(util::EventQueue::Backend::kBinaryHeap,
                                 depth, shape, ops, repeats);
      const auto calendar = run_cell(util::EventQueue::Backend::kCalendar,
                                     depth, shape, ops, repeats);
      const double per_op = 1e9 / static_cast<double>(ops);
      const double best_ratio = heap.best / std::max(calendar.best, 1e-12);
      const double median_ratio =
          heap.median / std::max(calendar.median, 1e-12);
      if (depth == 4096u && shape == Shape::kDriftNarrow)
        gate_ratio = median_ratio;
      std::cout << "  " << util::fixed(static_cast<double>(depth), 0);
      std::cout << "  " << label(shape);
      std::cout << "  " << util::fixed(heap.best * per_op, 1) << "        "
                << util::fixed(calendar.best * per_op, 1) << "            "
                << util::fixed(best_ratio, 2) << "x    ("
                << util::fixed(median_ratio, 2) << "x)\n";
    }
  }
  std::cout << "\n(sink " << g_sink << ")\n";
  if (gate) {
    // The drift cycle is ~46k ops long (scale decays 0.01%/op over a 100x
    // span) and the ladder's retune backoff needs a few cycles to settle,
    // so a smoke-sized op count under-reports the steady state. Re-measure
    // just the gated cell at full length — two backends, ~0.6s.
    const std::int64_t gate_ops = std::max<std::int64_t>(ops, 1'000'000);
    if (gate_ops != ops) {
      const auto heap = run_cell(util::EventQueue::Backend::kBinaryHeap,
                                 4096u, Shape::kDriftNarrow, gate_ops,
                                 repeats);
      const auto calendar = run_cell(util::EventQueue::Backend::kCalendar,
                                     4096u, Shape::kDriftNarrow, gate_ops,
                                     repeats);
      gate_ratio = heap.median / std::max(calendar.median, 1e-12);
    }
    std::cout << "gate: deep-steady-hold drift-narrow@4096 median speedup "
              << util::fixed(gate_ratio, 2) << "x at "
              << std::max(gate_ops, ops) << " ops (floor "
              << util::fixed(gate_min, 2) << "x)\n";
    if (gate_ratio < gate_min) {
      std::cout << "gate: FAIL — calendar trails the heap in the "
                   "deep-steady-hold cell\n";
      return 1;
    }
    std::cout << "gate: ok\n";
  }
  return 0;
}
