// Ablation A1: cache-size sweep. The abstract claims Delta "reduces the
// traffic by nearly half even with a cache that is one-fifth the size of
// the server repository"; this sweeps the cache from 10% to 100% of the
// server and reports VCover's traffic and the NoCache ratio at each point.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  sim::Setup setup{params};
  std::cout << "=== Ablation A1: cache size sweep (VCover) ===\n";
  std::cout << "server " << util::human_bytes(setup.server_bytes()) << "\n\n";

  const auto nocache =
      sim::run_one(sim::PolicyKind::kNoCache, setup.trace(), Bytes{},
                   params, sim::PolicyOverrides{}, 5000);

  util::TablePrinter table{{"cache %", "cache", "VCover GB",
                            "NoCache/VCover", "cache answers", "loads GB"}};
  for (const double frac : {0.10, 0.20, 0.30, 0.50, 0.75, 1.00}) {
    const Bytes cache{static_cast<std::int64_t>(
        setup.server_bytes().as_double() * frac)};
    const auto r = sim::run_one(sim::PolicyKind::kVCover, setup.trace(),
                                cache, params,
                                bench::overrides_from_config(cfg), 5000);
    table.add_row(
        {util::fixed(frac * 100, 0), util::human_bytes(cache),
         bench::gb(r.postwarmup_traffic),
         util::fixed(nocache.postwarmup_traffic.as_double() /
                         r.postwarmup_traffic.as_double(),
                     2),
         std::to_string(r.cache_fresh + r.cache_after_updates),
         bench::gb(r.postwarmup_by_mechanism[2])});
    std::cerr << "[A1] cache=" << frac << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nPaper claim to check: at 20% cache the NoCache/VCover "
               "ratio should already approach ~2.\n";
  return 0;
}
