// Perf-trajectory harness: measures the replay hot loop and the incremental
// cover solver at a pinned configuration and emits the numbers as JSON, so
// each PR can record a comparable BENCH_<PR>.json next to the previous one.
//
// Headline metrics:
//   * single-cache events/sec — the trace's merged query/update sequence
//     replayed through VCover (micro_multi_endpoint's single-cache config:
//     objects=68 cache_frac=0.3 seed=1), best of `repeats` runs;
//   * multi-endpoint events/sec over an N×T (endpoints × worker threads)
//     sweep of the parallel engine;
//   * solver augment counts (BFS searches, covers computed) from the
//     single-cache run — the cost of the incremental min-cut;
//   * post-warm-up latency percentiles (p50/p90/p99) of the response-time
//     proxy;
//   * event-engine events/sec (same VCover workload replayed through the
//     discrete-event DelayedTransport on a 1 Gbit/40 ms link, arrivals
//     paced above the mean service time so the closed loop is unsaturated)
//     with the p50/p99 of the *simulated* response times — the
//     "single_cache" section above is the synchronous same-file baseline.
//
//   * open-loop drive (ISSUE 7): Poisson arrivals over a 100 Mbit/40 ms
//     WAN through the async policy API — simulated response p50/p99 vs
//     arrival rate, with congestion batching off/on (the coalescing delta).
//
//   ./build/bench/bench_trajectory [key=value ...]
//     smoke=0        1 = tiny trace (CI smoke run; numbers not comparable)
//     repeats=3      timed repetitions per cell (best + median reported)
//     queries=40000 updates=40000 objects=68 cache_frac=0.3 seed=1
//     out=-          output path ('-' = stdout)
//
// scripts/bench_trajectory.sh wraps this into the committed BENCH_*.json
// trajectory files (see README "Performance").
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/vcover_policy.h"
#include "net/fault_plan.h"
#include "net/link_model.h"
#include "sim/event_engine.h"
#include "sim/experiment.h"
#include "sim/multi_cache.h"
#include "util/stats.h"
#include "workload/synthetic_trace.h"
#include "workload/trace_split.h"

namespace {

using namespace delta;

/// Collected walls of the timed repetitions of one cell. best() is the
/// capability figure the trajectory has always tracked; median() is the
/// noise-robust companion every ratio is also reported under, so CI
/// verdicts and cross-PR comparisons don't ride on a single lucky run.
class RepeatWalls {
 public:
  void add(double wall) { walls_.push_back(wall); }
  [[nodiscard]] double best() const {
    return walls_.empty()
               ? 0.0
               : *std::min_element(walls_.begin(), walls_.end());
  }
  [[nodiscard]] double median() const {
    if (walls_.empty()) return 0.0;
    std::vector<double> sorted = walls_;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }

 private:
  std::vector<double> walls_;
};

struct SingleResult {
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  std::int64_t events = 0;
  std::int64_t postwarmup_traffic = 0;  // sanity pin: must not drift
  std::int64_t cache_answers = 0;
  std::int64_t solver_bfs = 0;
  std::int64_t covers_computed = 0;
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
};

struct MultiCell {
  std::size_t endpoints = 0;
  std::size_t threads = 0;
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
};

struct EventResult {
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  std::int64_t postwarmup_traffic = 0;
  double response_p50 = 0.0;
  double response_p99 = 0.0;
  double dispatch_lag_mean = 0.0;
  double staleness_mean = 0.0;
  double uplink_busy_seconds = 0.0;
};

/// One thread-count cell of the parallel event-engine sweep (N caches on
/// the WAN link, conservative per-partition replay).
struct EventParallelCell {
  std::size_t threads = 0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  /// Wall-clock speedup vs the T=1 cell of this sweep. On a single-core
  /// host this cannot exceed 1 — see critical_path_speedup.
  double self_speedup = 0.0;
  double self_speedup_median = 0.0;
  /// sum/max of the per-partition replay walls from the best run: the
  /// load-balance-limited speedup a host with >= N cores achieves. This is
  /// a measurement (per-shard timers), not a model.
  double critical_path_speedup = 0.0;
  /// Measured split balance: max/mean routed queries per partition
  /// (1.0 = perfect). Bounds critical_path_speedup from above by
  /// N / balance when query work dominates the per-shard wall.
  double balance = 1.0;
  /// Partitions replayed by a worker other than their LPT owner in the
  /// best run (0 at T=1 or with stealing off).
  std::int64_t steal_count = 0;
};

/// One cell of the object-count scaling sweep: the same zipfian YCSB-B mix
/// replayed through single-cache VCover at a growing key space. The
/// tracked property is per-decision solver work (bfs/covers per event)
/// staying flat while objects grow by four orders of magnitude — the
/// "no O(n_objects) term on the replay hot path" pin.
struct ObjectScalingCell {
  std::int64_t objects = 0;
  std::int64_t events = 0;
  double generate_seconds = 0.0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  std::int64_t cache_answers = 0;
  std::int64_t solver_bfs = 0;
  std::int64_t covers_computed = 0;
  double bfs_per_event = 0.0;
  double covers_per_event = 0.0;
  std::int64_t postwarmup_traffic = 0;
};

ObjectScalingCell measure_object_scaling(std::int64_t objects,
                                         std::int64_t events,
                                         double cache_frac,
                                         std::uint64_t seed, int repeats) {
  ObjectScalingCell cell;
  cell.objects = objects;
  const workload::SyntheticTraceParams p =
      workload::ycsb_params(workload::YcsbMix::kB, objects, events);
  workload::SyntheticTraceGenerator gen{p};
  const auto gen_start = std::chrono::steady_clock::now();
  const workload::Trace trace = gen.generate(seed);
  cell.generate_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - gen_start)
                              .count();
  cell.events = static_cast<std::int64_t>(trace.order.size());

  Bytes total{0};
  for (const Bytes b : trace.initial_object_bytes) total += b;
  const Bytes capacity{
      static_cast<std::int64_t>(total.as_double() * cache_frac)};
  RepeatWalls walls;
  for (int rep = 0; rep < repeats; ++rep) {
    core::DeltaSystem system{&trace};
    core::VCoverOptions vcover;
    vcover.cache_capacity = capacity;
    // Pre-size the per-object side tables for the capacity-bounded
    // resident set (zipfian residency, ~cache_frac of the key space).
    vcover.expected_resident_objects = static_cast<std::size_t>(
        cache_frac * static_cast<double>(objects) * 1.25) + 64;
    core::VCoverPolicy policy{&system, vcover};
    const sim::RunResult r = sim::run_policy(trace, system, policy, 10'000);
    walls.add(r.wall_seconds);
    if (rep == 0) {
      cell.cache_answers = r.cache_fresh + r.cache_after_updates;
      cell.solver_bfs = policy.update_manager().flow_bfs_count();
      cell.covers_computed = policy.update_manager().covers_computed();
      cell.postwarmup_traffic = r.postwarmup_traffic.count();
    }
  }
  cell.wall_seconds_best = walls.best();
  cell.wall_seconds_median = walls.median();
  cell.events_per_sec = static_cast<double>(cell.events) /
                        std::max(cell.wall_seconds_best, 1e-9);
  cell.events_per_sec_median = static_cast<double>(cell.events) /
                               std::max(cell.wall_seconds_median, 1e-9);
  cell.bfs_per_event = static_cast<double>(cell.solver_bfs) /
                       static_cast<double>(cell.events);
  cell.covers_per_event = static_cast<double>(cell.covers_computed) /
                          static_cast<double>(cell.events);
  return cell;
}

/// One interleaved sweep of the single-cache workload: each repetition
/// times one synchronous replay AND one event-engine replay back to back,
/// so the events_per_sec_vs_sync ratio — the tracked figure — compares
/// walls sampled under the same machine conditions instead of phases
/// minutes apart (on a shared container the drift between phases used to
/// dominate the ratio's variance).
void measure_single_and_event(const sim::Setup& setup, int repeats,
                              SingleResult& single, EventResult& event) {
  const workload::Trace& trace = setup.trace();
  single.events = static_cast<std::int64_t>(trace.order.size());

  sim::EventEngineOptions options;
  options.default_link = delta::net::LinkModel{};
  // Arrival pacing well above the mean per-event service time on this link
  // (~11 ms at the pinned config), so the closed loop is unsaturated and
  // the tracked percentiles measure per-query latency, not an unbounded
  // backlog ramp that would scale with trace length. Transient backlogs
  // remain (GB-sized transfers serialize for tens of seconds and arrive
  // clustered) — that genuine queueing is reported via dispatch_lag_mean
  // (~1.6 s here) and the p99; only growth of these across PRs at fixed
  // config is meaningful.
  options.seconds_per_event = 0.2;
  options.series_stride = 5000;

  RepeatWalls single_walls;
  RepeatWalls event_walls;
  for (int rep = 0; rep < repeats; ++rep) {
    {
      core::DeltaSystem system{&trace};
      core::VCoverOptions vcover;
      vcover.cache_capacity = setup.cache_capacity();
      core::VCoverPolicy policy{&system, vcover};
      util::QuantileSketch sketch;
      const sim::RunResult r = sim::run_policy(trace, system, policy, 5000,
                                               sim::LatencyModel{}, &sketch);
      single_walls.add(r.wall_seconds);
      if (rep == 0) {
        single.postwarmup_traffic = r.postwarmup_traffic.count();
        single.cache_answers = r.cache_fresh + r.cache_after_updates;
        single.solver_bfs = policy.update_manager().flow_bfs_count();
        single.covers_computed = policy.update_manager().covers_computed();
        single.latency_p50 = sketch.quantile(0.50);
        single.latency_p90 = sketch.quantile(0.90);
        single.latency_p99 = sketch.quantile(0.99);
      }
    }
    {
      const sim::EventRunResult r = sim::run_one_event(
          sim::PolicyKind::kVCover, setup.trace(), setup.cache_capacity(),
          setup.params(), 1, workload::SplitStrategy::kRoundRobin, options);
      event_walls.add(r.replay.combined.wall_seconds);
      if (rep == 0) {
        event.postwarmup_traffic = r.replay.combined.postwarmup_traffic.count();
        event.response_p50 = r.response_p50();
        event.response_p99 = r.response_p99();
        event.dispatch_lag_mean = r.dispatch_lag_seconds.mean();
        event.staleness_mean = r.staleness_seconds.mean();
        event.uplink_busy_seconds = r.server_uplink.busy_seconds;
      }
    }
  }
  single.wall_seconds_best = single_walls.best();
  single.wall_seconds_median = single_walls.median();
  event.wall_seconds_best = event_walls.best();
  event.wall_seconds_median = event_walls.median();
  const auto total_events = static_cast<double>(trace.order.size());
  single.events_per_sec =
      total_events / std::max(single.wall_seconds_best, 1e-9);
  single.events_per_sec_median =
      total_events / std::max(single.wall_seconds_median, 1e-9);
  event.events_per_sec = total_events / std::max(event.wall_seconds_best, 1e-9);
  event.events_per_sec_median =
      total_events / std::max(event.wall_seconds_median, 1e-9);
}

/// The WAN-config parallel sweep: N cache partitions on the 1 Gbit/40 ms
/// link, hash-by-region split (the multi_endpoint sweep's config, so the
/// sync multi N=T=1 cell is the apples-to-apples baseline), replayed by
/// the conservative per-partition event engine at several thread counts.
std::vector<EventParallelCell> measure_event_parallel(
    const sim::Setup& setup, std::size_t endpoints,
    workload::SplitStrategy strategy,
    const std::vector<std::size_t>& thread_counts, int repeats) {
  sim::EventEngineOptions options;
  options.default_link = delta::net::LinkModel{};  // 1 Gbit/s, 40 ms WAN
  options.seconds_per_event = 0.2;  // unsaturated pacing, as measure_event
  options.series_stride = 5000;
  const Bytes per_endpoint{static_cast<std::int64_t>(
      setup.cache_capacity().as_double() / static_cast<double>(endpoints))};
  std::vector<EventParallelCell> cells;
  for (const std::size_t threads : thread_counts) {
    options.parallel.num_threads = threads;
    EventParallelCell cell;
    cell.threads = threads;
    RepeatWalls walls;
    double best_wall = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      const sim::EventRunResult r = sim::run_one_event(
          sim::PolicyKind::kVCover, setup.trace(), per_endpoint,
          setup.params(), endpoints, strategy, options);
      const double wall = r.replay.combined.wall_seconds;
      walls.add(wall);
      if (rep == 0 || wall < best_wall) {
        best_wall = wall;
        double sum = 0.0;
        double slowest = 0.0;
        for (const sim::RunResult& shard : r.replay.per_endpoint) {
          sum += shard.wall_seconds;
          slowest = std::max(slowest, shard.wall_seconds);
        }
        cell.critical_path_speedup = sum / std::max(slowest, 1e-9);
        cell.balance = r.shard_balance;
        cell.steal_count = r.steal_count;
      }
    }
    cell.wall_seconds_best = walls.best();
    cell.wall_seconds_median = walls.median();
    const auto events = static_cast<double>(setup.trace().order.size());
    cell.events_per_sec = events / std::max(cell.wall_seconds_best, 1e-9);
    cell.events_per_sec_median =
        events / std::max(cell.wall_seconds_median, 1e-9);
    cell.self_speedup =
        cells.empty()
            ? 1.0
            : cells.front().wall_seconds_best / cell.wall_seconds_best;
    cell.self_speedup_median =
        cells.empty()
            ? 1.0
            : cells.front().wall_seconds_median / cell.wall_seconds_median;
    cells.push_back(cell);
  }
  return cells;
}

/// One endpoint-count cell of the fleet-size sweep: the WAN parallel
/// engine at N partitions, T=1 (sequential replay gives the cleanest
/// critical-path measurement — no CPU contention inflates the per-shard
/// walls the sum/max figure is built from).
struct NSweepCell {
  std::size_t endpoints = 0;
  workload::SplitStrategy strategy = workload::SplitStrategy::kBalancedByLoad;
  EventParallelCell cell;
};

MultiCell measure_multi(const sim::Setup& setup, std::size_t endpoints,
                        std::size_t threads, int repeats) {
  MultiCell cell;
  cell.endpoints = endpoints;
  cell.threads = threads;
  const Bytes per_endpoint{static_cast<std::int64_t>(
      setup.cache_capacity().as_double() / static_cast<double>(endpoints))};
  RepeatWalls walls;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ParallelOptions parallel;
    parallel.num_threads = threads;
    const sim::MultiRunResult r = sim::run_one_multi(
        sim::PolicyKind::kVCover, setup.trace(), per_endpoint, setup.params(),
        endpoints, workload::SplitStrategy::kHashByRegion,
        sim::PolicyOverrides{}, /*series_stride=*/5000, parallel);
    walls.add(r.combined.wall_seconds);
  }
  cell.wall_seconds_best = walls.best();
  cell.wall_seconds_median = walls.median();
  const auto events = static_cast<double>(setup.trace().order.size());
  cell.events_per_sec = events / std::max(cell.wall_seconds_best, 1e-9);
  cell.events_per_sec_median =
      events / std::max(cell.wall_seconds_median, 1e-9);
  return cell;
}

/// One cell of the open-loop drive sweep (the ISSUE 7 scenario): the merged
/// stream arrives on a Poisson schedule over a 100 Mbit/40 ms WAN path and
/// dispatches through the async policy API, with congestion batching of
/// invalidation notices off or on. Tracked: simulated response p50/p99 vs
/// arrival rate, dispatch lag (window waits), and the batching delta
/// (messages saved by coalescing under backlog). The policy is Benefit: it
/// subscribes to invalidation notices AND ships queries, so notices
/// contend with query results on the uplink and batching moves both the
/// message count and the response percentiles (VCover sends no standalone
/// notices, which would pin the delta at zero; Replica answers every query
/// locally, which would pin the response delta instead).
struct OpenLoopCell {
  double rate_per_sec = 0.0;
  bool batching = false;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  double sim_duration_seconds = 0.0;
  double response_p50 = 0.0;
  double response_p99 = 0.0;
  double dispatch_lag_mean = 0.0;
  std::int64_t delivered_messages = 0;
  std::int64_t notice_messages = 0;
  std::int64_t coalesced_notices = 0;
};

/// One cell of the chaos suite (ISSUE 8): the open-loop WAN drive with the
/// hardened protocol armed and a named failure scenario layered on top —
///   * partition_then_heal — both server<->cache paths go dark for a
///     window mid-run, then heal; the epoch resync replays the missed
///     notices (unavailability, recovery staleness, resyncs tracked);
///   * flash_crowd        — 4x arrival overload with no faults; the
///     admission controller sheds at the server and degrades at the policy;
///   * update_storm       — lossy links (drop/duplicate/reorder on every
///     path) under congestion batching; timeouts, retries and the dedup
///     windows carry the run;
///   * rolling_restart    — (ISSUE 10) each cache crash-stops in turn,
///     restarts cold, and reconverges via the kRecoverRequest ledger
///     replay (downtime, availability, cold misses, reconvergence time);
///   * server_crash       — (ISSUE 10) the repository itself crash-stops
///     mid-run on a clean network; caches detect the new incarnation,
///     re-register, and the ledger invariant (logged == applied) holds.
/// Every fate is a pure function of (plan seed, link, message seq), so each
/// cell is bit-identical for any thread count (chaos_engine_test and
/// crash_restart_test pin it).
struct ChaosCell {
  std::string scenario;
  std::string policy;
  double rate_per_sec = 0.0;
  double wall_seconds_best = 0.0;
  double wall_seconds_median = 0.0;
  double events_per_sec = 0.0;
  double events_per_sec_median = 0.0;
  double response_p50 = 0.0;
  double response_p99 = 0.0;
  std::int64_t queries = 0;
  double sim_duration_seconds = 0.0;
  // 1 - crash downtime / simulated duration: the fraction of the run with
  // every endpoint up (1.0 for scenarios without crash schedules).
  double availability = 1.0;
  sim::ChaosYardsticks chaos;
};

ChaosCell measure_chaos(const sim::Setup& setup, std::string scenario,
                        const sim::EventEngineOptions& options,
                        std::size_t endpoints, int repeats,
                        sim::PolicyKind policy) {
  ChaosCell cell;
  cell.scenario = std::move(scenario);
  cell.policy = sim::to_string(policy);
  cell.rate_per_sec = options.open_loop.rate_per_sec;
  const Bytes per_endpoint{static_cast<std::int64_t>(
      setup.cache_capacity().as_double() / static_cast<double>(endpoints))};
  RepeatWalls walls;
  for (int rep = 0; rep < repeats; ++rep) {
    const sim::EventRunResult r = sim::run_one_event(
        policy, setup.trace(), per_endpoint, setup.params(),
        endpoints, workload::SplitStrategy::kRoundRobin, options);
    walls.add(r.replay.combined.wall_seconds);
    if (rep == 0) {
      cell.response_p50 = r.response_p50();
      cell.response_p99 = r.response_p99();
      cell.queries = r.replay.combined.queries;
      cell.sim_duration_seconds = r.sim_duration_seconds;
      cell.availability =
          1.0 - r.chaos.crash_downtime_seconds /
                    std::max(r.sim_duration_seconds, 1e-9);
      cell.chaos = r.chaos;
    }
  }
  cell.wall_seconds_best = walls.best();
  cell.wall_seconds_median = walls.median();
  const auto events = static_cast<double>(setup.trace().order.size());
  cell.events_per_sec = events / std::max(cell.wall_seconds_best, 1e-9);
  cell.events_per_sec_median =
      events / std::max(cell.wall_seconds_median, 1e-9);
  return cell;
}

/// Shared base of every chaos cell: the open-loop 100 Mbit/40 ms WAN drive
/// with protocol hardening and the overload controller armed.
sim::EventEngineOptions chaos_base_options(double rate) {
  sim::EventEngineOptions options;
  options.default_link = delta::net::LinkModel{12.5e6, 0.040};
  options.series_stride = 5000;
  options.open_loop.enabled = true;
  options.open_loop.arrival = workload::ArrivalProcess::Kind::kPoisson;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.open_loop.response_sample_cap = 100'000;
  options.protocol.enabled = true;
  options.admission.enabled = true;
  return options;
}

OpenLoopCell measure_open_loop(const sim::Setup& setup, double rate,
                               bool batching, int repeats) {
  sim::EventEngineOptions options;
  options.default_link = delta::net::LinkModel{12.5e6, 0.040};  // 100 Mbit WAN
  options.series_stride = 5000;
  options.open_loop.enabled = true;
  options.open_loop.arrival = workload::ArrivalProcess::Kind::kPoisson;
  options.open_loop.rate_per_sec = rate;
  options.open_loop.max_in_flight = 64;
  options.open_loop.response_sample_cap = 100'000;
  options.notice_batching.enabled = batching;
  options.notice_batching.backlog_threshold_seconds = 0.0;

  OpenLoopCell cell;
  cell.rate_per_sec = rate;
  cell.batching = batching;
  const Bytes per_endpoint{
      static_cast<std::int64_t>(setup.cache_capacity().as_double() / 2.0)};
  RepeatWalls walls;
  for (int rep = 0; rep < repeats; ++rep) {
    const sim::EventRunResult r = sim::run_one_event(
        sim::PolicyKind::kBenefit, setup.trace(), per_endpoint, setup.params(),
        2, workload::SplitStrategy::kRoundRobin, options);
    walls.add(r.replay.combined.wall_seconds);
    if (rep == 0) {
      cell.sim_duration_seconds = r.sim_duration_seconds;
      cell.response_p50 = r.response_p50();
      cell.response_p99 = r.response_p99();
      cell.dispatch_lag_mean = r.dispatch_lag_seconds.mean();
      cell.delivered_messages = r.delivered_messages;
      cell.notice_messages = r.notice_messages;
      cell.coalesced_notices = r.coalesced_notices;
    }
  }
  cell.wall_seconds_best = walls.best();
  cell.wall_seconds_median = walls.median();
  const auto events = static_cast<double>(setup.trace().order.size());
  cell.events_per_sec = events / std::max(cell.wall_seconds_best, 1e-9);
  cell.events_per_sec_median =
      events / std::max(cell.wall_seconds_median, 1e-9);
  return cell;
}

void emit_json(std::ostream& os, const sim::SetupParams& params, int repeats,
               bool smoke, const SingleResult& single,
               const std::vector<MultiCell>& multi,
               const std::vector<ObjectScalingCell>& scaling,
               const EventResult& event, std::size_t parallel_endpoints,
               const std::vector<EventParallelCell>& parallel,
               const std::vector<NSweepCell>& nsweep,
               const std::vector<OpenLoopCell>& open_loop,
               const std::vector<ChaosCell>& chaos) {
  // vs_sync baseline for the parallel sweep: the synchronous multi cell at
  // the same endpoint count, sequential engine (T=1).
  double parallel_sync_baseline = single.events_per_sec;
  double parallel_sync_baseline_median = single.events_per_sec_median;
  for (const MultiCell& cell : multi) {
    if (cell.endpoints == parallel_endpoints && cell.threads == 1) {
      parallel_sync_baseline = cell.events_per_sec;
      parallel_sync_baseline_median = cell.events_per_sec_median;
    }
  }
  os << "{\n";
  os << "  \"bench\": \"bench_trajectory\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"config\": {\"queries\": " << params.trace.query_count
     << ", \"updates\": " << params.trace.update_count
     << ", \"objects\": " << params.object_target
     << ", \"cache_frac\": " << params.cache_fraction
     << ", \"seed\": " << params.trace_seed << ", \"repeats\": " << repeats
     << "},\n";
  os << "  \"single_cache\": {\n"
     << "    \"events\": " << single.events << ",\n"
     << "    \"wall_seconds_best\": " << single.wall_seconds_best << ",\n"
     << "    \"wall_seconds_median\": " << single.wall_seconds_median << ",\n"
     << "    \"events_per_sec\": " << single.events_per_sec << ",\n"
     << "    \"events_per_sec_median\": " << single.events_per_sec_median
     << ",\n"
     << "    \"postwarmup_traffic_bytes\": " << single.postwarmup_traffic
     << ",\n"
     << "    \"cache_answers\": " << single.cache_answers << ",\n"
     << "    \"solver\": {\"bfs_searches\": " << single.solver_bfs
     << ", \"covers_computed\": " << single.covers_computed << "},\n"
     << "    \"postwarmup_latency_seconds\": {\"p50\": " << single.latency_p50
     << ", \"p90\": " << single.latency_p90
     << ", \"p99\": " << single.latency_p99 << "}\n"
     << "  },\n";
  os << "  \"multi_endpoint\": [\n";
  for (std::size_t i = 0; i < multi.size(); ++i) {
    os << "    {\"endpoints\": " << multi[i].endpoints
       << ", \"threads\": " << multi[i].threads
       << ", \"wall_seconds_best\": " << multi[i].wall_seconds_best
       << ", \"wall_seconds_median\": " << multi[i].wall_seconds_median
       << ", \"events_per_sec\": " << multi[i].events_per_sec
       << ", \"events_per_sec_median\": " << multi[i].events_per_sec_median
       << "}" << (i + 1 < multi.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Object-count scaling: same zipfian YCSB-B mix, growing key space,
  // single-cache VCover. bfs/covers per event must stay flat (sublinear in
  // objects) — the per-decision solver-work pin.
  os << "  \"object_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ObjectScalingCell& cell = scaling[i];
    os << "    {\"objects\": " << cell.objects
       << ", \"events\": " << cell.events
       << ", \"generate_seconds\": " << cell.generate_seconds
       << ", \"wall_seconds_best\": " << cell.wall_seconds_best
       << ", \"wall_seconds_median\": " << cell.wall_seconds_median
       << ", \"events_per_sec\": " << cell.events_per_sec
       << ", \"events_per_sec_median\": " << cell.events_per_sec_median
       << ", \"cache_answers\": " << cell.cache_answers
       << ", \"postwarmup_traffic_bytes\": " << cell.postwarmup_traffic
       << ",\n     \"solver\": {\"bfs_searches\": " << cell.solver_bfs
       << ", \"covers_computed\": " << cell.covers_computed
       << ", \"bfs_per_event\": " << cell.bfs_per_event
       << ", \"covers_per_event\": " << cell.covers_per_event << "}}"
       << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Same workload through the event-driven engine; "single_cache" above is
  // the synchronous baseline for both throughput and (proxy) latency.
  os << "  \"event_engine\": {\n"
     << "    \"wall_seconds_best\": " << event.wall_seconds_best << ",\n"
     << "    \"wall_seconds_median\": " << event.wall_seconds_median << ",\n"
     << "    \"events_per_sec\": " << event.events_per_sec << ",\n"
     << "    \"events_per_sec_median\": " << event.events_per_sec_median
     << ",\n"
     << "    \"events_per_sec_vs_sync\": "
     << event.events_per_sec / std::max(single.events_per_sec, 1e-9) << ",\n"
     << "    \"events_per_sec_vs_sync_median\": "
     << event.events_per_sec_median /
            std::max(single.events_per_sec_median, 1e-9)
     << ",\n"
     << "    \"postwarmup_traffic_bytes\": " << event.postwarmup_traffic
     << ",\n"
     << "    \"simulated_response_seconds\": {\"p50\": " << event.response_p50
     << ", \"p99\": " << event.response_p99 << "},\n"
     << "    \"dispatch_lag_mean_seconds\": " << event.dispatch_lag_mean
     << ",\n"
     << "    \"staleness_mean_seconds\": " << event.staleness_mean << ",\n"
     << "    \"server_uplink_busy_seconds\": " << event.uplink_busy_seconds
     << ",\n";
  // Conservative per-partition parallel sweep on the WAN config. Results
  // are bit-identical across thread counts (the engine's determinism
  // contract); only the wall time moves. self_speedup is wall-clock
  // (bounded by the host's core count); critical_path_speedup is the
  // measured sum/max of per-partition replay walls — what a host with at
  // least N cores achieves.
  os << "    \"parallel\": {\n"
     << "      \"endpoints\": " << parallel_endpoints << ",\n"
     << "      \"strategy\": \"hash_by_region\",\n"
     << "      \"cells\": [\n";
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const EventParallelCell& cell = parallel[i];
    os << "        {\"threads\": " << cell.threads
       << ", \"wall_seconds_best\": " << cell.wall_seconds_best
       << ", \"wall_seconds_median\": " << cell.wall_seconds_median
       << ", \"events_per_sec\": " << cell.events_per_sec
       << ", \"events_per_sec_median\": " << cell.events_per_sec_median
       << ",\n         \"events_per_sec_vs_sync\": "
       << cell.events_per_sec / std::max(parallel_sync_baseline, 1e-9)
       << ", \"events_per_sec_vs_sync_median\": "
       << cell.events_per_sec_median /
              std::max(parallel_sync_baseline_median, 1e-9)
       << ", \"self_speedup\": " << cell.self_speedup
       << ", \"self_speedup_median\": " << cell.self_speedup_median
       << ", \"critical_path_speedup\": " << cell.critical_path_speedup
       << ", \"balance\": " << cell.balance
       << ", \"steal_count\": " << cell.steal_count << "}"
       << (i + 1 < parallel.size() ? "," : "") << "\n";
  }
  os << "      ],\n";
  // Fleet-size sweep: critical_path_speedup tracked at N up to 64 (T=1 —
  // see NSweepCell), load-balanced LPT split (per-row "strategy").
  // self_speedup is omitted: it only measures the host's core count, not
  // the engine. "balance" is the measured max/mean routed-query ratio the
  // critical path is bounded by.
  os << "      \"n_sweep\": [\n";
  for (std::size_t i = 0; i < nsweep.size(); ++i) {
    const NSweepCell& n = nsweep[i];
    os << "        {\"endpoints\": " << n.endpoints << ", \"strategy\": \""
       << workload::to_string(n.strategy) << "\""
       << ", \"threads\": " << n.cell.threads
       << ", \"wall_seconds_best\": " << n.cell.wall_seconds_best
       << ", \"wall_seconds_median\": " << n.cell.wall_seconds_median
       << ", \"events_per_sec\": " << n.cell.events_per_sec
       << ", \"events_per_sec_median\": " << n.cell.events_per_sec_median
       << ",\n         \"critical_path_speedup\": "
       << n.cell.critical_path_speedup << ", \"balance\": " << n.cell.balance
       << ", \"steal_count\": " << n.cell.steal_count << "}"
       << (i + 1 < nsweep.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  },\n";
  // Open-loop drive (ISSUE 7): Poisson arrivals over a 100 Mbit/40 ms WAN
  // through the async policy API, N=2 round-robin, window 64 — response
  // p50/p99 vs arrival rate with congestion batching off/on. The batching
  // delta (notice_messages saved, coalesced_notices gained) is the tracked
  // figure; the conservation invariant notice+coalesced == unbatched-notice
  // is pinned by open_loop_engine_test for kAll-subscription policies.
  os << "  \"open_loop\": {\n"
     << "    \"link\": {\"bandwidth_bytes_per_sec\": 1.25e7, "
     << "\"latency_seconds\": 0.04},\n"
     << "    \"arrival\": \"poisson\",\n"
     << "    \"max_in_flight\": 64,\n"
     << "    \"cells\": [\n";
  for (std::size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopCell& cell = open_loop[i];
    os << "      {\"rate_per_sec\": " << cell.rate_per_sec
       << ", \"batching\": " << (cell.batching ? "true" : "false")
       << ", \"wall_seconds_best\": " << cell.wall_seconds_best
       << ", \"wall_seconds_median\": " << cell.wall_seconds_median
       << ",\n       \"events_per_sec\": " << cell.events_per_sec
       << ", \"events_per_sec_median\": " << cell.events_per_sec_median
       << ", \"sim_duration_seconds\": " << cell.sim_duration_seconds
       << ",\n       \"simulated_response_seconds\": {\"p50\": "
       << cell.response_p50 << ", \"p99\": " << cell.response_p99 << "}"
       << ", \"dispatch_lag_mean_seconds\": " << cell.dispatch_lag_mean
       << ",\n       \"delivered_messages\": " << cell.delivered_messages
       << ", \"notice_messages\": " << cell.notice_messages
       << ", \"coalesced_notices\": " << cell.coalesced_notices << "}"
       << (i + 1 < open_loop.size() ? "," : "") << "\n";
  }
  os << "    ]\n  },\n";
  // Chaos suite (ISSUE 8): failure yardsticks under deterministic fault
  // injection with the hardened protocol + admission controller armed.
  // Every cell is bit-identical for any thread count (chaos_engine_test);
  // conservation — every query completed, retried to completion, or
  // accounted shed/failed — is pinned there too.
  os << "  \"chaos\": {\n"
     << "    \"link\": {\"bandwidth_bytes_per_sec\": 1.25e7, "
     << "\"latency_seconds\": 0.04},\n"
     << "    \"cells\": [\n";
  for (std::size_t i = 0; i < chaos.size(); ++i) {
    const ChaosCell& cell = chaos[i];
    const sim::ChaosYardsticks& ch = cell.chaos;
    os << "      {\"scenario\": \"" << cell.scenario << "\""
       << ", \"policy\": \"" << cell.policy << "\""
       << ", \"rate_per_sec\": " << cell.rate_per_sec
       << ", \"wall_seconds_best\": " << cell.wall_seconds_best
       << ", \"wall_seconds_median\": " << cell.wall_seconds_median
       << ",\n       \"events_per_sec\": " << cell.events_per_sec
       << ", \"events_per_sec_median\": " << cell.events_per_sec_median
       << ", \"queries\": " << cell.queries
       << ",\n       \"simulated_response_seconds\": {\"p50\": "
       << cell.response_p50 << ", \"p99\": " << cell.response_p99 << "}"
       << ",\n       \"timeouts\": " << ch.timeouts
       << ", \"retries\": " << ch.retries
       << ", \"failed_requests\": " << ch.failed_requests
       << ", \"late_replies\": " << ch.late_replies
       << ",\n       \"shed_queries\": " << ch.shed_queries
       << ", \"degraded_queries\": " << ch.degraded_queries
       << ", \"request_duplicates_suppressed\": "
       << ch.request_duplicates_suppressed
       << ", \"duplicate_notices_suppressed\": "
       << ch.duplicate_notices_suppressed
       << ",\n       \"resyncs\": " << ch.resyncs
       << ", \"replayed_notices\": " << ch.replayed_notices
       << ", \"notices_logged\": " << ch.notices_logged
       << ", \"notices_applied\": " << ch.notices_applied
       << ",\n       \"unavailable_seconds\": " << ch.unavailable_seconds
       << ", \"max_recovery_staleness_seconds\": "
       << ch.max_recovery_staleness_seconds
       << ",\n       \"faults\": {\"dropped\": " << ch.faults_dropped
       << ", \"duplicated\": " << ch.faults_duplicated
       << ", \"reordered\": " << ch.faults_reordered
       << ", \"partition_dropped\": " << ch.partition_dropped << "}"
       << ",\n       \"crash\": {\"restarts\": " << ch.crash_restarts
       << ", \"downtime_seconds\": " << ch.crash_downtime_seconds
       << ", \"dropped_while_down\": " << ch.crash_dropped
       << ", \"cold_misses\": " << ch.cold_misses
       << ",\n                 \"budget_exceeded_retries\": "
       << ch.budget_exceeded_retries
       << ", \"max_reconvergence_seconds\": "
       << ch.max_reconvergence_seconds
       << ", \"post_restart_staleness_seconds\": "
       << ch.post_restart_staleness_seconds
       << ", \"availability\": " << cell.availability << "}}"
       << (i + 1 < chaos.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const bool smoke = cfg.get_bool("smoke", false);
  const int repeats = static_cast<int>(cfg.get_int("repeats", smoke ? 1 : 3));

  sim::SetupParams params = bench::setup_from_config(cfg);
  if (!cfg.has("queries")) {
    params.trace.query_count = smoke ? 2'000 : 40'000;
  }
  if (!cfg.has("updates")) {
    params.trace.update_count = smoke ? 2'000 : 40'000;
  }
  params.trace.postwarmup_query_gb =
      cfg.get_double("query_gb", 300.0) *
      static_cast<double>(params.trace.query_count) / 250'000.0;

  const sim::Setup setup{params};
  std::cerr << "bench_trajectory: " << setup.trace().order.size()
            << " events, repeats=" << repeats << (smoke ? " (smoke)" : "")
            << "\n";

  SingleResult single;
  EventResult event;
  measure_single_and_event(setup, repeats, single, event);
  std::cerr << "  single-cache: "
            << util::fixed(single.events_per_sec / 1000.0, 1) << "k events/s ("
            << util::fixed(single.wall_seconds_best, 3) << " s best)\n";

  std::vector<MultiCell> multi;
  // The (parallel_endpoints, T=1) cell doubles as the vs_sync baseline of
  // the event_engine.parallel sweep, so smoke mode measures it too.
  const std::vector<std::pair<std::size_t, std::size_t>> cells =
      smoke ? std::vector<std::pair<std::size_t, std::size_t>>{{2, 1}, {2, 2}}
            : std::vector<std::pair<std::size_t, std::size_t>>{
                  {2, 1}, {2, 4}, {4, 1}, {4, 4}};
  for (const auto& [n, t] : cells) {
    multi.push_back(measure_multi(setup, n, t, repeats));
    std::cerr << "  multi N=" << n << " T=" << t << ": "
              << util::fixed(multi.back().events_per_sec / 1000.0, 1)
              << "k events/s\n";
  }

  // Object-count scaling sweep. Smoke caps the key space at 10^4 so the
  // sublinear-per-decision property is exercised on every CI run; the full
  // sweep carries the measured 10^6 figure.
  const std::vector<std::int64_t> scaling_objects =
      smoke ? std::vector<std::int64_t>{68, 10'000}
            : std::vector<std::int64_t>{68, 10'000, 1'000'000};
  const std::int64_t scaling_events =
      cfg.get_int("scaling_events", smoke ? 20'000 : 200'000);
  std::vector<ObjectScalingCell> scaling;
  for (const std::int64_t n : scaling_objects) {
    scaling.push_back(measure_object_scaling(
        n, scaling_events, /*cache_frac=*/0.30, params.trace_seed, repeats));
    const ObjectScalingCell& cell = scaling.back();
    std::cerr << "  object scaling n=" << n << ": "
              << util::fixed(cell.events_per_sec / 1000.0, 1)
              << "k events/s, bfs/event="
              << util::fixed(cell.bfs_per_event, 4) << ", covers/event="
              << util::fixed(cell.covers_per_event, 4) << " (gen "
              << util::fixed(cell.generate_seconds, 2) << "s)\n";
  }

  std::cerr << "  event engine: "
            << util::fixed(event.events_per_sec / 1000.0, 1)
            << "k events/s (" << util::fixed(event.wall_seconds_best, 3)
            << " s best), simulated response p50="
            << util::fixed(event.response_p50, 3) << "s p99="
            << util::fixed(event.response_p99, 3) << "s\n";

  const std::size_t parallel_endpoints = smoke ? 2 : 4;
  const std::vector<std::size_t> parallel_threads =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  const std::vector<EventParallelCell> parallel = measure_event_parallel(
      setup, parallel_endpoints, workload::SplitStrategy::kHashByRegion,
      parallel_threads, repeats);
  for (const EventParallelCell& cell : parallel) {
    std::cerr << "  event parallel N=" << parallel_endpoints
              << " T=" << cell.threads << ": "
              << util::fixed(cell.events_per_sec / 1000.0, 1)
              << "k events/s, self-speedup x"
              << util::fixed(cell.self_speedup, 2) << " (critical path x"
              << util::fixed(cell.critical_path_speedup, 2) << ", steals "
              << cell.steal_count << ")\n";
  }

  // Fleet-size sweep: N partitions, T=1 (cleanest critical path), split by
  // the load-balanced LPT strategy — the tracked critical_path_speedup
  // trajectory measures the balanced split (the N=4 cells above keep
  // hash_by_region so events_per_sec_vs_sync stays apples-to-apples with
  // the sync multi sweep).
  const std::vector<std::size_t> nsweep_endpoints =
      smoke ? std::vector<std::size_t>{4}
            : std::vector<std::size_t>{4, 16, 64};
  std::vector<NSweepCell> nsweep;
  for (const std::size_t n : nsweep_endpoints) {
    NSweepCell cell;
    cell.endpoints = n;
    cell.strategy = workload::SplitStrategy::kBalancedByLoad;
    cell.cell =
        measure_event_parallel(setup, n, cell.strategy, {1}, repeats).front();
    nsweep.push_back(cell);
    std::cerr << "  event parallel n-sweep N=" << n << " T=1: "
              << util::fixed(cell.cell.events_per_sec / 1000.0, 1)
              << "k events/s, critical path x"
              << util::fixed(cell.cell.critical_path_speedup, 2)
              << ", balance " << util::fixed(cell.cell.balance, 3) << "\n";
  }

  // Open-loop drive sweep: response vs arrival rate, batching off then on.
  const std::vector<double> open_loop_rates =
      smoke ? std::vector<double>{500.0, 2000.0}
            : std::vector<double>{500.0, 2000.0, 8000.0};
  std::vector<OpenLoopCell> open_loop;
  for (const double rate : open_loop_rates) {
    for (const bool batching : {false, true}) {
      open_loop.push_back(measure_open_loop(setup, rate, batching, repeats));
      const OpenLoopCell& cell = open_loop.back();
      std::cerr << "  open loop rate=" << rate
                << (batching ? " batch=on " : " batch=off") << ": p50="
                << util::fixed(cell.response_p50, 3) << "s p99="
                << util::fixed(cell.response_p99, 3) << "s, notices="
                << cell.notice_messages << " coalesced="
                << cell.coalesced_notices << "\n";
    }
  }

  // Chaos suite (ISSUE 8): N=2 caches on the WAN drive, protocol +
  // admission armed, one cell per failure scenario. Provisioned on its own
  // MB-scale workload the 100 Mbit link can carry with headroom, so the
  // counters measure *faults* (drops, partitions, recovery), not permanent
  // overload — the bench's main GB-scale trace would saturate the uplink
  // and turn every scenario into the same retransmit storm. The partition
  // and storm cells run the full-replica policy (subscribed to every
  // update, so the invalidation stream the faults disrupt is guaranteed
  // dense); the flash crowd runs VCover, whose admission/degrade path is
  // the scenario's subject.
  const std::size_t chaos_endpoints = 2;
  sim::SetupParams chaos_params = params;
  chaos_params.base_level = 4;
  chaos_params.total_rows = 4e4;
  chaos_params.object_target = 30;
  chaos_params.trace.query_count = smoke ? 1200 : 4000;
  chaos_params.trace.update_count = chaos_params.trace.query_count;
  chaos_params.trace.postwarmup_query_gb =
      0.05 * static_cast<double>(chaos_params.trace.query_count) / 1200.0;
  chaos_params.trace.mean_postwarmup_update_mb = 0.02;
  chaos_params.trace.hotspot_max_object_gb = 0.01;
  const sim::Setup chaos_setup{chaos_params};
  const double chaos_rate = smoke ? 200.0 : 500.0;
  const double chaos_duration =
      static_cast<double>(chaos_setup.trace().order.size()) / chaos_rate;
  std::vector<ChaosCell> chaos;
  {
    // Partition-then-heal: both server<->cache paths dark for the middle
    // fifth of the expected run, then healed; the epoch resync (heal- or
    // ledger-gap-triggered) closes the staleness hole.
    sim::EventEngineOptions options = chaos_base_options(chaos_rate);
    const net::FaultWindow window{0.40 * chaos_duration,
                                  0.60 * chaos_duration};
    for (std::size_t i = 0; i < chaos_endpoints; ++i) {
      options.fault_plan.partitions.push_back(net::LinkPartition{
          "server", "cache-" + std::to_string(i), true, {window}});
    }
    options.fault_plan.enabled = true;
    chaos.push_back(measure_chaos(chaos_setup, "partition_then_heal",
                                  options, chaos_endpoints, repeats,
                                  sim::PolicyKind::kReplica));
  }
  {
    // Flash crowd: arrivals far beyond what the link serves, no faults —
    // the admission controller sheds at the server and degrades at the
    // policy instead of collapsing.
    sim::EventEngineOptions options = chaos_base_options(20'000.0);
    options.admission.shed_backlog_seconds = 0.5;
    options.admission.degrade_backlog_seconds = 0.1;
    chaos.push_back(measure_chaos(chaos_setup, "flash_crowd", options,
                                  chaos_endpoints, repeats,
                                  sim::PolicyKind::kVCover));
  }
  {
    // Update storm: lossy links everywhere plus congestion batching; the
    // retry/dedup machinery carries the coherence stream.
    sim::EventEngineOptions options = chaos_base_options(chaos_rate);
    options.fault_plan.enabled = true;
    options.fault_plan.default_faults.drop = 0.02;
    options.fault_plan.default_faults.duplicate = 0.02;
    options.fault_plan.default_faults.reorder = 0.05;
    options.notice_batching.enabled = true;
    options.notice_batching.backlog_threshold_seconds = 0.0;
    chaos.push_back(measure_chaos(chaos_setup, "update_storm", options,
                                  chaos_endpoints, repeats,
                                  sim::PolicyKind::kReplica));
  }
  // Crash cells (ISSUE 10) run VCover over a cheap-to-load repository
  // (objects small enough for the bypass rule to admit loads), so a cold
  // restart's re-warm burst is measurable and the policy's request traffic
  // is what detects a restarted server. The in-flight window is unbound:
  // a tight window stalls the arrival tape as soon as a dead endpoint
  // fills it with timing-out queries.
  sim::SetupParams crash_params = chaos_params;
  crash_params.total_rows = 400;
  const sim::Setup crash_setup{crash_params};
  const double crash_duration =
      static_cast<double>(crash_setup.trace().order.size()) / chaos_rate;
  {
    // Rolling restart: each cache crash-stops in turn for a tenth of the
    // run, restarts cold, and recovers via the kRecoverRequest replay.
    sim::EventEngineOptions options = chaos_base_options(chaos_rate);
    options.open_loop.max_in_flight = 4096;
    options.fault_plan.enabled = true;
    for (std::size_t i = 0; i < chaos_endpoints; ++i) {
      const double down =
          (0.30 + 0.20 * static_cast<double>(i)) * crash_duration;
      options.fault_plan.crashes.push_back(net::CrashSchedule{
          "cache-" + std::to_string(i),
          {net::FaultWindow{down, down + 0.10 * crash_duration}}});
    }
    chaos.push_back(measure_chaos(crash_setup, "rolling_restart", options,
                                  chaos_endpoints, repeats,
                                  sim::PolicyKind::kVCover));
  }
  {
    // Server crash on a clean network: the repository dies for the middle
    // tenth of the run and restarts empty; caches detect the incarnation
    // bump, re-register, and replay. Clean links keep the recorded ledger
    // invariant (logged == applied) exact — loss + crash can strand
    // notices whose only replay source died (see crash_restart_test).
    sim::EventEngineOptions options = chaos_base_options(chaos_rate);
    options.open_loop.max_in_flight = 4096;
    options.fault_plan.enabled = true;
    options.fault_plan.crashes.push_back(net::CrashSchedule{
        "server",
        {net::FaultWindow{0.45 * crash_duration, 0.55 * crash_duration}}});
    chaos.push_back(measure_chaos(crash_setup, "server_crash", options,
                                  chaos_endpoints, repeats,
                                  sim::PolicyKind::kVCover));
  }
  for (const ChaosCell& cell : chaos) {
    std::cerr << "  chaos " << cell.scenario << ": p99="
              << util::fixed(cell.response_p99, 3) << "s timeouts="
              << cell.chaos.timeouts << " retries=" << cell.chaos.retries
              << " shed=" << cell.chaos.shed_queries << " degraded="
              << cell.chaos.degraded_queries << " resyncs="
              << cell.chaos.resyncs << " unavailable="
              << util::fixed(cell.chaos.unavailable_seconds, 3)
              << "s crashes=" << cell.chaos.crash_restarts
              << " availability=" << util::fixed(cell.availability, 4)
              << "\n";
  }

  const std::string out = cfg.get_string("out", "-");
  if (out == "-") {
    emit_json(std::cout, params, repeats, smoke, single, multi, scaling,
              event, parallel_endpoints, parallel, nsweep, open_loop, chaos);
  } else {
    std::ofstream file{out};
    if (!file) {
      std::cerr << "cannot open " << out << " for writing\n";
      return 1;
    }
    emit_json(file, params, repeats, smoke, single, multi, scaling, event,
              parallel_endpoints, parallel, nsweep, open_loop, chaos);
    std::cerr << "wrote " << out << "\n";
  }
  return 0;
}
