// Micro benchmark: multi-endpoint scaling sweep. One shared repository, N
// cache endpoints (N ∈ {1, 2, 4, 8}), each with its own VCover instance and
// an equal slice of the total cache budget; queries split round-robin and
// by sky-region hash.
//
// Reported per (strategy, N): post-warm-up figure traffic (combined and the
// per-endpoint min/max spread), cache answer fraction, and wall time. The
// N=1 row is the single-cache baseline — by construction it matches
// sim::run_one byte-for-byte, so the sweep isolates the effect of sharding
// alone. Round-robin destroys spatial locality (every endpoint sees every
// hot region but holds only 1/N of the cache), while hash-by-region keeps
// each region's queries on one endpoint; the gap between the two rows is
// the value of locality-aware sharding.
//
//   ./build/bench/micro_multi_endpoint [key=value ...]
//     queries=40000 updates=40000 objects=68 cache_frac=0.3 seed=1
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "sim/multi_cache.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  // Sweep-friendly defaults: the paper-scale 250k+250k trace takes minutes
  // per cell; 40k+40k keeps the full sweep under a minute.
  if (!cfg.has("queries")) params.trace.query_count = 40'000;
  if (!cfg.has("updates")) params.trace.update_count = 40'000;
  params.trace.postwarmup_query_gb =
      cfg.get_double("query_gb", 300.0) *
      static_cast<double>(params.trace.query_count) / 250'000.0;

  const sim::Setup setup{params};
  const Bytes total_cache = setup.cache_capacity();
  bench::print_header("multi-endpoint scaling sweep", params,
                      setup.server_bytes(), total_cache);
  const sim::PolicyOverrides overrides = bench::overrides_from_config(cfg);

  std::cout << "strategy        N  per-EP cache  postwarmup GB  "
               "EP min..max GB  at-cache  wall s\n";
  for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                              workload::SplitStrategy::kHashByRegion}) {
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
      const Bytes per_endpoint{static_cast<std::int64_t>(
          total_cache.as_double() / static_cast<double>(n))};
      const sim::MultiRunResult result = sim::run_one_multi(
          sim::PolicyKind::kVCover, setup.trace(), per_endpoint, params, n,
          strategy, overrides, /*series_stride=*/5000);
      double lo = result.per_endpoint[0].postwarmup_traffic.as_double();
      double hi = lo;
      for (const sim::RunResult& r : result.per_endpoint) {
        lo = std::min(lo, r.postwarmup_traffic.as_double());
        hi = std::max(hi, r.postwarmup_traffic.as_double());
      }
      const auto& c = result.combined;
      const double at_cache =
          static_cast<double>(c.cache_fresh + c.cache_after_updates) /
          static_cast<double>(std::max<std::int64_t>(c.queries, 1));
      std::cout << workload::to_string(strategy)
                << (strategy == workload::SplitStrategy::kRoundRobin ? "     "
                                                                     : "  ")
                << n << "  " << bench::gb(per_endpoint) << "          "
                << bench::gb(c.postwarmup_traffic) << "           "
                << bench::gb(lo) << ".." << bench::gb(hi) << "      "
                << util::fixed(at_cache * 100, 1) << "%    "
                << util::fixed(c.wall_seconds, 2) << "\n";
    }
  }
  return 0;
}
