// Micro benchmark: multi-endpoint scaling sweep. One shared repository, N
// cache endpoints (N ∈ {1, 2, 4, 8}), each with its own VCover instance and
// an equal slice of the total cache budget; queries split round-robin and
// by sky-region hash.
//
// Part 1 — sharding sweep (sequential engine). Reported per (strategy, N):
// post-warm-up figure traffic (combined and the per-endpoint min/max
// spread), cache answer fraction, and wall time. The N=1 row is the
// single-cache baseline — by construction it matches sim::run_one
// byte-for-byte, so the sweep isolates the effect of sharding alone.
// Round-robin destroys spatial locality (every endpoint sees every hot
// region but holds only 1/N of the cache), while hash-by-region keeps each
// region's queries on one endpoint; the gap between the two rows is the
// value of locality-aware sharding.
//
// Part 2 — parallel-engine sweep (hash strategy): N ∈ {1, 2, 4, 8} ×
// T ∈ {1, 2, 4, 8} worker threads. Each cell verifies its combined figures
// against the T=1 run (the determinism guarantee), then reports wall time
// and speedup over T=1 for the same N. The engine shards per endpoint, so
// each worker replays the full update stream against its repository
// replica: speedup approaches T while per-query policy work dominates
// (the paper's regime — queries carry GB, updates MB) and degrades on
// update-dominated traces, where the replicated ingest is the bottleneck.
// A T>N cell cannot beat T=N (one worker per endpoint), and a single-core
// host shows a uniform slowdown — the determinism columns are the point
// there.
//
//   ./build/bench/micro_multi_endpoint [key=value ...]
//     queries=40000 updates=40000 objects=68 cache_frac=0.3 seed=1
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "sim/multi_cache.h"
#include "util/thread_pool.h"
#include "workload/trace_split.h"

int main(int argc, char** argv) {
  using namespace delta;
  const auto cfg = util::Config::from_args(argc, argv);
  sim::SetupParams params = bench::setup_from_config(cfg);
  // Sweep-friendly defaults: the paper-scale 250k+250k trace takes minutes
  // per cell; 40k+40k keeps the full sweep under a minute.
  if (!cfg.has("queries")) params.trace.query_count = 40'000;
  if (!cfg.has("updates")) params.trace.update_count = 40'000;
  params.trace.postwarmup_query_gb =
      cfg.get_double("query_gb", 300.0) *
      static_cast<double>(params.trace.query_count) / 250'000.0;

  const sim::Setup setup{params};
  const Bytes total_cache = setup.cache_capacity();
  bench::print_header("multi-endpoint scaling sweep", params,
                      setup.server_bytes(), total_cache);
  const sim::PolicyOverrides overrides = bench::overrides_from_config(cfg);

  std::cout << "strategy        N  per-EP cache  postwarmup GB  "
               "EP min..max GB  at-cache  wall s\n";
  for (const auto strategy : {workload::SplitStrategy::kRoundRobin,
                              workload::SplitStrategy::kHashByRegion}) {
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
      const Bytes per_endpoint{static_cast<std::int64_t>(
          total_cache.as_double() / static_cast<double>(n))};
      const sim::MultiRunResult result = sim::run_one_multi(
          sim::PolicyKind::kVCover, setup.trace(), per_endpoint, params, n,
          strategy, overrides, /*series_stride=*/5000);
      double lo = result.per_endpoint[0].postwarmup_traffic.as_double();
      double hi = lo;
      for (const sim::RunResult& r : result.per_endpoint) {
        lo = std::min(lo, r.postwarmup_traffic.as_double());
        hi = std::max(hi, r.postwarmup_traffic.as_double());
      }
      const auto& c = result.combined;
      const double at_cache =
          static_cast<double>(c.cache_fresh + c.cache_after_updates) /
          static_cast<double>(std::max<std::int64_t>(c.queries, 1));
      std::cout << workload::to_string(strategy)
                << (strategy == workload::SplitStrategy::kRoundRobin ? "     "
                                                                     : "  ")
                << n << "  " << bench::gb(per_endpoint) << "          "
                << bench::gb(c.postwarmup_traffic) << "           "
                << bench::gb(lo) << ".." << bench::gb(hi) << "      "
                << util::fixed(at_cache * 100, 1) << "%    "
                << util::fixed(c.wall_seconds, 2) << "\n";
    }
  }

  // ---- part 2: parallel-engine thread sweep ----
  std::cout << "\nparallel engine (hash_by_region), "
            << util::ThreadPool::hardware_threads()
            << " hardware threads\n"
            << "N  T  wall s  speedup vs T=1  combined figures\n";
  // Full-figure determinism gate: any divergence in the traffic accounting,
  // decision counters, series, or latency statistics fails the bench. Keep
  // the field list in lockstep with sim_parallel_test's expect_identical,
  // the unit-level twin (kept separate because the test variant reports
  // per-field gtest diagnostics this bool cannot).
  const auto identical = [](const sim::RunResult& a, const sim::RunResult& b) {
    if (a.series.points().size() != b.series.points().size()) return false;
    for (std::size_t k = 0; k < a.series.points().size(); ++k) {
      if (a.series.points()[k].event_index != b.series.points()[k].event_index ||
          a.series.points()[k].value != b.series.points()[k].value) {
        return false;
      }
    }
    return a.total_traffic == b.total_traffic &&
           a.postwarmup_traffic == b.postwarmup_traffic &&
           a.postwarmup_by_mechanism == b.postwarmup_by_mechanism &&
           a.overhead_traffic == b.overhead_traffic &&
           a.warmup_end == b.warmup_end && a.queries == b.queries &&
           a.cache_fresh == b.cache_fresh &&
           a.cache_after_updates == b.cache_after_updates &&
           a.shipped == b.shipped && a.objects_loaded == b.objects_loaded &&
           a.postwarmup_latency.count() == b.postwarmup_latency.count() &&
           a.postwarmup_latency.mean() == b.postwarmup_latency.mean() &&
           a.postwarmup_latency.variance() == b.postwarmup_latency.variance() &&
           a.postwarmup_latency.min() == b.postwarmup_latency.min() &&
           a.postwarmup_latency.max() == b.postwarmup_latency.max() &&
           a.postwarmup_latency.sum() == b.postwarmup_latency.sum();
  };
  bool all_match = true;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const Bytes per_endpoint{static_cast<std::int64_t>(
        total_cache.as_double() / static_cast<double>(n))};
    double baseline_seconds = 0.0;
    sim::MultiRunResult baseline;
    for (const std::size_t t : {1u, 2u, 4u, 8u}) {
      sim::ParallelOptions parallel;
      parallel.num_threads = t;
      sim::MultiRunResult result = sim::run_one_multi(
          sim::PolicyKind::kVCover, setup.trace(), per_endpoint, params, n,
          workload::SplitStrategy::kHashByRegion, overrides,
          /*series_stride=*/5000, parallel);
      const double wall = result.combined.wall_seconds;
      if (t == 1) {
        baseline_seconds = wall;
        baseline = std::move(result);
      }
      const sim::MultiRunResult& probe = t == 1 ? baseline : result;
      bool match = identical(probe.combined, baseline.combined) &&
                   probe.per_endpoint.size() == baseline.per_endpoint.size();
      for (std::size_t e = 0; match && e < probe.per_endpoint.size(); ++e) {
        match = identical(probe.per_endpoint[e], baseline.per_endpoint[e]);
      }
      all_match = all_match && match;
      std::cout << n << "  " << t << "  " << util::fixed(wall, 3) << "    "
                << util::fixed(baseline_seconds / std::max(wall, 1e-9), 2)
                << "x           " << (match ? "== T=1" : "!= T=1 (BUG)")
                << "\n";
    }
  }
  if (!all_match) {
    std::cerr << "determinism violation: a parallel run diverged from T=1\n";
    return 1;
  }
  return 0;
}
