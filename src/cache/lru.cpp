#include "cache/lru.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

LruPolicy::LruPolicy(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void LruPolicy::on_access(ObjectId id) {
  const auto it = last_use_.find(id);
  DELTA_CHECK_MSG(it != last_use_.end(),
                  "LRU access to untracked object " << id.value());
  it->second = ++clock_;
}

ObjectId LruPolicy::oldest() const {
  DELTA_CHECK(!last_use_.empty());
  auto victim = last_use_.begin();
  for (auto it = last_use_.begin(); it != last_use_.end(); ++it) {
    if (it->second < victim->second ||
        (it->second == victim->second && it->first < victim->first)) {
      victim = it;
    }
  }
  return victim->first;
}

BatchDecision LruPolicy::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  BatchDecision decision;
  Bytes total = store_->used();
  std::vector<LoadCandidate> admitted;
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK(!store_->contains(c.id));
    if (c.size > store_->capacity()) continue;
    admitted.push_back(c);
    total += c.size;
  }
  // Evict stale residents oldest-first until the batch fits; if the batch
  // alone exceeds capacity, drop trailing candidates.
  while (total > store_->capacity() && !last_use_.empty()) {
    const ObjectId victim = oldest();
    total -= store_->bytes_of(victim);
    last_use_.erase(victim);
    decision.evict.push_back(victim);
  }
  while (total > store_->capacity() && !admitted.empty()) {
    total -= admitted.back().size;
    admitted.pop_back();
  }
  DELTA_CHECK(total <= store_->capacity());
  for (const LoadCandidate& c : admitted) {
    decision.load.push_back(c.id);
    last_use_[c.id] = ++clock_;
  }
  return decision;
}

std::vector<ObjectId> LruPolicy::shed_overflow() {
  std::vector<ObjectId> victims;
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!last_use_.empty(), "cannot shed: no resident objects");
    const ObjectId victim = oldest();
    used -= store_->bytes_of(victim);
    last_use_.erase(victim);
    victims.push_back(victim);
  }
  return victims;
}

void LruPolicy::forget(ObjectId id) { last_use_.erase(id); }

}  // namespace delta::cache
