#include "cache/lru.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

LruPolicy::LruPolicy(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void LruPolicy::on_access(ObjectId id) {
  DELTA_CHECK_MSG(last_use_.contains(id),
                  "LRU access to untracked object " << id.value());
  last_use_.update(id, ++clock_);
}

void LruPolicy::reserve(std::size_t n) { last_use_.reserve(n); }

const BatchDecision& LruPolicy::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  decision_.load.clear();
  decision_.evict.clear();
  admitted_.clear();
  Bytes total = store_->used();
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK(!store_->contains(c.id));
    if (c.size > store_->capacity()) continue;
    admitted_.push_back(c);
    total += c.size;
  }
  // Evict stale residents oldest-first until the batch fits; if the batch
  // alone exceeds capacity, drop trailing candidates. The heap top is the
  // deterministic (stamp, id) arg-min.
  while (total > store_->capacity() && !last_use_.empty()) {
    const ObjectId victim = last_use_.top().key;
    total -= store_->bytes_of(victim);
    last_use_.pop();
    decision_.evict.push_back(victim);
  }
  while (total > store_->capacity() && !admitted_.empty()) {
    total -= admitted_.back().size;
    admitted_.pop_back();
  }
  DELTA_CHECK(total <= store_->capacity());
  for (const LoadCandidate& c : admitted_) {
    decision_.load.push_back(c.id);
    last_use_.push(c.id, ++clock_);
  }
  return decision_;
}

const std::vector<ObjectId>& LruPolicy::shed_overflow() {
  shed_victims_.clear();
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!last_use_.empty(), "cannot shed: no resident objects");
    const ObjectId victim = last_use_.top().key;
    used -= store_->bytes_of(victim);
    last_use_.pop();
    shed_victims_.push_back(victim);
  }
  return shed_victims_;
}

void LruPolicy::forget(ObjectId id) { last_use_.erase(id); }

}  // namespace delta::cache
