#include "cache/lru.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

LruPolicy::LruPolicy(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void LruPolicy::on_access(ObjectId id) {
  std::int64_t* stamp = last_use_.find(id);
  DELTA_CHECK_MSG(stamp != nullptr,
                  "LRU access to untracked object " << id.value());
  *stamp = ++clock_;
}

ObjectId LruPolicy::oldest() const {
  DELTA_CHECK(!last_use_.empty());
  // Deterministic arg-min (tie-broken by id), so the victim choice is
  // independent of the map's visit order.
  ObjectId victim = ObjectId::invalid();
  std::int64_t victim_stamp = 0;
  last_use_.for_each([&](ObjectId id, std::int64_t stamp) {
    if (!victim.valid() || stamp < victim_stamp ||
        (stamp == victim_stamp && id < victim)) {
      victim = id;
      victim_stamp = stamp;
    }
  });
  return victim;
}

const BatchDecision& LruPolicy::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  decision_.load.clear();
  decision_.evict.clear();
  admitted_.clear();
  Bytes total = store_->used();
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK(!store_->contains(c.id));
    if (c.size > store_->capacity()) continue;
    admitted_.push_back(c);
    total += c.size;
  }
  // Evict stale residents oldest-first until the batch fits; if the batch
  // alone exceeds capacity, drop trailing candidates.
  while (total > store_->capacity() && !last_use_.empty()) {
    const ObjectId victim = oldest();
    total -= store_->bytes_of(victim);
    last_use_.erase(victim);
    decision_.evict.push_back(victim);
  }
  while (total > store_->capacity() && !admitted_.empty()) {
    total -= admitted_.back().size;
    admitted_.pop_back();
  }
  DELTA_CHECK(total <= store_->capacity());
  for (const LoadCandidate& c : admitted_) {
    decision_.load.push_back(c.id);
    last_use_[c.id] = ++clock_;
  }
  return decision_;
}

const std::vector<ObjectId>& LruPolicy::shed_overflow() {
  shed_victims_.clear();
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!last_use_.empty(), "cannot shed: no resident objects");
    const ObjectId victim = oldest();
    used -= store_->bytes_of(victim);
    last_use_.erase(victim);
    shed_victims_.push_back(victim);
  }
  return shed_victims_;
}

void LruPolicy::forget(ObjectId id) { last_use_.erase(id); }

}  // namespace delta::cache
