#include "cache/gds.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

namespace {

double ratio(Bytes cost, Bytes size) {
  if (size.count() <= 0) return 1.0;
  return cost.as_double() / size.as_double();
}

}  // namespace

GreedyDualSize::GreedyDualSize(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void GreedyDualSize::on_access(ObjectId id) {
  const Priority* p = residents_.find(id);
  DELTA_CHECK_MSG(p != nullptr,
                  "GDS access to untracked object " << id.value());
  residents_.update(id, Priority{inflation_ + p->cost_ratio, p->cost_ratio});
}

double GreedyDualSize::credit_of(ObjectId id) const {
  const Priority* p = residents_.find(id);
  DELTA_CHECK(p != nullptr);
  return p->credit;
}

void GreedyDualSize::reserve(std::size_t n) { residents_.reserve(n); }

const BatchDecision& GreedyDualSize::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  decision_.load.clear();
  decision_.evict.clear();
  batch_.clear();
  batch_.reserve(candidates.size());

  Bytes total = store_->used();
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK_MSG(!store_->contains(c.id),
                    "load candidate " << c.id.value() << " already resident");
    if (c.size > store_->capacity()) continue;  // can never fit
    const double r = ratio(c.load_cost, c.size);
    batch_.push_back({c.id, c.size, inflation_ + r, r});
    total += c.size;
  }
  std::sort(batch_.begin(), batch_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.credit != b.credit) return a.credit < b.credit;
              return a.id < b.id;  // deterministic tie-break
            });

  // Lazy GDS: decide the whole batch at once by evicting in increasing
  // (credit, id) order over residents ∪ candidates until the tentative set
  // fits. A candidate "evicted" here is simply never loaded — exactly the
  // inefficiency the lazy variant removes. The residents side of that order
  // comes from the heap top, so the merge walks the same global order the
  // old full sort produced without ever touching untouched residents.
  std::size_t cursor = 0;
  dropped_.assign(batch_.size(), false);
  while (total > store_->capacity()) {
    const bool have_candidate = cursor < batch_.size();
    const bool have_resident = !residents_.empty();
    if (!have_candidate && !have_resident) break;
    bool pick_candidate = have_candidate;
    if (have_candidate && have_resident) {
      const Candidate& c = batch_[cursor];
      const auto& top = residents_.top();
      pick_candidate = c.credit < top.priority.credit ||
                       (c.credit == top.priority.credit && c.id < top.key);
    }
    if (pick_candidate) {
      const Candidate& victim = batch_[cursor];
      dropped_[cursor] = true;
      total -= victim.size;
      inflation_ = std::max(inflation_, victim.credit);
      ++cursor;
    } else {
      const auto& victim = residents_.top();
      total -= store_->bytes_of(victim.key);
      inflation_ = std::max(inflation_, victim.priority.credit);
      decision_.evict.push_back(victim.key);
      residents_.pop();
    }
  }
  DELTA_CHECK(total <= store_->capacity());

  for (std::size_t i = 0; i < batch_.size(); ++i) {
    if (dropped_[i]) continue;
    decision_.load.push_back(batch_[i].id);
    residents_.push(batch_[i].id,
                    Priority{batch_[i].credit, batch_[i].cost_ratio});
  }
  return decision_;
}

const std::vector<ObjectId>& GreedyDualSize::shed_overflow() {
  shed_victims_.clear();
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!residents_.empty(), "cannot shed: no resident objects");
    // The heap top IS the deterministic (credit, id) arg-min.
    const auto& victim = residents_.top();
    used -= store_->bytes_of(victim.key);
    inflation_ = std::max(inflation_, victim.priority.credit);
    shed_victims_.push_back(victim.key);
    residents_.pop();
  }
  return shed_victims_;
}

void GreedyDualSize::forget(ObjectId id) { residents_.erase(id); }

}  // namespace delta::cache
