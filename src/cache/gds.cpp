#include "cache/gds.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

namespace {

double ratio(Bytes cost, Bytes size) {
  if (size.count() <= 0) return 1.0;
  return cost.as_double() / size.as_double();
}

}  // namespace

GreedyDualSize::GreedyDualSize(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void GreedyDualSize::on_access(ObjectId id) {
  const auto it = states_.find(id);
  DELTA_CHECK_MSG(it != states_.end(),
                  "GDS access to untracked object " << id.value());
  it->second.credit = inflation_ + it->second.cost_ratio;
}

double GreedyDualSize::credit_of(ObjectId id) const {
  const auto it = states_.find(id);
  DELTA_CHECK(it != states_.end());
  return it->second.credit;
}

BatchDecision GreedyDualSize::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  struct Item {
    ObjectId id;
    Bytes size;
    double credit;
    double cost_ratio;
    bool is_candidate;
  };
  std::vector<Item> items;
  items.reserve(states_.size() + candidates.size());

  Bytes total = store_->used();
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK_MSG(!store_->contains(c.id),
                    "load candidate " << c.id.value() << " already resident");
    if (c.size > store_->capacity()) continue;  // can never fit
    const double r = ratio(c.load_cost, c.size);
    items.push_back({c.id, c.size, inflation_ + r, r, true});
    total += c.size;
  }
  for (const auto& [id, state] : states_) {
    items.push_back(
        {id, store_->bytes_of(id), state.credit, state.cost_ratio, false});
  }

  // Lazy GDS: decide the whole batch at once by evicting in increasing
  // credit order until the tentative set fits. A candidate "evicted" here is
  // simply never loaded — exactly the inefficiency the lazy variant removes.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.credit != b.credit) return a.credit < b.credit;
    return a.id < b.id;  // deterministic tie-break
  });

  BatchDecision decision;
  std::size_t cursor = 0;
  std::vector<bool> dropped(items.size(), false);
  while (total > store_->capacity() && cursor < items.size()) {
    const Item& victim = items[cursor];
    dropped[cursor] = true;
    total -= victim.size;
    inflation_ = std::max(inflation_, victim.credit);
    if (!victim.is_candidate) {
      decision.evict.push_back(victim.id);
      states_.erase(victim.id);
    }
    ++cursor;
  }
  DELTA_CHECK(total <= store_->capacity());

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (dropped[i] || !items[i].is_candidate) continue;
    decision.load.push_back(items[i].id);
    states_[items[i].id] = State{items[i].credit, items[i].cost_ratio};
  }
  return decision;
}

std::vector<ObjectId> GreedyDualSize::shed_overflow() {
  std::vector<ObjectId> victims;
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!states_.empty(), "cannot shed: no resident objects");
    auto victim = states_.begin();
    for (auto it = states_.begin(); it != states_.end(); ++it) {
      if (it->second.credit < victim->second.credit ||
          (it->second.credit == victim->second.credit &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    used -= store_->bytes_of(victim->first);
    inflation_ = std::max(inflation_, victim->second.credit);
    victims.push_back(victim->first);
    states_.erase(victim);
  }
  return victims;
}

void GreedyDualSize::forget(ObjectId id) { states_.erase(id); }

}  // namespace delta::cache
