#include "cache/gds.h"

#include <algorithm>

#include "util/check.h"

namespace delta::cache {

namespace {

double ratio(Bytes cost, Bytes size) {
  if (size.count() <= 0) return 1.0;
  return cost.as_double() / size.as_double();
}

}  // namespace

GreedyDualSize::GreedyDualSize(const CacheStore* store) : store_(store) {
  DELTA_CHECK(store != nullptr);
}

void GreedyDualSize::on_access(ObjectId id) {
  State* state = states_.find(id);
  DELTA_CHECK_MSG(state != nullptr,
                  "GDS access to untracked object " << id.value());
  state->credit = inflation_ + state->cost_ratio;
}

double GreedyDualSize::credit_of(ObjectId id) const {
  const State* state = states_.find(id);
  DELTA_CHECK(state != nullptr);
  return state->credit;
}

const BatchDecision& GreedyDualSize::decide_batch(
    const std::vector<LoadCandidate>& candidates) {
  decision_.load.clear();
  decision_.evict.clear();
  items_.clear();
  items_.reserve(states_.size() + candidates.size());

  Bytes total = store_->used();
  for (const LoadCandidate& c : candidates) {
    DELTA_CHECK_MSG(!store_->contains(c.id),
                    "load candidate " << c.id.value() << " already resident");
    if (c.size > store_->capacity()) continue;  // can never fit
    const double r = ratio(c.load_cost, c.size);
    items_.push_back({c.id, c.size, inflation_ + r, r, true});
    total += c.size;
  }
  states_.for_each([this](ObjectId id, const State& state) {
    items_.push_back(
        {id, store_->bytes_of(id), state.credit, state.cost_ratio, false});
  });

  // Lazy GDS: decide the whole batch at once by evicting in increasing
  // credit order until the tentative set fits. A candidate "evicted" here is
  // simply never loaded — exactly the inefficiency the lazy variant removes.
  // The (credit, id) sort is a total order, so the outcome is independent of
  // the map's visit order above.
  std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
    if (a.credit != b.credit) return a.credit < b.credit;
    return a.id < b.id;  // deterministic tie-break
  });

  std::size_t cursor = 0;
  dropped_.assign(items_.size(), false);
  while (total > store_->capacity() && cursor < items_.size()) {
    const Item& victim = items_[cursor];
    dropped_[cursor] = true;
    total -= victim.size;
    inflation_ = std::max(inflation_, victim.credit);
    if (!victim.is_candidate) {
      decision_.evict.push_back(victim.id);
      states_.erase(victim.id);
    }
    ++cursor;
  }
  DELTA_CHECK(total <= store_->capacity());

  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (dropped_[i] || !items_[i].is_candidate) continue;
    decision_.load.push_back(items_[i].id);
    states_[items_[i].id] = State{items_[i].credit, items_[i].cost_ratio};
  }
  return decision_;
}

const std::vector<ObjectId>& GreedyDualSize::shed_overflow() {
  shed_victims_.clear();
  Bytes used = store_->used();
  while (used > store_->capacity()) {
    DELTA_CHECK_MSG(!states_.empty(), "cannot shed: no resident objects");
    // Deterministic arg-min over (credit, id): victim choice is independent
    // of the map's visit order.
    ObjectId victim = ObjectId::invalid();
    double victim_credit = 0.0;
    states_.for_each([&](ObjectId id, const State& state) {
      if (!victim.valid() || state.credit < victim_credit ||
          (state.credit == victim_credit && id < victim)) {
        victim = id;
        victim_credit = state.credit;
      }
    });
    used -= store_->bytes_of(victim);
    inflation_ = std::max(inflation_, victim_credit);
    shed_victims_.push_back(victim);
    states_.erase(victim);
  }
  return shed_victims_;
}

void GreedyDualSize::forget(ObjectId id) { states_.erase(id); }

}  // namespace delta::cache
