// LRU object caching: the cost-oblivious baseline for the loading ablation
// (A3). Same batch interface as Greedy-Dual-Size so the LoadManager can be
// instantiated with either.
//
// Residents live in a HeapMap ordered by (last-use stamp, id): the heap top
// is the deterministic arg-min the old full scan computed, so victim
// selection is O(log n_resident) with byte-identical decisions.
#pragma once

#include <cstdint>

#include "cache/eviction_policy.h"
#include "util/heap_map.h"

namespace delta::cache {

class LruPolicy final : public EvictionPolicy {
 public:
  explicit LruPolicy(const CacheStore* store);

  void on_access(ObjectId id) override;
  const BatchDecision& decide_batch(
      const std::vector<LoadCandidate>& candidates) override;
  const std::vector<ObjectId>& shed_overflow() override;
  void forget(ObjectId id) override;
  void reserve(std::size_t n) override;
  [[nodiscard]] const char* name() const override { return "lru"; }

 private:
  const CacheStore* store_;
  std::int64_t clock_ = 0;
  util::HeapMap<ObjectId, std::int64_t> last_use_;

  // Reused scratch for the batch interface (see EvictionPolicy contract).
  BatchDecision decision_;
  std::vector<ObjectId> shed_victims_;
  std::vector<LoadCandidate> admitted_;
};

}  // namespace delta::cache
