// Greedy-Dual-Size (Cao & Irani 1997), the paper's object caching algorithm,
// in the lazy batch form the LoadManager requires (§4, "Managing Loads").
//
// Each resident object carries a retention credit H = L + cost/size, where L
// is the global inflation value. Hits refresh H; evictions set L to the
// victim's H, aging everything else relatively. Because cost here is the
// object's load cost (≈ its size), the cost/size ratio is near 1 and GDS
// degrades gracefully toward recency-based aging for equal-sized objects
// while still favoring objects that are expensive to re-load per byte.
//
// Residents live in a HeapMap ordered by (credit, id) — the same tie-broken
// total order the batch sort and shed arg-min used to compute by scanning —
// so every victim selection is O(log n_resident) instead of O(n_resident),
// and decisions are byte-identical to the scan implementation.
#pragma once

#include "cache/eviction_policy.h"
#include "util/heap_map.h"

namespace delta::cache {

class GreedyDualSize final : public EvictionPolicy {
 public:
  /// The policy observes (and stays consistent with) `store`, but never
  /// mutates it: callers apply returned decisions and keep both in sync.
  explicit GreedyDualSize(const CacheStore* store);

  void on_access(ObjectId id) override;
  const BatchDecision& decide_batch(
      const std::vector<LoadCandidate>& candidates) override;
  const std::vector<ObjectId>& shed_overflow() override;
  void forget(ObjectId id) override;
  void reserve(std::size_t n) override;
  [[nodiscard]] const char* name() const override { return "gds-lazy"; }

  [[nodiscard]] double inflation() const { return inflation_; }
  [[nodiscard]] double credit_of(ObjectId id) const;

 private:
  /// Heap priority: ordered by credit alone (the heap adds the id
  /// tie-break); carries the cached cost/size ratio along so refreshes
  /// need no second lookup.
  struct Priority {
    double credit = 0.0;
    double cost_ratio = 1.0;  // load cost / size, cached for refreshes
    friend bool operator<(const Priority& a, const Priority& b) {
      return a.credit < b.credit;
    }
  };
  struct Candidate {
    ObjectId id;
    Bytes size;
    double credit;
    double cost_ratio;
  };

  const CacheStore* store_;
  double inflation_ = 0.0;
  util::HeapMap<ObjectId, Priority> residents_;

  // Reused scratch for the batch interface (see EvictionPolicy contract).
  BatchDecision decision_;
  std::vector<ObjectId> shed_victims_;
  std::vector<Candidate> batch_;
  std::vector<bool> dropped_;
};

}  // namespace delta::cache
