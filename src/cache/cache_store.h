// The middleware cache's object store: which data objects are resident,
// their current sizes, staleness flags, and strict capacity accounting
// (invariant 2 of DESIGN.md §7: cached bytes never exceed capacity, except
// transiently through grow(), which the owning policy must rebalance).
#pragma once

#include <vector>

#include "util/flat_map.h"
#include "util/types.h"

namespace delta::cache {

class CacheStore {
 public:
  explicit CacheStore(Bytes capacity);

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] std::size_t object_count() const { return entries_.size(); }

  [[nodiscard]] bool contains(ObjectId id) const;
  [[nodiscard]] Bytes bytes_of(ObjectId id) const;

  /// Pre-sizes the residency table for up to `n` objects so large runs
  /// never pay growth rehashes on the load path.
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Admits an object of the given size. The object must not be resident
  /// and must fit: used() + size <= capacity(). Objects enter fresh.
  void load(ObjectId id, Bytes size);

  /// Removes a resident object.
  void evict(ObjectId id);

  /// Grows a resident object (a shipped update was applied). May push
  /// used() past capacity(); the caller must evict until it fits again.
  void grow(ObjectId id, Bytes delta);

  [[nodiscard]] bool over_capacity() const { return used_ > capacity_; }

  /// Staleness flag: set when the server reports an update for a resident
  /// object, cleared when outstanding updates have been shipped/applied.
  [[nodiscard]] bool is_stale(ObjectId id) const;
  void mark_stale(ObjectId id);
  void mark_fresh(ObjectId id);

  /// Snapshot of resident object ids (unordered). Allocates; hot paths use
  /// for_each_resident instead.
  [[nodiscard]] std::vector<ObjectId> resident_objects() const;

  /// Visits every resident object as fn(ObjectId, Bytes size) without
  /// allocating. Visit order is the store's slot order (insertion-history
  /// dependent): callers must not let observable decisions depend on it —
  /// reduce with an order-independent fold or an explicit tie-broken
  /// arg-min (see the determinism audit in ISSUE 3, pinned by
  /// tests/iteration_order_test.cpp).
  template <typename Fn>
  void for_each_resident(Fn&& fn) const {
    entries_.for_each(
        [&fn](ObjectId id, const Entry& entry) { fn(id, entry.size); });
  }

  /// Drops everything (cache-node restart in failure tests).
  void clear();

 private:
  struct Entry {
    Bytes size;
    bool stale = false;
  };

  Bytes capacity_;
  Bytes used_;
  util::FlatMap<ObjectId, Entry> entries_;

  [[nodiscard]] const Entry& checked(ObjectId id) const;
};

}  // namespace delta::cache
