#include "cache/cache_store.h"

#include "util/check.h"

namespace delta::cache {

CacheStore::CacheStore(Bytes capacity) : capacity_(capacity) {
  DELTA_CHECK(capacity.count() >= 0);
}

bool CacheStore::contains(ObjectId id) const { return entries_.contains(id); }

const CacheStore::Entry& CacheStore::checked(ObjectId id) const {
  const Entry* entry = entries_.find(id);
  DELTA_CHECK_MSG(entry != nullptr,
                  "object " << id.value() << " not resident");
  return *entry;
}

Bytes CacheStore::bytes_of(ObjectId id) const { return checked(id).size; }

void CacheStore::load(ObjectId id, Bytes size) {
  DELTA_CHECK(id.valid());
  DELTA_CHECK(size.count() >= 0);
  DELTA_CHECK_MSG(!entries_.contains(id),
                  "object " << id.value() << " already cached");
  DELTA_CHECK_MSG(used_ + size <= capacity_,
                  "load would exceed cache capacity");
  entries_.try_emplace(id, size, false);
  used_ += size;
}

void CacheStore::evict(ObjectId id) {
  Entry* entry = entries_.find(id);
  DELTA_CHECK_MSG(entry != nullptr,
                  "evicting non-resident object " << id.value());
  used_ -= entry->size;
  entries_.erase(id);
  DELTA_CHECK(used_.count() >= 0);
}

void CacheStore::grow(ObjectId id, Bytes delta) {
  DELTA_CHECK(delta.count() >= 0);
  Entry* entry = entries_.find(id);
  DELTA_CHECK_MSG(entry != nullptr,
                  "growing non-resident object " << id.value());
  entry->size += delta;
  used_ += delta;
}

bool CacheStore::is_stale(ObjectId id) const { return checked(id).stale; }

void CacheStore::mark_stale(ObjectId id) {
  Entry* entry = entries_.find(id);
  DELTA_CHECK(entry != nullptr);
  entry->stale = true;
}

void CacheStore::mark_fresh(ObjectId id) {
  Entry* entry = entries_.find(id);
  DELTA_CHECK(entry != nullptr);
  entry->stale = false;
}

std::vector<ObjectId> CacheStore::resident_objects() const {
  std::vector<ObjectId> out;
  out.reserve(entries_.size());
  entries_.for_each(
      [&out](ObjectId id, const Entry&) { out.push_back(id); });
  return out;
}

void CacheStore::clear() {
  entries_.clear();
  used_ = Bytes{};
}

}  // namespace delta::cache
