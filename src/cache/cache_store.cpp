#include "cache/cache_store.h"

#include "util/check.h"

namespace delta::cache {

CacheStore::CacheStore(Bytes capacity) : capacity_(capacity) {
  DELTA_CHECK(capacity.count() >= 0);
}

bool CacheStore::contains(ObjectId id) const {
  return entries_.find(id) != entries_.end();
}

const CacheStore::Entry& CacheStore::checked(ObjectId id) const {
  const auto it = entries_.find(id);
  DELTA_CHECK_MSG(it != entries_.end(),
                  "object " << id.value() << " not resident");
  return it->second;
}

Bytes CacheStore::bytes_of(ObjectId id) const { return checked(id).size; }

void CacheStore::load(ObjectId id, Bytes size) {
  DELTA_CHECK(id.valid());
  DELTA_CHECK(size.count() >= 0);
  DELTA_CHECK_MSG(!contains(id), "object " << id.value() << " already cached");
  DELTA_CHECK_MSG(used_ + size <= capacity_,
                  "load would exceed cache capacity");
  entries_.emplace(id, Entry{size, false});
  used_ += size;
}

void CacheStore::evict(ObjectId id) {
  const auto it = entries_.find(id);
  DELTA_CHECK_MSG(it != entries_.end(),
                  "evicting non-resident object " << id.value());
  used_ -= it->second.size;
  entries_.erase(it);
  DELTA_CHECK(used_.count() >= 0);
}

void CacheStore::grow(ObjectId id, Bytes delta) {
  DELTA_CHECK(delta.count() >= 0);
  const auto it = entries_.find(id);
  DELTA_CHECK_MSG(it != entries_.end(),
                  "growing non-resident object " << id.value());
  it->second.size += delta;
  used_ += delta;
}

bool CacheStore::is_stale(ObjectId id) const { return checked(id).stale; }

void CacheStore::mark_stale(ObjectId id) {
  const auto it = entries_.find(id);
  DELTA_CHECK(it != entries_.end());
  it->second.stale = true;
}

void CacheStore::mark_fresh(ObjectId id) {
  const auto it = entries_.find(id);
  DELTA_CHECK(it != entries_.end());
  it->second.stale = false;
}

std::vector<ObjectId> CacheStore::resident_objects() const {
  std::vector<ObjectId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

void CacheStore::clear() {
  entries_.clear();
  used_ = Bytes{};
}

}  // namespace delta::cache
