// Deterministic discrete-event scheduling: a simulated clock plus an event
// queue with stable ordering.
//
// The event-driven simulation engine (sim/event_engine) and the latency-
// aware transport (net::DelayedTransport) share one queue: the transport
// schedules message deliveries at their computed arrival times, the engine
// advances the clock to trace arrivals and pumps deliveries in between.
// Determinism is structural, not incidental: events execute in strict
// (time, schedule-sequence) order, so two events scheduled for the same
// instant always run in the order they were scheduled, independent of
// scheduler internals, platform, or run count.
//
// The queue is built for the replay hot path:
//   * events are typed records — a function pointer, a context pointer and
//     a 64-bit argument — so scheduling and dispatch never allocate and
//     never indirect through std::function;
//   * the default scheduler is a calendar queue tuned for the
//     near-monotone insertion pattern of link serialization (amortized
//     O(1) schedule/pop); the binary heap of PR 4 is kept as a selectable
//     backend and serves as the differential oracle for the calendar's
//     (time, seq) order (tests/event_queue_differential_test.cpp);
//   * the hot primitives live in this header so the engines' inner loops
//     inline them, and pump_until takes its predicate as a template — the
//     sync façade's closed-loop wait constructs no std::function.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace delta::util {

/// Simulated time, in seconds since the start of the run.
using SimTime = double;

/// The simulation clock. Time only moves forward; the queue advances it to
/// each executed event's timestamp (or explicitly via advance_to).
class SimClock {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Moves the clock forward to `t` (checked failure on travel backwards).
  void advance_to(SimTime t) {
    DELTA_CHECK_MSG(t >= now_, "simulated time cannot move backwards ("
                                   << t << " < " << now_ << ")");
    now_ = t;
  }

 private:
  SimTime now_ = 0.0;
};

class EventQueue {
 public:
  /// A scheduled action: `fn(ctx, arg)`. Typed and trivially copyable so a
  /// pending event is a 40-byte POD record — no allocation, no type
  /// erasure. Callers with richer state park it behind `ctx` (see
  /// DelayedTransport's pooled in-flight records).
  using EventFn = void (*)(void* ctx, std::uint64_t arg);

  /// Scheduler backend. kCalendar is the default; kBinaryHeap is retained
  /// as the differential oracle for the (time, seq) execution order and as
  /// the baseline in bench/micro_event_queue.
  enum class Backend : std::uint8_t { kCalendar, kBinaryHeap };

  explicit EventQueue(Backend backend = Backend::kCalendar)
      : backend_(backend) {
    if (backend_ == Backend::kCalendar) {
      buckets_.resize(kMinBuckets);
      occupied_.assign(1, 0);
    }
  }

  [[nodiscard]] Backend backend() const { return backend_; }

  /// Schedules `fn(ctx, arg)` at simulated time `time` (>= now, checked).
  /// Events scheduled for the same instant run in schedule order.
  void schedule(SimTime time, EventFn fn, void* ctx, std::uint64_t arg = 0) {
    DELTA_DCHECK(fn != nullptr);
    DELTA_CHECK_MSG(time >= clock_.now(),
                    "cannot schedule into the past (" << time << " < "
                                                      << clock_.now() << ")");
    const Event event{time, next_seq_++, fn, ctx, arg};
    if (backend_ == Backend::kCalendar) {
      calendar_push(event);
    } else {
      heap_.push_back(event);
      heap_sift_up(heap_.size() - 1);
    }
    ++size_;
  }

  [[nodiscard]] SimTime now() const { return clock_.now(); }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const { return size_; }
  [[nodiscard]] std::int64_t executed() const { return executed_; }

  /// Timestamp of the earliest pending event (+inf when empty). Locating
  /// the earliest event may advance the calendar's scan cursor, so this is
  /// non-const; it never executes anything.
  [[nodiscard]] SimTime next_time() {
    if (size_ == 0) return std::numeric_limits<SimTime>::infinity();
    return backend_ == Backend::kCalendar ? calendar_peek().time
                                          : heap_.front().time;
  }

  /// Pops and runs the earliest event, advancing the clock to its time.
  /// Returns false (and leaves the clock alone) when the queue is empty.
  bool run_one() {
    if (size_ == 0) return false;
    // Pop before executing: the action may schedule further events.
    const Event event = backend_ == Backend::kCalendar ? calendar_pop()
                                                       : heap_pop();
    --size_;
    clock_.advance_to(event.time);
    ++executed_;
    event.fn(event.ctx, event.arg);
    return true;
  }

  /// Runs every event due at or before the current clock time.
  void run_ready() {
    while (size_ != 0 && next_time() <= clock_.now()) run_one();
  }

  /// Runs every event due at or before `t`, then leaves the clock at
  /// max(now, t) — the "advance to the next trace arrival" primitive.
  void advance_until(SimTime t) {
    while (size_ != 0 && next_time() <= t) run_one();
    if (t > clock_.now()) clock_.advance_to(t);
  }

  /// Moves the clock to `t` WITHOUT executing anything. Only callers that
  /// have just established `next_time() > t` may use this (the transport's
  /// inline fast path); skipping an event that was due is a contract
  /// violation, checked in debug builds.
  void fast_forward(SimTime t) {
    DELTA_DCHECK(next_time() > t);
    clock_.advance_to(t);
  }

  /// Drains the queue completely (e.g. in-flight deliveries at end of run).
  void run_until_idle() {
    while (run_one()) {
    }
  }

  /// Runs events until `done()` holds — how a synchronous façade awaits its
  /// reply. The predicate is a template parameter (callable or function
  /// pointer), so the per-call wait constructs no std::function. Checked
  /// failure if the queue drains first: the reply the caller is waiting
  /// for can no longer arrive.
  template <typename Done>
  void pump_until(Done&& done) {
    while (!done()) {
      DELTA_CHECK_MSG(run_one(),
                      "event queue drained while awaiting a completion — "
                      "the awaited reply can no longer arrive");
    }
  }

 private:
  struct Event {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // tie-break: schedule order
    EventFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
  };

  /// The (time, seq) total order both backends execute in.
  [[nodiscard]] static bool later(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  // ---- calendar backend ----
  //
  // Classic adaptive calendar queue: `buckets_` is a circular array of
  // "days", each `width_` seconds wide; an event at time t lives in virtual
  // bucket vb(t) = floor(t / width_), physical bucket vb & mask. Buckets
  // keep their events sorted ascending by (time, seq) with a consumed-
  // prefix cursor, so the near-monotone inserts of link serialization are
  // an O(1) append and pops are cursor bumps. The scan cursor `scan_vb_`
  // only moves forward; the structural invariant (every pending event has
  // vb >= scan_vb_) holds because schedule() rejects times before the
  // clock and the clock trails the last pop. When a whole "year" of
  // buckets is empty the peek falls back to a direct min search (cold, in
  // event_queue.cpp), and resizes re-tune width_ to the live event spread.

  struct Bucket {
    std::vector<Event> events;  // sorted ascending by (time, seq)
    std::size_t head = 0;       // consumed prefix
  };

  static constexpr std::size_t kMinBuckets = 8;

  [[nodiscard]] std::int64_t virtual_bucket(SimTime t) const {
    return static_cast<std::int64_t>(t * inv_width_);
  }

  void calendar_push(const Event& event) {
    const std::int64_t vb = virtual_bucket(event.time);
    // A peek may have parked the scan cursor at the (previously) earliest
    // pending day; an event scheduled for an earlier day must pull the
    // cursor back so the forward scan cannot step over it.
    if (vb < scan_vb_) scan_vb_ = vb;
    const std::size_t slot = static_cast<std::size_t>(vb) & bucket_mask();
    Bucket& bucket = buckets_[slot];
    occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++schedules_since_retune_;
    if (bucket.events.empty() || !later(bucket.events.back(), event)) {
      bucket.events.push_back(event);  // monotone fast path
    } else {
      // May retune the day width when this bucket has degenerated (the
      // pending window drifted much narrower than the width suggests).
      calendar_insert_sorted(bucket, event);
    }
    if (size_ + 1 > buckets_.size() * 2) calendar_resize(buckets_.size() * 2);
  }

  /// Locates the earliest pending event, advancing scan_vb_ to its virtual
  /// bucket. The occupancy bitmap jumps the scan straight across empty
  /// days (one cache line covers 64 of them), so only days that actually
  /// hold events are touched. Pre: size_ > 0.
  [[nodiscard]] const Event& calendar_peek() {
    for (std::size_t scanned = 0; scanned < buckets_.size();) {
      const std::size_t gap = occupied_gap_from(
          static_cast<std::size_t>(scan_vb_) & bucket_mask());
      if (gap >= buckets_.size() - scanned) break;  // rest of the year empty
      scan_vb_ += static_cast<std::int64_t>(gap);
      scanned += gap;
      const Bucket& bucket =
          buckets_[static_cast<std::size_t>(scan_vb_) & bucket_mask()];
      // Sorted bucket: the head is its earliest pending event, and a head
      // from a later year means the whole tail is later too.
      const Event& head = bucket.events[bucket.head];
      if (virtual_bucket(head.time) == scan_vb_) return head;
      ++scan_vb_;
      ++scanned;
    }
    return calendar_direct_search();  // a whole year held nothing current
  }

  [[nodiscard]] Event calendar_pop() {
    const Event event = calendar_peek();  // positions scan_vb_ at its bucket
    const std::size_t slot = static_cast<std::size_t>(scan_vb_) & bucket_mask();
    Bucket& bucket = buckets_[slot];
    ++bucket.head;
    if (bucket.head == bucket.events.size()) {
      bucket.events.clear();
      bucket.head = 0;
      occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }
    if (size_ - 1 < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
      calendar_resize(buckets_.size() / 2);
    }
    return event;
  }

  [[nodiscard]] std::size_t bucket_mask() const { return buckets_.size() - 1; }

  /// Distance (in days) from physical slot `from` to the next occupied
  /// slot, wrapping circularly. May overestimate a wrapped distance (the
  /// caller then falls back to the always-correct direct search); never
  /// underestimates, and is exact whenever the answer lies within the
  /// current year.
  [[nodiscard]] std::size_t occupied_gap_from(std::size_t from) const {
    const std::size_t words = occupied_.size();
    if (words == 1) {  // bucket count <= 64: one-word circular scan
      const std::uint64_t bits = occupied_[0];
      std::uint64_t combined = bits >> from;
      if (from != 0) combined |= bits << (buckets_.size() - from);
      if (combined == 0) return buckets_.size();
      return static_cast<std::size_t>(std::countr_zero(combined));
    }
    const std::size_t word = from >> 6;
    const std::uint64_t first = occupied_[word] >> (from & 63);
    if (first != 0) {
      return static_cast<std::size_t>(std::countr_zero(first));
    }
    std::size_t distance = 64 - (from & 63);
    for (std::size_t w = 1; w <= words; ++w) {
      const std::uint64_t bits = occupied_[(word + w) % words];
      if (bits != 0) {
        return distance + static_cast<std::size_t>(std::countr_zero(bits));
      }
      distance += 64;
    }
    return buckets_.size();  // empty bitmap
  }

  // Cold paths (event_queue.cpp).
  void calendar_insert_sorted(Bucket& bucket, const Event& event);
  const Event& calendar_direct_search();
  void calendar_resize(std::size_t bucket_count);

  // ---- binary-heap backend (differential oracle) ----

  void heap_sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!later(heap_[parent], heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  [[nodiscard]] Event heap_pop();

  Backend backend_;
  std::vector<Bucket> buckets_;       // calendar: power-of-two day array
  /// One bit per physical day (1 = bucket holds pending events): the scan
  /// skips runs of empty days without touching their bucket storage.
  std::vector<std::uint64_t> occupied_;
  SimTime width_ = 1.0;               // calendar: seconds per day
  /// Cooldown for density-triggered width retunes (see
  /// calendar_insert_sorted): at most one retune per `size_` schedules, so
  /// genuinely degenerate schedules (everything at one instant) pay an
  /// amortized O(log n), not O(n), per operation.
  std::uint64_t schedules_since_retune_ = 0;
  SimTime inv_width_ = 1.0;           // 1/width_, the hot-path factor
  std::int64_t scan_vb_ = 0;          // calendar: forward-only scan cursor
  std::vector<Event> heap_;           // heap backend storage
  std::size_t size_ = 0;
  SimClock clock_;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace delta::util
