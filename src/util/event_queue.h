// Deterministic discrete-event scheduling: a simulated clock plus an event
// queue with stable ordering.
//
// The event-driven simulation engine (sim/event_engine) and the latency-
// aware transport (net::DelayedTransport) share one queue: the transport
// schedules message deliveries at their computed arrival times, the engine
// advances the clock to trace arrivals and pumps deliveries in between.
// Determinism is structural, not incidental: events execute in strict
// (time, schedule-sequence) order, so two events scheduled for the same
// instant always run in the order they were scheduled, independent of
// scheduler internals, platform, or run count.
//
// The queue is built for the replay hot path:
//   * events are typed records — a function pointer, a context pointer and
//     a 64-bit argument — so scheduling and dispatch never allocate and
//     never indirect through std::function;
//   * the default scheduler is a calendar queue tuned for the
//     near-monotone insertion pattern of link serialization (amortized
//     O(1) schedule/pop); buckets that degenerate under a deep steady
//     hold are split ladder-queue style into sorted sub-rungs (see the
//     Rung note below), so throughput holds at >= 4k pending; the binary
//     heap of PR 4 is kept as a selectable backend and serves as the
//     differential oracle for the calendar's (time, seq) order
//     (tests/event_queue_differential_test.cpp);
//   * the hot primitives live in this header so the engines' inner loops
//     inline them, and pump_until takes its predicate as a template — the
//     sync façade's closed-loop wait constructs no std::function.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "util/check.h"

namespace delta::util {

/// Simulated time, in seconds since the start of the run.
using SimTime = double;

/// The simulation clock. Time only moves forward; the queue advances it to
/// each executed event's timestamp (or explicitly via advance_to).
class SimClock {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Moves the clock forward to `t` (checked failure on travel backwards).
  void advance_to(SimTime t) {
    DELTA_CHECK_MSG(t >= now_, "simulated time cannot move backwards ("
                                   << t << " < " << now_ << ")");
    now_ = t;
  }

 private:
  SimTime now_ = 0.0;
};

class EventQueue {
 public:
  /// A scheduled action: `fn(ctx, arg)`. Typed and trivially copyable so a
  /// pending event is a 40-byte POD record — no allocation, no type
  /// erasure. Callers with richer state park it behind `ctx` (see
  /// DelayedTransport's pooled in-flight records).
  using EventFn = void (*)(void* ctx, std::uint64_t arg);

  /// Scheduler backend. kCalendar is the default; kBinaryHeap is retained
  /// as the differential oracle for the (time, seq) execution order and as
  /// the baseline in bench/micro_event_queue.
  enum class Backend : std::uint8_t { kCalendar, kBinaryHeap };

  explicit EventQueue(Backend backend = Backend::kCalendar)
      : backend_(backend) {
    if (backend_ == Backend::kCalendar) {
      buckets_.resize(kMinBuckets);
      occupied_.assign(1, 0);
    }
  }

  [[nodiscard]] Backend backend() const { return backend_; }

  /// Handle of a cancellable timer (schedule_cancellable). A TimerId stays
  /// valid-to-cancel until the timer fires or is cancelled; afterwards the
  /// slot's generation has moved on and cancel() is a harmless no-op that
  /// returns false. Default-constructed ids are inert.
  struct TimerId {
    std::uint32_t slot = kNoTimerSlot;
    std::uint32_t generation = 0;
    [[nodiscard]] bool armed() const { return slot != kNoTimerSlot; }
  };

  /// Schedules `fn(ctx, arg)` at simulated time `time` (>= now, checked).
  /// Events scheduled for the same instant run in schedule order.
  void schedule(SimTime time, EventFn fn, void* ctx, std::uint64_t arg = 0) {
    DELTA_DCHECK(fn != nullptr);
    DELTA_CHECK_MSG(time >= clock_.now(),
                    "cannot schedule into the past (" << time << " < "
                                                      << clock_.now() << ")");
    const Event event{time, next_seq_++, fn, ctx, arg};
    if (backend_ == Backend::kCalendar) {
      calendar_push(event);
    } else {
      heap_.push_back(event);
      heap_sift_up(heap_.size() - 1);
    }
    ++size_;
  }

  /// Cancellable variant of schedule() for deadline/retry timers: O(1) to
  /// arm and O(1) to cancel. The queued record is a 40-byte trampoline
  /// carrying (slot, generation); cancel() bumps the slot's generation and
  /// releases it, turning the still-queued record into a tombstone that
  /// pops as a no-op when its time comes — nothing is removed from the
  /// scheduler's ordered storage, so cancellation never touches a bucket.
  /// Slots are recycled through a free list; a fired or cancelled timer's
  /// id can never alias a later timer (the generation check).
  TimerId schedule_cancellable(SimTime time, EventFn fn, void* ctx,
                               std::uint64_t arg = 0) {
    DELTA_DCHECK(fn != nullptr);
    std::uint32_t slot;
    if (timer_free_.empty()) {
      slot = static_cast<std::uint32_t>(timer_slots_.size());
      DELTA_CHECK_MSG(slot != kNoTimerSlot, "timer slot space exhausted");
      timer_slots_.push_back(TimerSlot{});
    } else {
      slot = timer_free_.back();
      timer_free_.pop_back();
    }
    TimerSlot& s = timer_slots_[slot];
    s.live = true;
    s.fn = fn;
    s.ctx = ctx;
    s.arg = arg;
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(slot) << 32) | s.generation;
    schedule(time, &EventQueue::run_timer, this, packed);
    return TimerId{slot, s.generation};
  }

  /// Cancels a timer armed by schedule_cancellable. Returns true when the
  /// timer was still pending (it will now never fire); false when it had
  /// already fired, been cancelled, or `id` is inert. O(1): the queued
  /// record becomes a generation-checked tombstone.
  bool cancel(TimerId id) {
    if (id.slot == kNoTimerSlot ||
        static_cast<std::size_t>(id.slot) >= timer_slots_.size()) {
      return false;
    }
    TimerSlot& s = timer_slots_[id.slot];
    if (!s.live || s.generation != id.generation) return false;
    s.live = false;
    ++s.generation;
    timer_free_.push_back(id.slot);
    ++cancelled_timers_;
    return true;
  }

  /// Timers cancelled whose tombstone records may still sit in the queue
  /// (pending() includes them; they pop as no-ops).
  [[nodiscard]] std::int64_t cancelled_timers() const {
    return cancelled_timers_;
  }

  [[nodiscard]] SimTime now() const { return clock_.now(); }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const { return size_; }
  [[nodiscard]] std::int64_t executed() const { return executed_; }

  /// Timestamp of the earliest pending event (+inf when empty). Locating
  /// the earliest event may advance the calendar's scan cursor, so this is
  /// non-const; it never executes anything.
  [[nodiscard]] SimTime next_time() {
    if (size_ == 0) return std::numeric_limits<SimTime>::infinity();
    return backend_ == Backend::kCalendar ? calendar_peek().time
                                          : heap_.front().time;
  }

  /// Pops and runs the earliest event, advancing the clock to its time.
  /// Returns false (and leaves the clock alone) when the queue is empty.
  bool run_one() {
    return run_one_if_due(std::numeric_limits<SimTime>::infinity());
  }

  /// Pops and runs the earliest event if it is due at or before `limit`;
  /// returns false (and leaves the clock alone) when the queue is empty or
  /// the earliest event is later. One bucket scan per executed event: the
  /// peek that finds the event is the same scan the pop consumes from —
  /// the drain loops below never pay the peek-then-repeek of a separate
  /// next_time()/run_one() pair.
  bool run_one_if_due(SimTime limit) {
    if (size_ == 0) return false;
    Event event;
    if (backend_ == Backend::kCalendar) {
      const Event& head = calendar_peek();  // positions scan_vb_/rung cursor
      if (head.time > limit) return false;
      event = head;  // copy out before consume bookkeeping invalidates it
      calendar_consume();
    } else {
      if (heap_.front().time > limit) return false;
      event = heap_pop();
    }
    // Popped before executing: the action may schedule further events.
    --size_;
    clock_.advance_to(event.time);
    ++executed_;
    event.fn(event.ctx, event.arg);
    return true;
  }

  /// Runs every event due at or before the current clock time.
  void run_ready() {
    while (run_one_if_due(clock_.now())) {
    }
  }

  /// Runs every event due at or before `t`, then leaves the clock at
  /// max(now, t) — the "advance to the next trace arrival" primitive.
  void advance_until(SimTime t) {
    while (run_one_if_due(t)) {
    }
    if (t > clock_.now()) clock_.advance_to(t);
  }

  /// Moves the clock to `t` WITHOUT executing anything. Only callers that
  /// have just established `next_time() > t` may use this (the transport's
  /// inline fast path); skipping an event that was due is a contract
  /// violation, checked in debug builds.
  void fast_forward(SimTime t) {
    DELTA_DCHECK(next_time() > t);
    clock_.advance_to(t);
  }

  /// Drains the queue completely (e.g. in-flight deliveries at end of run).
  void run_until_idle() {
    while (run_one()) {
    }
  }

  /// Runs events until `done()` holds — how a synchronous façade awaits its
  /// reply. The predicate is a template parameter (callable or function
  /// pointer), so the per-call wait constructs no std::function. Checked
  /// failure if the queue drains first: the reply the caller is waiting
  /// for can no longer arrive.
  template <typename Done>
  void pump_until(Done&& done) {
    while (!done()) {
      DELTA_CHECK_MSG(run_one(),
                      "event queue drained while awaiting a completion — "
                      "the awaited reply can no longer arrive");
    }
  }

 private:
  static constexpr std::uint32_t kNoTimerSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Event {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // tie-break: schedule order
    EventFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
  };

  /// Backing state of one cancellable timer. The queued Event only carries
  /// (slot, generation); the callback lives here so cancel() can retire it
  /// without finding the record in the scheduler.
  struct TimerSlot {
    std::uint32_t generation = 0;
    bool live = false;
    EventFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
  };

  /// Trampoline for cancellable timers: validates (slot, generation)
  /// against the slot's current state — a mismatch is a tombstone from a
  /// cancelled (or already recycled) timer and pops as a no-op. The slot is
  /// released BEFORE the callback runs: the callback may arm new timers
  /// (growing timer_slots_), so everything it needs is copied out first.
  static void run_timer(void* self, std::uint64_t packed) {
    auto* queue = static_cast<EventQueue*>(self);
    const auto slot = static_cast<std::uint32_t>(packed >> 32);
    TimerSlot& s = queue->timer_slots_[slot];
    if (!s.live || s.generation != static_cast<std::uint32_t>(packed)) {
      return;  // cancelled: tombstone
    }
    const EventFn fn = s.fn;
    void* ctx = s.ctx;
    const std::uint64_t arg = s.arg;
    s.live = false;
    ++s.generation;
    queue->timer_free_.push_back(slot);
    fn(ctx, arg);
  }

  /// The (time, seq) total order both backends execute in.
  [[nodiscard]] static bool later(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  // ---- calendar backend ----
  //
  // Classic adaptive calendar queue: `buckets_` is a circular array of
  // "days", each `width_` seconds wide; an event at time t lives in virtual
  // bucket vb(t) = floor(t / width_), physical bucket vb & mask. Buckets
  // keep their events sorted ascending by (time, seq) with a consumed-
  // prefix cursor, so the near-monotone inserts of link serialization are
  // an O(1) append and pops are cursor bumps. The scan cursor `scan_vb_`
  // only moves forward; the structural invariant (every pending event has
  // vb >= scan_vb_) holds because schedule() rejects times before the
  // clock and the clock trails the last pop. When a whole "year" of
  // buckets is empty the peek falls back to a direct min search (cold, in
  // event_queue.cpp), and resizes re-tune width_ to the live event spread.
  //
  // Ladder rung split (the deep-steady-hold fix): a steady hold at large
  // depth drifts the live window far narrower than the tuned day width —
  // size-triggered resizes never fire at constant depth — so one bucket
  // accretes thousands of events and every off-path insert becomes a long
  // memmove. Re-tuning the whole calendar (the former density watchdog)
  // re-sorts all pending events and has to keep doing so as the window
  // keeps drifting. Instead, a bucket whose unconsumed tail degenerates is
  // split ladder-queue style: its pending events move into a Rung of
  // finer sub-buckets in one sort-free O(k) pass. Unlike the day buckets,
  // sub-buckets are UNSORTED bags: an insert is a plain append, and a pop
  // scans the (small, re-split-bounded) current sub for its minimum and
  // swap-removes it — a steady hold inserts just ahead of the consumption
  // point, so keeping the sub sorted would memmove most of its tail on
  // every insert (measured: that memmove dominated the whole drift cell).
  // While a rung exists the bucket's plain storage is empty and all
  // traffic for the bucket routes through the rung; when a sub-bucket
  // itself degenerates the rung re-splits at the current (narrower)
  // window, and when the rung drains it is freed. Order is untouched: the
  // sub index is a monotone function of time, ties share a sub, and the
  // pop scan minimizes by the same (time, seq) relation, so the rung
  // yields the exact execution order of a flat sorted bucket.

  struct SubRung {
    std::vector<Event> events;  // unsorted bag of pending events
  };

  struct Rung {
    std::vector<SubRung> subs;
    SimTime base = 0.0;          // time of the earliest event at build
    SimTime inv_sub_width = 0.0; // 1 / sub-bucket width (0 when all ties)
    /// Events at or beyond this time bypass the subs: into `overflow` on
    /// the bucket's root rung, or into the PARENT's sub on a child rung
    /// (see child below). The subs only ever cover the window seen at
    /// build time; a bucket keeps receiving later events as the
    /// simulation window slides into its day, and clamping those into the
    /// last sub is exactly the fat-bucket degeneracy the rung prevents.
    SimTime range_end = 0.0;
    /// Root rung only: an unsorted bag of events later than every sub
    /// event. When the subs drain it is redistributed into a fresh
    /// (narrower) set of subs in one O(k) pass (rung_descend). Child
    /// rungs never use it — their too-late events stay in the parent sub
    /// they would have landed in, consumed after the child drains.
    std::vector<Event> overflow;
    /// Ladder descent: when the cursor sub holds a crowd too dense for
    /// this rung's sub width (skew a single uniform level cannot spread),
    /// the crowd moves into a child rung over its own, much narrower span
    /// (rung_narrow). The child owns every event of subs[child_sub]
    /// earlier than child->range_end; later arrivals stay in the parent
    /// sub. Each event is redistributed at most once per level (~log
    /// levels), where re-spreading the remainder of a single flat rung on
    /// every degeneracy was quadratic in the crowd size.
    std::unique_ptr<Rung> child;
    std::size_t child_sub = SIZE_MAX;  // which sub the child covers
    std::size_t cursor = 0;      // first sub that may hold pending events
    /// Pending events in this rung's subtree (subs + overflow + child).
    std::size_t live = 0;
    /// Index (within the cursor sub) of the minimum the last peek found;
    /// consume swap-removes it without re-scanning.
    std::size_t hot = 0;
    /// Pop-scan work (summed cursor-sub scan lengths) since the last
    /// build or narrow attempt. A fat cursor sub only spawns a child
    /// after the accumulated scanning exceeds the crowd size, so the
    /// O(crowd) redistribution is amortized against work the scans
    /// already paid — and an all-ties crowd (which declines the spawn)
    /// re-attempts only after paying a fresh budget.
    std::uint64_t scan_work = 0;
  };

  struct Bucket {
    /// Pending events after the consumed prefix. Inserts are plain
    /// appends; an append that breaks the ascending (time, seq) order
    /// just marks the day dirty, and the day is sorted once, lazily, when
    /// the scan first peeks it (bucket_head). Under a steady hold almost
    /// every insert lands in a day the scan has not reached yet, so the
    /// insert path never pays a sorted-position memmove.
    std::vector<Event> events;
    std::size_t head = 0;  // consumed prefix
    bool dirty = false;    // tail [head, end) not yet sorted
    /// Non-null while the bucket is split; then `events` is empty and all
    /// pending storage lives in the rung.
    std::unique_ptr<Rung> rung;
  };

  /// A sub-bucket must stay smaller than this or the rung re-splits (the
  /// pop scan over the unsorted sub is linear in its size); the same
  /// bound on a plain bucket's unconsumed tail triggers the initial split.
  static constexpr std::size_t kSplitThreshold = 16;

  static constexpr std::size_t kMinBuckets = 8;

  [[nodiscard]] std::int64_t virtual_bucket(SimTime t) const {
    return static_cast<std::int64_t>(t * inv_width_);
  }

  void calendar_push(const Event& event) {
    const std::int64_t vb = virtual_bucket(event.time);
    // A peek may have parked the scan cursor at the (previously) earliest
    // pending day; an event scheduled for an earlier day must pull the
    // cursor back so the forward scan cannot step over it.
    if (vb < scan_vb_) scan_vb_ = vb;
    ++schedules_since_retune_;
    if (vb - scan_vb_ >= static_cast<std::int64_t>(buckets_.size())) {
      // Beyond the current year: park it in the far-future bag instead of
      // wrapping into an unrelated day (wrapped slots mix events years
      // apart and degrade every day they collide with). The bag is O(1)
      // to feed and is folded back in at the next retune; calendar_peek
      // guards against ever executing past its earliest entry.
      future_.push_back(event);
      if (event.time < future_min_) future_min_ = event.time;
    } else {
      const std::size_t slot = static_cast<std::size_t>(vb) & bucket_mask();
      Bucket& bucket = buckets_[slot];
      occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      if (bucket.rung != nullptr) {
        rung_insert(bucket, event);
      } else if (bucket.events.empty() ||
                 !later(bucket.events.back(), event)) {
        bucket.events.push_back(event);  // in-order append, the fast path
      } else if (!bucket.dirty && vb == scan_vb_ &&
                 bucket.events.size() - bucket.head <= kSplitThreshold) {
        // Out-of-order insert into the small day the scan is consuming:
        // keep it sorted in place. Marking it dirty instead would re-sort
        // the tail at the very next peek — once per pop under a steady
        // hold whose inserts land a few events ahead of the pop point.
        const auto first =
            bucket.events.begin() + static_cast<std::ptrdiff_t>(bucket.head);
        bucket.events.insert(
            std::upper_bound(first, bucket.events.end(), event,
                             [](const Event& a, const Event& b) {
                               return later(b, a);
                             }),
            event);
      } else {
        // Lazy day: appends ahead of the scan stay O(1); the day is sorted
        // (or, if its tail grew fat, rung-split) when the scan reaches it.
        bucket.dirty = true;
        bucket.events.push_back(event);
      }
    }
    if (size_ + 1 > buckets_.size() * 2) {
      calendar_resize(buckets_.size() * 2);
    } else if (retune_pending_ &&
               schedules_since_retune_ > size_ * retune_backoff_) {
      // Degeneracy-triggered width retune (see retune_pending_). Runs from
      // the push path only: peek/consume hold references into buckets_
      // while they work, a schedule is a safe point to rebuild the layout.
      calendar_resize(buckets_.size());
    }
  }

  /// Earliest pending event of a bucket. For a split bucket this advances
  /// the rung cursor over drained subs and min-scans the (small) current
  /// sub, remembering the minimum's position for calendar_consume. Pre:
  /// the bucket holds at least one pending event.
  [[nodiscard]] const Event& bucket_head(Bucket& bucket) {
    for (;;) {
      if (bucket.rung == nullptr) {
        if (bucket.dirty) {
          if (bucket.events.size() - bucket.head > kSplitThreshold) {
            // The scan reached a fat unsorted day (accreted while the day
            // sat ahead of the scan, or flung together by a retune's
            // redistribution): split it into a rung in one sort-free pass
            // instead of sorting — a dirty tail always spans two distinct
            // times (ties append in order), so the split cannot decline.
            calendar_maybe_split(bucket);
            if (bucket.rung != nullptr) continue;  // re-resolve via the rung
          }
          bucket_sort_tail(bucket);
        }
        return bucket.events[bucket.head];
      }
      Rung* rung = bucket.rung.get();
      // All in-range pending events live in subs >= cursor; inserts that
      // land earlier pull the cursor back (rung_insert), so the forward
      // skip is safe. A live child rung at the cursor sub holds strictly
      // earlier events than anything else from that sub onward: descend
      // into it. When every sub (and child) has drained, the root's
      // overflow bag is the (strictly later) remainder: rebuild from it
      // (which may revert the bucket to plain storage — the outer loop
      // re-resolves either way).
      for (;;) {
        bool descended = false;
        while (rung->cursor < rung->subs.size()) {
          if (rung->cursor == rung->child_sub && rung->child != nullptr) {
            if (rung->child->live > 0) {
              rung = rung->child.get();
              descended = true;
              break;
            }
            rung_recycle_child(*rung);  // drained: free before the sub scan
          }
          if (!rung->subs[rung->cursor].events.empty()) break;
          ++rung->cursor;
        }
        if (descended) continue;
        if (rung->cursor == rung->subs.size()) {
          // Only the root can exhaust its subs while still live (a child's
          // live count covers exactly its subs and descendants).
          DELTA_DCHECK(rung == bucket.rung.get());
          rung_descend(bucket);
          break;  // re-resolve from the bucket (rung rebuilt or reverted)
        }
        const std::vector<Event>& events = rung->subs[rung->cursor].events;
        // Ladder descent: a fat cursor sub means the local density outran
        // the sub width (skewed crowds a single uniform level cannot
        // spread). Spawn a child rung over just this crowd — amortized by
        // the scan work the fat scans already racked up — and re-resolve.
        if (events.size() > kSplitThreshold &&
            rung->scan_work > events.size() && rung->child == nullptr) {
          rung_narrow(*rung);
          continue;
        }
        rung->scan_work += events.size();
        std::size_t best = 0;
        for (std::size_t i = 1; i < events.size(); ++i) {
          if (later(events[best], events[i])) best = i;
        }
        rung->hot = best;
        return events[best];
      }
    }
  }

  /// Frees a drained child rung, stashing it (storage included) as the
  /// spare for the next split.
  void rung_recycle_child(Rung& parent) {
    DELTA_DCHECK(parent.child != nullptr && parent.child->live == 0);
    if (spare_rung_ == nullptr) {
      spare_rung_ = std::move(parent.child);
    }
    parent.child.reset();
    parent.child_sub = SIZE_MAX;
  }

  /// Routes an insert into a split bucket's rung chain: events past the
  /// root's covered range go to the overflow bag (strictly later than
  /// every sub event — the comparison is on raw time, so it cannot
  /// misorder a tie); in-range events append to their sub (monotone
  /// index: ties share a sub and earlier subs hold earlier events), or
  /// descend into the child rung when they fall inside the window it owns
  /// — unsorted bags, so no memmove anywhere. A sub that grows fat is
  /// harmless to insert into (plain append); the cost is the pop scan, so
  /// the degeneracy check lives on the peek path (bucket_head), which
  /// spawns a child when — and only when — the fat sub is being scanned.
  void rung_insert(Bucket& bucket, const Event& event) {
    Rung* rung = bucket.rung.get();
    for (;;) {
      ++rung->live;
      if (event.time >= rung->range_end) {
        rung->overflow.push_back(event);  // root only: see Rung::overflow
        return;
      }
      const double offset = (event.time - rung->base) * rung->inv_sub_width;
      std::size_t idx = offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
      if (idx >= rung->subs.size()) idx = rung->subs.size() - 1;
      if (idx < rung->cursor) rung->cursor = idx;
      if (idx == rung->child_sub && rung->child != nullptr &&
          rung->child->live > 0 && event.time < rung->child->range_end) {
        rung = rung->child.get();
        continue;
      }
      rung->subs[idx].events.push_back(event);
      return;
    }
  }

  /// Locates the earliest pending event, advancing scan_vb_ to its virtual
  /// bucket. Pre: size_ > 0. The far-future bag never holds the earliest
  /// event while this returns: a candidate at or past the bag's earliest
  /// entry forces an integrating retune first (`>=`, not `>`: a bagged
  /// event tying the candidate's timestamp may carry a smaller seq).
  [[nodiscard]] const Event& calendar_peek() {
    for (;;) {
      if (size_ > future_.size()) {
        const Event& head = calendar_scan();
        if (head.time < future_min_) return head;
      }
      calendar_resize(buckets_.size());  // fold the future bag back in
    }
  }

  /// The year scan behind calendar_peek: earliest event in the day
  /// buckets, ignoring the far-future bag. The occupancy bitmap jumps the
  /// scan straight across empty days (one cache line covers 64 of them),
  /// so only days that actually hold events are touched. Pre: at least
  /// one event lives in the buckets.
  [[nodiscard]] const Event& calendar_scan() {
    for (std::size_t scanned = 0; scanned < buckets_.size();) {
      const std::size_t gap = occupied_gap_from(
          static_cast<std::size_t>(scan_vb_) & bucket_mask());
      if (gap >= buckets_.size() - scanned) break;  // rest of the year empty
      scan_vb_ += static_cast<std::int64_t>(gap);
      scanned += gap;
      Bucket& bucket =
          buckets_[static_cast<std::size_t>(scan_vb_) & bucket_mask()];
      // Sorted bucket (or rung): the head is its earliest pending event,
      // and a head from a later year means the whole tail is later too.
      const Event& head = bucket_head(bucket);
      if (virtual_bucket(head.time) == scan_vb_) return head;
      ++scan_vb_;
      ++scanned;
    }
    return calendar_direct_search();  // a whole year held nothing current
  }

  /// Consumes the event the immediately preceding calendar_peek() returned
  /// — the pop bookkeeping, without re-scanning for the event. Only valid
  /// directly after a peek (scan_vb_ and the rung cursor still point at
  /// the event); size_ is decremented by the caller.
  void calendar_consume() {
    const std::size_t slot = static_cast<std::size_t>(scan_vb_) & bucket_mask();
    Bucket& bucket = buckets_[slot];
    if (bucket.rung != nullptr) {
      // Re-walk the descent the peek took (its stopping conditions are
      // unchanged since), decrementing each level's subtree count.
      Rung* rung = bucket.rung.get();
      --rung->live;
      while (rung->cursor == rung->child_sub && rung->child != nullptr &&
             rung->child->live > 0) {
        rung = rung->child.get();
        --rung->live;
      }
      std::vector<Event>& events = rung->subs[rung->cursor].events;
      // Swap-remove the minimum the peek located (subs are unsorted bags).
      DELTA_DCHECK(rung->hot < events.size());
      events[rung->hot] = events.back();
      events.pop_back();
      if (bucket.rung->live == 0) {
        // Rung drained; the bucket's plain storage is empty by invariant.
        // Stash the rung (sub storage included) for the next split — under
        // a sliding deep window a rung drains and another bucket splits
        // every few hundred events, so recycling beats re-allocating.
        spare_rung_ = std::move(bucket.rung);
        occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      }
    } else {
      ++bucket.head;
      if (bucket.head == bucket.events.size()) {
        bucket.events.clear();
        bucket.head = 0;
        bucket.dirty = false;
        occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      }
    }
    if (size_ - 1 < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
      calendar_resize(buckets_.size() / 2);
    }
  }

  [[nodiscard]] Event calendar_pop() {
    const Event event = calendar_peek();  // positions scan_vb_ at its bucket
    calendar_consume();
    return event;
  }

  [[nodiscard]] std::size_t bucket_mask() const { return buckets_.size() - 1; }

  /// Distance (in days) from physical slot `from` to the next occupied
  /// slot, wrapping circularly. May overestimate a wrapped distance (the
  /// caller then falls back to the always-correct direct search); never
  /// underestimates, and is exact whenever the answer lies within the
  /// current year.
  [[nodiscard]] std::size_t occupied_gap_from(std::size_t from) const {
    const std::size_t words = occupied_.size();
    if (words == 1) {  // bucket count <= 64: one-word circular scan
      const std::uint64_t bits = occupied_[0];
      std::uint64_t combined = bits >> from;
      if (from != 0) combined |= bits << (buckets_.size() - from);
      if (combined == 0) return buckets_.size();
      return static_cast<std::size_t>(std::countr_zero(combined));
    }
    const std::size_t word = from >> 6;
    const std::uint64_t first = occupied_[word] >> (from & 63);
    if (first != 0) {
      return static_cast<std::size_t>(std::countr_zero(first));
    }
    std::size_t distance = 64 - (from & 63);
    for (std::size_t w = 1; w <= words; ++w) {
      const std::uint64_t bits = occupied_[(word + w) % words];
      if (bits != 0) {
        return distance + static_cast<std::size_t>(std::countr_zero(bits));
      }
      distance += 64;
    }
    return buckets_.size();  // empty bitmap
  }

  // Cold paths (event_queue.cpp).
  void bucket_sort_tail(Bucket& bucket);
  void calendar_maybe_split(Bucket& bucket);
  void rung_build(Rung& rung);
  void rung_narrow(Rung& rung);
  void rung_descend(Bucket& bucket);
  const Event& calendar_direct_search();
  void calendar_resize(std::size_t bucket_count);

  // ---- binary-heap backend (differential oracle) ----

  void heap_sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!later(heap_[parent], heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  [[nodiscard]] Event heap_pop();

  Backend backend_;
  std::vector<Bucket> buckets_;       // calendar: power-of-two day array
  /// One bit per physical day (1 = bucket holds pending events): the scan
  /// skips runs of empty days without touching their bucket storage.
  std::vector<std::uint64_t> occupied_;
  SimTime width_ = 1.0;               // calendar: seconds per day
  SimTime inv_width_ = 1.0;           // 1/width_, the hot-path factor
  std::int64_t scan_vb_ = 0;          // calendar: forward-only scan cursor
  /// Most recently drained rung, recycled by the next split so steady
  /// deep-window churn (drain here, split there) does not allocate.
  std::unique_ptr<Rung> spare_rung_;
  /// Scratch for rung (re)splits and retunes: the pending sequence being
  /// redistributed. Member so repeated splits reuse its capacity.
  std::vector<Event> split_scratch_;
  /// Scratch timestamps for the retune's head-window density measure.
  std::vector<SimTime> retune_times_;
  /// Far-future bag: events scheduled beyond the current calendar year
  /// (bucketing them would wrap onto unrelated days). Fed in O(1), folded
  /// back into the calendar by the next resize/retune; calendar_peek
  /// refuses to return any event at or past future_min_, so the bag can
  /// never starve the execution order.
  std::vector<Event> future_;
  SimTime future_min_ = std::numeric_limits<SimTime>::infinity();
  /// Set by rung_build: rung activity is the signal that the live window
  /// has drifted away from the tuned day width (a size-triggered resize
  /// never fires at steady depth). The next schedule past the cooldown
  /// runs a same-size calendar_resize, which re-tunes the width and
  /// dissolves every rung — rungs absorb the degeneracy transient, the
  /// retune restores the plain O(1) append/pop steady state.
  bool retune_pending_ = false;
  /// Schedules since the last resize; the retune cooldown (a multiple of
  /// one live-set turnover) bounds retune work to O(1) amortized per op.
  std::uint64_t schedules_since_retune_ = 0;
  /// Cooldown multiplier with exponential backoff: a retune only pays off
  /// when the live window is stationary, so the re-tuned width sticks and
  /// the days go back to thin plain buckets (e.g. the post-fill
  /// contraction transient). When degeneracy recurs within one turnover
  /// of the previous retune the window is *drifting* — no width sticks —
  /// and retuning on every turnover would dominate the run; back off
  /// geometrically and let the rung ladder (whose cost tracks the drift,
  /// not the depth) absorb it. Any retune after a quiet spell resets the
  /// backoff.
  std::uint64_t retune_backoff_ = 1;
  /// schedules_since_retune_ at the moment degeneracy (re)appeared — how
  /// long the last retuned width survived before a day split again.
  std::uint64_t degenerate_at_ = 0;
  std::vector<Event> heap_;           // heap backend storage
  std::vector<TimerSlot> timer_slots_;     // cancellable-timer state
  std::vector<std::uint32_t> timer_free_;  // recycled timer slots
  std::int64_t cancelled_timers_ = 0;
  std::size_t size_ = 0;
  SimClock clock_;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace delta::util
