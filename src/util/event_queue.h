// Deterministic discrete-event scheduling: a simulated clock plus an event
// queue with stable ordering.
//
// The event-driven simulation engine (sim/event_engine) and the latency-
// aware transport (net::DelayedTransport) share one queue: the transport
// schedules message deliveries at their computed arrival times, the engine
// advances the clock to trace arrivals and pumps deliveries in between.
// Determinism is structural, not incidental: events execute in strict
// (time, schedule-sequence) order, so two events scheduled for the same
// instant always run in the order they were scheduled, independent of heap
// internals, platform, or run count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace delta::util {

/// Simulated time, in seconds since the start of the run.
using SimTime = double;

/// The simulation clock. Time only moves forward; the queue advances it to
/// each executed event's timestamp (or explicitly via advance_to).
class SimClock {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Moves the clock forward to `t` (checked failure on travel backwards).
  void advance_to(SimTime t);

 private:
  SimTime now_ = 0.0;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at simulated time `time` (>= now, checked).
  /// Actions scheduled for the same instant run in schedule order.
  void schedule(SimTime time, Action action);

  [[nodiscard]] SimTime now() const { return clock_.now(); }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::int64_t executed() const { return executed_; }

  /// Pops and runs the earliest event, advancing the clock to its time.
  /// Returns false (and leaves the clock alone) when the queue is empty.
  bool run_one();

  /// Runs every event due at or before the current clock time.
  void run_ready();

  /// Runs every event due at or before `t`, then leaves the clock at
  /// max(now, t) — the "advance to the next trace arrival" primitive.
  void advance_until(SimTime t);

  /// Drains the queue completely (e.g. in-flight deliveries at end of run).
  void run_until_idle();

  /// Runs events until `done()` holds — how a synchronous façade awaits its
  /// reply. Checked failure if the queue drains first: the reply the caller
  /// is waiting for can no longer arrive.
  void pump_until(const std::function<bool()>& done);

 private:
  struct Scheduled {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // tie-break: schedule order
    Action action;
  };

  /// Max-heap comparator that puts the *earliest* (time, seq) on top.
  [[nodiscard]] static bool later(const Scheduled& a, const Scheduled& b);

  [[nodiscard]] Scheduled pop_earliest();

  std::vector<Scheduled> heap_;
  SimClock clock_;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace delta::util
