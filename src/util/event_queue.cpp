// Cold paths of the calendar scheduler: sorted-bucket insertion off the
// monotone fast path, the ladder rung split and re-split, the direct min
// search that rescues a sparse queue after an empty "year", the
// width-retuning resize, and the heap oracle's pop. The hot primitives
// live in event_queue.h so the replay loops inline them.
#include "util/event_queue.h"

#include <algorithm>

namespace delta::util {

void EventQueue::bucket_sort_tail(Bucket& bucket) {
  // Lazy day sort: the scan reached a day whose appends broke the
  // ascending order. One sort covers every insert the day absorbed while
  // it sat ahead of the scan — the work a sorted-insert scheme would have
  // paid as a memmove per insert.
  std::sort(bucket.events.begin() + static_cast<std::ptrdiff_t>(bucket.head),
            bucket.events.end(),
            [](const Event& a, const Event& b) { return later(b, a); });
  bucket.dirty = false;
}

void EventQueue::calendar_maybe_split(Bucket& bucket) {
  // Ladder split: a steady hold pattern drifts the whole pending window
  // far narrower than the tuned day width (size-triggered resizes never
  // fire at constant depth), collapsing every event into a couple of
  // days. When one day holds a crowd that a narrower width could actually
  // spread (ties cannot be split — skip those), move its pending tail
  // into a rung of finer sub-buckets in one sort-free pass. Called from
  // the peek path when the scan reaches a dirty fat day; an all-ties
  // crowd that declines the split falls back to the lazy day sort.
  SimTime lo = bucket.events[bucket.head].time;
  SimTime hi = lo;
  for (std::size_t i = bucket.head + 1; i < bucket.events.size(); ++i) {
    const SimTime t = bucket.events[i].time;
    if (t < lo) lo = t;
    if (t > hi) hi = t;
  }
  if (!(hi > lo)) return;
  split_scratch_.assign(
      bucket.events.begin() + static_cast<std::ptrdiff_t>(bucket.head),
      bucket.events.end());
  bucket.events.clear();
  bucket.head = 0;
  bucket.dirty = false;
  bucket.rung = spare_rung_ != nullptr ? std::move(spare_rung_)
                                       : std::make_unique<Rung>();
  rung_build(*bucket.rung);
}

void EventQueue::rung_build(Rung& rung) {
  // `split_scratch_` holds the events to redistribute (any order).
  // Distribute them across ~8-event unsorted sub-buckets by time — no
  // sort at any point. Rung and sub storage is recycled (the spare slot,
  // cleared-not-freed sub vectors) so steady churn splits allocate only
  // on growth. An all-ties batch degenerates gracefully: zero
  // inv_sub_width lands everything in sub 0 and range_end at the tie
  // instant routes every later arrival around the rung (any such arrival
  // carries a larger seq, so consuming it after the batch is exact).
  const std::vector<Event>& pending = split_scratch_;
  DELTA_DCHECK(!pending.empty());
  DELTA_DCHECK(rung.overflow.empty());
  SimTime lo = pending.front().time;
  SimTime hi = lo;
  for (const Event& event : pending) {
    if (event.time < lo) lo = event.time;
    if (event.time > hi) hi = event.time;
  }
  const std::size_t sub_count = std::max<std::size_t>(pending.size() / 8, 2);
  rung.base = lo;
  rung.inv_sub_width =
      hi > lo ? static_cast<SimTime>(sub_count) / (hi - lo) : 0.0;
  rung.range_end = hi;
  if (rung.subs.size() > sub_count) rung.subs.resize(sub_count);
  for (SubRung& sub : rung.subs) {
    sub.events.clear();  // keeps capacity for the redistribution below
  }
  rung.subs.resize(sub_count);
  rung.child.reset();  // recycled rungs may carry a stale (drained) chain
  rung.child_sub = SIZE_MAX;
  rung.cursor = 0;
  rung.live = pending.size();
  rung.scan_work = 0;
  // Rung activity means the global day width no longer matches the live
  // window; ask for a (cooldown-gated) retune, which dissolves the rungs.
  if (!retune_pending_) {
    retune_pending_ = true;
    degenerate_at_ = schedules_since_retune_;
  }
  for (const Event& event : pending) {
    const double offset = (event.time - rung.base) * rung.inv_sub_width;
    std::size_t idx = offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
    if (idx >= sub_count) idx = sub_count - 1;
    rung.subs[idx].events.push_back(event);
  }
}

void EventQueue::rung_narrow(Rung& rung) {
  // The cursor sub holds a crowd too dense for this rung's sub width —
  // the skew one uniform level cannot spread (a few far events stretch
  // the span while the mass sits up front, so re-splitting the whole rung
  // would land the crowd right back in one sub). Descend a ladder level:
  // move the crowd — and only the crowd — into a child rung over its own,
  // much narrower span. Later subs stay exactly where they are, so an
  // event is redistributed at most once per ladder level. The caller's
  // scan-work cooldown amortizes the O(crowd) pass.
  DELTA_DCHECK(rung.child == nullptr);
  std::vector<Event>& crowd = rung.subs[rung.cursor].events;
  SimTime lo = crowd.front().time;
  SimTime hi = lo;
  for (const Event& event : crowd) {
    if (event.time < lo) lo = event.time;
    if (event.time > hi) hi = event.time;
  }
  if (!(hi > lo)) {
    // An all-ties crowd cannot be spread by any width. Restart the
    // cooldown so the pop scans pay for another full budget before the
    // next attempt (the scans themselves stay correct, just linear).
    rung.scan_work = 0;
    return;
  }
  split_scratch_.clear();
  split_scratch_.swap(crowd);
  rung.child = spare_rung_ != nullptr ? std::move(spare_rung_)
                                      : std::make_unique<Rung>();
  rung.child_sub = rung.cursor;
  rung_build(*rung.child);
  rung.scan_work = 0;
}

void EventQueue::rung_descend(Bucket& bucket) {
  // Every sub has drained; the overflow bag holds the bucket's remaining
  // pending events, all strictly later (by raw time) than anything the
  // subs held. Redistribute it as the next, narrower rung — or, when it
  // cannot be spread (one instant), revert the bucket to plain storage,
  // marked dirty: the bag is MOSTLY in schedule order, but rung_narrow
  // dumps sub contents whose order swap-remove pops have shuffled, so the
  // lazy day sort puts it right (equal times make (time, seq) order
  // exactly seq order).
  Rung& rung = *bucket.rung;
  DELTA_DCHECK(rung.child == nullptr);  // freed when the scan passed it
  DELTA_DCHECK(rung.live == rung.overflow.size() && rung.live > 0);
  SimTime lo = rung.overflow.front().time;
  SimTime hi = lo;
  for (const Event& event : rung.overflow) {
    if (event.time < lo) lo = event.time;
    if (event.time > hi) hi = event.time;
  }
  if (!(hi > lo)) {
    DELTA_DCHECK(bucket.events.empty());
    bucket.events = std::move(rung.overflow);
    bucket.dirty = true;
    bucket.head = 0;
    rung.overflow.clear();
    rung.subs.clear();
    rung.live = 0;
    spare_rung_ = std::move(bucket.rung);
    return;
  }
  split_scratch_.clear();
  split_scratch_.swap(rung.overflow);  // empties overflow for the rebuild
  rung_build(rung);
}

const EventQueue::Event& EventQueue::calendar_direct_search() {
  // A whole year of days held nothing due: the queue is sparse relative to
  // its span. Find the global earliest head (buckets and rungs are sorted,
  // so heads suffice) and jump the scan cursor to its day.
  const Event* earliest = nullptr;
  for (Bucket& bucket : buckets_) {
    const Event* head = nullptr;
    if (bucket.rung != nullptr) {
      if (bucket.rung->live > 0) head = &bucket_head(bucket);
    } else if (bucket.head < bucket.events.size()) {
      head = &bucket_head(bucket);  // lazily sorts a dirty day
    }
    if (head == nullptr) continue;
    if (earliest == nullptr || later(*earliest, *head)) earliest = head;
  }
  DELTA_CHECK_MSG(earliest != nullptr,
                  "calendar scan found no event while size() > 0");
  scan_vb_ = virtual_bucket(earliest->time);
  return *earliest;
}

void EventQueue::calendar_resize(std::size_t bucket_count) {
  // Collect the unconsumed records (day buckets, rungs, and the
  // far-future bag), retune the day width to the density near the head of
  // the schedule, and redistribute. This must stay O(live) cheap: besides
  // size-triggered grows/shrinks it runs as the degeneracy retune
  // (retune_pending_) and as the future-bag integration, i.e. up to once
  // per live-set turnover under a drifting window. So no global sort —
  // the head-window density comes from one nth_element over timestamps,
  // and events are flung into their day by plain append with the day
  // marked dirty for the lazy sort to finish whenever the scan arrives.
  std::vector<Event>& live = split_scratch_;
  live.clear();
  live.reserve(size_);
  for (Bucket& bucket : buckets_) {
    if (bucket.rung != nullptr) {
      for (const Rung* rung = bucket.rung.get(); rung != nullptr;
           rung = rung->child.get()) {
        for (const SubRung& sub : rung->subs) {
          live.insert(live.end(), sub.events.begin(), sub.events.end());
        }
        live.insert(live.end(), rung->overflow.begin(),
                    rung->overflow.end());
      }
    } else {
      for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
        live.push_back(bucket.events[i]);
      }
    }
  }
  live.insert(live.end(), future_.begin(), future_.end());
  future_.clear();
  future_min_ = std::numeric_limits<SimTime>::infinity();
  if (retune_pending_) {
    // Degeneracy that recurred within one turnover of the previous retune
    // means the window is drifting and retunes are not sticking: back
    // off. A width that survived a full turnover earns a fresh start.
    retune_backoff_ = degenerate_at_ < size_
                          ? std::min<std::uint64_t>(retune_backoff_ * 2, 64)
                          : 1;
  }
  retune_pending_ = false;
  schedules_since_retune_ = 0;

  if (bucket_count == buckets_.size()) {
    // Same-size retune (the degeneracy/future-bag path, up to once per
    // live-set turnover): reset the days in place. Day vectors keep their
    // capacity, so the redistribution below re-fills them allocation-free.
    for (Bucket& bucket : buckets_) {
      bucket.events.clear();
      bucket.head = 0;
      bucket.dirty = false;
      if (bucket.rung != nullptr) {
        bucket.rung->overflow.clear();
        if (spare_rung_ == nullptr) {
          spare_rung_ = std::move(bucket.rung);
        } else {
          bucket.rung.reset();
        }
      }
    }
    std::fill(occupied_.begin(), occupied_.end(), 0);
  } else {
    buckets_.clear();
    buckets_.resize(bucket_count);
    occupied_.assign(bucket_count <= 64 ? 1 : bucket_count / 64, 0);
  }
  if (live.empty()) {
    width_ = 1.0;
    inv_width_ = 1.0;
    scan_vb_ = virtual_bucket(clock_.now());
    return;
  }
  SimTime tmin = live.front().time;
  SimTime tmax = tmin;
  for (const Event& event : live) {
    if (event.time < tmin) tmin = event.time;
    if (event.time > tmax) tmax = event.time;
  }
  // Aim at ~4 events per day, with the density measured over the head of
  // the schedule (up to 1k events) rather than the full span: one far
  // outlier must not widen every day by orders of magnitude. The x4
  // margin keeps the "year" (bucket_count * width) comfortably above the
  // live window, so steady-state inserts do not wrap a year ahead.
  const std::size_t window = std::min<std::size_t>(live.size() - 1, 1024);
  SimTime span = tmax - tmin;
  if (window < live.size() - 1) {
    retune_times_.clear();
    retune_times_.reserve(live.size());
    for (const Event& event : live) retune_times_.push_back(event.time);
    std::nth_element(retune_times_.begin(),
                     retune_times_.begin() + static_cast<std::ptrdiff_t>(window),
                     retune_times_.end());
    span = retune_times_[window] - tmin;
  }
  SimTime width = span * 4.0 / static_cast<SimTime>(window > 0 ? window : 1);
  if (!(width > 0.0)) {
    // Head window is all ties; fall back to the full spread.
    width = (tmax - tmin) * 4.0 / static_cast<SimTime>(live.size());
  }
  // Degenerate spreads (everything due the same instant) or widths so
  // small that day numbers would overflow the scan arithmetic fall back to
  // a safe constant / floor.
  const SimTime floor_width = tmax * 1e-12;
  if (!(width > floor_width)) width = floor_width;
  if (!(width > 0.0)) width = 1.0;
  width_ = width;
  inv_width_ = 1.0 / width;
  scan_vb_ = virtual_bucket(tmin);
  for (const Event& event : live) {
    const std::int64_t vb = virtual_bucket(event.time);
    if (vb - scan_vb_ >= static_cast<std::int64_t>(bucket_count)) {
      // Still beyond the (new) year: back into the far-future bag.
      future_.push_back(event);
      if (event.time < future_min_) future_min_ = event.time;
      continue;
    }
    const std::size_t slot = static_cast<std::size_t>(vb) & bucket_mask();
    Bucket& bucket = buckets_[slot];
    if (!bucket.events.empty() && later(bucket.events.back(), event)) {
      bucket.dirty = true;
    }
    bucket.events.push_back(event);
    occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
}

EventQueue::Event EventQueue::heap_pop() {
  Event earliest = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift the displaced record down to restore the (time, seq) min-heap.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t smallest = left;
    const std::size_t right = left + 1;
    if (right < n && later(heap_[left], heap_[right])) smallest = right;
    if (!later(heap_[i], heap_[smallest])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return earliest;
}

}  // namespace delta::util
