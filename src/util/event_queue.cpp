// Cold paths of the calendar scheduler: sorted-bucket insertion off the
// monotone fast path, the direct min search that rescues a sparse queue
// after an empty "year", the width-retuning resize, and the heap oracle's
// pop. The hot primitives live in event_queue.h so the replay loops inline
// them.
#include "util/event_queue.h"

#include <algorithm>

namespace delta::util {

void EventQueue::calendar_insert_sorted(Bucket& bucket, const Event& event) {
  // Position within the unconsumed tail; everything before head is already
  // executed, so an insert never lands there (the event would have had to
  // be scheduled into the past, which schedule() rejects).
  const auto begin = bucket.events.begin() +
                     static_cast<std::ptrdiff_t>(bucket.head);
  const auto pos = std::upper_bound(
      begin, bucket.events.end(), event,
      [](const Event& a, const Event& b) { return later(b, a); });
  bucket.events.insert(pos, event);

  // Density watchdog: a steady hold pattern drifts the whole pending
  // window far narrower than the tuned day width (size-triggered resizes
  // never fire at constant depth), collapsing every event into a couple of
  // days and turning each insert into a long memmove. When one day holds a
  // crowd that a narrower width could actually spread (ties cannot be
  // split — skip those), re-tune — rate-limited so degenerate schedules
  // cannot thrash the rebuild.
  if (bucket.events.size() - bucket.head > 64 && size_ > 128 &&
      schedules_since_retune_ > size_ &&
      bucket.events.back().time > bucket.events[bucket.head].time) {
    calendar_resize(buckets_.size());
  }
}

const EventQueue::Event& EventQueue::calendar_direct_search() {
  // A whole year of days held nothing due: the queue is sparse relative to
  // its span. Find the global earliest head (buckets are sorted, so heads
  // suffice) and jump the scan cursor to its day.
  const Event* earliest = nullptr;
  for (const Bucket& bucket : buckets_) {
    if (bucket.head >= bucket.events.size()) continue;
    const Event& head = bucket.events[bucket.head];
    if (earliest == nullptr || later(*earliest, head)) earliest = &head;
  }
  DELTA_CHECK_MSG(earliest != nullptr,
                  "calendar scan found no event while size() > 0");
  scan_vb_ = virtual_bucket(earliest->time);
  return *earliest;
}

void EventQueue::calendar_resize(std::size_t bucket_count) {
  // Collect the unconsumed records, retune the day width to the density
  // near the head of the schedule, and redistribute. Ascending reinsertion
  // keeps every bucket sorted with a plain append.
  std::vector<Event> live;
  live.reserve(size_);
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
      live.push_back(bucket.events[i]);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const Event& a, const Event& b) { return later(b, a); });

  if (bucket_count == buckets_.size()) {
    // Width-only retune: reuse every bucket's storage instead of paying a
    // free+malloc per day (the density watchdog may fire periodically on
    // drifting steady-state schedules).
    for (Bucket& bucket : buckets_) {
      bucket.events.clear();
      bucket.head = 0;
    }
  } else {
    buckets_.assign(bucket_count, Bucket{});
  }
  occupied_.assign(bucket_count <= 64 ? 1 : bucket_count / 64, 0);
  schedules_since_retune_ = 0;
  if (live.empty()) {
    width_ = 1.0;
    inv_width_ = 1.0;
    scan_vb_ = virtual_bucket(clock_.now());
    return;
  }
  // Aim at ~4 events per day, with the density measured over the head of
  // the schedule (up to 1k events) rather than the full span: one far
  // outlier must not widen every day by orders of magnitude. The x4
  // margin keeps the "year" (bucket_count * width) comfortably above the
  // live window, so steady-state inserts do not wrap a year ahead.
  const std::size_t window =
      std::min<std::size_t>(live.size() - 1, 1024);
  SimTime span = window > 0 ? live[window].time - live.front().time : 0.0;
  SimTime width = span * 4.0 / static_cast<SimTime>(window > 0 ? window : 1);
  if (!(width > 0.0)) {
    // Head window is all ties; fall back to the full spread.
    const SimTime spread = live.back().time - live.front().time;
    width = spread * 4.0 / static_cast<SimTime>(live.size());
  }
  // Degenerate spreads (everything due the same instant) or widths so
  // small that day numbers would overflow the scan arithmetic fall back to
  // a safe constant / floor.
  const SimTime floor_width = live.back().time * 1e-12;
  if (!(width > floor_width)) width = floor_width;
  if (!(width > 0.0)) width = 1.0;
  width_ = width;
  inv_width_ = 1.0 / width;
  scan_vb_ = virtual_bucket(live.front().time);
  for (const Event& event : live) {
    const std::size_t slot =
        static_cast<std::size_t>(virtual_bucket(event.time)) & bucket_mask();
    buckets_[slot].events.push_back(event);
    occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
}

EventQueue::Event EventQueue::heap_pop() {
  Event earliest = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift the displaced record down to restore the (time, seq) min-heap.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t smallest = left;
    const std::size_t right = left + 1;
    if (right < n && later(heap_[left], heap_[right])) smallest = right;
    if (!later(heap_[i], heap_[smallest])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return earliest;
}

}  // namespace delta::util
