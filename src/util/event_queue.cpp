#include "util/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace delta::util {

void SimClock::advance_to(SimTime t) {
  DELTA_CHECK_MSG(t >= now_, "simulated time cannot move backwards ("
                                 << t << " < " << now_ << ")");
  now_ = t;
}

bool EventQueue::later(const Scheduled& a, const Scheduled& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

void EventQueue::schedule(SimTime time, Action action) {
  DELTA_CHECK(action != nullptr);
  DELTA_CHECK_MSG(time >= clock_.now(),
                  "cannot schedule into the past (" << time << " < "
                                                   << clock_.now() << ")");
  heap_.push_back(Scheduled{time, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

EventQueue::Scheduled EventQueue::pop_earliest() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Scheduled earliest = std::move(heap_.back());
  heap_.pop_back();
  return earliest;
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // Pop before executing: the action may schedule further events.
  Scheduled event = pop_earliest();
  clock_.advance_to(event.time);
  ++executed_;
  event.action();
  return true;
}

void EventQueue::run_ready() {
  while (!heap_.empty() && heap_.front().time <= clock_.now()) run_one();
}

void EventQueue::advance_until(SimTime t) {
  while (!heap_.empty() && heap_.front().time <= t) run_one();
  if (t > clock_.now()) clock_.advance_to(t);
}

void EventQueue::run_until_idle() {
  while (run_one()) {
  }
}

void EventQueue::pump_until(const std::function<bool()>& done) {
  while (!done()) {
    DELTA_CHECK_MSG(run_one(),
                    "event queue drained while awaiting a completion — the "
                    "awaited reply can no longer arrive");
  }
}

}  // namespace delta::util
