// A small fixed-size worker pool for the parallel simulation engine.
//
// Design constraints, in order: (1) deterministic callers — the pool runs
// opaque jobs and reports completion/exceptions through std::future, it
// never reorders results for the caller; (2) sanitizer-clean — plain
// mutex/condition_variable handoff, no lock-free cleverness; (3) zero
// dependencies beyond the standard library.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace delta::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1).
  explicit ThreadPool(std::size_t thread_count);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (pending jobs still run) and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a job; the future resolves when it finishes and rethrows
  /// anything the job threw.
  std::future<void> submit(std::function<void()> job);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs jobs 0..job_count-1 by calling `job(index)` on up to `num_threads`
/// pool workers, blocks until all complete, and rethrows the first job
/// exception (by job index) after every job has finished. With
/// num_threads <= 1 the jobs run inline on the calling thread — no pool is
/// created, so single-threaded callers pay nothing.
void parallel_for(std::size_t job_count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& job);

}  // namespace delta::util
