// A small fixed-size worker pool for the parallel simulation engine.
//
// Design constraints, in order: (1) deterministic callers — the pool runs
// opaque jobs and reports completion/exceptions through std::future, it
// never reorders results for the caller; (2) sanitizer-clean — plain
// mutex/condition_variable handoff, no lock-free cleverness; (3) zero
// dependencies beyond the standard library.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace delta::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1).
  explicit ThreadPool(std::size_t thread_count);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (pending jobs still run) and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a job; the future resolves when it finishes and rethrows
  /// anything the job threw.
  std::future<void> submit(std::function<void()> job);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs jobs 0..job_count-1 by calling `job(index)` on up to `num_threads`
/// pool workers, blocks until all complete, and rethrows the first job
/// exception (by job index) after every job has finished. With
/// num_threads <= 1 the jobs run inline on the calling thread — no pool is
/// created, so single-threaded callers pay nothing.
void parallel_for(std::size_t job_count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& job);

/// Longest-processing-time-first bin packing: places jobs 0..weights-1
/// onto `worker_count` workers, heaviest job first onto the currently
/// lightest worker (ties — equal weights or equal loads — resolve to the
/// lower index, so the packing is a pure function of the weights). Returns
/// one job list per worker, each in descending weight order: exactly the
/// shape parallel_for_dynamic seeds its deques from. The classic greedy
/// 4/3-approximation of minimum makespan.
[[nodiscard]] std::vector<std::vector<std::size_t>> lpt_assignment(
    const std::vector<double>& weights, std::size_t worker_count);

/// Work-stealing counterpart of parallel_for. `assignment` gives each
/// worker its initial job queue (one deque per entry; the lists must
/// exactly partition [0, job_count), checked). Every worker drains its own
/// deque front first — preserving the seeded (LPT) order — and, once
/// empty, steals from the BACK of the first non-empty victim, so a
/// straggler's lightest pending jobs migrate while its owner keeps the
/// heavy front work. Jobs never spawn jobs, so a worker that finds every
/// deque empty can retire immediately — no termination protocol beyond
/// the join. Per the pool's design constraints the deques are plain
/// mutex-protected (sanitizer-clean, no lock-free cleverness); the
/// per-job lock cost is irrelevant against coarse jobs like partition
/// replays. Exceptions follow parallel_for's contract: every job still
/// runs, the first error by job index is rethrown after the join. With
/// <= 1 worker (or <= 1 job) everything runs inline on the calling
/// thread in ascending index order. Returns the number of jobs executed
/// by a thief — the engine's steal_count yardstick.
std::int64_t parallel_for_dynamic(
    std::size_t job_count,
    const std::vector<std::vector<std::size_t>>& assignment,
    const std::function<void(std::size_t)>& job);

}  // namespace delta::util
