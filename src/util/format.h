// Human-readable byte formatting and a fixed-width table printer used by the
// figure-reproduction harnesses to emit the paper's rows/series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace delta::util {

/// "12.3 GB", "512.0 MB", "87 B" — decimal units to match the paper's axes.
std::string human_bytes(Bytes b);

/// Fixed-precision gigabytes, e.g. "12.34" (the unit the paper plots).
std::string gb_fixed(Bytes b, int precision = 2);

/// Minimal markdown-ish table printer with right-aligned numeric columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fixed(double v, int precision = 2);

}  // namespace delta::util
