// Key=value configuration with typed getters; used by examples and bench
// harnesses to override experiment parameters from the command line
// ("key=value" arguments) without a heavyweight flags library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace delta::util {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; tokens without '=' are rejected.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. "10,20,68".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;

  [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;
};

}  // namespace delta::util
