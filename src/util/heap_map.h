// Indexed binary min-heap over unique keys: the resident-set side index
// that makes eviction/shed victim selection O(log n) instead of a full
// FlatMap sweep per decision (the million-object data-plane requirement:
// no O(n_objects) term on the replay hot path).
//
// Ordering is the lexicographic total order (priority, key) — exactly the
// tie-broken arg-min the eviction policies previously computed by scanning,
// so swapping the scan for top()/pop() changes no observable decision (the
// heap's internal array layout depends on operation history, but the
// minimum of a total order does not).
//
// Contract:
//  * Key follows the FlatMap key contract (integral or strong id).
//  * Priority is totally ordered via operator< and copyable (double, int64).
//  * Keys are unique; push() requires absence, update()/erase() presence.
//  * All operations are deterministic functions of the operation sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/flat_map.h"

namespace delta::util {

template <typename Key, typename Priority>
class HeapMap {
 public:
  struct Entry {
    Key key{};
    Priority priority{};
  };

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  void clear() {
    heap_.clear();
    pos_.clear();
  }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    pos_.reserve(n);
  }

  [[nodiscard]] bool contains(Key key) const { return pos_.contains(key); }

  /// Priority of `key`, or nullptr when absent. Read-only: priorities
  /// change only through update(), which restores the heap order.
  [[nodiscard]] const Priority* find(Key key) const {
    const std::uint32_t* i = pos_.find(key);
    return i == nullptr ? nullptr : &heap_[*i].priority;
  }

  /// The (priority, key)-minimum entry. Requires a non-empty heap.
  [[nodiscard]] const Entry& top() const {
    DELTA_CHECK(!heap_.empty());
    return heap_.front();
  }

  /// Inserts an absent key.
  void push(Key key, Priority priority) {
    const auto [slot, inserted] =
        pos_.try_emplace(key, static_cast<std::uint32_t>(heap_.size()));
    DELTA_CHECK_MSG(inserted, "HeapMap::push of a present key");
    heap_.push_back(Entry{key, priority});
    sift_up(heap_.size() - 1);
  }

  /// Re-prioritizes a present key (either direction).
  void update(Key key, Priority priority) {
    const std::uint32_t* slot = pos_.find(key);
    DELTA_CHECK_MSG(slot != nullptr, "HeapMap::update of an absent key");
    const std::size_t i = *slot;
    heap_[i].priority = priority;
    sift_up(i);
    sift_down(i);
  }

  /// Removes the minimum entry. Requires a non-empty heap.
  void pop() {
    DELTA_CHECK(!heap_.empty());
    remove_at(0);
  }

  /// Removes the key if present; returns true when erased.
  bool erase(Key key) {
    const std::uint32_t* slot = pos_.find(key);
    if (slot == nullptr) return false;
    remove_at(*slot);
    return true;
  }

 private:
  std::vector<Entry> heap_;
  FlatMap<Key, std::uint32_t> pos_;

  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    if (a.priority < b.priority) return true;
    if (b.priority < a.priority) return false;
    return a.key < b.key;
  }

  void place(std::size_t i, const Entry& e) {
    heap_[i] = e;
    *pos_.find(e.key) = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(e, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
      if (!less(heap_[child], e)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, e);
  }

  void remove_at(std::size_t i) {
    pos_.erase(heap_[i].key);
    const Entry tail = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;  // removed the tail itself
    heap_[i] = tail;
    *pos_.find(tail.key) = static_cast<std::uint32_t>(i);
    sift_up(i);
    sift_down(i);
  }
};

}  // namespace delta::util
