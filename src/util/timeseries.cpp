#include "util/timeseries.h"

#include <algorithm>

#include "util/check.h"

namespace delta::util {

CumulativeSeries::CumulativeSeries(std::int64_t stride) : stride_(stride) {
  DELTA_CHECK(stride > 0);
}

void CumulativeSeries::finalize() {
  if (!last_recorded_ && last_index_ >= 0) {
    points_.push_back({last_index_, last_value_});
    last_recorded_ = true;
  }
}

double CumulativeSeries::value_at(std::int64_t event_index) const {
  DELTA_CHECK(!points_.empty());
  if (event_index <= points_.front().event_index) {
    return points_.front().value;
  }
  if (event_index >= points_.back().event_index) {
    return points_.back().value;
  }
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), event_index,
      [](const Point& p, std::int64_t idx) { return p.event_index < idx; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  if (hi.event_index == lo.event_index) return hi.value;
  const double frac = static_cast<double>(event_index - lo.event_index) /
                      static_cast<double>(hi.event_index - lo.event_index);
  return lo.value + frac * (hi.value - lo.value);
}

}  // namespace delta::util
