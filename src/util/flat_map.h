// Open-addressing hash containers for the middleware's small-key hot state.
//
// Every per-event lookup in the replay loop — cache residency, LRU/GDS
// bookkeeping, load-manager counters, preship heat, the UpdateManager's
// object/node maps — is keyed by an ObjectId or a small int. node-based
// std::unordered_map pays a heap allocation per insert and a pointer chase
// per find on exactly this state; FlatMap keeps keys and values in flat
// arrays (struct-of-arrays, so probing touches only the key lane), probes
// linearly over a power-of-two table, and erases by backward shifting, so
// the table never accumulates tombstones and memory stays proportional to
// live entries.
//
// Contract:
//  * Key is an integral type or a strong id exposing `.value()` (see
//    util/types.h); hashing is a fixed Fibonacci mix of that raw value, so
//    slot order is deterministic across platforms and standard libraries —
//    unlike std::unordered_map, whose iteration order is
//    implementation-defined.
//  * Value must be default-constructible and movable (moved on growth and
//    on backward-shift deletion).
//  * Iteration (`for_each`) visits live entries in slot order, which
//    depends on the insertion/erasure history. Callers whose observable
//    decisions could depend on visit order must impose an explicit order
//    (see the determinism audit notes at each call site; pinned by
//    tests/iteration_order_test.cpp).
//  * Pointers returned by find()/operator[] are invalidated by any insert
//    or erase (the table may grow or shift).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace delta::util {

namespace detail {

template <typename Key>
[[nodiscard]] constexpr std::uint64_t flat_raw_key(Key key) {
  if constexpr (std::is_integral_v<Key>) {
    return static_cast<std::uint64_t>(key);
  } else {
    return static_cast<std::uint64_t>(key.value());
  }
}

}  // namespace detail

template <typename Key, typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    for (Value& v : values_) v = Value{};
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // target load factor <= 0.75
    if (cap > capacity()) rehash(cap);
  }

  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  [[nodiscard]] Value* find(Key key) {
    const std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &values_[i];
  }
  [[nodiscard]] const Value* find(Key key) const {
    const std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &values_[i];
  }

  /// Inserts a default-constructed value if the key is absent.
  Value& operator[](Key key) { return *try_emplace(key).first; }

  /// Inserts `Value{args...}` if absent; returns (value pointer, inserted).
  template <typename... Args>
  std::pair<Value*, bool> try_emplace(Key key, Args&&... args) {
    if ((size_ + 1) * 4 > capacity() * 3) rehash(capacity() * 2);
    std::size_t i = home(key);
    while (used_[i]) {
      if (keys_[i] == key) return {&values_[i], false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = Value{std::forward<Args>(args)...};
    ++size_;
    return {&values_[i], true};
  }

  void insert_or_assign(Key key, Value value) {
    *try_emplace(key).first = std::move(value);
  }

  /// Removes the key if present (backward-shift deletion: subsequent probe
  /// chains are compacted, never tombstoned). Returns true when erased.
  bool erase(Key key) {
    std::size_t i = find_slot(key);
    if (i == kNoSlot) return false;
    // Walk the probe chain after i; any entry whose home slot lies
    // cyclically outside (i, j] can legally move back to fill the hole.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      const std::size_t h = home(keys_[j]);
      const bool home_in_gap =
          i <= j ? (i < h && h <= j) : (h > i || h <= j);
      if (!home_in_gap) {
        keys_[i] = keys_[j];
        values_[i] = std::move(values_[j]);
        i = j;
      }
    }
    used_[i] = 0;
    values_[i] = Value{};  // release held resources promptly
    --size_;
    return true;
  }

  /// Visits every live (key, value) pair in slot order. The order depends
  /// on insertion history: callers must not let observable decisions depend
  /// on it (see the header contract).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;
  // Fibonacci multiplicative hashing: a fixed odd multiplier spreads
  // consecutive ids across the table while staying allocation- and
  // platform-independent.
  static constexpr std::uint64_t kMix = 0x9E3779B97F4A7C15ULL;

  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  int shift_ = 64;

  [[nodiscard]] std::size_t home(Key key) const {
    return static_cast<std::size_t>(
        (detail::flat_raw_key(key) * kMix) >> shift_);
  }

  [[nodiscard]] std::size_t find_slot(Key key) const {
    if (size_ == 0) return kNoSlot;
    std::size_t i = home(key);
    while (used_[i]) {
      if (keys_[i] == key) return i;
      i = (i + 1) & mask_;
    }
    return kNoSlot;
  }

  void rehash(std::size_t new_capacity) {
    if (new_capacity < kMinCapacity) new_capacity = kMinCapacity;
    DELTA_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_capacity, Key{});
    values_.clear();
    values_.resize(new_capacity);
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    shift_ = 64;
    for (std::size_t c = new_capacity; c > 1; c >>= 1) --shift_;
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = home(old_keys[i]);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }
};

/// FlatMap with no payload: membership only.
template <typename Key>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true when newly inserted.
  bool insert(Key key) { return map_.try_emplace(key).second; }
  bool erase(Key key) { return map_.erase(key); }
  [[nodiscard]] bool contains(Key key) const { return map_.contains(key); }
  /// std::set-compatible membership count (0 or 1).
  [[nodiscard]] std::size_t count(Key key) const {
    return map_.contains(key) ? 1 : 0;
  }

  /// Visits members in slot order (same caveats as FlatMap::for_each).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](Key key, const Empty&) { fn(key); });
  }

 private:
  struct Empty {};
  FlatMap<Key, Empty> map_;
};

}  // namespace delta::util
