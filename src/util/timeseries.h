// Sampled cumulative time-series: the representation behind every
// "cumulative traffic cost along the event sequence" figure (Fig. 7b, 8b).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace delta::util {

/// Records (event index, cumulative value) samples at a fixed stride plus a
/// final sample, keeping figure-series memory bounded on 500k-event runs.
class CumulativeSeries {
 public:
  explicit CumulativeSeries(std::int64_t stride = 1000);

  /// Observe the cumulative value at the given event index. Indices must be
  /// non-decreasing across calls. Inline: called once per replayed event
  /// per tracked series.
  void observe(std::int64_t event_index, double cumulative_value) {
    DELTA_CHECK(event_index >= last_index_);
    last_index_ = event_index;
    last_value_ = cumulative_value;
    last_recorded_ = false;
    if (event_index >= next_sample_) {
      points_.push_back({event_index, cumulative_value});
      next_sample_ = event_index + stride_;
      last_recorded_ = true;
    }
  }

  /// Force-record the latest observed point (call once at end of run).
  void finalize();

  struct Point {
    std::int64_t event_index = 0;
    double value = 0.0;
  };

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] double last_value() const { return last_value_; }

  /// Linear interpolation of the series at an arbitrary event index
  /// (clamped to the recorded range). Requires at least one point.
  [[nodiscard]] double value_at(std::int64_t event_index) const;

 private:
  std::int64_t stride_;
  std::int64_t next_sample_ = 0;
  std::int64_t last_index_ = -1;
  double last_value_ = 0.0;
  bool last_recorded_ = true;
  std::vector<Point> points_;
};

}  // namespace delta::util
