// Minimal leveled logger. Simulation inner loops never log; the logger exists
// for middleware-level events (loads, evictions, policy switches) in the
// examples and for debugging.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace delta::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement that formats lazily: the stream expression is
/// only evaluated when the level is enabled.
#define DELTA_LOG(level_enum, expr)                                      \
  do {                                                                   \
    if (static_cast<int>(level_enum) >=                                  \
        static_cast<int>(::delta::util::log_level())) {                  \
      std::ostringstream log_os_;                                        \
      log_os_ << expr; /* NOLINT */                                      \
      ::delta::util::detail::emit(level_enum, log_os_.str());            \
    }                                                                    \
  } while (false)

#define DELTA_LOG_DEBUG(expr) DELTA_LOG(::delta::util::LogLevel::kDebug, expr)
#define DELTA_LOG_INFO(expr) DELTA_LOG(::delta::util::LogLevel::kInfo, expr)
#define DELTA_LOG_WARN(expr) DELTA_LOG(::delta::util::LogLevel::kWarn, expr)
#define DELTA_LOG_ERROR(expr) DELTA_LOG(::delta::util::LogLevel::kError, expr)

}  // namespace delta::util
