#include "util/format.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace delta {

std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << util::human_bytes(b);
}

}  // namespace delta

namespace delta::util {

std::string human_bytes(Bytes b) {
  const double v = b.as_double();
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  constexpr double kKB = 1e3;
  constexpr double kMB = 1e6;
  constexpr double kGB = 1e9;
  constexpr double kTB = 1e12;
  const double mag = v < 0 ? -v : v;
  if (mag >= kTB) {
    os << v / kTB << " TB";
  } else if (mag >= kGB) {
    os << v / kGB << " GB";
  } else if (mag >= kMB) {
    os << v / kMB << " MB";
  } else if (mag >= kKB) {
    os << v / kKB << " KB";
  } else {
    os << b.count() << " B";
  }
  return os.str();
}

std::string gb_fixed(Bytes b, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << b.as_double() / 1e9;
  return os.str();
}

std::string fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DELTA_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DELTA_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace delta::util
