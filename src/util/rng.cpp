#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace delta::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DELTA_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] so that log is finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  DELTA_CHECK(mean > 0.0);
  const double u = 1.0 - next_double();
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  DELTA_CHECK(xm > 0.0 && alpha > 0.0);
  const double u = 1.0 - next_double();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DELTA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DELTA_CHECK(w >= 0.0);
    total += w;
  }
  DELTA_CHECK(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack
}

Rng Rng::fork() {
  return Rng{next_u64()};
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  DELTA_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double r = rng.next_double();
  // Binary search for the first CDF entry >= r.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace delta::util
