// Strong identifier and quantity types shared across the Delta middleware.
//
// Network costs in Delta are byte quantities (the paper's ν(q), ν(u), l(o));
// they are carried as signed 64-bit counts per ES.102 ("use signed types for
// arithmetic") and wrapped in a Bytes value type so that costs, sizes and
// capacities cannot be silently mixed with unrelated integers.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <iosfwd>

namespace delta {

/// A byte quantity: object sizes, query-result sizes, update payload sizes,
/// cache capacities and network-traffic totals.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(count_);
  }
  [[nodiscard]] constexpr double gib() const {
    return as_double() / (1024.0 * 1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr double mib() const {
    return as_double() / (1024.0 * 1024.0);
  }

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) {
    return Bytes{a.count_ * k};
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

 private:
  std::int64_t count_ = 0;
};

constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v)};
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024};
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024 * 1024};
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024 * 1024 * 1024};
}

std::ostream& operator<<(std::ostream& os, Bytes b);

/// CRTP-free strongly-typed integer id. `Tag` distinguishes unrelated id
/// spaces at compile time (P.4: static type safety).
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr Id invalid() { return Id{-1}; }

 private:
  std::int64_t value_ = -1;
};

struct ObjectIdTag {};
struct QueryIdTag {};
struct UpdateIdTag {};
struct TrixelIdTag {};

/// A data-object (spatial partition) identifier; the paper's o1..oN.
using ObjectId = Id<ObjectIdTag>;
/// A user query identifier; the paper's q.
using QueryId = Id<QueryIdTag>;
/// A repository update identifier; the paper's u.
using UpdateId = Id<UpdateIdTag>;

/// Logical time in the merged query/update event sequence. The paper's
/// traces are ordered streams; staleness tolerances t(q) are expressed in
/// these units.
using EventTime = std::int64_t;

}  // namespace delta

namespace std {
template <typename Tag>
struct hash<delta::Id<Tag>> {
  size_t operator()(delta::Id<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
