#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace delta::util {

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const {
  return std::sqrt(variance());
}

LogHistogram::LogHistogram(double base, double growth, std::size_t bucket_count)
    : base_(base), growth_(growth), buckets_(bucket_count + 1, 0) {
  DELTA_CHECK(base > 0.0 && growth > 1.0 && bucket_count > 0);
}

double LogHistogram::bucket_upper_edge(std::size_t i) const {
  return base_ * std::pow(growth_, static_cast<double>(i));
}

void LogHistogram::add(double value) {
  ++total_;
  if (value < base_) {
    ++buckets_[0];
    return;
  }
  const auto idx = static_cast<std::size_t>(
      std::floor(std::log(value / base_) / std::log(growth_)) + 1);
  ++buckets_[std::min(idx, buckets_.size() - 1)];
}

double LogHistogram::quantile(double q) const {
  DELTA_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::int64_t>(
      q * static_cast<double>(total_ - 1));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return bucket_upper_edge(i);
  }
  return bucket_upper_edge(buckets_.size() - 1);
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "<" << bucket_upper_edge(i) << ": " << buckets_[i] << "  ";
  }
  return os.str();
}

double QuantileSketch::quantile(double q) const {
  DELTA_CHECK(q >= 0.0 && q <= 1.0);
  if (values_.empty()) return 0.0;
  std::sort(values_.begin(), values_.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values_.size() - 1));
  return values_[idx];
}

}  // namespace delta::util
