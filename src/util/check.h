// Runtime invariant checks (P.6/P.7: make runtime-checkable what cannot be
// checked at compile time, and catch errors early). DELTA_CHECK stays active
// in release builds because the simulators validate accounting invariants at
// full scale; DELTA_DCHECK compiles away outside debug builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace delta::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DELTA_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace delta::detail

#define DELTA_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::delta::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (false)

#define DELTA_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg; /* NOLINT */                                           \
      ::delta::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());\
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define DELTA_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define DELTA_DCHECK(expr) DELTA_CHECK(expr)
#endif
