#include "util/config.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace delta::util {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    DELTA_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "expected key=value argument, got '" << token << "'");
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool Config::has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return lookup(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for " + key + ": " + *v);
}

std::vector<std::int64_t> Config::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::istringstream is(*v);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

}  // namespace delta::util
