// Deterministic pseudo-random number generation and the heavy-tailed
// distributions used by the workload synthesizer.
//
// All randomness in the repository flows through Rng so that every trace,
// every randomized-loading coin flip (LoadManager, Fig. 6) and every
// experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace delta::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Small, fast,
/// and high quality; deliberately not std::mt19937 so that traces are stable
/// across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Pareto (Lomax-style, xm scale, alpha shape): heavy-tailed sizes.
  double pareto(double xm, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Requires a non-empty vector with non-negative weights, not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (stable given the call sequence).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Zipf sampler over ranks {0..n-1} with exponent s, using precomputed CDF.
/// Used for template popularity and hotspot weighting.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace delta::util
