#include "util/thread_pool.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "util/check.h"

namespace delta::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  DELTA_CHECK(thread_count > 0);
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  DELTA_CHECK(job != nullptr);
  std::packaged_task<void()> task{std::move(job)};
  std::future<void> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    DELTA_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t job_count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& job) {
  DELTA_CHECK(job != nullptr);
  if (job_count == 0) return;
  if (num_threads <= 1 || job_count == 1) {
    for (std::size_t i = 0; i < job_count; ++i) job(i);
    return;
  }
  ThreadPool pool{std::min(num_threads, job_count)};
  std::vector<std::future<void>> futures;
  futures.reserve(job_count);
  for (std::size_t i = 0; i < job_count; ++i) {
    futures.push_back(pool.submit([&job, i] { job(i); }));
  }
  // Wait for everything before rethrowing, so no job runs concurrently
  // with the caller's post-loop code even when one fails.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<std::vector<std::size_t>> lpt_assignment(
    const std::vector<double>& weights, std::size_t worker_count) {
  DELTA_CHECK(worker_count > 0);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  // Descending weight; stable_sort keeps equal-weight jobs in index order.
  std::stable_sort(order.begin(), order.end(),
                   [&weights](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  std::vector<std::vector<std::size_t>> assignment(worker_count);
  // Min-heap of (load, worker index): equal loads pop the lower index.
  using Bin = std::pair<double, std::size_t>;
  std::priority_queue<Bin, std::vector<Bin>, std::greater<Bin>> bins;
  for (std::size_t w = 0; w < worker_count; ++w) bins.emplace(0.0, w);
  for (const std::size_t job : order) {
    const auto [load, w] = bins.top();
    bins.pop();
    assignment[w].push_back(job);
    bins.emplace(load + weights[job], w);
  }
  return assignment;
}

std::int64_t parallel_for_dynamic(
    std::size_t job_count,
    const std::vector<std::vector<std::size_t>>& assignment,
    const std::function<void(std::size_t)>& job) {
  DELTA_CHECK(job != nullptr);
  // A worker that is handed a job outside [0, job_count) — or one twice —
  // would silently corrupt the caller's merge, so validate the partition
  // up front (same posture as the engines' routing validation).
  std::vector<std::uint8_t> seen(job_count, 0);
  std::size_t assigned = 0;
  for (const std::vector<std::size_t>& list : assignment) {
    for (const std::size_t i : list) {
      DELTA_CHECK_MSG(i < job_count && seen[i] == 0,
                      "parallel_for_dynamic assignment must partition jobs");
      seen[i] = 1;
      ++assigned;
    }
  }
  DELTA_CHECK_MSG(assigned == job_count,
                  "parallel_for_dynamic assignment must cover every job");
  if (job_count == 0) return 0;

  const std::size_t workers = assignment.size();
  if (workers <= 1 || job_count == 1) {
    for (std::size_t i = 0; i < job_count; ++i) job(i);
    return 0;
  }

  struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::size_t> jobs;
  };
  std::vector<WorkerDeque> deques(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    deques[w].jobs.assign(assignment[w].begin(), assignment[w].end());
  }
  std::vector<std::exception_ptr> errors(job_count);
  std::vector<std::int64_t> steals(workers, 0);

  const auto run_job = [&job, &errors](std::size_t index) {
    try {
      job(index);
    } catch (...) {
      errors[index] = std::current_exception();
    }
  };
  const std::size_t kNone = job_count;  // sentinel: nothing popped
  const auto worker_loop = [&](std::size_t self) {
    for (;;) {
      std::size_t index = kNone;
      {
        const std::lock_guard<std::mutex> lock{deques[self].mutex};
        if (!deques[self].jobs.empty()) {
          index = deques[self].jobs.front();
          deques[self].jobs.pop_front();
        }
      }
      if (index == kNone) {
        // Own deque drained: steal from the first non-empty victim (scan
        // origin rotates with self so thieves spread across victims).
        for (std::size_t k = 1; k < workers && index == kNone; ++k) {
          WorkerDeque& victim = deques[(self + k) % workers];
          const std::lock_guard<std::mutex> lock{victim.mutex};
          if (!victim.jobs.empty()) {
            index = victim.jobs.back();
            victim.jobs.pop_back();
          }
        }
        // Every deque empty: jobs cannot spawn jobs, so no work will ever
        // appear again — retire (in-flight jobs finish on their workers).
        if (index == kNone) return;
        ++steals[self];
      }
      run_job(index);
    }
  };

  // Workers 1..n on their own threads, worker 0 on the calling thread.
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return std::accumulate(steals.begin(), steals.end(), std::int64_t{0});
}

}  // namespace delta::util
