#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace delta::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  DELTA_CHECK(thread_count > 0);
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  DELTA_CHECK(job != nullptr);
  std::packaged_task<void()> task{std::move(job)};
  std::future<void> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    DELTA_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t job_count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& job) {
  DELTA_CHECK(job != nullptr);
  if (job_count == 0) return;
  if (num_threads <= 1 || job_count == 1) {
    for (std::size_t i = 0; i < job_count; ++i) job(i);
    return;
  }
  ThreadPool pool{std::min(num_threads, job_count)};
  std::vector<std::future<void>> futures;
  futures.reserve(job_count);
  for (std::size_t i = 0; i < job_count; ++i) {
    futures.push_back(pool.submit([&job, i] { job(i); }));
  }
  // Wait for everything before rethrowing, so no job runs concurrently
  // with the caller's post-loop code even when one fails.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace delta::util
