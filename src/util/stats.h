// Streaming statistics and fixed-bin histograms used by metrics collection
// and by the workload calibration pass.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace delta::util {

/// Welford-style streaming mean/variance with min/max tracking.
class StreamingStats {
 public:
  /// Inline: the replay loops add several samples per query (response,
  /// dispatch lag, per-endpoint views) — this must not be a call.
  void add(double x) {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  /// Folds `other` into this via the parallel-Welford combination (Chan et
  /// al.). Count/min/max are exact; sum/mean/variance are the
  /// mathematically correct combination but, being floating-point folds of
  /// per-shard partials, need not be bit-equal to adding the samples one by
  /// one in arrival order — the simulation engine's deterministic mode
  /// therefore replays samples instead.
  void merge(const StreamingStats& other);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Count/sum/min/max accumulator without the Welford moment updates — for
/// yardsticks that only ever report count, mean, and extrema (e.g. the
/// event engine's dispatch lag, added once per query on the hot path).
/// Use StreamingStats when variance matters.
class SummaryStats {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  /// Exact fold of two accumulators (all fields are order-independent).
  void merge(const SummaryStats& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-spaced histogram for heavy-tailed byte quantities. Values below the
/// first bucket edge land in bucket 0; values past the last edge in the
/// overflow bucket.
class LogHistogram {
 public:
  /// Buckets: [0, base), [base, base*growth), ... `bucket_count` buckets.
  LogHistogram(double base, double growth, std::size_t bucket_count);

  void add(double value);

  [[nodiscard]] std::int64_t total_count() const { return total_; }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::string to_string() const;

 private:
  double base_;
  double growth_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;

  [[nodiscard]] double bucket_upper_edge(std::size_t i) const;
};

/// Exact-quantile helper for modest sample counts (sorts on demand).
///
/// Bounded mode: set_stride(k) switches add_tagged() to deterministic
/// stride decimation — a sample is retained iff its tag is a multiple of
/// k. Because the decision depends only on the tag (a global sample index
/// the caller assigns, e.g. trace position), sharded producers that each
/// call add_tagged with their own subset of tags retain exactly the
/// samples a single stream would have, so merged percentiles reproduce the
/// single-stream bounded percentiles bit-for-bit at any shard count. The
/// plain add() path stays exact and is untouched by the stride.
class QuantileSketch {
 public:
  void add(double v) { values_.push_back(v); }
  /// Retain every stride-th tag (1 = keep all). The caller derives the
  /// stride globally — e.g. max(1, total_samples / cap) — so all shards
  /// agree on the selection.
  void set_stride(std::int64_t stride) { stride_ = stride < 1 ? 1 : stride; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  /// add() gated by the decimation stride; `tag` is the sample's global
  /// index. Keeps tag 0, stride, 2*stride, ...
  void add_tagged(double v, std::int64_t tag) {
    if (stride_ <= 1 || tag % stride_ == 0) values_.push_back(v);
  }
  /// Pre-sizes the sample buffer (the replay engines know the query count
  /// up front, so the hot loop never pays a reallocation).
  void reserve(std::size_t n) { values_.reserve(n); }
  /// Appends `other`'s samples. Quantiles are order-invariant (the sketch
  /// sorts on demand), so folding per-shard sketches in any deterministic
  /// order reproduces the single-stream percentiles exactly.
  void merge(const QuantileSketch& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
  }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  std::int64_t stride_ = 1;
};

}  // namespace delta::util
