// PhotoObj-style record stub. The real SDSS PhotoObj table carries ~700
// physical attributes per astronomical body at roughly 2 KB per row; the
// stub keeps the identifying and positional attributes materialized and
// models the remaining payload by `kModeledRowBytes` (the size used for all
// network-cost accounting, matching the paper's bytes-proportional costs).
#pragma once

#include <array>
#include <cstdint>

#include "util/types.h"

namespace delta::storage {

/// Modeled on-wire/on-disk footprint of one PhotoObj row.
inline constexpr Bytes kModeledRowBytes{2048};

struct PhotoObjRecord {
  std::int64_t obj_id = 0;
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  /// PSF magnitudes in the five SDSS bands (u, g, r, i, z).
  std::array<float, 5> psf_mag{};
  /// Photometry quality flags.
  std::uint32_t flags = 0;
  /// Imaging run that produced the row (bumped by updates).
  std::int32_t run = 0;
};

}  // namespace delta::storage
