// SkyCatalog: the repository's partitioned data store.
//
// The catalog owns the mapping from spatial partitions (data objects) to
// their current row counts and byte sizes, applies the growth caused by
// update shipping (§3: updates predominantly insert data; data is never
// deleted), and estimates query-result row counts for cost accounting.
#pragma once

#include <memory>
#include <vector>

#include "htm/partition_map.h"
#include "storage/density_model.h"
#include "storage/record.h"
#include "util/types.h"

namespace delta::storage {

class SkyCatalog {
 public:
  /// Builds a catalog over `map`, distributing `density`'s rows across
  /// partitions. `row_bytes` converts rows to network/storage bytes.
  SkyCatalog(std::shared_ptr<const htm::PartitionMap> map,
             const DensityModel& density, Bytes row_bytes = kModeledRowBytes);

  [[nodiscard]] const htm::PartitionMap& partition_map() const {
    return *map_;
  }
  [[nodiscard]] std::shared_ptr<const htm::PartitionMap> partition_map_ptr()
      const {
    return map_;
  }

  [[nodiscard]] std::size_t partition_count() const {
    return map_->partition_count();
  }
  [[nodiscard]] Bytes row_bytes() const { return row_bytes_; }

  [[nodiscard]] double object_rows(ObjectId id) const;
  [[nodiscard]] Bytes object_bytes(ObjectId id) const;
  [[nodiscard]] Bytes total_bytes() const;

  /// Monotone per-object version; bumped by every applied insert.
  [[nodiscard]] std::int64_t object_version(ObjectId id) const;

  /// Applies an insert of `rows` rows to the object (a shipped update).
  void apply_insert(ObjectId id, double rows);

  /// Rows the object held at build time (before any applied inserts).
  [[nodiscard]] double initial_object_rows(ObjectId id) const;

  /// Estimated number of rows a query over `region` scans, from the density
  /// map and region area (accounts for per-object growth since build time).
  [[nodiscard]] double estimate_rows(const htm::Region& region) const;

  /// As estimate_rows, but reusing a precomputed base-trixel cover
  /// (base-level indices in index_in_level order) — the trace generator
  /// computes each query's cover exactly once.
  [[nodiscard]] double estimate_rows_with_cover(
      const htm::Region& region,
      const std::vector<std::int32_t>& base_indices) const;

  /// Analytic area (steradians) of a region; exposed for workload sizing.
  [[nodiscard]] static double region_area(const htm::Region& region);

 private:
  std::shared_ptr<const htm::PartitionMap> map_;
  Bytes row_bytes_;
  std::vector<double> base_rows_;       // per base trixel, at build time
  std::vector<double> initial_rows_;    // per object
  std::vector<double> current_rows_;    // per object (grows with inserts)
  std::vector<std::int64_t> versions_;  // per object

  [[nodiscard]] std::size_t checked_index(ObjectId id) const;
};

}  // namespace delta::storage
