#include "storage/catalog.h"

#include <cmath>
#include <numbers>

#include "htm/cover.h"
#include "util/check.h"

namespace delta::storage {

SkyCatalog::SkyCatalog(std::shared_ptr<const htm::PartitionMap> map,
                       const DensityModel& density, Bytes row_bytes)
    : map_(std::move(map)), row_bytes_(row_bytes) {
  DELTA_CHECK(map_ != nullptr);
  DELTA_CHECK(map_->base_level() == density.base_level());
  DELTA_CHECK(row_bytes_.count() > 0);
  base_rows_ = density.weights();
  initial_rows_.assign(map_->partition_count(), 0.0);
  for (std::int64_t i = 0; i < map_->base_trixel_count(); ++i) {
    const ObjectId o = map_->object_for_base_index(i);
    initial_rows_[static_cast<std::size_t>(o.value())] +=
        base_rows_[static_cast<std::size_t>(i)];
  }
  current_rows_ = initial_rows_;
  versions_.assign(map_->partition_count(), 0);
}

std::size_t SkyCatalog::checked_index(ObjectId id) const {
  DELTA_CHECK(id.valid());
  const auto idx = static_cast<std::size_t>(id.value());
  DELTA_CHECK(idx < current_rows_.size());
  return idx;
}

double SkyCatalog::object_rows(ObjectId id) const {
  return current_rows_[checked_index(id)];
}

Bytes SkyCatalog::object_bytes(ObjectId id) const {
  return Bytes{static_cast<std::int64_t>(object_rows(id) *
                                         row_bytes_.as_double())};
}

Bytes SkyCatalog::total_bytes() const {
  double rows = 0.0;
  for (const double r : current_rows_) rows += r;
  return Bytes{static_cast<std::int64_t>(rows * row_bytes_.as_double())};
}

std::int64_t SkyCatalog::object_version(ObjectId id) const {
  return versions_[checked_index(id)];
}

void SkyCatalog::apply_insert(ObjectId id, double rows) {
  DELTA_CHECK(rows >= 0.0);
  const std::size_t idx = checked_index(id);
  current_rows_[idx] += rows;
  ++versions_[idx];
}

double SkyCatalog::region_area(const htm::Region& region) {
  return std::visit(
      [](const auto& r) -> double {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, htm::Cone>) {
          return 2.0 * std::numbers::pi * (1.0 - std::cos(r.radius_rad));
        } else if constexpr (std::is_same_v<T, htm::RaDecRect>) {
          double dra = r.ra_hi_deg - r.ra_lo_deg;
          if (dra < 0.0) dra += 360.0;
          const double sin_hi =
              std::sin(htm::degrees_to_radians(r.dec_hi_deg));
          const double sin_lo =
              std::sin(htm::degrees_to_radians(r.dec_lo_deg));
          return htm::degrees_to_radians(dra) * (sin_hi - sin_lo);
        } else {
          return 4.0 * std::numbers::pi * std::sin(r.half_width_rad);
        }
      },
      region);
}

double SkyCatalog::initial_object_rows(ObjectId id) const {
  return initial_rows_[checked_index(id)];
}

double SkyCatalog::estimate_rows(const htm::Region& region) const {
  const auto cover = htm::cover_region(region, map_->base_level());
  std::vector<std::int32_t> indices;
  indices.reserve(cover.size());
  for (const htm::HtmId id : cover) {
    indices.push_back(static_cast<std::int32_t>(htm::index_in_level(id)));
  }
  return estimate_rows_with_cover(region, indices);
}

double SkyCatalog::estimate_rows_with_cover(
    const htm::Region& region,
    const std::vector<std::int32_t>& base_indices) const {
  if (base_indices.empty()) return 0.0;
  // Average density over the cover, times the analytic region area: smooth
  // result sizes even for regions smaller than one base trixel.
  double cover_rows = 0.0;
  double cover_area = 0.0;
  for (const std::int32_t idx : base_indices) {
    const ObjectId o = map_->object_for_base_index(idx);
    const std::size_t oi = static_cast<std::size_t>(o.value());
    const double growth =
        initial_rows_[oi] > 0.0 ? current_rows_[oi] / initial_rows_[oi] : 1.0;
    cover_rows += base_rows_[static_cast<std::size_t>(idx)] * growth;
    cover_area +=
        htm::Trixel::from_id(htm::id_from_index(map_->base_level(), idx))
            .area();
  }
  if (cover_area <= 0.0) return 0.0;
  const double area = std::min(region_area(region), cover_area);
  return cover_rows * (area / cover_area);
}

}  // namespace delta::storage
