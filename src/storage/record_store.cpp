#include "storage/record_store.h"

#include <algorithm>

#include "util/check.h"

namespace delta::storage {

namespace {

/// Uniform point inside a trixel via barycentric-style interpolation of the
/// corners (approximate for spherical triangles; fine for record placement).
htm::Vec3 random_point_in_trixel(const htm::Trixel& t, util::Rng& rng) {
  double a = rng.next_double();
  double b = rng.next_double();
  if (a + b > 1.0) {
    a = 1.0 - a;
    b = 1.0 - b;
  }
  const double c = 1.0 - a - b;
  const auto& v = t.vertices();
  return htm::normalized(v[0] * a + v[1] * b + v[2] * c);
}

}  // namespace

PhotoObjRecord RecordStore::make_record_in_trixel(htm::HtmId trixel,
                                                  util::Rng& rng,
                                                  std::int32_t run) {
  const htm::Trixel t = htm::Trixel::from_id(trixel);
  const htm::Vec3 p = random_point_in_trixel(t, rng);
  const htm::RaDec rd = htm::to_ra_dec(p);
  PhotoObjRecord rec;
  rec.obj_id = next_obj_id_++;
  rec.ra_deg = rd.ra_deg;
  rec.dec_deg = rd.dec_deg;
  for (auto& m : rec.psf_mag) {
    m = static_cast<float>(rng.uniform(14.0, 24.0));
  }
  rec.flags = static_cast<std::uint32_t>(rng.next_u64());
  rec.run = run;
  return rec;
}

RecordStore::RecordStore(const htm::PartitionMap& map,
                         const DensityModel& density,
                         std::int64_t total_records, std::uint64_t seed)
    : map_(&map) {
  DELTA_CHECK(map.base_level() == density.base_level());
  DELTA_CHECK(total_records >= 0);
  partitions_.resize(map.partition_count());
  util::Rng rng{seed};

  const double total_weight = density.total_rows();
  DELTA_CHECK(total_weight > 0.0);
  for (std::int64_t i = 0; i < map.base_trixel_count(); ++i) {
    const double w = density.rows_in_base_trixel(i);
    if (w <= 0.0) continue;
    const double expected =
        w / total_weight * static_cast<double>(total_records);
    // Deterministic rounding with a stochastic remainder keeps totals tight.
    auto n = static_cast<std::int64_t>(expected);
    if (rng.bernoulli(expected - static_cast<double>(n))) ++n;
    if (n == 0) continue;
    const htm::HtmId trixel = htm::id_from_index(map.base_level(), i);
    const ObjectId o = map.object_for_base_index(i);
    auto& bucket = partitions_[static_cast<std::size_t>(o.value())];
    for (std::int64_t k = 0; k < n; ++k) {
      bucket.push_back(make_record_in_trixel(trixel, rng, /*run=*/0));
    }
    record_count_ += n;
  }
}

const std::vector<PhotoObjRecord>& RecordStore::records_of(
    ObjectId id) const {
  DELTA_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < partitions_.size());
  return partitions_[static_cast<std::size_t>(id.value())];
}

std::vector<PhotoObjRecord> RecordStore::query(
    const htm::Region& region, const std::vector<ObjectId>& objects) const {
  std::vector<PhotoObjRecord> out;
  for (const ObjectId o : objects) {
    for (const auto& rec : records_of(o)) {
      if (htm::region_contains(region,
                               htm::from_ra_dec(rec.ra_deg, rec.dec_deg))) {
        out.push_back(rec);
      }
    }
  }
  return out;
}

std::int64_t RecordStore::insert(ObjectId id, std::int64_t count,
                                 util::Rng& rng, std::int32_t run) {
  DELTA_CHECK(count >= 0);
  DELTA_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value()) < partitions_.size());
  // Place new records uniformly over the partition's base trixels weighted
  // by nothing in particular — new observations land where the telescope
  // pointed, which the caller models by choosing the object.
  const auto [lo, hi] = map_->base_range(id);
  auto& bucket = partitions_[static_cast<std::size_t>(id.value())];
  for (std::int64_t k = 0; k < count; ++k) {
    const std::int64_t idx = rng.uniform_int(lo, hi - 1);
    const htm::HtmId trixel = htm::id_from_index(map_->base_level(), idx);
    bucket.push_back(make_record_in_trixel(trixel, rng, run));
  }
  record_count_ += count;
  return count;
}

}  // namespace delta::storage
