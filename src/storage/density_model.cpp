#include "storage/density_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace delta::storage {

DensityModel::DensityModel(int base_level, std::uint64_t seed)
    : DensityModel(base_level, seed, Params{}) {}

DensityModel::DensityModel(int base_level, std::uint64_t seed,
                           const Params& params)
    : base_level_(base_level) {
  const std::int64_t count = htm::trixel_count_at_level(base_level);
  weights_.assign(static_cast<std::size_t>(count), 0.0);

  util::Rng rng{seed};
  const htm::Vec3 footprint_center =
      htm::from_ra_dec(params.footprint_ra_deg, params.footprint_dec_deg);
  const htm::Vec3 plane_pole =
      htm::from_ra_dec(params.plane_pole_ra_deg, params.plane_pole_dec_deg);

  // Cluster bumps scattered inside the footprint.
  std::vector<htm::Vec3> clusters;
  clusters.reserve(static_cast<std::size_t>(params.cluster_count));
  while (clusters.size() < static_cast<std::size_t>(params.cluster_count)) {
    const htm::Vec3 p = htm::normalized(
        {rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)});
    if (htm::angular_distance(p, footprint_center) <
        params.footprint_radius_rad) {
      clusters.push_back(p);
    }
  }

  for (std::int64_t i = 0; i < count; ++i) {
    const htm::Trixel t =
        htm::Trixel::from_id(htm::id_from_index(base_level, i));
    const htm::Vec3 c = t.center();
    if (htm::angular_distance(c, footprint_center) >
        params.footprint_radius_rad) {
      continue;  // outside the survey footprint
    }
    // Galactic-plane suppression: density falls off close to the plane
    // (|colatitude to pole - 90 deg| small).
    const double plane_dist = std::fabs(
        htm::angular_distance(c, plane_pole) - std::numbers::pi / 2.0);
    const double plane_factor =
        1.0 - 0.85 * std::exp(-(plane_dist * plane_dist) /
                              (2.0 * params.plane_width_rad *
                               params.plane_width_rad));
    // Lognormal small-scale texture.
    double w = rng.lognormal(0.0, params.texture_sigma) * plane_factor;
    // Cluster boosts.
    for (const auto& cl : clusters) {
      const double d = htm::angular_distance(c, cl);
      if (d < params.cluster_radius_rad) {
        w *= 1.0 + params.cluster_boost * (1.0 - d / params.cluster_radius_rad);
      }
    }
    weights_[static_cast<std::size_t>(i)] = w;
  }

  total_rows_ = 0.0;
  for (const double w : weights_) total_rows_ += w;
  DELTA_CHECK_MSG(total_rows_ > 0.0, "density model produced an empty sky");
}

double DensityModel::rows_in_base_trixel(std::int64_t index) const {
  DELTA_CHECK(index >= 0 &&
              index < static_cast<std::int64_t>(weights_.size()));
  return weights_[static_cast<std::size_t>(index)];
}

void DensityModel::scale_to_total_rows(double total_rows) {
  DELTA_CHECK(total_rows > 0.0);
  const double factor = total_rows / total_rows_;
  for (double& w : weights_) w *= factor;
  total_rows_ = total_rows;
}

}  // namespace delta::storage
