// Materialized record storage for small-scale runs.
//
// The byte-accounted simulations never materialize rows (800 GB of synthetic
// sky would be pointless); examples and tests, however, exercise a real
// storage path: records are generated per partition according to the density
// model, spatial queries scan them, and inserts append. This validates that
// the estimated result sizes used for cost accounting track an actual
// executable query path.
#pragma once

#include <cstdint>
#include <vector>

#include "htm/partition_map.h"
#include "htm/region.h"
#include "storage/density_model.h"
#include "storage/record.h"
#include "util/rng.h"
#include "util/types.h"

namespace delta::storage {

class RecordStore {
 public:
  /// Materializes roughly `total_records` records distributed across the
  /// partition map proportionally to the density model. Deterministic in
  /// `seed`.
  RecordStore(const htm::PartitionMap& map, const DensityModel& density,
              std::int64_t total_records, std::uint64_t seed);

  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  [[nodiscard]] std::int64_t record_count() const { return record_count_; }
  [[nodiscard]] const std::vector<PhotoObjRecord>& records_of(
      ObjectId id) const;

  /// Scans the given partitions for records inside the region.
  [[nodiscard]] std::vector<PhotoObjRecord> query(
      const htm::Region& region, const std::vector<ObjectId>& objects) const;

  /// Appends `count` records inside the partition (an applied update);
  /// returns the number appended.
  std::int64_t insert(ObjectId id, std::int64_t count, util::Rng& rng,
                      std::int32_t run);

 private:
  const htm::PartitionMap* map_;
  std::vector<std::vector<PhotoObjRecord>> partitions_;
  std::int64_t record_count_ = 0;
  std::int64_t next_obj_id_ = 1;

  PhotoObjRecord make_record_in_trixel(htm::HtmId trixel, util::Rng& rng,
                                       std::int32_t run);
};

}  // namespace delta::storage
