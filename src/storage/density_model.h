// Synthetic sky-density model.
//
// Substitution note (DESIGN.md §3): the paper's server is a 1 TB SDSS
// PhotoObj table whose row density varies strongly across the sky (partition
// data content spans 50 MB–90 GB over 68 roughly equi-area partitions). We
// reproduce that distribution with a seeded synthetic model: a survey
// footprint cap (outside it the density is zero — those partitions are the
// "never queried" ones the paper ignores), lognormal small-scale texture,
// galactic-plane suppression and a handful of dense cluster bumps.
#pragma once

#include <cstdint>
#include <vector>

#include "htm/trixel.h"
#include "htm/vec3.h"

namespace delta::storage {

class DensityModel {
 public:
  struct Params {
    /// Survey footprint: cap centered on this (ra, dec), this angular radius.
    double footprint_ra_deg = 185.0;
    double footprint_dec_deg = 32.0;
    double footprint_radius_rad = 1.15;
    /// Galactic-plane suppression band (pole of the plane's great circle).
    double plane_pole_ra_deg = 192.9;   // approx. north galactic pole
    double plane_pole_dec_deg = 27.1;
    double plane_width_rad = 0.35;
    /// Lognormal texture sigma and cluster bumps.
    double texture_sigma = 0.8;
    int cluster_count = 24;
    double cluster_radius_rad = 0.12;
    double cluster_boost = 6.0;
  };

  /// Builds densities for every base-level trixel (deterministic in `seed`)
  /// with default parameters.
  DensityModel(int base_level, std::uint64_t seed);

  /// As above with explicit parameters.
  DensityModel(int base_level, std::uint64_t seed, const Params& params);

  [[nodiscard]] int base_level() const { return base_level_; }

  /// Relative row density per base trixel (index_in_level order). Zero
  /// outside the survey footprint.
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Rows in a base trixel once the model is scaled to `total_rows`.
  [[nodiscard]] double rows_in_base_trixel(std::int64_t index) const;

  /// Scales the model so that the weights sum to `total_rows` rows.
  void scale_to_total_rows(double total_rows);

  [[nodiscard]] double total_rows() const { return total_rows_; }

 private:
  int base_level_;
  std::vector<double> weights_;  // sums to total_rows_ after scaling
  double total_rows_ = 0.0;
};

}  // namespace delta::storage
