// Incremental minimum-weight vertex cover on a bipartite graph, via max-flow
// min-cut. This realizes Theorem 1 of the paper: for the internal interaction
// graph over cached objects, the optimal ship-queries-vs-ship-updates choice
// is the min-weight vertex cover, computable in polynomial time because the
// graph is bipartite (query nodes on one side, update nodes on the other).
//
// Construction (Hochbaum): source s -> update u with capacity w(u);
// update u -> query q with infinite capacity for each interaction;
// query q -> sink t with capacity w(q). After computing max flow, with S the
// set of nodes residual-reachable from s, the minimum-weight cover is
//   { u : u not in S }  ∪  { q : q in S }
// and its weight equals the max-flow value (LP duality).
//
// The solver is incremental in both directions:
//  * additions (new queries, updates, interaction edges) leave the previous
//    flow valid, so the next compute() only augments the difference;
//  * removals (the remainder-subgraph rule, object eviction/loading) cancel
//    the flow routed through the removed vertex before deleting it, leaving
//    a smaller but still feasible flow.
//
// The max-flow engine is a template parameter. The default is flow::Dinic
// (level-graph blocking flow; its final failed BFS doubles as the min-cut
// reachability pass). flow::EdmondsKarp is retained as an alternative
// engine for differential testing — the two must produce identical covers,
// not merely equal weights: the reachable set S is the *minimal* source-side
// min cut, which is a flow-independent property of the network, so every
// correct max-flow engine extracts the same cover
// (tests/flow_property_test.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/dinic.h"
#include "flow/edmonds_karp.h"
#include "flow/network.h"

namespace delta::flow {

template <typename Engine>
class BasicBipartiteCoverSolver {
 public:
  /// Opaque handle to an update-side vertex.
  struct UpdateNode {
    NodeIndex index = kNoNode;
    std::uint32_t generation = 0;
    [[nodiscard]] bool valid() const { return index != kNoNode; }
    friend bool operator==(UpdateNode, UpdateNode) = default;
  };
  /// Opaque handle to a query-side vertex.
  struct QueryNode {
    NodeIndex index = kNoNode;
    std::uint32_t generation = 0;
    [[nodiscard]] bool valid() const { return index != kNoNode; }
    friend bool operator==(QueryNode, QueryNode) = default;
  };

  BasicBipartiteCoverSolver();

  // The internal max-flow engine points into the owned network; copying or
  // moving would leave it dangling.
  BasicBipartiteCoverSolver(const BasicBipartiteCoverSolver&) = delete;
  BasicBipartiteCoverSolver& operator=(const BasicBipartiteCoverSolver&) =
      delete;

  /// Adds an update vertex with weight w(u) (its network shipping cost).
  UpdateNode add_update(Capacity weight);

  /// Adds a query vertex with weight w(q) (its network shipping cost).
  QueryNode add_query(Capacity weight);

  /// Adds an interaction edge (u, q): answering q at the cache requires u.
  void connect(UpdateNode u, QueryNode q);

  /// Raises a vertex's weight in place (exact when merging two same-side
  /// vertices with identical neighborhoods: the min cover treats them as
  /// one vertex carrying their combined weight).
  void add_weight(QueryNode q, Capacity delta);
  void add_weight(UpdateNode u, Capacity delta);

  /// Current weight of a vertex.
  [[nodiscard]] Capacity weight(QueryNode q) const;
  [[nodiscard]] Capacity weight(UpdateNode u) const;

  /// Removes an update vertex, cancelling any flow routed through it. Its
  /// incident interaction edges disappear; affected queries stay.
  void remove_update(UpdateNode u);

  /// Removes a query vertex. The vertex must be isolated (all its
  /// interactions gone — e.g. its updates were shipped or its objects
  /// evicted); this is exactly the state in which the remainder rule
  /// discards query nodes.
  void remove_query(QueryNode q);

  /// Removes a query vertex even when it still has interaction edges,
  /// cancelling any flow routed through it (the "forget shipped queries"
  /// ablation — disabling the remainder rule's memory).
  void remove_query_force(QueryNode q);

  /// Visits the query vertices currently adjacent to u without allocating
  /// (needed on the replay hot path when u is shipped and removed).
  template <typename Fn>
  void for_each_neighbor(UpdateNode u, Fn&& fn) const {
    check_handle(u.index, u.generation, Side::kUpdate);
    for (EdgeId e = net_.first_edge(u.index); e != kNoEdge;
         e = net_.edge(e).next) {
      const auto& ed = net_.edge(e);
      if (ed.cap == 0) continue;  // the u->s anchor reverse
      fn(QueryNode{ed.to, generation_[static_cast<std::size_t>(ed.to)]});
    }
  }

  /// Visits the update vertices currently adjacent to q without allocating
  /// (for neighborhood-signature maintenance when merging query vertices).
  template <typename Fn>
  void for_each_neighbor(QueryNode q, Fn&& fn) const {
    check_handle(q.index, q.generation, Side::kQuery);
    for (EdgeId e = net_.first_edge(q.index); e != kNoEdge;
         e = net_.edge(e).next) {
      const auto& ed = net_.edge(e);
      if (ed.cap > 0) continue;  // the q->t anchor
      fn(UpdateNode{ed.to, generation_[static_cast<std::size_t>(ed.to)]});
    }
  }

  /// Allocating snapshots of the adjacency (tests / non-hot callers).
  [[nodiscard]] std::vector<QueryNode> neighbors(UpdateNode u) const;
  [[nodiscard]] std::vector<UpdateNode> neighbors(QueryNode q) const;

  /// Number of interaction edges currently incident to q.
  [[nodiscard]] std::size_t degree(QueryNode q) const;
  [[nodiscard]] std::size_t degree(UpdateNode u) const;

  /// Non-throwing liveness checks (a handle goes dead when its vertex is
  /// removed, even if the slot is later reused).
  [[nodiscard]] bool alive(QueryNode q) const;
  [[nodiscard]] bool alive(UpdateNode u) const;

  struct Cover {
    std::vector<UpdateNode> updates;
    std::vector<QueryNode> queries;
    Capacity weight = 0;
  };

  /// Computes the minimum-weight vertex cover of the current graph,
  /// augmenting incrementally from the previous flow. The returned
  /// reference points at solver-owned scratch, valid until the next
  /// compute() call.
  const Cover& compute();

  /// True when the given vertex was selected by the most recent compute().
  /// (Convenience for membership checks without scanning the Cover lists.)
  [[nodiscard]] bool in_last_cover(UpdateNode u) const;
  [[nodiscard]] bool in_last_cover(QueryNode q) const;

  [[nodiscard]] std::size_t update_count() const { return update_count_; }
  [[nodiscard]] std::size_t query_count() const { return query_count_; }
  [[nodiscard]] std::size_t interaction_count() const;
  [[nodiscard]] Capacity current_flow() const;
  [[nodiscard]] std::int64_t bfs_count() const { return solver_.bfs_count(); }

  /// Validates that the last computed cover touches every interaction edge
  /// and that its weight equals the max-flow value. O(V+E); test hook.
  [[nodiscard]] bool last_cover_is_valid() const;

  /// Direct access to the underlying network (benchmarks, tests).
  [[nodiscard]] const FlowNetwork& network() const { return net_; }

 private:
  FlowNetwork net_;
  NodeIndex source_;
  NodeIndex sink_;
  Engine solver_;

  enum class Side : std::uint8_t { kFree, kUpdate, kQuery };
  std::vector<Side> side_;                // indexed by NodeIndex
  std::vector<std::uint32_t> generation_; // bumped on node removal
  std::vector<EdgeId> anchor_edge_;       // s->u or q->t edge
  std::size_t update_count_ = 0;
  std::size_t query_count_ = 0;
  bool cover_fresh_ = false;
  Cover cover_;  // compute() scratch, reused across calls

  void ensure_slot(NodeIndex v);
  void check_handle(NodeIndex v, std::uint32_t gen, Side side) const;
};

/// The production solver: Dinic-powered.
using BipartiteCoverSolver = BasicBipartiteCoverSolver<Dinic>;

// Both engines are compiled once in bipartite_cover.cpp.
extern template class BasicBipartiteCoverSolver<Dinic>;
extern template class BasicBipartiteCoverSolver<EdmondsKarp>;

}  // namespace delta::flow
