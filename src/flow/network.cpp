#include "flow/network.h"

namespace delta::flow {

NodeIndex FlowNetwork::add_node() {
  NodeIndex v;
  if (!free_nodes_.empty()) {
    v = free_nodes_.back();
    free_nodes_.pop_back();
    active_[static_cast<std::size_t>(v)] = 1;
    head_[static_cast<std::size_t>(v)] = kNoEdge;
  } else {
    v = static_cast<NodeIndex>(active_.size());
    active_.push_back(1);
    head_.push_back(kNoEdge);
  }
  ++active_count_;
  return v;
}

void FlowNetwork::remove_node(NodeIndex v) {
  DELTA_CHECK(is_active(v));
  // Remove incident edges; each must be flow-free by contract.
  EdgeId e = head_[static_cast<std::size_t>(v)];
  while (e != kNoEdge) {
    const EdgeId next = edges_[static_cast<std::size_t>(e)].next;
    // remove_edge expects the pair's forward (even) id.
    remove_edge(e & ~1);
    e = next;
    // `next` may have been the pair of the removed edge; re-validate.
    while (e != kNoEdge && edges_[static_cast<std::size_t>(e)].from == kNoNode) {
      // The removed pair unlinked it; restart from the head.
      e = head_[static_cast<std::size_t>(v)];
    }
  }
  active_[static_cast<std::size_t>(v)] = 0;
  head_[static_cast<std::size_t>(v)] = kNoEdge;
  free_nodes_.push_back(v);
  --active_count_;
}

EdgeId FlowNetwork::add_edge(NodeIndex from, NodeIndex to, Capacity cap) {
  DELTA_CHECK(is_active(from));
  DELTA_CHECK(is_active(to));
  DELTA_CHECK(from != to);
  DELTA_CHECK(cap >= 0);
  EdgeId fwd;
  if (!free_edge_pairs_.empty()) {
    fwd = free_edge_pairs_.back();
    free_edge_pairs_.pop_back();
  } else {
    fwd = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
    edges_.emplace_back();
  }
  const EdgeId rev = fwd ^ 1;
  auto& fe = edges_[static_cast<std::size_t>(fwd)];
  auto& re = edges_[static_cast<std::size_t>(rev)];
  fe = Edge{from, to, cap, 0, kNoEdge, kNoEdge};
  re = Edge{to, from, 0, 0, kNoEdge, kNoEdge};
  link_edge(fwd);
  link_edge(rev);
  ++active_edge_pairs_;
  return fwd;
}

void FlowNetwork::link_edge(EdgeId e) {
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  const auto from = static_cast<std::size_t>(ed.from);
  ed.next = head_[from];
  ed.prev = kNoEdge;
  if (ed.next != kNoEdge) {
    edges_[static_cast<std::size_t>(ed.next)].prev = e;
  }
  head_[from] = e;
}

void FlowNetwork::unlink_edge(EdgeId e) {
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  const auto from = static_cast<std::size_t>(ed.from);
  if (ed.prev != kNoEdge) {
    edges_[static_cast<std::size_t>(ed.prev)].next = ed.next;
  } else {
    head_[from] = ed.next;
  }
  if (ed.next != kNoEdge) {
    edges_[static_cast<std::size_t>(ed.next)].prev = ed.prev;
  }
  ed.next = ed.prev = kNoEdge;
}

void FlowNetwork::remove_edge(EdgeId e) {
  DELTA_CHECK(edge_live(e));
  DELTA_CHECK((e & 1) == 0);  // forward id of the pair
  const EdgeId rev = e ^ 1;
  DELTA_CHECK_MSG(edges_[static_cast<std::size_t>(e)].flow == 0,
                  "removing edge with non-zero flow");
  unlink_edge(e);
  unlink_edge(rev);
  edges_[static_cast<std::size_t>(e)].from = kNoNode;
  edges_[static_cast<std::size_t>(e)].to = kNoNode;
  edges_[static_cast<std::size_t>(rev)].from = kNoNode;
  edges_[static_cast<std::size_t>(rev)].to = kNoNode;
  free_edge_pairs_.push_back(e);
  --active_edge_pairs_;
}

void FlowNetwork::add_flow(EdgeId e, Capacity delta) {
  DELTA_DCHECK(edge_live(e));
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  Edge& pair = edges_[static_cast<std::size_t>(e ^ 1)];
  ed.flow += delta;
  pair.flow -= delta;
  // The forward edge of the pair is the one with positive capacity; check
  // feasibility on whichever this is.
  [[maybe_unused]] const Edge& fwd =
      (ed.cap > 0 || pair.cap == 0) ? ed : pair;
  DELTA_DCHECK(fwd.flow >= 0 && fwd.flow <= fwd.cap);
}

void FlowNetwork::set_capacity(EdgeId e, Capacity cap) {
  DELTA_CHECK(edge_live(e));
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  DELTA_CHECK(cap >= ed.flow);
  ed.cap = cap;
}

Capacity FlowNetwork::outflow(NodeIndex v) const {
  DELTA_CHECK(is_active(v));
  Capacity total = 0;
  for (EdgeId e = head_[static_cast<std::size_t>(v)]; e != kNoEdge;
       e = edges_[static_cast<std::size_t>(e)].next) {
    const Edge& ed = edges_[static_cast<std::size_t>(e)];
    if (ed.cap > 0) total += ed.flow;
  }
  return total;
}

bool FlowNetwork::flow_is_feasible(NodeIndex source, NodeIndex sink) const {
  for (std::size_t v = 0; v < active_.size(); ++v) {
    if (!active_[v]) continue;
    Capacity net = 0;
    for (EdgeId e = head_[v]; e != kNoEdge;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (ed.cap > 0) {
        if (ed.flow < 0 || ed.flow > ed.cap) return false;
        net += ed.flow;
      } else {
        net += ed.flow;  // reverse edge: negative of paired forward flow
      }
    }
    const auto vi = static_cast<NodeIndex>(v);
    if (vi != source && vi != sink && net != 0) return false;
  }
  return true;
}

FlowNetwork FlowNetwork::zero_flow_copy() const {
  FlowNetwork copy = *this;
  for (auto& e : copy.edges_) e.flow = 0;
  return copy;
}

}  // namespace delta::flow
