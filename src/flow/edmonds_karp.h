// Edmonds–Karp max-flow with incremental re-use of an existing feasible flow.
//
// This is the engine behind the paper's incremental vertex-cover computation
// (Fig. 5): when vertices/edges are added the previous flow remains valid
// (just possibly not maximum), so each invocation only searches for the
// *additional* augmenting paths. Over a whole query/update sequence the time
// spent augmenting is bounded by one full O(nm^2) computation on the final
// network, versus O(n^2 m^2) for recomputing from scratch every time (§4).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/network.h"

namespace delta::flow {

class EdmondsKarp {
 public:
  /// Binds to a network whose flow it will maintain. The network may gain
  /// and lose nodes/edges between calls as long as the flow stays feasible.
  EdmondsKarp(FlowNetwork& net, NodeIndex source, NodeIndex sink);

  /// Augments the current flow to a maximum flow; returns the flow added by
  /// this call (zero when the existing flow was already maximum).
  Capacity run_to_max();

  /// Current total flow out of the source.
  [[nodiscard]] Capacity total_flow() const;

  /// Recomputes residual reachability from the source; afterwards
  /// `reachable(v)` answers membership in the source side of a min cut.
  void compute_reachability();
  [[nodiscard]] bool reachable(NodeIndex v) const;

  /// Cumulative number of augmenting-path searches (BFS runs), for the
  /// incremental-vs-scratch micro benchmark.
  [[nodiscard]] std::int64_t bfs_count() const { return bfs_count_; }

 private:
  FlowNetwork* net_;
  NodeIndex source_;
  NodeIndex sink_;

  // Epoch-stamped scratch space reused across BFS runs (no per-call
  // allocation in the middleware hot path).
  std::vector<std::uint32_t> visit_epoch_;
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeIndex> queue_;
  std::uint32_t epoch_ = 0;
  std::int64_t bfs_count_ = 0;

  void ensure_scratch();
  bool bfs_to_sink();  // fills parent_edge_; true when sink reached
};

/// From-scratch max flow (zeroes nothing: assumes the given network's flow is
/// the starting point; pass net.zero_flow_copy() for a cold run). Returns the
/// final total flow.
Capacity max_flow_edmonds_karp(FlowNetwork& net, NodeIndex source,
                               NodeIndex sink);

}  // namespace delta::flow
