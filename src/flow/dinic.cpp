#include "flow/dinic.h"

#include <algorithm>

namespace delta::flow {

Dinic::Dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink)
    : net_(&net), source_(source), sink_(sink) {
  DELTA_CHECK(net.is_active(source));
  DELTA_CHECK(net.is_active(sink));
  DELTA_CHECK(source != sink);
}

bool Dinic::build_levels() {
  const std::size_t bound = net_->node_bound();
  if (level_.size() < bound) {
    level_.resize(bound, -1);
    current_arc_.resize(bound, kNoEdge);
  }
  std::fill(level_.begin(), level_.end(), -1);
  ++bfs_count_;
  queue_.clear();
  queue_.push_back(source_);
  level_[static_cast<std::size_t>(source_)] = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const NodeIndex v = queue_[qi];
    for (EdgeId e = net_->first_edge(v); e != kNoEdge;
         e = net_->edge(e).next) {
      if (net_->residual(e) <= 0) continue;
      const NodeIndex w = net_->edge(e).to;
      if (level_[static_cast<std::size_t>(w)] != -1) continue;
      level_[static_cast<std::size_t>(w)] =
          level_[static_cast<std::size_t>(v)] + 1;
      queue_.push_back(w);
    }
  }
  return level_[static_cast<std::size_t>(sink_)] != -1;
}

Capacity Dinic::push_blocking(NodeIndex v, Capacity limit) {
  if (v == sink_) return limit;
  EdgeId& arc = current_arc_[static_cast<std::size_t>(v)];
  while (arc != kNoEdge) {
    const auto& ed = net_->edge(arc);
    const NodeIndex w = ed.to;
    if (net_->residual(arc) > 0 &&
        level_[static_cast<std::size_t>(w)] ==
            level_[static_cast<std::size_t>(v)] + 1) {
      const Capacity pushed =
          push_blocking(w, std::min(limit, net_->residual(arc)));
      if (pushed > 0) {
        net_->add_flow(arc, pushed);
        return pushed;
      }
    }
    arc = ed.next;
  }
  return 0;
}

Capacity Dinic::run_to_max() {
  levels_current_ = false;
  const Capacity before = net_->outflow(source_);
  while (build_levels()) {
    // Reset the per-node arc cursors only for nodes the BFS reached — the
    // blocking-flow DFS never leaves the level graph.
    for (const NodeIndex v : queue_) {
      current_arc_[static_cast<std::size_t>(v)] = net_->first_edge(v);
    }
    while (push_blocking(source_, kInfiniteCapacity) > 0) {
    }
  }
  // The failed build marks exactly the residual-reachable nodes: this is
  // the min-cut reachability compute_reachability() hands out.
  levels_current_ = true;
  return net_->outflow(source_) - before;
}

Capacity Dinic::total_flow() const { return net_->outflow(source_); }

void Dinic::compute_reachability() {
  if (levels_current_) return;  // run_to_max's final BFS already did it
  build_levels();
  levels_current_ = true;
}

bool Dinic::reachable(NodeIndex v) const {
  DELTA_DCHECK(v >= 0 && static_cast<std::size_t>(v) < level_.size());
  return level_[static_cast<std::size_t>(v)] != -1;
}

Capacity max_flow_dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink) {
  Dinic dinic{net, source, sink};
  dinic.run_to_max();
  return dinic.total_flow();
}

}  // namespace delta::flow
