#include "flow/dinic.h"

#include <algorithm>
#include <vector>

namespace delta::flow {

namespace {

class DinicSolver {
 public:
  DinicSolver(FlowNetwork& net, NodeIndex source, NodeIndex sink)
      : net_(net),
        source_(source),
        sink_(sink),
        level_(net.node_bound(), -1),
        current_arc_(net.node_bound(), kNoEdge) {}

  Capacity run() {
    while (build_levels()) {
      for (std::size_t v = 0; v < current_arc_.size(); ++v) {
        current_arc_[v] =
            net_.is_active(static_cast<NodeIndex>(v))
                ? net_.first_edge(static_cast<NodeIndex>(v))
                : kNoEdge;
      }
      while (push_blocking(source_, kInfiniteCapacity) > 0) {
      }
    }
    return net_.outflow(source_);
  }

 private:
  FlowNetwork& net_;
  NodeIndex source_;
  NodeIndex sink_;
  std::vector<int> level_;
  std::vector<EdgeId> current_arc_;
  std::vector<NodeIndex> queue_;

  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    queue_.clear();
    queue_.push_back(source_);
    level_[static_cast<std::size_t>(source_)] = 0;
    for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
      const NodeIndex v = queue_[qi];
      for (EdgeId e = net_.first_edge(v); e != kNoEdge;
           e = net_.edge(e).next) {
        if (net_.residual(e) <= 0) continue;
        const NodeIndex w = net_.edge(e).to;
        if (level_[static_cast<std::size_t>(w)] != -1) continue;
        level_[static_cast<std::size_t>(w)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue_.push_back(w);
      }
    }
    return level_[static_cast<std::size_t>(sink_)] != -1;
  }

  Capacity push_blocking(NodeIndex v, Capacity limit) {
    if (v == sink_) return limit;
    auto& arc = current_arc_[static_cast<std::size_t>(v)];
    while (arc != kNoEdge) {
      const auto& ed = net_.edge(arc);
      const NodeIndex w = ed.to;
      if (net_.residual(arc) > 0 &&
          level_[static_cast<std::size_t>(w)] ==
              level_[static_cast<std::size_t>(v)] + 1) {
        const Capacity pushed =
            push_blocking(w, std::min(limit, net_.residual(arc)));
        if (pushed > 0) {
          net_.add_flow(arc, pushed);
          return pushed;
        }
      }
      arc = ed.next;
    }
    return 0;
  }
};

}  // namespace

Capacity max_flow_dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink) {
  DELTA_CHECK(net.is_active(source));
  DELTA_CHECK(net.is_active(sink));
  DELTA_CHECK(source != sink);
  return DinicSolver{net, source, sink}.run();
}

}  // namespace delta::flow
