#include "flow/bipartite_cover.h"

#include <algorithm>

namespace delta::flow {

template <typename Engine>
BasicBipartiteCoverSolver<Engine>::BasicBipartiteCoverSolver()
    : source_(net_.add_node()),
      sink_(net_.add_node()),
      solver_(net_, source_, sink_) {
  ensure_slot(sink_);
  side_[static_cast<std::size_t>(source_)] = Side::kFree;
  side_[static_cast<std::size_t>(sink_)] = Side::kFree;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::ensure_slot(NodeIndex v) {
  const auto need = static_cast<std::size_t>(v) + 1;
  if (side_.size() < need) {
    side_.resize(need, Side::kFree);
    generation_.resize(need, 0);
    anchor_edge_.resize(need, kNoEdge);
  }
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::check_handle(NodeIndex v,
                                                     std::uint32_t gen,
                                                     Side side) const {
  DELTA_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < side_.size(),
                  "stale or invalid vertex handle");
  DELTA_CHECK_MSG(side_[static_cast<std::size_t>(v)] == side,
                  "vertex handle side mismatch");
  DELTA_CHECK_MSG(generation_[static_cast<std::size_t>(v)] == gen,
                  "vertex handle generation mismatch (node was removed)");
}

template <typename Engine>
typename BasicBipartiteCoverSolver<Engine>::UpdateNode
BasicBipartiteCoverSolver<Engine>::add_update(Capacity weight) {
  DELTA_CHECK(weight > 0);
  const NodeIndex v = net_.add_node();
  ensure_slot(v);
  side_[static_cast<std::size_t>(v)] = Side::kUpdate;
  anchor_edge_[static_cast<std::size_t>(v)] =
      net_.add_edge(source_, v, weight);
  ++update_count_;
  cover_fresh_ = false;
  return UpdateNode{v, generation_[static_cast<std::size_t>(v)]};
}

template <typename Engine>
typename BasicBipartiteCoverSolver<Engine>::QueryNode
BasicBipartiteCoverSolver<Engine>::add_query(Capacity weight) {
  DELTA_CHECK(weight > 0);
  const NodeIndex v = net_.add_node();
  ensure_slot(v);
  side_[static_cast<std::size_t>(v)] = Side::kQuery;
  anchor_edge_[static_cast<std::size_t>(v)] = net_.add_edge(v, sink_, weight);
  ++query_count_;
  cover_fresh_ = false;
  return QueryNode{v, generation_[static_cast<std::size_t>(v)]};
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::connect(UpdateNode u, QueryNode q) {
  check_handle(u.index, u.generation, Side::kUpdate);
  check_handle(q.index, q.generation, Side::kQuery);
  net_.add_edge(u.index, q.index, kInfiniteCapacity);
  cover_fresh_ = false;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::add_weight(QueryNode q,
                                                   Capacity delta) {
  check_handle(q.index, q.generation, Side::kQuery);
  DELTA_CHECK(delta > 0);
  const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(q.index)];
  net_.set_capacity(anchor, net_.edge(anchor).cap + delta);
  cover_fresh_ = false;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::add_weight(UpdateNode u,
                                                   Capacity delta) {
  check_handle(u.index, u.generation, Side::kUpdate);
  DELTA_CHECK(delta > 0);
  const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(u.index)];
  net_.set_capacity(anchor, net_.edge(anchor).cap + delta);
  cover_fresh_ = false;
}

template <typename Engine>
Capacity BasicBipartiteCoverSolver<Engine>::weight(QueryNode q) const {
  check_handle(q.index, q.generation, Side::kQuery);
  return net_.edge(anchor_edge_[static_cast<std::size_t>(q.index)]).cap;
}

template <typename Engine>
Capacity BasicBipartiteCoverSolver<Engine>::weight(UpdateNode u) const {
  check_handle(u.index, u.generation, Side::kUpdate);
  return net_.edge(anchor_edge_[static_cast<std::size_t>(u.index)]).cap;
}

template <typename Engine>
std::size_t BasicBipartiteCoverSolver<Engine>::degree(QueryNode q) const {
  check_handle(q.index, q.generation, Side::kQuery);
  std::size_t n = 0;
  for (EdgeId e = net_.first_edge(q.index); e != kNoEdge;
       e = net_.edge(e).next) {
    // q's incident list holds its q->t anchor (cap > 0) plus the reverse
    // (cap == 0) of every interaction edge u->q.
    if (net_.edge(e).cap == 0) ++n;
  }
  return n;
}

template <typename Engine>
std::size_t BasicBipartiteCoverSolver<Engine>::degree(UpdateNode u) const {
  check_handle(u.index, u.generation, Side::kUpdate);
  std::size_t n = 0;
  for (EdgeId e = net_.first_edge(u.index); e != kNoEdge;
       e = net_.edge(e).next) {
    // u's incident list holds the reverse (cap == 0) of its s->u anchor plus
    // every forward interaction edge u->q (cap > 0).
    if (net_.edge(e).cap > 0) ++n;
  }
  return n;
}

template <typename Engine>
bool BasicBipartiteCoverSolver<Engine>::alive(QueryNode q) const {
  return q.index >= 0 && static_cast<std::size_t>(q.index) < side_.size() &&
         side_[static_cast<std::size_t>(q.index)] == Side::kQuery &&
         generation_[static_cast<std::size_t>(q.index)] == q.generation;
}

template <typename Engine>
bool BasicBipartiteCoverSolver<Engine>::alive(UpdateNode u) const {
  return u.index >= 0 && static_cast<std::size_t>(u.index) < side_.size() &&
         side_[static_cast<std::size_t>(u.index)] == Side::kUpdate &&
         generation_[static_cast<std::size_t>(u.index)] == u.generation;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::remove_update(UpdateNode u) {
  check_handle(u.index, u.generation, Side::kUpdate);
  const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(u.index)];
  // Cancel the flow routed through u: every unit entering via s->u leaves on
  // some interaction edge u->q and then on q's anchor q->t. Walking the
  // interaction edges and backing their flow out of the affected query
  // anchors restores a feasible (smaller) flow with u flow-free.
  Capacity cancelled = 0;
  for (EdgeId e = net_.first_edge(u.index); e != kNoEdge;
       e = net_.edge(e).next) {
    const auto& ed = net_.edge(e);
    if (ed.cap == 0) continue;  // the u->s reverse of the anchor
    const Capacity phi = ed.flow;
    if (phi <= 0) continue;
    const NodeIndex q = ed.to;
    net_.add_flow(e, -phi);
    net_.add_flow(anchor_edge_[static_cast<std::size_t>(q)], -phi);
    cancelled += phi;
  }
  DELTA_CHECK_MSG(net_.edge(anchor).flow == cancelled,
                  "flow conservation broken at removed update vertex");
  net_.add_flow(anchor, -cancelled);
  net_.remove_node(u.index);
  side_[static_cast<std::size_t>(u.index)] = Side::kFree;
  ++generation_[static_cast<std::size_t>(u.index)];
  anchor_edge_[static_cast<std::size_t>(u.index)] = kNoEdge;
  --update_count_;
  cover_fresh_ = false;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::remove_query(QueryNode q) {
  check_handle(q.index, q.generation, Side::kQuery);
  DELTA_CHECK_MSG(degree(q) == 0,
                  "remove_query requires an isolated query vertex");
  const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(q.index)];
  DELTA_CHECK_MSG(net_.edge(anchor).flow == 0,
                  "isolated query vertex still carries flow");
  net_.remove_node(q.index);
  side_[static_cast<std::size_t>(q.index)] = Side::kFree;
  ++generation_[static_cast<std::size_t>(q.index)];
  anchor_edge_[static_cast<std::size_t>(q.index)] = kNoEdge;
  --query_count_;
  cover_fresh_ = false;
}

template <typename Engine>
void BasicBipartiteCoverSolver<Engine>::remove_query_force(QueryNode q) {
  check_handle(q.index, q.generation, Side::kQuery);
  const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(q.index)];
  // Cancel flow along every s -> u -> q path through this vertex.
  Capacity cancelled = 0;
  for (EdgeId e = net_.first_edge(q.index); e != kNoEdge;
       e = net_.edge(e).next) {
    const auto& ed = net_.edge(e);
    if (ed.cap > 0) continue;  // the q->t anchor itself
    // Reverse of an interaction edge u->q; its flow is -flow(u->q).
    const Capacity phi = -ed.flow;
    if (phi <= 0) continue;
    const NodeIndex u = ed.to;
    net_.add_flow(e ^ 1, -phi);  // the forward u->q edge
    net_.add_flow(anchor_edge_[static_cast<std::size_t>(u)], -phi);
    cancelled += phi;
  }
  DELTA_CHECK_MSG(net_.edge(anchor).flow == cancelled,
                  "flow conservation broken at removed query vertex");
  net_.add_flow(anchor, -cancelled);
  net_.remove_node(q.index);
  side_[static_cast<std::size_t>(q.index)] = Side::kFree;
  ++generation_[static_cast<std::size_t>(q.index)];
  anchor_edge_[static_cast<std::size_t>(q.index)] = kNoEdge;
  --query_count_;
  cover_fresh_ = false;
}

template <typename Engine>
std::vector<typename BasicBipartiteCoverSolver<Engine>::QueryNode>
BasicBipartiteCoverSolver<Engine>::neighbors(UpdateNode u) const {
  std::vector<QueryNode> out;
  for_each_neighbor(u, [&out](QueryNode q) { out.push_back(q); });
  return out;
}

template <typename Engine>
std::vector<typename BasicBipartiteCoverSolver<Engine>::UpdateNode>
BasicBipartiteCoverSolver<Engine>::neighbors(QueryNode q) const {
  std::vector<UpdateNode> out;
  for_each_neighbor(q, [&out](UpdateNode u) { out.push_back(u); });
  return out;
}

template <typename Engine>
const typename BasicBipartiteCoverSolver<Engine>::Cover&
BasicBipartiteCoverSolver<Engine>::compute() {
  solver_.run_to_max();
  solver_.compute_reachability();
  cover_fresh_ = true;

  cover_.updates.clear();
  cover_.queries.clear();
  cover_.weight = 0;
  // Update vertices hang off the source's adjacency list (forward anchors).
  for (EdgeId e = net_.first_edge(source_); e != kNoEdge;
       e = net_.edge(e).next) {
    const auto& ed = net_.edge(e);
    DELTA_DCHECK(ed.cap > 0);
    const NodeIndex u = ed.to;
    if (!solver_.reachable(u)) {
      cover_.updates.push_back(
          UpdateNode{u, generation_[static_cast<std::size_t>(u)]});
      cover_.weight += ed.cap;
    }
  }
  // Query vertices hang off the sink's adjacency list (anchor reverses).
  for (EdgeId e = net_.first_edge(sink_); e != kNoEdge;
       e = net_.edge(e).next) {
    const auto& ed = net_.edge(e);
    DELTA_DCHECK(ed.cap == 0);
    const NodeIndex q = ed.to;
    if (solver_.reachable(q)) {
      const EdgeId anchor = anchor_edge_[static_cast<std::size_t>(q)];
      cover_.queries.push_back(
          QueryNode{q, generation_[static_cast<std::size_t>(q)]});
      cover_.weight += net_.edge(anchor).cap;
    }
  }
  DELTA_CHECK_MSG(cover_.weight == current_flow(),
                  "min-cut/max-flow duality violated: cover weight "
                      << cover_.weight << " vs flow " << current_flow());
  return cover_;
}

template <typename Engine>
bool BasicBipartiteCoverSolver<Engine>::in_last_cover(UpdateNode u) const {
  DELTA_CHECK_MSG(cover_fresh_, "cover queried after the graph changed");
  check_handle(u.index, u.generation, Side::kUpdate);
  return !solver_.reachable(u.index);
}

template <typename Engine>
bool BasicBipartiteCoverSolver<Engine>::in_last_cover(QueryNode q) const {
  DELTA_CHECK_MSG(cover_fresh_, "cover queried after the graph changed");
  check_handle(q.index, q.generation, Side::kQuery);
  return solver_.reachable(q.index);
}

template <typename Engine>
std::size_t BasicBipartiteCoverSolver<Engine>::interaction_count() const {
  return net_.active_edge_count() - update_count_ - query_count_;
}

template <typename Engine>
Capacity BasicBipartiteCoverSolver<Engine>::current_flow() const {
  return net_.outflow(source_);
}

template <typename Engine>
bool BasicBipartiteCoverSolver<Engine>::last_cover_is_valid() const {
  if (!cover_fresh_) return false;
  Capacity weight = 0;
  for (EdgeId e = net_.first_edge(source_); e != kNoEdge;
       e = net_.edge(e).next) {
    const NodeIndex u = net_.edge(e).to;
    const bool u_in_cover = !solver_.reachable(u);
    if (u_in_cover) weight += net_.edge(e).cap;
    // Every interaction edge u->q must be covered.
    for (EdgeId ie = net_.first_edge(u); ie != kNoEdge;
         ie = net_.edge(ie).next) {
      const auto& ied = net_.edge(ie);
      if (ied.cap == 0) continue;
      const bool q_in_cover = solver_.reachable(ied.to);
      if (!u_in_cover && !q_in_cover) return false;
    }
  }
  for (EdgeId e = net_.first_edge(sink_); e != kNoEdge;
       e = net_.edge(e).next) {
    const NodeIndex q = net_.edge(e).to;
    if (solver_.reachable(q)) {
      weight += net_.edge(anchor_edge_[static_cast<std::size_t>(q)]).cap;
    }
  }
  return weight == net_.outflow(source_);
}

template class BasicBipartiteCoverSolver<Dinic>;
template class BasicBipartiteCoverSolver<EdmondsKarp>;

}  // namespace delta::flow
