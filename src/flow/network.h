// A residual flow network with stable node and edge identifiers.
//
// The interaction graph behind VCover's UpdateManager lives for the whole
// middleware session: query and update vertices are added as events arrive
// and removed when the remainder-subgraph rule prunes them (§4 of the
// paper). The network therefore supports O(1) node/edge removal (doubly
// linked adjacency over a pooled edge array) and recycles freed slots so
// memory stays proportional to the *live* remainder graph, not to the whole
// history of the trace.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace delta::flow {

using NodeIndex = std::int32_t;
using EdgeId = std::int32_t;
using Capacity = std::int64_t;

inline constexpr NodeIndex kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

/// Large-but-safe stand-in for the infinite capacities on interaction edges
/// (u -> q). Chosen so that sums of many such capacities cannot overflow.
inline constexpr Capacity kInfiniteCapacity =
    std::numeric_limits<Capacity>::max() / 8;

class FlowNetwork {
 public:
  struct Edge {
    NodeIndex from = kNoNode;
    NodeIndex to = kNoNode;
    Capacity cap = 0;   // 0 on reverse edges
    Capacity flow = 0;  // negative of the paired edge's flow
    EdgeId next = kNoEdge;
    EdgeId prev = kNoEdge;
  };

  FlowNetwork() = default;

  /// Adds (or recycles) a node; returns its stable index.
  NodeIndex add_node();

  /// Removes a node and all incident edges. Every incident edge must carry
  /// zero flow — callers cancel flow first (see BipartiteCoverSolver).
  void remove_node(NodeIndex v);

  [[nodiscard]] bool is_active(NodeIndex v) const {
    return v >= 0 && static_cast<std::size_t>(v) < active_.size() &&
           active_[static_cast<std::size_t>(v)] != 0;
  }

  /// Number of live nodes.
  [[nodiscard]] std::size_t active_node_count() const { return active_count_; }

  /// Upper bound on node indices ever issued (for scratch-array sizing).
  [[nodiscard]] std::size_t node_bound() const { return active_.size(); }

  [[nodiscard]] std::size_t active_edge_count() const {
    return active_edge_pairs_;
  }

  /// Adds a forward edge with the given capacity plus its zero-capacity
  /// reverse edge; returns the forward edge id (always even-paired with
  /// id ^ 1 as its reverse).
  EdgeId add_edge(NodeIndex from, NodeIndex to, Capacity cap);

  /// Removes an edge pair. Both directions must carry zero flow.
  void remove_edge(EdgeId e);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DELTA_DCHECK(edge_live(e));
    return edges_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] EdgeId pair_of(EdgeId e) const { return e ^ 1; }

  /// First incident edge of v (iterate via edge(e).next).
  [[nodiscard]] EdgeId first_edge(NodeIndex v) const {
    DELTA_DCHECK(is_active(v));
    return head_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] Capacity residual(EdgeId e) const {
    const Edge& ed = edge(e);
    return ed.cap - ed.flow;
  }

  /// Pushes `delta` units of flow along edge e (may be negative to cancel).
  /// Keeps the paired edge consistent. The resulting flow must respect
  /// 0 <= flow <= cap on the forward edge of the pair.
  void add_flow(EdgeId e, Capacity delta);

  /// Raises or lowers an edge's capacity; must remain >= current flow.
  void set_capacity(EdgeId e, Capacity cap);

  /// Sum of flow leaving `v` (over forward edges only).
  [[nodiscard]] Capacity outflow(NodeIndex v) const;

  /// Verifies conservation at every node except the given source/sink and
  /// capacity feasibility on every edge. O(V+E); used by tests.
  [[nodiscard]] bool flow_is_feasible(NodeIndex source, NodeIndex sink) const;

  /// Deep copy with all flows reset to zero (for from-scratch solvers).
  [[nodiscard]] FlowNetwork zero_flow_copy() const;

 private:
  std::vector<Edge> edges_;
  std::vector<EdgeId> head_;
  std::vector<std::uint8_t> active_;
  std::vector<NodeIndex> free_nodes_;
  std::vector<EdgeId> free_edge_pairs_;  // stores the even id of each pair
  std::size_t active_count_ = 0;
  std::size_t active_edge_pairs_ = 0;

  [[nodiscard]] bool edge_live(EdgeId e) const {
    return e >= 0 && static_cast<std::size_t>(e) < edges_.size() &&
           edges_[static_cast<std::size_t>(e)].from != kNoNode;
  }

  void link_edge(EdgeId e);
  void unlink_edge(EdgeId e);
};

}  // namespace delta::flow
