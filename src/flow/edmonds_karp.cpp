#include "flow/edmonds_karp.h"

#include <algorithm>

namespace delta::flow {

EdmondsKarp::EdmondsKarp(FlowNetwork& net, NodeIndex source, NodeIndex sink)
    : net_(&net), source_(source), sink_(sink) {
  DELTA_CHECK(net.is_active(source));
  DELTA_CHECK(net.is_active(sink));
  DELTA_CHECK(source != sink);
}

void EdmondsKarp::ensure_scratch() {
  const std::size_t bound = net_->node_bound();
  if (visit_epoch_.size() < bound) {
    visit_epoch_.resize(bound, 0);
    parent_edge_.resize(bound, kNoEdge);
  }
}

bool EdmondsKarp::bfs_to_sink() {
  ensure_scratch();
  ++epoch_;
  ++bfs_count_;
  queue_.clear();
  queue_.push_back(source_);
  visit_epoch_[static_cast<std::size_t>(source_)] = epoch_;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const NodeIndex v = queue_[qi];
    for (EdgeId e = net_->first_edge(v); e != kNoEdge;
         e = net_->edge(e).next) {
      if (net_->residual(e) <= 0) continue;
      const NodeIndex w = net_->edge(e).to;
      auto& stamp = visit_epoch_[static_cast<std::size_t>(w)];
      if (stamp == epoch_) continue;
      stamp = epoch_;
      parent_edge_[static_cast<std::size_t>(w)] = e;
      if (w == sink_) return true;
      queue_.push_back(w);
    }
  }
  return false;
}

Capacity EdmondsKarp::run_to_max() {
  Capacity added = 0;
  while (bfs_to_sink()) {
    // Bottleneck along the parent chain.
    Capacity bottleneck = kInfiniteCapacity;
    for (NodeIndex v = sink_; v != source_;) {
      const EdgeId e = parent_edge_[static_cast<std::size_t>(v)];
      bottleneck = std::min(bottleneck, net_->residual(e));
      v = net_->edge(e).from;
    }
    DELTA_CHECK(bottleneck > 0);
    for (NodeIndex v = sink_; v != source_;) {
      const EdgeId e = parent_edge_[static_cast<std::size_t>(v)];
      net_->add_flow(e, bottleneck);
      v = net_->edge(e).from;
    }
    added += bottleneck;
  }
  return added;
}

Capacity EdmondsKarp::total_flow() const { return net_->outflow(source_); }

void EdmondsKarp::compute_reachability() {
  ensure_scratch();
  ++epoch_;
  queue_.clear();
  queue_.push_back(source_);
  visit_epoch_[static_cast<std::size_t>(source_)] = epoch_;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const NodeIndex v = queue_[qi];
    for (EdgeId e = net_->first_edge(v); e != kNoEdge;
         e = net_->edge(e).next) {
      if (net_->residual(e) <= 0) continue;
      const NodeIndex w = net_->edge(e).to;
      auto& stamp = visit_epoch_[static_cast<std::size_t>(w)];
      if (stamp == epoch_) continue;
      stamp = epoch_;
      queue_.push_back(w);
    }
  }
}

bool EdmondsKarp::reachable(NodeIndex v) const {
  DELTA_DCHECK(v >= 0 &&
               static_cast<std::size_t>(v) < visit_epoch_.size());
  return visit_epoch_[static_cast<std::size_t>(v)] == epoch_;
}

Capacity max_flow_edmonds_karp(FlowNetwork& net, NodeIndex source,
                               NodeIndex sink) {
  EdmondsKarp ek{net, source, sink};
  ek.run_to_max();
  return ek.total_flow();
}

}  // namespace delta::flow
