// Dinic's max-flow algorithm (level graph + blocking flow). Not used on the
// middleware hot path — the incremental Edmonds–Karp is — but kept as an
// independently-implemented oracle for correctness tests and as the
// comparison point in the flow micro benchmark (ablation A6).
#pragma once

#include "flow/network.h"

namespace delta::flow {

/// Augments the network's current flow to a maximum flow using Dinic's
/// algorithm and returns the final total flow out of `source`.
Capacity max_flow_dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink);

}  // namespace delta::flow
