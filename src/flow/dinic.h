// Dinic's max-flow algorithm (level graph + blocking flow), in two forms:
//
//  * class Dinic — the incremental engine behind BipartiteCoverSolver's
//    cover computation. Like EdmondsKarp it augments whatever feasible flow
//    the network currently carries, so additions since the last compute()
//    only cost the difference; unlike EdmondsKarp it saturates whole level
//    graphs per BFS (O(V^2 E) worst case vs O(V E^2)), and its final failed
//    level build doubles as the min-cut reachability pass, so a cover
//    computation that is already maximal costs exactly one BFS. All scratch
//    (level array, queue, current-arc cursors) is owned by the engine and
//    reused across calls — no per-compute() allocation once warm.
//
//  * max_flow_dinic — the one-shot free function, kept as the
//    independently-implemented oracle for correctness tests and the flow
//    micro benchmark (ablation A6).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/network.h"

namespace delta::flow {

class Dinic {
 public:
  /// Binds to a network whose flow it will maintain. The network may gain
  /// and lose nodes/edges between calls as long as the flow stays feasible.
  Dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink);

  /// Augments the current flow to a maximum flow; returns the flow added by
  /// this call (zero when the existing flow was already maximum).
  Capacity run_to_max();

  /// Current total flow out of the source.
  [[nodiscard]] Capacity total_flow() const;

  /// Makes `reachable(v)` answer membership in the source side of a min
  /// cut. Must be called after run_to_max() with the network unchanged in
  /// between (the only state in which residual reachability defines a min
  /// cut); in that state the final level build of run_to_max() already
  /// holds the answer, so this is O(1).
  void compute_reachability();
  [[nodiscard]] bool reachable(NodeIndex v) const;

  /// Cumulative number of level-graph BFS builds (the engine's unit of
  /// search work, comparable to EdmondsKarp::bfs_count's augmenting-path
  /// searches in the incremental-cover micro benchmark).
  [[nodiscard]] std::int64_t bfs_count() const { return bfs_count_; }

 private:
  FlowNetwork* net_;
  NodeIndex source_;
  NodeIndex sink_;

  // Scratch reused across calls; resized (never shrunk) to node_bound().
  std::vector<int> level_;
  std::vector<EdgeId> current_arc_;
  std::vector<NodeIndex> queue_;
  std::int64_t bfs_count_ = 0;
  /// True while level_ reflects a BFS over the *final* residual graph of
  /// the last run_to_max() (i.e. the one that failed to reach the sink).
  bool levels_current_ = false;

  bool build_levels();
  Capacity push_blocking(NodeIndex v, Capacity limit);
};

/// Augments the network's current flow to a maximum flow using Dinic's
/// algorithm and returns the final total flow out of `source`.
Capacity max_flow_dinic(FlowNetwork& net, NodeIndex source, NodeIndex sink);

}  // namespace delta::flow
