// SDSS-style trace synthesis (DESIGN.md §3 substitution).
//
// Queries: a template mixture (cone searches, ra/dec range scans, spatial
// self-joins, aggregations, sky-scan chunks) positioned by the evolving
// hotspot process, with result sizes derived from the density model and a
// long warm-up of cheap queries (the paper's trace property, §6.1).
// Updates: great-circle telescope scans with batch sizes proportional to the
// target object's density. Both streams are then calibrated to the paper's
// traffic magnitudes (~300 GB of post-warm-up query results; ~2 MB mean
// update, giving Replica ≈ 260 GB at 250 k updates).
//
// Determinism: generate(seed) is a pure function of (partition map, density
// model, params, seed).
#pragma once

#include <memory>

#include "htm/partition_map.h"
#include "storage/catalog.h"
#include "storage/density_model.h"
#include "workload/hotspot_model.h"
#include "workload/scan_model.h"
#include "workload/trace.h"

namespace delta::workload {

struct TraceParams {
  std::int64_t query_count = 250'000;
  std::int64_t update_count = 250'000;

  /// Post-warm-up calibration targets.
  double postwarmup_query_gb = 300.0;
  double mean_postwarmup_update_mb = 2.1;

  /// Fraction of queries considered warm-up; their sizes ramp geometrically
  /// from `warmup_floor` up to full scale, reaching full scale at
  /// `warmup_ramp_end` of the warm-up (the tail of the warm-up then carries
  /// full-sized queries, so cache loading completes before the measurement
  /// window opens — as in the paper, where the cache warms during the
  /// excluded first 250 k events).
  double warmup_fraction = 0.5;
  double warmup_floor = 0.02;
  double warmup_ramp_end = 0.3;

  /// Template mixture weights (need not be normalized).
  double cone_weight = 0.55;
  double rect_weight = 0.20;
  double join_weight = 0.10;
  double agg_weight = 0.10;
  double scan_chunk_weight = 0.05;

  /// Region sizing.
  double cone_radius_median_rad = 0.015;  // ~0.9 degrees
  double cone_radius_sigma = 0.9;
  double cone_radius_max_rad = 0.06;
  double rect_side_median_deg = 1.2;
  double rect_side_sigma = 0.8;
  double rect_side_max_deg = 3.0;
  double scan_chunk_ra_lo_deg = 10.0;
  double scan_chunk_ra_hi_deg = 25.0;
  double scan_chunk_dec_lo_deg = 0.5;
  double scan_chunk_dec_hi_deg = 1.5;

  /// Output sizing (fraction of scanned rows' bytes returned).
  double projection_lo = 0.05;
  double projection_hi = 1.0;
  double join_output_lo = 0.01;
  double join_output_hi = 0.25;
  double agg_bytes_lo = 4096.0;
  double agg_bytes_hi = 65536.0;

  /// Staleness-tolerance mixture (t(q), in merged-event units).
  double strict_fraction = 0.55;
  double moderate_fraction = 0.30;
  EventTime moderate_tolerance_lo = 200;
  EventTime moderate_tolerance_hi = 2'000;
  EventTime loose_tolerance_lo = 5'000;
  EventTime loose_tolerance_hi = 20'000;

  /// Interleaving: queries arrive in blocks, updates in nightly bursts.
  double mean_query_block = 120.0;

  /// Update sizing before calibration.
  double update_rows_base = 500.0;
  double update_rows_sigma = 0.5;
  /// Exponent tying batch size to object density ("the size of an update is
  /// proportional to the density of the data object", §6.1).
  double update_density_exponent = 1.0;

  /// Query clusters settle only on objects at most this large (0 disables
  /// the filter). Keeps the hot working set's demand/load-cost ratio high —
  /// interest programs rarely camp on the very densest partitions.
  double hotspot_max_object_gb = 12.0;

  HotspotModel::Params hotspot;
  ScanModel::Params scan;
};

class TraceGenerator {
 public:
  /// `map` must be built from `density.weights()` *after* the density has
  /// been scaled to total rows (so partition weights are row counts).
  TraceGenerator(std::shared_ptr<const htm::PartitionMap> map,
                 const storage::DensityModel& density,
                 TraceParams params = {});

  [[nodiscard]] Trace generate(std::uint64_t seed) const;

  [[nodiscard]] const TraceParams& params() const { return params_; }

 private:
  std::shared_ptr<const htm::PartitionMap> map_;
  const storage::DensityModel* density_;
  TraceParams params_;
};

}  // namespace delta::workload
