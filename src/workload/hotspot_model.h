// Evolving query-hotspot process.
//
// Scientific workloads "exhibit a constant evolution in the queried data
// objects … entirely different sets of data objects being queried in a short
// time period" (§1). The model keeps a small set of active interest clusters
// inside the survey footprint; each query targets a cluster (Zipf-weighted)
// or, with some probability, a serendipitous uniform position. Clusters
// relocate after exponentially-distributed dwell times, which produces the
// hotspot drift visible in Fig. 7a.
#pragma once

#include <functional>
#include <vector>

#include "htm/vec3.h"
#include "util/rng.h"
#include "util/types.h"

namespace delta::workload {

class HotspotModel {
 public:
  struct Params {
    int cluster_count = 4;
    /// Probability a query targets a cluster rather than a random position.
    double hotspot_probability = 0.92;
    /// Mean dwell (in events) before a cluster relocates. Relocations mix
    /// local drift (interest moves to data "close to or related to" the
    /// current data, §6.2) with occasional serendipitous global jumps that
    /// move the cluster anywhere in the footprint.
    double mean_dwell_events = 130'000.0;
    double global_jump_fraction = 0.2;
    double local_jump_sigma_rad = 0.06;
    /// Angular spread of query centers around a cluster center (radians).
    double cluster_sigma_rad = 0.022;
    /// Zipf exponent for cluster popularity.
    double popularity_exponent = 0.9;
    /// Survey footprint (queries stay inside it).
    htm::Vec3 footprint_center = htm::from_ra_dec(185.0, 32.0);
    double footprint_radius_rad = 1.1;
    /// Optional predicate constraining where clusters may settle (e.g.
    /// extragalactic programs prefer moderate-density fields away from the
    /// densest partitions). Cluster centers — not individual queries — are
    /// filtered, so query scatter still spills into neighbours.
    std::function<bool(const htm::Vec3&)> placement_acceptor;
  };

  HotspotModel(const Params& params, util::Rng rng);

  /// Draws the sky position targeted by the query arriving at `now`,
  /// advancing cluster relocations that are due.
  htm::Vec3 sample_query_center(EventTime now);

  /// Current cluster centers (testing / Fig. 7a diagnostics).
  [[nodiscard]] const std::vector<htm::Vec3>& cluster_centers() const {
    return centers_;
  }

  /// Total relocations so far.
  [[nodiscard]] std::int64_t relocation_count() const { return relocations_; }

 private:
  Params params_;
  util::Rng rng_;
  util::ZipfSampler popularity_;
  std::vector<htm::Vec3> centers_;
  std::vector<EventTime> next_jump_;
  std::int64_t relocations_ = 0;

  htm::Vec3 random_footprint_point();
  [[nodiscard]] EventTime draw_dwell(EventTime now);
};

}  // namespace delta::workload
