// A complete middleware workload: queries, updates, their merged arrival
// order, and the repository's initial object sizes. Traces are
// partition-aware but granularity-portable: queries carry their base-trixel
// covers and updates their base-trixel index, so the same trace can be
// re-mapped onto any partition map built over the same base level and
// density model (the Fig. 8b granularity sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "htm/partition_map.h"
#include "util/types.h"
#include "workload/events.h"

namespace delta::workload {

struct TraceInfo {
  std::uint64_t seed = 0;
  int base_level = 5;
  Bytes row_bytes;
  /// Merged-event index where the post-warm-up measurement window begins.
  EventTime warmup_end_event = 0;
  /// Object count of the partition map the trace is currently mapped to.
  std::size_t partition_count = 0;
};

class Trace {
 public:
  TraceInfo info;
  std::vector<Query> queries;
  std::vector<Update> updates;
  std::vector<Event> order;
  /// Initial (pre-growth) size per partition, indexed by ObjectId.
  std::vector<Bytes> initial_object_bytes;

  [[nodiscard]] std::int64_t event_count() const {
    return static_cast<std::int64_t>(order.size());
  }

  /// Sum of ν(q) over queries arriving at or after `from_event` — the
  /// NoCache yardstick over the measurement window.
  [[nodiscard]] Bytes total_query_cost(EventTime from_event = 0) const;

  /// Sum of ν(u) over updates arriving at or after `from_event` — the
  /// Replica yardstick over the measurement window.
  [[nodiscard]] Bytes total_update_cost(EventTime from_event = 0) const;

  /// Re-derives B(q), o(u) and the initial object sizes under a different
  /// partition map. The map must share the trace's base level and be built
  /// from the same (row-scaled) density weights. Query/update costs are
  /// partitioning-independent and unchanged.
  void remap(const htm::PartitionMap& map);

  /// Structural sanity: monotone times, order indices in range, sorted
  /// non-empty B(q), positive costs. Throws on violation.
  void validate() const;
};

}  // namespace delta::workload
