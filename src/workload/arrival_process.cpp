#include "workload/arrival_process.h"

#include <cmath>

#include "util/check.h"

namespace delta::workload {

namespace {

/// Bursty-shape constants: trains of mean kBurstMean arrivals whose intra-
/// train gaps are kIntraFactor times shorter than the mean inter-arrival
/// time. The inter-train gap absorbs the remainder so the long-run mean
/// rate stays exactly `rate`:
///   E[train span] = (B-1) * f/rate + g  and  E[events]/E[span] = rate
///   => g = (B - (B-1) * f) / rate.
constexpr double kBurstMean = 8.0;
constexpr double kIntraFactor = 0.1;

}  // namespace

ArrivalProcess::Kind ArrivalProcess::parse_kind(const std::string& name) {
  if (name == "poisson") return Kind::kPoisson;
  if (name == "bursty") return Kind::kBursty;
  if (name == "diurnal") return Kind::kDiurnal;
  DELTA_CHECK_MSG(false, "unknown arrival process '"
                             << name
                             << "' (poisson | bursty | diurnal)");
  return Kind::kPoisson;
}

const char* ArrivalProcess::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kPoisson:
      return "poisson";
    case Kind::kBursty:
      return "bursty";
    case Kind::kDiurnal:
      return "diurnal";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(Kind kind, double rate_per_sec,
                               std::uint64_t seed, double period_seconds)
    : kind_(kind), rate_(rate_per_sec), period_(period_seconds), rng_(seed) {
  DELTA_CHECK(rate_per_sec > 0.0);
  DELTA_CHECK(period_seconds > 0.0);
}

double ArrivalProcess::next() {
  const double mean_gap = 1.0 / rate_;
  switch (kind_) {
    case Kind::kPoisson:
      clock_ += rng_.exponential(mean_gap);
      break;
    case Kind::kBursty: {
      if (burst_left_ > 0) {
        --burst_left_;
        clock_ += rng_.exponential(kIntraFactor * mean_gap);
      } else {
        // Start a new train: a geometric(mean kBurstMean) number of
        // arrivals, the first preceded by the long inter-train gap.
        burst_left_ = 0;
        while (rng_.next_double() > 1.0 / kBurstMean) ++burst_left_;
        const double inter_gap =
            (kBurstMean - (kBurstMean - 1.0) * kIntraFactor) * mean_gap;
        clock_ += rng_.exponential(inter_gap);
      }
      break;
    }
    case Kind::kDiurnal: {
      // Sinusoidally modulated Poisson, by rate-rescaling the exponential
      // gap with the instantaneous rate at the current clock. Piecewise
      // approximation (rate treated constant across one gap) — standard
      // for DES workload generators and exactly reproducible.
      constexpr double kAmplitude = 0.8;
      const double phase = 2.0 * 3.14159265358979323846 * clock_ / period_;
      const double instantaneous =
          rate_ * (1.0 + kAmplitude * std::sin(phase));
      clock_ += rng_.exponential(1.0 / instantaneous);
      break;
    }
  }
  return clock_;
}

}  // namespace delta::workload
