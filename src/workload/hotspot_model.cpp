#include "workload/hotspot_model.h"

#include <cmath>

#include "util/check.h"

namespace delta::workload {

HotspotModel::HotspotModel(const Params& params, util::Rng rng)
    : params_(params),
      rng_(rng),
      popularity_(static_cast<std::size_t>(params.cluster_count),
                  params.popularity_exponent) {
  DELTA_CHECK(params.cluster_count > 0);
  DELTA_CHECK(params.hotspot_probability >= 0.0 &&
              params.hotspot_probability <= 1.0);
  centers_.reserve(static_cast<std::size_t>(params.cluster_count));
  next_jump_.reserve(static_cast<std::size_t>(params.cluster_count));
  for (int i = 0; i < params.cluster_count; ++i) {
    centers_.push_back(random_footprint_point());
    next_jump_.push_back(draw_dwell(0));
  }
}

htm::Vec3 HotspotModel::random_footprint_point() {
  // Rejection sampling of a uniform direction within the footprint cap.
  htm::Vec3 fallback = params_.footprint_center;
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    const htm::Vec3 p = htm::normalized(
        {rng_.normal(0, 1), rng_.normal(0, 1), rng_.normal(0, 1)});
    if (htm::angular_distance(p, params_.footprint_center) >
        params_.footprint_radius_rad) {
      continue;
    }
    fallback = p;
    if (!params_.placement_acceptor || params_.placement_acceptor(p)) {
      return p;
    }
  }
  return fallback;  // acceptor too strict: fall back to any footprint point
}

EventTime HotspotModel::draw_dwell(EventTime now) {
  return now +
         static_cast<EventTime>(rng_.exponential(params_.mean_dwell_events)) +
         1;
}

htm::Vec3 HotspotModel::sample_query_center(EventTime now) {
  // Relocate clusters whose dwell expired: usually a local drift, sometimes
  // a serendipitous global jump.
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    if (next_jump_[i] <= now) {
      if (rng_.bernoulli(params_.global_jump_fraction)) {
        centers_[i] = random_footprint_point();
      } else {
        const double s = params_.local_jump_sigma_rad;
        const htm::Vec3& c = centers_[i];
        const htm::Vec3 moved = htm::normalized(
            {c.x + rng_.normal(0, s), c.y + rng_.normal(0, s),
             c.z + rng_.normal(0, s)});
        if (htm::angular_distance(moved, params_.footprint_center) <=
                params_.footprint_radius_rad &&
            (!params_.placement_acceptor ||
             params_.placement_acceptor(moved))) {
          centers_[i] = moved;
        }
      }
      next_jump_[i] = draw_dwell(now);
      ++relocations_;
    }
  }
  if (!rng_.bernoulli(params_.hotspot_probability)) {
    return random_footprint_point();  // serendipitous exploration
  }
  const std::size_t cluster = popularity_.sample(rng_);
  // Gaussian scatter around the cluster center, clipped to the footprint.
  const htm::Vec3& c = centers_[cluster];
  const double s = params_.cluster_sigma_rad;
  const htm::Vec3 p = htm::normalized({c.x + rng_.normal(0, s),
                                       c.y + rng_.normal(0, s),
                                       c.z + rng_.normal(0, s)});
  if (htm::angular_distance(p, params_.footprint_center) <=
      params_.footprint_radius_rad) {
    return p;
  }
  return c;
}

}  // namespace delta::workload
