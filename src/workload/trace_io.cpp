#include "workload/trace_io.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace delta::workload {

namespace {

constexpr const char* kMagic = "# delta-trace v1";

void write_region(std::ostream& os, const htm::Region& region) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, htm::Cone>) {
          os << "cone " << r.center.x << ' ' << r.center.y << ' '
             << r.center.z << ' ' << r.radius_rad;
        } else if constexpr (std::is_same_v<T, htm::RaDecRect>) {
          os << "rect " << r.ra_lo_deg << ' ' << r.ra_hi_deg << ' '
             << r.dec_lo_deg << ' ' << r.dec_hi_deg;
        } else {
          os << "band " << r.pole.x << ' ' << r.pole.y << ' ' << r.pole.z
             << ' ' << r.half_width_rad;
        }
      },
      region);
}

htm::Region read_region(std::istream& is) {
  std::string kind;
  is >> kind;
  if (kind == "cone") {
    htm::Cone c;
    is >> c.center.x >> c.center.y >> c.center.z >> c.radius_rad;
    return c;
  }
  if (kind == "rect") {
    htm::RaDecRect r;
    is >> r.ra_lo_deg >> r.ra_hi_deg >> r.dec_lo_deg >> r.dec_hi_deg;
    return r;
  }
  DELTA_CHECK_MSG(kind == "band", "unknown region kind '" << kind << "'");
  htm::GreatCircleBand b;
  is >> b.pole.x >> b.pole.y >> b.pole.z >> b.half_width_rad;
  return b;
}

QueryKind parse_query_kind(const std::string& s) {
  if (s == "cone") return QueryKind::kConeSearch;
  if (s == "rect") return QueryKind::kRangeRect;
  if (s == "self_join") return QueryKind::kSelfJoin;
  if (s == "aggregation") return QueryKind::kAggregation;
  DELTA_CHECK_MSG(s == "scan_chunk", "unknown query kind '" << s << "'");
  return QueryKind::kScanChunk;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << kMagic << '\n';
  os << std::setprecision(17);
  os << "info " << trace.info.seed << ' ' << trace.info.base_level << ' '
     << trace.info.row_bytes.count() << ' ' << trace.info.warmup_end_event
     << ' ' << trace.info.partition_count << '\n';
  for (std::size_t i = 0; i < trace.initial_object_bytes.size(); ++i) {
    os << "object " << i << ' ' << trace.initial_object_bytes[i].count()
       << '\n';
  }
  for (const Query& q : trace.queries) {
    os << "query " << q.id.value() << ' ' << q.time << ' '
       << to_string(q.kind) << ' ' << q.cost.count() << ' '
       << q.staleness_tolerance << ' ';
    write_region(os, q.region);
    os << " cover";
    for (const std::int32_t idx : q.base_cover) os << ' ' << idx;
    os << " objects";
    for (const ObjectId o : q.objects) os << ' ' << o.value();
    os << '\n';
  }
  for (const Update& u : trace.updates) {
    os << "update " << u.id.value() << ' ' << u.time << ' ' << u.base_index
       << ' ' << u.object.value() << ' ' << u.rows << ' ' << u.cost.count()
       << ' ' << u.position.x << ' ' << u.position.y << ' ' << u.position.z
       << '\n';
  }
}

Trace read_trace(std::istream& is) {
  std::string line;
  DELTA_CHECK_MSG(std::getline(is, line) && line == kMagic,
                  "not a delta-trace v1 file");
  Trace trace;
  bool have_info = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls{line};
    std::string tag;
    ls >> tag;
    if (tag == "info") {
      std::size_t partitions = 0;
      ls >> trace.info.seed >> trace.info.base_level;
      std::int64_t row_bytes = 0;
      ls >> row_bytes >> trace.info.warmup_end_event >> partitions;
      trace.info.row_bytes = Bytes{row_bytes};
      trace.info.partition_count = partitions;
      trace.initial_object_bytes.assign(partitions, Bytes{});
      have_info = true;
    } else if (tag == "object") {
      DELTA_CHECK(have_info);
      std::size_t idx = 0;
      std::int64_t bytes = 0;
      ls >> idx >> bytes;
      DELTA_CHECK(idx < trace.initial_object_bytes.size());
      trace.initial_object_bytes[idx] = Bytes{bytes};
    } else if (tag == "query") {
      Query q;
      std::int64_t id = 0;
      std::string kind;
      std::int64_t cost = 0;
      ls >> id >> q.time >> kind >> cost >> q.staleness_tolerance;
      q.id = QueryId{id};
      q.kind = parse_query_kind(kind);
      q.cost = Bytes{cost};
      q.region = read_region(ls);
      std::string section;
      ls >> section;
      DELTA_CHECK(section == "cover");
      std::string token;
      while (ls >> token) {
        if (token == "objects") break;
        q.base_cover.push_back(static_cast<std::int32_t>(std::stol(token)));
      }
      DELTA_CHECK(token == "objects");
      std::int64_t obj = 0;
      while (ls >> obj) q.objects.push_back(ObjectId{obj});
      trace.queries.push_back(std::move(q));
    } else if (tag == "update") {
      Update u;
      std::int64_t id = 0;
      std::int64_t object = 0;
      std::int64_t cost = 0;
      ls >> id >> u.time >> u.base_index >> object >> u.rows >> cost >>
          u.position.x >> u.position.y >> u.position.z;
      u.id = UpdateId{id};
      u.object = ObjectId{object};
      u.cost = Bytes{cost};
      trace.updates.push_back(u);
    } else {
      DELTA_CHECK_MSG(false, "unknown trace line tag '" << tag << "'");
    }
  }
  DELTA_CHECK_MSG(have_info, "trace file missing info line");

  // Reconstruct the merged order from the unique, increasing event times.
  trace.order.reserve(trace.queries.size() + trace.updates.size());
  std::size_t qi = 0;
  std::size_t ui = 0;
  while (qi < trace.queries.size() || ui < trace.updates.size()) {
    const bool take_query =
        ui >= trace.updates.size() ||
        (qi < trace.queries.size() &&
         trace.queries[qi].time < trace.updates[ui].time);
    if (take_query) {
      trace.order.push_back(
          {Event::Kind::kQuery, static_cast<std::int64_t>(qi++)});
    } else {
      trace.order.push_back(
          {Event::Kind::kUpdate, static_cast<std::int64_t>(ui++)});
    }
  }
  trace.validate();
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream os{path};
  DELTA_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_trace(os, trace);
  DELTA_CHECK_MSG(os.good(), "failed while writing " << path);
}

Trace load_trace(const std::string& path) {
  std::ifstream is{path};
  DELTA_CHECK_MSG(is.good(), "cannot open " << path);
  return read_trace(is);
}

}  // namespace delta::workload
