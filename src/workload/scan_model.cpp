#include "workload/scan_model.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace delta::workload {

namespace {

/// An orthonormal pair spanning the plane perpendicular to `n`.
std::pair<htm::Vec3, htm::Vec3> orthonormal_basis(const htm::Vec3& n) {
  const htm::Vec3 seed =
      std::fabs(n.z) < 0.9 ? htm::Vec3{0.0, 0.0, 1.0} : htm::Vec3{1.0, 0.0, 0.0};
  const htm::Vec3 u = htm::normalized(htm::cross(n, seed));
  const htm::Vec3 v = htm::normalized(htm::cross(n, u));
  return {u, v};
}

}  // namespace

ScanModel::ScanModel(const Params& params, util::Rng rng)
    : params_(params), rng_(rng) {
  DELTA_CHECK(params.stripe_count > 0);
  DELTA_CHECK(params.step_rad > 0.0);
  // Stripe poles: nearly orthogonal to the footprint center so each great
  // circle crosses the footprint, tilted so different stripes cross at
  // different offsets from the center (distinct declination-like bands).
  const htm::Vec3 f = htm::normalized(params.footprint_center);
  const auto [e1, e2] = orthonormal_basis(f);
  stripe_poles_.reserve(static_cast<std::size_t>(params.stripe_count));
  for (int i = 0; i < params.stripe_count; ++i) {
    const double frac =
        params.stripe_count == 1
            ? 0.5
            : static_cast<double>(i) / (params.stripe_count - 1);
    const double tilt =
        (params.tilt_lo_frac +
         frac * (params.tilt_hi_frac - params.tilt_lo_frac)) *
        params.footprint_radius_rad;
    const double pa = 2.0 * std::numbers::pi * static_cast<double>(i) /
                      params.stripe_count;
    const htm::Vec3 equatorial = e1 * std::cos(pa) + e2 * std::sin(pa);
    stripe_poles_.push_back(
        htm::normalized(equatorial * std::cos(tilt) + f * std::sin(tilt)));
  }
  begin_night();
}

void ScanModel::begin_night() {
  if (rng_.bernoulli(params_.random_stripe_probability)) {
    current_stripe_ = static_cast<int>(
        rng_.uniform_int(0, params_.stripe_count - 1));
  } else {
    current_stripe_ = night_counter_ % params_.stripe_count;
  }
  ++night_counter_;
  const htm::Vec3& base = stripe_poles_[static_cast<std::size_t>(current_stripe_)];
  night_pole_ = htm::normalized(
      {base.x + rng_.normal(0, params_.pole_jitter_rad),
       base.y + rng_.normal(0, params_.pole_jitter_rad),
       base.z + rng_.normal(0, params_.pole_jitter_rad)});
  const auto [u, v] = orthonormal_basis(night_pole_);
  basis_u_ = u;
  basis_v_ = v;
  // Enter the footprint at a random angle on the circle that lies inside.
  angle_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  for (int i = 0; i < 4096; ++i) {
    const htm::Vec3 p = basis_u_ * std::cos(angle_) + basis_v_ * std::sin(angle_);
    if (htm::angular_distance(p, params_.footprint_center) <=
        params_.footprint_radius_rad) {
      return;
    }
    angle_ += params_.step_rad * 4.0;
  }
  // Circle misses the footprint (extreme jitter): fall back to the center.
  angle_ = 0.0;
}

htm::Vec3 ScanModel::next_position() {
  for (int i = 0; i < 4096; ++i) {
    const htm::Vec3 p = htm::normalized(basis_u_ * std::cos(angle_) +
                                        basis_v_ * std::sin(angle_));
    angle_ += params_.step_rad;
    if (angle_ >= 2.0 * std::numbers::pi) {
      angle_ -= 2.0 * std::numbers::pi;
    }
    if (htm::angular_distance(p, params_.footprint_center) <=
        params_.footprint_radius_rad) {
      return p;
    }
  }
  return params_.footprint_center;  // degenerate jitter: stay in footprint
}

}  // namespace delta::workload
