#include "workload/trace_split.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace delta::workload {

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash so adjacent trixel indices
/// spread over endpoints instead of striping.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The query's locality key: its spatial anchor, or (cover-less) its id —
/// the same key kHashByRegion hashes, so both strategies group identically.
std::uint64_t anchor_key(const Query& q) {
  return q.base_cover.empty()
             ? mix(static_cast<std::uint64_t>(q.id.value()))
             : static_cast<std::uint64_t>(q.base_cover.front());
}

/// kBalancedByLoad: group queries by anchor (the locality unit the hash
/// split preserves), then LPT-pack the anchors onto endpoints by their
/// exact query counts. The makespan guarantee is the standard LPT one —
/// max endpoint load <= mean load + heaviest anchor count — so imbalance
/// is bounded by the anchor granularity, not by hash luck.
std::vector<std::uint32_t> assign_balanced(const Trace& trace,
                                           std::size_t endpoint_count) {
  // Dense anchor ids, ordered by key value (deterministic, no hash-map
  // iteration order anywhere).
  std::vector<std::uint64_t> keys(trace.queries.size());
  for (std::size_t i = 0; i < trace.queries.size(); ++i) {
    keys[i] = anchor_key(trace.queries[i]);
  }
  std::vector<std::uint64_t> distinct = keys;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<double> counts(distinct.size(), 0.0);
  std::vector<std::size_t> anchor_id(trace.queries.size(), 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto it =
        std::lower_bound(distinct.begin(), distinct.end(), keys[i]);
    anchor_id[i] = static_cast<std::size_t>(it - distinct.begin());
    counts[anchor_id[i]] += 1.0;
  }
  const std::vector<std::vector<std::size_t>> packing =
      util::lpt_assignment(counts, endpoint_count);
  std::vector<std::uint32_t> endpoint_of(distinct.size(), 0);
  for (std::size_t e = 0; e < packing.size(); ++e) {
    for (const std::size_t a : packing[e]) {
      endpoint_of[a] = static_cast<std::uint32_t>(e);
    }
  }
  std::vector<std::uint32_t> assignment(trace.queries.size(), 0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = endpoint_of[anchor_id[i]];
  }
  return assignment;
}

}  // namespace

std::vector<std::uint32_t> assign_queries(const Trace& trace,
                                          std::size_t endpoint_count,
                                          SplitStrategy strategy) {
  DELTA_CHECK(endpoint_count > 0);
  std::vector<std::uint32_t> assignment(trace.queries.size(), 0);
  if (endpoint_count == 1) return assignment;
  if (strategy == SplitStrategy::kBalancedByLoad) {
    return assign_balanced(trace, endpoint_count);
  }
  const auto n = static_cast<std::uint64_t>(endpoint_count);
  for (std::size_t i = 0; i < trace.queries.size(); ++i) {
    switch (strategy) {
      case SplitStrategy::kRoundRobin:
        assignment[i] = static_cast<std::uint32_t>(i % n);
        break;
      case SplitStrategy::kHashByRegion: {
        const Query& q = trace.queries[i];
        // The region's first base trixel anchors the query spatially; a
        // cover-less query (shouldn't happen in generated traces) falls
        // back to its id so the split stays total.
        const std::uint64_t key =
            q.base_cover.empty()
                ? mix(static_cast<std::uint64_t>(q.id.value()))
                : mix(static_cast<std::uint64_t>(q.base_cover.front()));
        assignment[i] = static_cast<std::uint32_t>(key % n);
        break;
      }
      case SplitStrategy::kBalancedByLoad:
        break;  // handled above
    }
  }
  return assignment;
}

}  // namespace delta::workload
