#include "workload/trace_split.h"

#include "util/check.h"

namespace delta::workload {

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash so adjacent trixel indices
/// spread over endpoints instead of striping.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::uint32_t> assign_queries(const Trace& trace,
                                          std::size_t endpoint_count,
                                          SplitStrategy strategy) {
  DELTA_CHECK(endpoint_count > 0);
  std::vector<std::uint32_t> assignment(trace.queries.size(), 0);
  if (endpoint_count == 1) return assignment;
  const auto n = static_cast<std::uint64_t>(endpoint_count);
  for (std::size_t i = 0; i < trace.queries.size(); ++i) {
    switch (strategy) {
      case SplitStrategy::kRoundRobin:
        assignment[i] = static_cast<std::uint32_t>(i % n);
        break;
      case SplitStrategy::kHashByRegion: {
        const Query& q = trace.queries[i];
        // The region's first base trixel anchors the query spatially; a
        // cover-less query (shouldn't happen in generated traces) falls
        // back to its id so the split stays total.
        const std::uint64_t key =
            q.base_cover.empty()
                ? mix(static_cast<std::uint64_t>(q.id.value()))
                : mix(static_cast<std::uint64_t>(q.base_cover.front()));
        assignment[i] = static_cast<std::uint32_t>(key % n);
        break;
      }
    }
  }
  return assignment;
}

}  // namespace delta::workload
