#include "workload/trace.h"

#include <algorithm>

#include "util/check.h"

namespace delta::workload {

Bytes Trace::total_query_cost(EventTime from_event) const {
  Bytes total;
  for (const Query& q : queries) {
    if (q.time >= from_event) total += q.cost;
  }
  return total;
}

Bytes Trace::total_update_cost(EventTime from_event) const {
  Bytes total;
  for (const Update& u : updates) {
    if (u.time >= from_event) total += u.cost;
  }
  return total;
}

void Trace::remap(const htm::PartitionMap& map) {
  DELTA_CHECK_MSG(map.base_level() == info.base_level,
                  "partition map base level mismatch");
  for (Query& q : queries) {
    q.objects.clear();
    for (const std::int32_t idx : q.base_cover) {
      q.objects.push_back(map.object_for_base_index(idx));
    }
    std::sort(q.objects.begin(), q.objects.end());
    q.objects.erase(std::unique(q.objects.begin(), q.objects.end()),
                    q.objects.end());
  }
  for (Update& u : updates) {
    DELTA_CHECK(u.base_index >= 0);
    u.object = map.object_for_base_index(u.base_index);
  }
  initial_object_bytes.assign(map.partition_count(), Bytes{});
  for (std::size_t i = 0; i < map.partition_count(); ++i) {
    const ObjectId oid{static_cast<std::int64_t>(i)};
    // Partition weights are row counts when the map is built from a
    // row-scaled density model.
    initial_object_bytes[i] = Bytes{static_cast<std::int64_t>(
        map.partition_weight(oid) * info.row_bytes.as_double())};
  }
  info.partition_count = map.partition_count();
}

void Trace::validate() const {
  DELTA_CHECK(info.row_bytes.count() > 0);
  DELTA_CHECK(order.size() == queries.size() + updates.size());
  DELTA_CHECK(info.partition_count == initial_object_bytes.size());
  EventTime prev = -1;
  std::int64_t qi = 0;
  std::int64_t ui = 0;
  for (const Event& e : order) {
    if (e.kind == Event::Kind::kQuery) {
      DELTA_CHECK(e.index == qi);
      const Query& q = queries[static_cast<std::size_t>(qi++)];
      DELTA_CHECK(q.time > prev);
      prev = q.time;
      DELTA_CHECK(q.cost.count() > 0);
      DELTA_CHECK(q.staleness_tolerance >= 0);
      DELTA_CHECK(!q.objects.empty());
      DELTA_CHECK(std::is_sorted(q.objects.begin(), q.objects.end()));
      for (const ObjectId o : q.objects) {
        DELTA_CHECK(o.valid());
        DELTA_CHECK(static_cast<std::size_t>(o.value()) <
                    initial_object_bytes.size());
      }
    } else {
      DELTA_CHECK(e.index == ui);
      const Update& u = updates[static_cast<std::size_t>(ui++)];
      DELTA_CHECK(u.time > prev);
      prev = u.time;
      DELTA_CHECK(u.cost.count() > 0);
      DELTA_CHECK(u.rows > 0.0);
      DELTA_CHECK(u.object.valid());
      DELTA_CHECK(static_cast<std::size_t>(u.object.value()) <
                  initial_object_bytes.size());
    }
  }
  DELTA_CHECK(qi == static_cast<std::int64_t>(queries.size()));
  DELTA_CHECK(ui == static_cast<std::int64_t>(updates.size()));
  DELTA_CHECK(info.warmup_end_event >= 0 &&
              info.warmup_end_event <= static_cast<EventTime>(order.size()));
}

}  // namespace delta::workload
