// Telescope scan process for updates.
//
// "Telescopes collect data by scanning specific regions of the sky, along
// great circles, in a coordinated and systematic fashion. Updates are thus
// clustered by regions on the sky." (§6.1). The model maintains a small set
// of survey stripes (great circles with fixed poles, jittered per night);
// each night the telescope walks one stripe emitting observation batches at
// consecutive positions, so consecutive updates hit the same or adjacent
// data objects.
#pragma once

#include <vector>

#include "htm/vec3.h"
#include "util/rng.h"

namespace delta::workload {

class ScanModel {
 public:
  struct Params {
    /// Number of survey stripes (distinct great-circle poles).
    int stripe_count = 8;
    /// Jitter applied to the stripe pole each night (radians).
    double pole_jitter_rad = 0.02;
    /// Angular step between consecutive observation batches (radians).
    double step_rad = 0.01;
    /// Survey footprint: emitted positions are clipped into it; positions
    /// falling outside are skipped by walking further along the circle.
    htm::Vec3 footprint_center = htm::from_ra_dec(185.0, 32.0);
    double footprint_radius_rad = 1.1;
    /// Stripe crossing offsets from the footprint center, as fractions of
    /// the footprint radius. Biasing the range to one side concentrates
    /// update hotspots in a sub-band of the survey, away from most query
    /// clusters — the partial decoupling visible in Fig. 7a.
    double tilt_lo_frac = 0.05;
    double tilt_hi_frac = 0.85;
    /// Stripes are chosen round-robin with occasional random revisits.
    double random_stripe_probability = 0.25;
  };

  ScanModel(const Params& params, util::Rng rng);

  /// Starts a new night: picks a stripe and an entry point on it.
  void begin_night();

  /// Next observation position along the current night's great circle.
  htm::Vec3 next_position();

  [[nodiscard]] int current_stripe() const { return current_stripe_; }

 private:
  Params params_;
  util::Rng rng_;
  std::vector<htm::Vec3> stripe_poles_;
  int current_stripe_ = 0;
  int night_counter_ = 0;
  htm::Vec3 night_pole_{0.0, 0.0, 1.0};
  // Orthonormal basis of the night's scan circle and the walk angle.
  htm::Vec3 basis_u_{1.0, 0.0, 0.0};
  htm::Vec3 basis_v_{0.0, 1.0, 0.0};
  double angle_ = 0.0;
};

}  // namespace delta::workload
