#include "workload/trace_generator.h"

#include <algorithm>
#include <cmath>

#include "htm/cover.h"
#include "util/check.h"

namespace delta::workload {

namespace {

constexpr std::int64_t kMinQueryCostBytes = 1024;
constexpr std::int64_t kMinUpdateCostBytes = 512;

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

TraceGenerator::TraceGenerator(std::shared_ptr<const htm::PartitionMap> map,
                               const storage::DensityModel& density,
                               TraceParams params)
    : map_(std::move(map)), density_(&density), params_(params) {
  DELTA_CHECK(map_ != nullptr);
  DELTA_CHECK(map_->base_level() == density.base_level());
  DELTA_CHECK(params_.query_count > 0);
  DELTA_CHECK(params_.update_count >= 0);
  DELTA_CHECK(params_.warmup_fraction >= 0.0 && params_.warmup_fraction < 1.0);
}

Trace TraceGenerator::generate(std::uint64_t seed) const {
  // Independent streams: the query stream must be bit-identical across
  // different update counts (Fig. 8a re-uses "the same 250,000 queries").
  util::Rng rng_order{seed ^ 0x9E3779B97F4A7C15ULL};
  util::Rng rng_query{seed ^ 0xC2B2AE3D27D4EB4FULL};
  util::Rng rng_update{seed ^ 0x165667B19E3779F9ULL};

  storage::SkyCatalog catalog{map_, *density_};

  HotspotModel::Params hotspot_params = params_.hotspot;
  if (params_.hotspot_max_object_gb > 0.0) {
    const double max_rows = params_.hotspot_max_object_gb * 1e9 /
                            catalog.row_bytes().as_double();
    hotspot_params.placement_acceptor = [this, &catalog,
                                         max_rows](const htm::Vec3& p) {
      const ObjectId o = map_->object_for_point(p);
      const double rows = catalog.initial_object_rows(o);
      return rows > 0.0 && rows <= max_rows;
    };
  }
  HotspotModel hotspots{hotspot_params, rng_query.fork()};
  ScanModel scans{params_.scan, rng_update.fork()};

  Trace trace;
  trace.info.seed = seed;
  trace.info.base_level = map_->base_level();
  trace.info.row_bytes = catalog.row_bytes();
  trace.queries.reserve(static_cast<std::size_t>(params_.query_count));
  trace.updates.reserve(static_cast<std::size_t>(params_.update_count));
  trace.order.reserve(
      static_cast<std::size_t>(params_.query_count + params_.update_count));

  const auto warmup_query_count = static_cast<std::int64_t>(
      params_.warmup_fraction * static_cast<double>(params_.query_count));

  // Mean non-empty object rows, for density-proportional update sizing.
  double mean_object_rows = 0.0;
  {
    std::int64_t non_empty = 0;
    for (std::size_t i = 0; i < map_->partition_count(); ++i) {
      const double r =
          catalog.initial_object_rows(ObjectId{static_cast<std::int64_t>(i)});
      if (r > 0.0) {
        mean_object_rows += r;
        ++non_empty;
      }
    }
    DELTA_CHECK(non_empty > 0);
    mean_object_rows /= static_cast<double>(non_empty);
  }

  const std::vector<double> template_weights{
      params_.cone_weight, params_.rect_weight, params_.join_weight,
      params_.agg_weight, params_.scan_chunk_weight};

  const auto& density_weights = density_->weights();
  const Bytes row_bytes = catalog.row_bytes();

  const auto make_query = [&](std::int64_t query_index,
                              EventTime now) -> Query {
    Query q;
    q.id = QueryId{query_index};
    q.time = now;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const htm::Vec3 center = hotspots.sample_query_center(query_index);
      const std::size_t tmpl = rng_query.weighted_index(template_weights);
      htm::Region region;
      double output_fraction = 1.0;
      double fixed_bytes = 0.0;
      switch (tmpl) {
        case 0: {  // cone search
          q.kind = QueryKind::kConeSearch;
          const double r =
              clamp(params_.cone_radius_median_rad *
                        std::exp(rng_query.normal(0, params_.cone_radius_sigma)),
                    0.002, params_.cone_radius_max_rad);
          region = htm::Cone{center, r};
          output_fraction =
              rng_query.uniform(params_.projection_lo, params_.projection_hi);
          break;
        }
        case 1: {  // ra/dec range scan
          q.kind = QueryKind::kRangeRect;
          const htm::RaDec c = htm::to_ra_dec(center);
          const double w =
              clamp(params_.rect_side_median_deg *
                        std::exp(rng_query.normal(0, params_.rect_side_sigma)),
                    0.1, params_.rect_side_max_deg);
          const double h =
              clamp(params_.rect_side_median_deg *
                        std::exp(rng_query.normal(0, params_.rect_side_sigma)),
                    0.1, params_.rect_side_max_deg);
          double ra_lo = std::fmod(c.ra_deg - w / 2.0 + 360.0, 360.0);
          double ra_hi = std::fmod(c.ra_deg + w / 2.0, 360.0);
          const double dec_lo = clamp(c.dec_deg - h / 2.0, -89.9, 89.9);
          const double dec_hi = clamp(c.dec_deg + h / 2.0, dec_lo, 89.9);
          region = htm::RaDecRect{ra_lo, ra_hi, dec_lo, dec_hi};
          output_fraction =
              rng_query.uniform(params_.projection_lo, params_.projection_hi);
          break;
        }
        case 2: {  // spatial self-join in a small neighbourhood
          q.kind = QueryKind::kSelfJoin;
          const double r = clamp(
              0.5 * params_.cone_radius_median_rad *
                  std::exp(rng_query.normal(0, params_.cone_radius_sigma)),
              0.002, 0.04);
          region = htm::Cone{center, r};
          output_fraction = rng_query.uniform(params_.join_output_lo,
                                              params_.join_output_hi);
          break;
        }
        case 3: {  // aggregation: output size independent of rows scanned
          q.kind = QueryKind::kAggregation;
          const double r =
              clamp(params_.cone_radius_median_rad *
                        std::exp(rng_query.normal(0, params_.cone_radius_sigma)),
                    0.002, params_.cone_radius_max_rad);
          region = htm::Cone{center, r};
          output_fraction = 0.0;
          fixed_bytes =
              rng_query.uniform(params_.agg_bytes_lo, params_.agg_bytes_hi);
          break;
        }
        default: {  // consecutive full-sky-scan chunk
          q.kind = QueryKind::kScanChunk;
          const htm::RaDec c = htm::to_ra_dec(center);
          const double w = rng_query.uniform(params_.scan_chunk_ra_lo_deg,
                                             params_.scan_chunk_ra_hi_deg);
          const double h = rng_query.uniform(params_.scan_chunk_dec_lo_deg,
                                             params_.scan_chunk_dec_hi_deg);
          const double ra_lo = std::fmod(c.ra_deg - w / 2.0 + 360.0, 360.0);
          const double ra_hi = std::fmod(c.ra_deg + w / 2.0, 360.0);
          const double dec_lo = clamp(c.dec_deg - h / 2.0, -89.9, 89.9);
          const double dec_hi = clamp(c.dec_deg + h / 2.0, dec_lo, 89.9);
          region = htm::RaDecRect{ra_lo, ra_hi, dec_lo, dec_hi};
          output_fraction = rng_query.uniform(0.005, 0.05);
          break;
        }
      }

      // Base cover restricted to trixels that actually hold data.
      const auto cover = htm::cover_region(region, map_->base_level());
      std::vector<std::int32_t> base_cover;
      base_cover.reserve(cover.size());
      for (const htm::HtmId id : cover) {
        const auto idx = static_cast<std::int32_t>(htm::index_in_level(id));
        if (density_weights[static_cast<std::size_t>(idx)] > 0.0) {
          base_cover.push_back(idx);
        }
      }
      if (base_cover.empty()) continue;  // fell outside the survey: retry

      const double rows = catalog.estimate_rows_with_cover(region, base_cover);
      double bytes = rows * row_bytes.as_double() * output_fraction +
                     fixed_bytes;

      // Warm-up ramp: early queries are cheap, so the cache stays nearly
      // empty through the early warm-up (the paper's trace property);
      // full-sized queries in the warm-up tail let loading finish before
      // the measurement window opens.
      if (query_index < warmup_query_count && warmup_query_count > 0) {
        const double x = static_cast<double>(query_index) /
                         static_cast<double>(warmup_query_count);
        const double ramp =
            std::min(1.0, x / std::max(params_.warmup_ramp_end, 1e-9));
        bytes *= std::pow(params_.warmup_floor, 1.0 - ramp);
      }

      q.region = region;
      q.base_cover = std::move(base_cover);
      q.objects.clear();
      for (const std::int32_t idx : q.base_cover) {
        q.objects.push_back(map_->object_for_base_index(idx));
      }
      std::sort(q.objects.begin(), q.objects.end());
      q.objects.erase(std::unique(q.objects.begin(), q.objects.end()),
                      q.objects.end());
      q.cost = Bytes{std::max<std::int64_t>(
          static_cast<std::int64_t>(bytes), kMinQueryCostBytes)};

      // Staleness tolerance mixture.
      const double roll = rng_query.next_double();
      if (roll < params_.strict_fraction) {
        q.staleness_tolerance = 0;
      } else if (roll < params_.strict_fraction + params_.moderate_fraction) {
        q.staleness_tolerance = rng_query.uniform_int(
            params_.moderate_tolerance_lo, params_.moderate_tolerance_hi);
      } else {
        q.staleness_tolerance = rng_query.uniform_int(
            params_.loose_tolerance_lo, params_.loose_tolerance_hi);
      }
      return q;
    }
    DELTA_CHECK_MSG(false, "could not place a query inside the survey");
    return q;  // unreachable
  };

  const auto make_update = [&](std::int64_t update_index,
                               EventTime now) -> Update {
    Update u;
    u.id = UpdateId{update_index};
    u.time = now;
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const htm::Vec3 pos = scans.next_position();
      const htm::HtmId trixel = htm::locate(pos, map_->base_level());
      const auto idx = static_cast<std::int32_t>(htm::index_in_level(trixel));
      if (density_weights[static_cast<std::size_t>(idx)] <= 0.0) {
        continue;  // scan walked over a dataless sliver: keep walking
      }
      u.position = pos;
      u.base_index = idx;
      u.object = map_->object_for_base_index(idx);
      const double density_factor =
          clamp(std::pow(catalog.initial_object_rows(u.object) /
                             mean_object_rows,
                         params_.update_density_exponent),
                0.05, 10.0);
      const double rows =
          std::max(1.0, params_.update_rows_base * density_factor *
                            std::exp(rng_update.normal(
                                0, params_.update_rows_sigma)));
      u.rows = rows;
      u.cost = Bytes{std::max<std::int64_t>(
          static_cast<std::int64_t>(rows * row_bytes.as_double()),
          kMinUpdateCostBytes)};
      catalog.apply_insert(u.object, rows);
      return u;
    }
    DELTA_CHECK_MSG(false, "scan never crossed the survey footprint");
    return u;  // unreachable
  };

  // Merged sequence: query blocks alternating with nightly update bursts,
  // sized so both streams exhaust together.
  const double mean_update_burst =
      params_.update_count > 0
          ? params_.mean_query_block *
                (static_cast<double>(params_.update_count) /
                 static_cast<double>(params_.query_count))
          : 0.0;

  std::int64_t qi = 0;
  std::int64_t ui = 0;
  EventTime now = 0;
  trace.info.warmup_end_event = 0;
  while (qi < params_.query_count || ui < params_.update_count) {
    if (qi < params_.query_count) {
      const auto block = std::min<std::int64_t>(
          params_.query_count - qi,
          1 + static_cast<std::int64_t>(
                  rng_order.exponential(params_.mean_query_block)));
      for (std::int64_t k = 0; k < block; ++k) {
        if (qi == warmup_query_count) trace.info.warmup_end_event = now;
        trace.queries.push_back(make_query(qi, now));
        trace.order.push_back({Event::Kind::kQuery, qi});
        ++qi;
        ++now;
      }
    }
    if (ui < params_.update_count) {
      scans.begin_night();
      const auto burst = std::min<std::int64_t>(
          params_.update_count - ui,
          1 + static_cast<std::int64_t>(
                  rng_order.exponential(std::max(1.0, mean_update_burst))));
      for (std::int64_t k = 0; k < burst; ++k) {
        trace.updates.push_back(make_update(ui, now));
        trace.order.push_back({Event::Kind::kUpdate, ui});
        ++ui;
        ++now;
      }
    }
  }

  // ---- Calibration to the paper's magnitudes ----
  const EventTime warmup_end = trace.info.warmup_end_event;
  double post_query_bytes = 0.0;
  for (const Query& q : trace.queries) {
    if (q.time >= warmup_end) post_query_bytes += q.cost.as_double();
  }
  if (post_query_bytes > 0.0 && params_.postwarmup_query_gb > 0.0) {
    const double fq =
        params_.postwarmup_query_gb * 1e9 / post_query_bytes;
    for (Query& q : trace.queries) {
      q.cost = Bytes{std::max<std::int64_t>(
          static_cast<std::int64_t>(q.cost.as_double() * fq),
          kMinQueryCostBytes)};
    }
  }
  double post_update_bytes = 0.0;
  std::int64_t post_update_count = 0;
  for (const Update& u : trace.updates) {
    if (u.time >= warmup_end) {
      post_update_bytes += u.cost.as_double();
      ++post_update_count;
    }
  }
  if (post_update_bytes > 0.0 && params_.mean_postwarmup_update_mb > 0.0) {
    const double fu = params_.mean_postwarmup_update_mb * 1e6 *
                      static_cast<double>(post_update_count) /
                      post_update_bytes;
    for (Update& u : trace.updates) {
      u.cost = Bytes{std::max<std::int64_t>(
          static_cast<std::int64_t>(u.cost.as_double() * fu),
          kMinUpdateCostBytes)};
      u.rows = std::max(1.0, u.rows * fu);
    }
  }

  // Initial object sizes (pre-growth repository state).
  trace.initial_object_bytes.assign(map_->partition_count(), Bytes{});
  for (std::size_t i = 0; i < map_->partition_count(); ++i) {
    const ObjectId oid{static_cast<std::int64_t>(i)};
    trace.initial_object_bytes[i] = Bytes{static_cast<std::int64_t>(
        catalog.initial_object_rows(oid) * row_bytes.as_double())};
  }
  trace.info.partition_count = map_->partition_count();

  trace.validate();
  return trace;
}

}  // namespace delta::workload
