// Open-loop arrival processes: the inter-arrival schedules that replace
// the replay engines' closed-loop pacing when the simulation drives the
// middleware at a production arrival rate instead of one-query-in-flight
// per cache.
//
// The process assigns each merged trace event an absolute arrival instant;
// the trace's relative event ORDER is untouched (updates still interleave
// with queries at the same sequence points), only its pacing is replaced.
// Three classic shapes:
//   * poisson — memoryless arrivals at a constant mean rate; the default
//     saturation workload.
//   * bursty  — geometric trains of closely spaced arrivals separated by
//     long gaps, same long-run mean rate; stresses queueing at the server
//     uplink far harder than Poisson at the same rate.
//   * diurnal — a sinusoidally modulated Poisson process (peak/trough
//     pattern of a day compressed to `period_seconds`), so a run sweeps
//     through under- and over-saturated regimes deterministically.
//
// Determinism: the schedule is a pure function of (kind, rate, seed) via
// util::Rng, and the engine generates it once on the calling thread into
// the shared decoded stream — every partition sees the identical tape, so
// results stay bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace delta::workload {

class ArrivalProcess {
 public:
  enum class Kind : std::uint8_t { kPoisson, kBursty, kDiurnal };

  /// Parses "poisson" | "bursty" | "diurnal" (checked failure otherwise).
  static Kind parse_kind(const std::string& name);
  [[nodiscard]] static const char* kind_name(Kind kind);

  /// `rate_per_sec` is the long-run mean arrival rate of the merged event
  /// stream; `period_seconds` shapes the diurnal cycle (ignored by the
  /// other kinds).
  ArrivalProcess(Kind kind, double rate_per_sec, std::uint64_t seed,
                 double period_seconds = 10.0);

  /// Absolute arrival instant of the next event (nondecreasing).
  double next();

 private:
  Kind kind_;
  double rate_;
  double period_;
  util::Rng rng_;
  double clock_ = 0.0;
  std::int64_t burst_left_ = 0;  // bursty: arrivals left in current train
};

}  // namespace delta::workload
