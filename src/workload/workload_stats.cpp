#include "workload/workload_stats.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/check.h"

namespace delta::workload {

WorkloadStats WorkloadStats::compute(const Trace& trace,
                                     EventTime from_event) {
  WorkloadStats stats;
  const std::size_t n = trace.initial_object_bytes.size();
  stats.query_touches.assign(n, 0);
  stats.query_bytes.assign(n, 0.0);
  stats.update_counts.assign(n, 0);
  stats.update_bytes.assign(n, 0.0);
  for (const Query& q : trace.queries) {
    if (q.time < from_event) continue;
    // Attribute the full result size to every object the query touches
    // (diagnostic attribution; the policies use their own cost splits).
    for (const ObjectId o : q.objects) {
      const auto i = static_cast<std::size_t>(o.value());
      ++stats.query_touches[i];
      stats.query_bytes[i] += q.cost.as_double() /
                              static_cast<double>(q.objects.size());
    }
  }
  for (const Update& u : trace.updates) {
    if (u.time < from_event) continue;
    const auto i = static_cast<std::size_t>(u.object.value());
    ++stats.update_counts[i];
    stats.update_bytes[i] += u.cost.as_double();
  }
  return stats;
}

namespace {

std::vector<ObjectId> rank_desc(const std::vector<double>& score,
                                std::size_t n) {
  std::vector<std::size_t> idx(score.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return score[a] > score[b];
  });
  std::vector<ObjectId> out;
  out.reserve(std::min(n, idx.size()));
  for (std::size_t i = 0; i < idx.size() && out.size() < n; ++i) {
    if (score[idx[i]] <= 0.0) break;
    out.push_back(ObjectId{static_cast<std::int64_t>(idx[i])});
  }
  return out;
}

}  // namespace

std::vector<ObjectId> WorkloadStats::top_query_objects(std::size_t n) const {
  return rank_desc(query_bytes, n);
}

std::vector<ObjectId> WorkloadStats::top_update_objects(std::size_t n) const {
  return rank_desc(update_bytes, n);
}

double WorkloadStats::query_concentration(std::size_t n) const {
  const double total =
      std::accumulate(query_bytes.begin(), query_bytes.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double top = 0.0;
  for (const ObjectId o : top_query_objects(n)) {
    top += query_bytes[static_cast<std::size_t>(o.value())];
  }
  return top / total;
}

double WorkloadStats::hotspot_overlap(std::size_t n) const {
  const auto q = top_query_objects(n);
  const auto u = top_update_objects(n);
  if (q.empty() || u.empty()) return 0.0;
  std::unordered_set<ObjectId> qs{q.begin(), q.end()};
  std::size_t inter = 0;
  for (const ObjectId o : u) inter += qs.count(o);
  const std::size_t uni = q.size() + u.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) /
                              static_cast<double>(uni);
}

std::vector<ScatterPoint> sample_scatter(const Trace& trace,
                                         std::int64_t stride) {
  DELTA_CHECK(stride > 0);
  std::vector<ScatterPoint> points;
  for (std::int64_t e = 0; e < trace.event_count(); e += stride) {
    const Event& ev = trace.order[static_cast<std::size_t>(e)];
    if (ev.kind == Event::Kind::kQuery) {
      const Query& q = trace.queries[static_cast<std::size_t>(ev.index)];
      for (const ObjectId o : q.objects) {
        points.push_back({q.time, false, o});
      }
    } else {
      const Update& u = trace.updates[static_cast<std::size_t>(ev.index)];
      points.push_back({u.time, true, u.object});
    }
  }
  return points;
}

}  // namespace delta::workload
