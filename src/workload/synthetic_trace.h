// Synthetic YCSB-style workloads over an abstract key space — the
// million-object counterpart of the astronomy TraceGenerator.
//
// Where TraceGenerator derives queries from sky regions over a density
// model (and is therefore bounded by the HTM base-level partition count),
// SyntheticTraceGenerator treats data objects as opaque keys and drives
// them with the standard YCSB machinery: a key popularity law (uniform /
// zipfian / latest / exponential, see key_generators.h), an operation mix
// given by read/scan/read-modify-write permille knobs (the YCSB A–F
// presets are provided), and log-normal object/result/update sizing. The
// produced Trace passes Trace::validate(), splits across endpoints with
// assign_queries (cover-less queries hash by id), replays through every
// engine, and round-trips through trace_io — the file-backed path below
// caches generation work across bench runs.
//
// Determinism: generate(seed) is a pure function of (params, seed); use
// thread_seed() for sharded multi-stream generation.
#pragma once

#include <string>

#include "workload/key_generators.h"
#include "workload/trace.h"

namespace delta::workload {

struct SyntheticTraceParams {
  std::int64_t object_count = 1'000'000;
  /// Total merged events (queries + updates; an RMW op contributes both).
  std::int64_t event_count = 100'000;

  KeyDistribution distribution = KeyDistribution::kZipfian;
  double zipfian_theta = 0.99;
  /// Scatter hot zipfian ranks across the id space by a fixed hash.
  bool scramble = true;
  double exponential_percentile = 0.95;
  double exponential_frac = 0.8571;

  /// Operation mix, in permille of operations (remainder = blind updates).
  int read_permille = 950;
  int scan_permille = 0;
  int rmw_permille = 0;
  /// Scan ops read a contiguous key range of up to this many objects.
  std::int64_t max_scan_len = 16;

  /// Sizing (log-normal rows, floored at one row).
  Bytes row_bytes{2048};
  double object_rows_mean = 64.0;
  double object_rows_sigma = 1.0;
  double result_rows_mean = 32.0;
  double result_rows_sigma = 0.8;
  double update_rows_mean = 8.0;
  double update_rows_sigma = 0.5;

  /// Staleness-tolerance mixture: `strict_fraction` of queries demand full
  /// currency, the rest tolerate a uniform lag in [lo, hi] merged events.
  double strict_fraction = 0.5;
  EventTime tolerance_lo = 100;
  EventTime tolerance_hi = 5'000;

  /// Leading fraction of events excluded from measurement.
  double warmup_fraction = 0.1;
};

/// The YCSB core workload letters (op mixes; the key law stays a knob,
/// defaulting to the letter's canonical distribution).
enum class YcsbMix : std::uint8_t { kA, kB, kC, kD, kE, kF };

[[nodiscard]] constexpr const char* to_string(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA:
      return "A";
    case YcsbMix::kB:
      return "B";
    case YcsbMix::kC:
      return "C";
    case YcsbMix::kD:
      return "D";
    case YcsbMix::kE:
      return "E";
    case YcsbMix::kF:
      return "F";
  }
  return "?";
}

/// Canonical mix for a YCSB letter over the given scale:
///   A 500/500 update-heavy · B 950/50 read-mostly · C read-only ·
///   D 950/50 on latest · E 950/50 scans · F 500/500 read-modify-write.
[[nodiscard]] SyntheticTraceParams ycsb_params(YcsbMix mix,
                                               std::int64_t object_count,
                                               std::int64_t event_count);

class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(SyntheticTraceParams params);

  [[nodiscard]] Trace generate(std::uint64_t seed) const;

  [[nodiscard]] const SyntheticTraceParams& params() const { return params_; }

 private:
  SyntheticTraceParams params_;
};

/// File-backed path: loads `path` when it holds a delta-trace, otherwise
/// generates from (params, seed) and saves to `path` before returning.
[[nodiscard]] Trace load_or_generate(const SyntheticTraceGenerator& generator,
                                     std::uint64_t seed,
                                     const std::string& path);

}  // namespace delta::workload
