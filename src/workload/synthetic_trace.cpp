#include "workload/synthetic_trace.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "util/check.h"
#include "workload/trace_io.h"

namespace delta::workload {

namespace {

/// Log-normal row draw floored at one row (costs must stay positive).
double rows_draw(util::Rng& rng, double mean, double sigma) {
  // Parameterize so the draw's median is `mean` (mu = ln(mean)); the
  // heavy tail then pushes the arithmetic mean above it, YCSB-style.
  const double rows = rng.lognormal(std::log(mean), sigma);
  return rows < 1.0 ? 1.0 : rows;
}

Bytes bytes_of_rows(double rows, Bytes row_bytes) {
  const double b = rows * row_bytes.as_double();
  return Bytes{b < 1.0 ? 1 : static_cast<std::int64_t>(b)};
}

}  // namespace

SyntheticTraceParams ycsb_params(YcsbMix mix, std::int64_t object_count,
                                 std::int64_t event_count) {
  SyntheticTraceParams p;
  p.object_count = object_count;
  p.event_count = event_count;
  switch (mix) {
    case YcsbMix::kA:
      p.read_permille = 500;
      break;
    case YcsbMix::kB:
      p.read_permille = 950;
      break;
    case YcsbMix::kC:
      p.read_permille = 1000;
      break;
    case YcsbMix::kD:
      p.read_permille = 950;
      p.distribution = KeyDistribution::kLatest;
      p.scramble = false;  // recency is an id-space notion here
      break;
    case YcsbMix::kE:
      p.read_permille = 0;
      p.scan_permille = 950;
      break;
    case YcsbMix::kF:
      p.read_permille = 500;
      p.rmw_permille = 500;
      break;
  }
  return p;
}

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticTraceParams params)
    : params_(std::move(params)) {
  DELTA_CHECK(params_.object_count > 0);
  DELTA_CHECK(params_.event_count > 0);
  DELTA_CHECK(params_.row_bytes.count() > 0);
  DELTA_CHECK(params_.max_scan_len >= 1);
  const int op_permille = params_.read_permille + params_.scan_permille +
                          params_.rmw_permille;
  DELTA_CHECK_MSG(params_.read_permille >= 0 && params_.scan_permille >= 0 &&
                      params_.rmw_permille >= 0 && op_permille <= 1000,
                  "op mix permilles must be non-negative and sum <= 1000");
  DELTA_CHECK(params_.strict_fraction >= 0.0 &&
              params_.strict_fraction <= 1.0);
  DELTA_CHECK(params_.tolerance_lo >= 0 &&
              params_.tolerance_lo <= params_.tolerance_hi);
  DELTA_CHECK(params_.warmup_fraction >= 0.0 &&
              params_.warmup_fraction < 1.0);
}

Trace SyntheticTraceGenerator::generate(std::uint64_t seed) const {
  const SyntheticTraceParams& p = params_;
  util::Rng rng{seed};

  Trace trace;
  trace.info.seed = seed;
  trace.info.base_level = 0;  // no HTM mapping: keys are opaque
  trace.info.row_bytes = p.row_bytes;
  trace.info.partition_count = static_cast<std::size_t>(p.object_count);
  trace.info.warmup_end_event = static_cast<EventTime>(
      p.warmup_fraction * static_cast<double>(p.event_count));

  // Initial object sizes: log-normal rows per key, drawn from a forked
  // stream so the event stream is invariant to object_count-only changes
  // in sizing parameters.
  util::Rng size_rng = rng.fork();
  trace.initial_object_bytes.reserve(
      static_cast<std::size_t>(p.object_count));
  for (std::int64_t i = 0; i < p.object_count; ++i) {
    trace.initial_object_bytes.push_back(bytes_of_rows(
        rows_draw(size_rng, p.object_rows_mean, p.object_rows_sigma),
        p.row_bytes));
  }

  // Key generators (at most one is exercised per run, but construction is
  // cheap except the zipfian zeta sum, so build lazily by distribution).
  UniformKeys uniform{p.object_count};
  ZipfianKeys zipf =
      p.distribution == KeyDistribution::kZipfian
          ? ZipfianKeys{p.object_count, p.zipfian_theta, p.scramble}
          : ZipfianKeys{2, 0.5, false};
  LatestKeys latest =
      p.distribution == KeyDistribution::kLatest
          ? LatestKeys{p.object_count, p.zipfian_theta}
          : LatestKeys{2, 0.5};
  ExponentialKeys expo{p.object_count, p.exponential_percentile,
                       p.exponential_frac};

  const auto read_key = [&]() -> std::int64_t {
    switch (p.distribution) {
      case KeyDistribution::kUniform:
        return uniform.next(rng);
      case KeyDistribution::kZipfian:
        return zipf.next(rng);
      case KeyDistribution::kLatest:
        return latest.next(rng);
      case KeyDistribution::kExponential:
        return expo.next(rng);
    }
    return 0;
  };
  const auto write_key = [&]() -> std::int64_t {
    // The latest law's write stream drives the recency cursor; the other
    // laws write where they read.
    if (p.distribution == KeyDistribution::kLatest) {
      return latest.next_write();
    }
    return read_key();
  };

  trace.order.reserve(static_cast<std::size_t>(p.event_count));
  EventTime now = 0;

  const auto emit_query = [&](std::int64_t first_key, std::int64_t span,
                              QueryKind kind) {
    Query q;
    q.id = QueryId{static_cast<std::int64_t>(trace.queries.size())};
    q.time = now++;
    q.kind = kind;
    for (std::int64_t k = first_key; k < first_key + span; ++k) {
      q.objects.push_back(ObjectId{k});
    }
    q.cost = bytes_of_rows(
        static_cast<double>(span) *
            rows_draw(rng, p.result_rows_mean, p.result_rows_sigma),
        p.row_bytes);
    q.staleness_tolerance =
        rng.bernoulli(p.strict_fraction)
            ? 0
            : rng.uniform_int(p.tolerance_lo, p.tolerance_hi);
    trace.order.push_back({Event::Kind::kQuery,
                           static_cast<std::int64_t>(trace.queries.size())});
    trace.queries.push_back(std::move(q));
  };
  const auto emit_update = [&](std::int64_t key) {
    Update u;
    u.id = UpdateId{static_cast<std::int64_t>(trace.updates.size())};
    u.time = now++;
    u.object = ObjectId{key};
    u.rows = rows_draw(rng, p.update_rows_mean, p.update_rows_sigma);
    u.cost = bytes_of_rows(u.rows, p.row_bytes);
    trace.order.push_back({Event::Kind::kUpdate,
                           static_cast<std::int64_t>(trace.updates.size())});
    trace.updates.push_back(u);
  };

  const int read_bound = p.read_permille;
  const int scan_bound = read_bound + p.scan_permille;
  const int rmw_bound = scan_bound + p.rmw_permille;
  while (now < p.event_count) {
    const std::int64_t op = rng.uniform_int(0, 999);
    if (op < read_bound) {
      emit_query(read_key(), 1, QueryKind::kConeSearch);
    } else if (op < scan_bound) {
      const std::int64_t key = read_key();
      const std::int64_t len =
          std::min(rng.uniform_int(1, p.max_scan_len), p.object_count - key);
      emit_query(key, len, QueryKind::kScanChunk);
    } else if (op < rmw_bound && now + 1 < p.event_count) {
      // Read-modify-write: the read and its write-back are adjacent merged
      // events on the same key.
      const std::int64_t key = read_key();
      emit_query(key, 1, QueryKind::kAggregation);
      emit_update(key);
    } else {
      emit_update(write_key());
    }
  }

  trace.validate();
  return trace;
}

Trace load_or_generate(const SyntheticTraceGenerator& generator,
                       std::uint64_t seed, const std::string& path) {
  if (std::filesystem::exists(path)) {
    return load_trace(path);
  }
  Trace trace = generator.generate(seed);
  save_trace(path, trace);
  return trace;
}

}  // namespace delta::workload
