// Trace (de)serialization: a line-oriented text format so synthesized
// workloads can be archived, diffed and replayed across runs and tools.
// The merged event order is implicit — event times are unique and strictly
// increasing, so loading reconstructs it by a time merge.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace delta::workload {

/// Writes the trace in the versioned "delta-trace v1" text format.
void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace written by write_trace. Throws std::logic_error on
/// malformed input. The result passes Trace::validate().
Trace read_trace(std::istream& is);

/// Convenience file wrappers.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace delta::workload
