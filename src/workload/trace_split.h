// Trace splitting for multi-endpoint deployments: assigns every query of a
// trace to one of N cache endpoints. Updates are not split — they arrive at
// the shared repository, which fans invalidations out to the subscribed
// caches (see core::ServerNode).
//
// Three strategies:
//   * kRoundRobin     — queries are dealt to endpoints in arrival order;
//                       an even load-balance baseline with no locality.
//   * kHashByRegion   — queries hash by their spatial anchor (the first
//                       base-level trixel of the region's cover), so
//                       queries over the same sky region land on the same
//                       endpoint and its cache can specialize. This is the
//                       sharding mode the ROADMAP's scale-out targets.
//   * kBalancedByLoad — anchors keep the hash split's locality (all
//                       queries sharing an anchor land together), but
//                       anchors are packed onto endpoints by LPT bin
//                       packing of their exact query counts instead of by
//                       hash, so the heaviest endpoint carries as close to
//                       the mean load as the anchor granularity permits.
//                       This is the split that closes the parallel
//                       engine's critical-path gap at large N.
// All are deterministic functions of the trace, so multi-endpoint runs
// stay exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.h"

namespace delta::workload {

enum class SplitStrategy : std::uint8_t {
  kRoundRobin,
  kHashByRegion,
  kBalancedByLoad,
};

[[nodiscard]] constexpr const char* to_string(SplitStrategy strategy) {
  switch (strategy) {
    case SplitStrategy::kRoundRobin:
      return "round_robin";
    case SplitStrategy::kHashByRegion:
      return "hash_by_region";
    case SplitStrategy::kBalancedByLoad:
      return "balanced_by_load";
  }
  return "?";
}

/// Endpoint index (< endpoint_count) per query, indexed like Trace::queries.
[[nodiscard]] std::vector<std::uint32_t> assign_queries(
    const Trace& trace, std::size_t endpoint_count, SplitStrategy strategy);

}  // namespace delta::workload
