// Query, update and merged-event types: the workload vocabulary of §3.
//
// A query q carries its spatial specification, the set of data objects it
// accesses B(q) (derived from the specification by the semantic framework),
// its network shipping cost ν(q) (result bytes) and its tolerance for
// staleness t(q). An update u targets exactly one data object o(u) and
// carries its shipping cost ν(u).
#pragma once

#include <cstdint>
#include <vector>

#include "htm/region.h"
#include "htm/vec3.h"
#include "util/types.h"

namespace delta::workload {

enum class QueryKind : std::uint8_t {
  kConeSearch,
  kRangeRect,
  kSelfJoin,
  kAggregation,
  kScanChunk,
};

[[nodiscard]] constexpr const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kConeSearch:
      return "cone";
    case QueryKind::kRangeRect:
      return "rect";
    case QueryKind::kSelfJoin:
      return "self_join";
    case QueryKind::kAggregation:
      return "aggregation";
    case QueryKind::kScanChunk:
      return "scan_chunk";
  }
  return "?";
}

struct Query {
  QueryId id;
  EventTime time = 0;  // position in the merged event sequence
  QueryKind kind = QueryKind::kConeSearch;
  htm::Region region;
  /// Base-level trixel indices covered by the region (computed once at
  /// generation; partition-independent, so re-mapping the trace to another
  /// granularity — Fig. 8b — is a table lookup).
  std::vector<std::int32_t> base_cover;
  /// B(q) under the trace's current partition map (sorted, unique).
  std::vector<ObjectId> objects;
  /// ν(q): result bytes shipped if the query is sent to the server.
  Bytes cost;
  /// t(q): answers may omit updates newer than time - tolerance.
  EventTime staleness_tolerance = 0;
};

struct Update {
  UpdateId id;
  EventTime time = 0;
  /// Sky position of the observation batch (partition-independent).
  htm::Vec3 position;
  /// Base-level trixel index of the position (for O(1) re-mapping).
  std::int32_t base_index = -1;
  /// o(u) under the trace's current partition map.
  ObjectId object;
  /// Rows inserted into o(u).
  double rows = 0.0;
  /// ν(u): bytes shipped if this update is propagated to the cache.
  Bytes cost;
};

struct Event {
  enum class Kind : std::uint8_t { kQuery, kUpdate };
  Kind kind = Kind::kQuery;
  /// Index into Trace::queries or Trace::updates.
  std::int64_t index = 0;
};

}  // namespace delta::workload
