// Workload diagnostics: the per-object query/update footprint behind
// Fig. 7a (object-IDs touched along the event sequence; query hotspots vs
// update hotspots) and summary statistics used by the calibration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"
#include "workload/trace.h"

namespace delta::workload {

struct WorkloadStats {
  /// Per-object counters over [from_event, end), indexed by ObjectId.
  std::vector<std::int64_t> query_touches;
  std::vector<double> query_bytes;  // ν(q) attributed to each touched object
  std::vector<std::int64_t> update_counts;
  std::vector<double> update_bytes;

  static WorkloadStats compute(const Trace& trace, EventTime from_event = 0);

  /// Objects ranked by attributed query bytes (descending).
  [[nodiscard]] std::vector<ObjectId> top_query_objects(std::size_t n) const;

  /// Objects ranked by update bytes (descending).
  [[nodiscard]] std::vector<ObjectId> top_update_objects(std::size_t n) const;

  /// Fraction of total attributed query bytes covered by the top-n objects.
  [[nodiscard]] double query_concentration(std::size_t n) const;

  /// Jaccard overlap between the top-n query objects and top-n update
  /// objects — low overlap is what makes decoupling profitable.
  [[nodiscard]] double hotspot_overlap(std::size_t n) const;
};

/// One row of the Fig. 7a scatter: an event and one object it touches.
struct ScatterPoint {
  EventTime time = 0;
  bool is_update = false;
  ObjectId object;
};

/// Samples every `stride`-th event (all objects a sampled query touches).
std::vector<ScatterPoint> sample_scatter(const Trace& trace,
                                         std::int64_t stride);

}  // namespace delta::workload
