#include "workload/key_generators.h"

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace delta::workload {

namespace {

/// splitmix64 finalizer: the same fixed mix FlatMap and the trace splitter
/// use, so scrambling is platform-independent.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double zeta(std::int64_t n, double theta) {
  double sum = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

std::uint64_t thread_seed(std::uint64_t base_seed,
                          std::uint64_t thread_index) {
  return mix64(base_seed ^ mix64(thread_index + 0x5DE1A5EEDULL));
}

UniformKeys::UniformKeys(std::int64_t n) : n_(n) { DELTA_CHECK(n > 0); }

std::int64_t UniformKeys::next(util::Rng& rng) {
  return rng.uniform_int(0, n_ - 1);
}

ZipfianKeys::ZipfianKeys(std::int64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble) {
  DELTA_CHECK(n > 0);
  DELTA_CHECK_MSG(theta > 0.0, "zipfian theta must be positive");
  DELTA_CHECK_MSG(n <= static_cast<std::int64_t>(UINT32_MAX),
                  "alias table is indexed by uint32");
  zetan_ = zeta(n, theta);

  // Vose's alias construction, run in deterministic (ascending-rank, LIFO)
  // order. `scaled` holds n * P(rank); columns below 1 borrow the excess
  // of columns above 1 so every column splits between at most two ranks.
  std::vector<double> scaled(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    scaled[static_cast<std::size_t>(r)] =
        static_cast<double>(n) * rank_probability(r);
  }
  accept_.assign(static_cast<std::size_t>(n), 1.0);
  alias_.resize(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    alias_[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(r);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::int64_t r = 0; r < n; ++r) {
    (scaled[static_cast<std::size_t>(r)] < 1.0 ? small : large)
        .push_back(static_cast<std::uint32_t>(r));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly-1 columns up to rounding; accept_ is already 1.
}

std::int64_t ZipfianKeys::next_rank(util::Rng& rng) {
  // Single uniform draw: integer part picks the column, fractional part
  // flips the column's biased coin.
  const double x = rng.next_double() * static_cast<double>(n_);
  auto column = static_cast<std::int64_t>(x);
  if (column >= n_) column = n_ - 1;  // guard the u -> 1 edge
  const double frac = x - static_cast<double>(column);
  const auto c = static_cast<std::size_t>(column);
  return frac < accept_[c] ? column
                           : static_cast<std::int64_t>(alias_[c]);
}

std::int64_t ZipfianKeys::next(util::Rng& rng) {
  const std::int64_t rank = next_rank(rng);
  if (!scramble_) return rank;
  return static_cast<std::int64_t>(
      mix64(static_cast<std::uint64_t>(rank)) %
      static_cast<std::uint64_t>(n_));
}

double ZipfianKeys::rank_probability(std::int64_t rank) const {
  DELTA_CHECK(rank >= 0 && rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

LatestKeys::LatestKeys(std::int64_t n, double theta)
    : n_(n), cursor_(n - 1), zipf_(n, theta, /*scramble=*/false) {}

std::int64_t LatestKeys::next(util::Rng& rng) {
  const std::int64_t offset = zipf_.next_rank(rng);
  // Recency offset back from the most recent write, wrapped over the fixed
  // key space (YCSB grows the space on insert; the fixed-space analogue
  // treats the key ring modulo n).
  std::int64_t key = cursor_ - offset;
  if (key < 0) key += n_;
  return key;
}

std::int64_t LatestKeys::next_write() {
  cursor_ = (cursor_ + 1) % n_;
  return cursor_;
}

ExponentialKeys::ExponentialKeys(std::int64_t n, double percentile,
                                 double frac)
    : n_(n) {
  DELTA_CHECK(n > 0);
  DELTA_CHECK(percentile > 0.0 && percentile < 1.0);
  DELTA_CHECK(frac > 0.0);
  // `percentile` of the mass inside the first `frac` of the key space:
  // lambda = -ln(1 - percentile) / (frac * n); mean = 1 / lambda.
  mean_ = frac * static_cast<double>(n) / -std::log(1.0 - percentile);
}

std::int64_t ExponentialKeys::next(util::Rng& rng) {
  const auto draw = static_cast<std::int64_t>(rng.exponential(mean_));
  return draw % n_;
}

}  // namespace delta::workload
