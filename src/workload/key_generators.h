// YCSB-grade key generators for million-object synthetic workloads.
//
// Each generator draws keys in [0, n) from a fixed popularity law and is a
// pure function of the Rng stream fed to it, so traces built on top are
// reproducible from a single seed. The zipfian sampler draws from the
// *exact* discrete law via a Walker/Vose alias table: O(n) once at build,
// O(1) per draw regardless of n — no O(n) CDF walk per draw
// (util::ZipfSampler remains for the small template/hotspot vocabularies)
// and, unlike the Gray et al. continuous approximation YCSB ships, no
// per-rank bias, so chi-square fits against the analytic rank frequencies
// hold tight (tests/workload_generator_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace delta::workload {

/// Independent, reproducible per-thread seed: a splitmix64-style mix of
/// (base_seed, thread_index). Thread t's generator stream is a pure
/// function of these two values, so sharded generation is deterministic
/// for any thread count and schedule.
[[nodiscard]] std::uint64_t thread_seed(std::uint64_t base_seed,
                                        std::uint64_t thread_index);

enum class KeyDistribution : std::uint8_t {
  kUniform,
  kZipfian,
  kLatest,
  kExponential,
};

[[nodiscard]] constexpr const char* to_string(KeyDistribution d) {
  switch (d) {
    case KeyDistribution::kUniform:
      return "uniform";
    case KeyDistribution::kZipfian:
      return "zipfian";
    case KeyDistribution::kLatest:
      return "latest";
    case KeyDistribution::kExponential:
      return "exponential";
  }
  return "?";
}

/// Every key equally likely.
class UniformKeys {
 public:
  explicit UniformKeys(std::int64_t n);
  [[nodiscard]] std::int64_t next(util::Rng& rng);

 private:
  std::int64_t n_;
};

/// Zipf(theta) over ranks {0..n-1}: rank r drawn with probability exactly
/// 1/((r+1)^theta · zeta_n(theta)) via an alias table (~20 bytes/rank).
/// With `scramble` the popular ranks are scattered across the id space by
/// a fixed hash, so hot keys are not clustered at low ids.
class ZipfianKeys {
 public:
  ZipfianKeys(std::int64_t n, double theta = 0.99, bool scramble = false);

  [[nodiscard]] std::int64_t next(util::Rng& rng);

  /// P(rank r) — the chi-square oracle (exact for the unscrambled law).
  [[nodiscard]] double rank_probability(std::int64_t rank) const;

  [[nodiscard]] std::int64_t size() const { return n_; }

 private:
  std::int64_t n_;
  double theta_;
  double zetan_;
  bool scramble_;
  /// Alias table: one uniform draw picks a column and a biased coin inside
  /// it (single-draw Vose construction, deterministic build order).
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;

  [[nodiscard]] std::int64_t next_rank(util::Rng& rng);
  friend class LatestKeys;
};

/// Skewed-latest (YCSB D): reads concentrate on the most recently written
/// keys. The write stream walks the key space with an insert cursor;
/// reads draw a zipfian recency offset back from the cursor.
class LatestKeys {
 public:
  LatestKeys(std::int64_t n, double theta = 0.99);

  /// Key for a read: cursor - Zipf offset (mod n).
  [[nodiscard]] std::int64_t next(util::Rng& rng);
  /// Key for the next write; advances the cursor.
  [[nodiscard]] std::int64_t next_write();

  [[nodiscard]] double rank_probability(std::int64_t recency) const {
    return zipf_.rank_probability(recency);
  }
  [[nodiscard]] std::int64_t cursor() const { return cursor_; }

 private:
  std::int64_t n_;
  std::int64_t cursor_;  // most recently written key
  ZipfianKeys zipf_;
};

/// Exponential decay over the key space (YCSB's exponential generator):
/// P(k) ∝ exp(-k / scale), with `frac` of the mass inside the first
/// `percentile` fraction of keys. Draws are folded into range by modulus.
class ExponentialKeys {
 public:
  ExponentialKeys(std::int64_t n, double percentile = 0.95,
                  double frac = 0.8571);
  [[nodiscard]] std::int64_t next(util::Rng& rng);

 private:
  std::int64_t n_;
  double mean_;
};

}  // namespace delta::workload
