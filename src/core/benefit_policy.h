// BenefitPolicy (paper §5): the exponential-smoothing window heuristic that
// commercial dynamic-data caches employ, reproduced as the comparator.
//
// The event sequence is divided into windows of δ events. Per window, each
// object accrues a benefit: query savings attributed proportionally to
// object sizes, minus the update traffic it caused (or would have caused),
// minus the load cost if it is not cached. The forecast
// µ_i = (1−α)µ_{i−1} + α·b_{i−1} ranks objects; the cache is greedily
// re-filled with the positive-forecast objects at each window boundary.
// Cached objects receive updates eagerly (shipped on arrival).
#pragma once

#include <vector>

#include "cache/cache_store.h"
#include "core/cache_node.h"
#include "core/delta_system.h"
#include "core/policy.h"
#include "util/flat_map.h"

namespace delta::core {

struct BenefitOptions {
  Bytes cache_capacity;
  /// Window size δ in merged events (paper default: 1000, tuned).
  std::int64_t window = 1000;
  /// Exponential smoothing learning rate α.
  double alpha = 0.3;
};

class BenefitPolicy final : public CachePolicy {
 public:
  BenefitPolicy(CacheNode* cache, const BenefitOptions& options);
  /// Single-cache compatibility: bind to the façade's cache endpoint.
  BenefitPolicy(DeltaSystem* system, const BenefitOptions& options)
      : BenefitPolicy(cache_endpoint(system), options) {}

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  void on_query_async(const workload::Query& q, QueryDone done) override;
  /// Crash-stop wipe (ISSUE 10): the store, the smoothed forecasts, and the
  /// open window accruals are all in-memory soft state. Instrument counters
  /// (loads, evictions, windows closed) survive.
  void on_crash_restart() override;
  [[nodiscard]] const char* name() const override { return "Benefit"; }

  [[nodiscard]] const cache::CacheStore& store() const { return store_; }
  [[nodiscard]] std::int64_t loads() const { return loads_; }
  [[nodiscard]] std::int64_t evictions() const { return evictions_; }
  [[nodiscard]] std::int64_t windows_closed() const {
    return windows_closed_;
  }

 private:
  CacheNode* system_;  // the cache endpoint this policy drives
  BenefitOptions options_;
  cache::CacheStore store_;
  std::vector<double> forecast_;       // µ per object
  std::vector<double> saved_window_;   // realized savings (cached objects)
  std::vector<double> would_window_;   // counterfactual savings (non-cached)
  std::vector<double> update_window_;  // update bytes per object
  std::int64_t events_in_window_ = 0;
  std::int64_t loads_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t windows_closed_ = 0;
  std::vector<ObjectId> victims_;  // eviction-sweep scratch (close_window)

  void tick();
  void close_window();
  void evict_lowest_forecast_until_fits();
  /// Shared bookkeeping of both query entry points. classify_query settles
  /// the path (accruing realized savings for all-cached queries) and
  /// returns true when the query must be shipped — the only traffic a
  /// Benefit query emits; account_shipped accrues the counterfactual
  /// savings after the ship is issued.
  bool classify_query(const workload::Query& q, QueryOutcome& outcome);
  void account_shipped(const workload::Query& q);
};

}  // namespace delta::core
