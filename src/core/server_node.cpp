#include "core/server_node.h"

#include "util/check.h"

namespace delta::core {

ServerNode::ServerNode(const workload::Trace* trace,
                       net::Transport* transport, std::string name)
    : trace_(trace), transport_(transport), name_(std::move(name)) {
  DELTA_CHECK(trace != nullptr);
  DELTA_CHECK(transport != nullptr);
  object_bytes_ = trace->initial_object_bytes;
  transport_slot_ = transport_->register_endpoint(
      name_, [this](const net::Message& m) { handle_message(m); });
  reply_template_.sender = name_;
  reply_template_.sender_transport_slot =
      static_cast<std::int32_t>(transport_slot_);
}

void ServerNode::validate_cache_name(const std::string& cache_name) const {
  DELTA_CHECK_MSG(slot_by_name_.count(cache_name) == 0,
                  "cache '" << cache_name << "' attached twice");
  DELTA_CHECK_MSG(cache_name != name_,
                  "cache endpoint cannot reuse the server name");
}

std::size_t ServerNode::attach_cache(const std::string& cache_name,
                                     std::size_t cache_transport_slot) {
  validate_cache_name(cache_name);
  const std::size_t slot = caches_.size();
  CacheEntry entry;
  entry.name = cache_name;
  entry.transport_slot = cache_transport_slot;
  entry.registered.assign(object_bytes_.size(), 0);
  caches_.push_back(std::move(entry));
  slot_by_name_.emplace(cache_name, slot);
  return slot;
}

void ServerNode::set_subscription(std::size_t cache_slot,
                                  MetadataSubscription subscription) {
  DELTA_CHECK(cache_slot < caches_.size());
  caches_[cache_slot].subscription = subscription;
}

std::size_t ServerNode::checked(ObjectId o) const {
  DELTA_CHECK(o.valid());
  const auto idx = static_cast<std::size_t>(o.value());
  DELTA_CHECK(idx < object_bytes_.size());
  return idx;
}

ServerNode::CacheEntry& ServerNode::sender_entry(const net::Message& m) {
  // Fast path: requests from attached CacheNodes carry their assigned slot.
  if (m.sender_slot >= 0 &&
      static_cast<std::size_t>(m.sender_slot) < caches_.size()) {
    CacheEntry& entry = caches_[static_cast<std::size_t>(m.sender_slot)];
    // A slot from another server instance (or a forged one) must not be
    // silently attributed to the wrong cache.
    DELTA_DCHECK(entry.name == m.sender);
    return entry;
  }
  const auto it = slot_by_name_.find(m.sender);
  DELTA_CHECK_MSG(it != slot_by_name_.end(),
                  "request from unattached cache '" << m.sender << "'");
  return caches_[it->second];
}

void ServerNode::handle_message(const net::Message& m) {
  // The server answers requests with data-bearing replies addressed to the
  // requesting cache endpoint. The prebuilt reply is safe to reuse per
  // request: the transport parks a copy or delivers it before returning.
  net::Message& reply = reply_template_;
  reply.subject_id = m.subject_id;
  reply.sent_at = m.sent_at;
  // Echo the request's correlation id so the cache's pending-request table
  // can match the reply even when deliveries interleave (DelayedTransport).
  reply.correlation_id = m.correlation_id;
  switch (m.kind) {
    case net::MessageKind::kQueryRequest: {
      const auto& q = trace_->queries[static_cast<std::size_t>(m.subject_id)];
      reply.kind = net::MessageKind::kQueryResult;
      reply.payload = q.cost;
      send_reply(sender_entry(m), reply, net::Mechanism::kQueryShip);
      break;
    }
    case net::MessageKind::kControl: {
      // "ship update <id>" request.
      const auto& u = trace_->updates[static_cast<std::size_t>(m.subject_id)];
      reply.kind = net::MessageKind::kUpdateShip;
      reply.payload = u.cost;
      send_reply(sender_entry(m), reply, net::Mechanism::kUpdateShip);
      break;
    }
    case net::MessageKind::kLoadRequest: {
      const auto idx = checked(ObjectId{m.subject_id});
      CacheEntry& cache = sender_entry(m);
      reply.kind = net::MessageKind::kLoadData;
      reply.payload = object_bytes_[idx] + kLoadOverheadBytes;
      cache.registered[idx] = 1;
      send_reply(cache, reply, net::Mechanism::kObjectLoad);
      break;
    }
    case net::MessageKind::kInvalidation: {
      // Cache -> server: eviction notice (re-using the kind for the
      // reverse coherence direction).
      const auto idx = checked(ObjectId{m.subject_id});
      sender_entry(m).registered[idx] = 0;
      break;
    }
    default:
      DELTA_CHECK_MSG(false, "server received unexpected message kind");
  }
}

void ServerNode::ingest_update(const workload::Update& u) {
  // Invalidation notices carry only the update id; subscribed caches
  // resolve it against the shared trace. The update must therefore BE the
  // trace entry its id names (or an identical copy), or cache-side
  // accounting would silently diverge from the repository.
  const auto uidx = static_cast<std::size_t>(u.id.value());
  DELTA_CHECK_MSG(u.id.valid() && uidx < trace_->updates.size() &&
                      trace_->updates[uidx].object == u.object &&
                      trace_->updates[uidx].cost == u.cost &&
                      trace_->updates[uidx].time == u.time,
                  "ingest_update requires an update from the system's trace");
  apply_update(u);
}

void ServerNode::ingest_update_at(std::int64_t update_index) {
  DELTA_CHECK(update_index >= 0 &&
              static_cast<std::size_t>(update_index) <
                  trace_->updates.size());
  apply_update(trace_->updates[static_cast<std::size_t>(update_index)]);
}

void ServerNode::apply_update(const workload::Update& u) {
  const std::size_t idx = checked(u.object);
  object_bytes_[idx] += u.cost;  // inserts grow the repository object
  for (CacheEntry& cache : caches_) {
    const bool notify =
        cache.subscription == MetadataSubscription::kAll ||
        (cache.subscription == MetadataSubscription::kRegisteredOnly &&
         cache.registered[idx] != 0);
    if (!notify) continue;
    if (!batching_.enabled) {
      net::Message msg;
      msg.kind = net::MessageKind::kInvalidation;
      msg.subject_id = u.id.value();
      msg.sent_at = u.time;
      msg.sender = name_;
      msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
      ++notice_messages_;
      transport_->send_to(cache.transport_slot, msg,
                          net::Mechanism::kOverhead);
      continue;
    }
    if (cache.pending_notices.empty()) cache.pending_first_sent_at = u.time;
    cache.pending_notices.push_back(u.id.value());
    // Hold the notice only while this cache's egress link is congested;
    // otherwise flush immediately — a single-id flush emits a message
    // byte-identical to the unbatched path, so batching changes nothing
    // until the uplink actually backs up.
    const double backlog = transport_->egress_backlog_seconds(
        transport_slot_, cache.transport_slot);
    if (backlog <= batching_.backlog_threshold_seconds ||
        cache.pending_notices.size() >= batching_.max_batch) {
      flush_cache_notices(cache);
    }
  }
}

void ServerNode::flush_cache_notices(CacheEntry& cache) {
  if (cache.pending_notices.empty()) return;
  net::Message msg;
  msg.kind = net::MessageKind::kInvalidation;
  msg.subject_id = cache.pending_notices.front();
  msg.sent_at = cache.pending_first_sent_at;
  msg.sender = name_;
  msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
  const std::size_t n = cache.pending_notices.size();
  if (n > 1) {
    msg.batched_invalidations.assign(cache.pending_notices.begin() + 1,
                                     cache.pending_notices.end());
    msg.batch_bytes =
        net::kBatchedNoticeBytes * static_cast<std::int64_t>(n - 1);
    coalesced_notices_ += static_cast<std::int64_t>(n - 1);
  }
  cache.pending_notices.clear();
  ++notice_messages_;
  transport_->send_to(cache.transport_slot, msg, net::Mechanism::kOverhead);
}

void ServerNode::flush_pending_notices() {
  for (CacheEntry& cache : caches_) flush_cache_notices(cache);
}

void ServerNode::send_reply(CacheEntry& cache, net::Message& reply,
                            net::Mechanism mechanism) {
  if (batching_.enabled && !cache.pending_notices.empty()) {
    // Piggyback every pending notice on this data-bearing reply: the ids
    // ride in the reply's batch fields (metered as overhead, priced into
    // its serialization) instead of paying their own message.
    reply.batched_invalidations = std::move(cache.pending_notices);
    cache.pending_notices.clear();
    reply.batch_bytes =
        net::kBatchedNoticeBytes *
        static_cast<std::int64_t>(reply.batched_invalidations.size());
    coalesced_notices_ +=
        static_cast<std::int64_t>(reply.batched_invalidations.size());
    transport_->send_to(cache.transport_slot, reply, mechanism);
    // The reply template is reused across requests — the batch fields must
    // not leak into the next reply.
    reply.batched_invalidations.clear();
    reply.batch_bytes = Bytes{};
    return;
  }
  transport_->send_to(cache.transport_slot, reply, mechanism);
}

Bytes ServerNode::object_bytes(ObjectId o) const {
  return object_bytes_[checked(o)];
}

Bytes ServerNode::load_cost(ObjectId o) const {
  return object_bytes(o) + kLoadOverheadBytes;
}

bool ServerNode::is_registered(std::size_t cache_slot, ObjectId o) const {
  DELTA_CHECK(cache_slot < caches_.size());
  return caches_[cache_slot].registered[checked(o)] != 0;
}

}  // namespace delta::core
