#include "core/server_node.h"

#include <algorithm>

#include "util/check.h"

namespace delta::core {

ServerNode::ServerNode(const workload::Trace* trace,
                       net::Transport* transport, std::string name)
    : trace_(trace), transport_(transport), name_(std::move(name)) {
  DELTA_CHECK(trace != nullptr);
  DELTA_CHECK(transport != nullptr);
  object_bytes_ = trace->initial_object_bytes;
  transport_slot_ = transport_->register_endpoint(
      name_, [this](const net::Message& m) { handle_message(m); });
  reply_template_.sender = name_;
  reply_template_.sender_transport_slot =
      static_cast<std::int32_t>(transport_slot_);
}

void ServerNode::validate_cache_name(const std::string& cache_name) const {
  DELTA_CHECK_MSG(slot_by_name_.count(cache_name) == 0,
                  "cache '" << cache_name << "' attached twice");
  DELTA_CHECK_MSG(cache_name != name_,
                  "cache endpoint cannot reuse the server name");
}

std::size_t ServerNode::attach_cache(const std::string& cache_name,
                                     std::size_t cache_transport_slot) {
  validate_cache_name(cache_name);
  const std::size_t slot = caches_.size();
  CacheEntry entry;
  entry.name = cache_name;
  entry.transport_slot = cache_transport_slot;
  entry.registered.assign(object_bytes_.size(), 0);
  caches_.push_back(std::move(entry));
  slot_by_name_.emplace(cache_name, slot);
  if (protocol_.enabled) {
    CacheEntry& attached = caches_.back();
    attached.recent_requests.assign(
        static_cast<std::size_t>(
            std::max<std::int32_t>(1, protocol_.dedup_window)),
        ~std::uint64_t{0});
    attached.reg_epoch.assign(object_bytes_.size(), 0);
  }
  return slot;
}

void ServerNode::set_protocol(const ProtocolOptions& options) {
  protocol_ = options;
  if (!protocol_.enabled) return;
  for (CacheEntry& cache : caches_) {
    cache.recent_requests.assign(
        static_cast<std::size_t>(
            std::max<std::int32_t>(1, protocol_.dedup_window)),
        ~std::uint64_t{0});
    cache.recent_next = 0;
    cache.reg_epoch.assign(object_bytes_.size(), 0);
  }
}

bool ServerNode::is_duplicate_request(CacheEntry& cache,
                                      const net::Message& m) {
  // (correlation, attempt) keys the window: a duplicated delivery of the
  // same attempt is suppressed, while a genuine retransmission (attempt+1,
  // sent because the reply was lost) keys fresh and is answered again.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(m.correlation_id) << 8) ^
      static_cast<std::uint64_t>(m.attempt);
  for (const std::uint64_t seen : cache.recent_requests) {
    if (seen == key) return true;
  }
  cache.recent_requests[cache.recent_next] = key;
  cache.recent_next = (cache.recent_next + 1) % cache.recent_requests.size();
  return false;
}

std::int64_t ServerNode::notices_logged(std::size_t cache_slot) const {
  DELTA_CHECK(cache_slot < caches_.size());
  const CacheEntry& cache = caches_[cache_slot];
  return cache.ledger_base + static_cast<std::int64_t>(cache.notice_log.size());
}

void ServerNode::crash_restart() {
  DELTA_CHECK_MSG(protocol_.enabled,
                  "crash-stop faults require the hardened protocol");
  ++crash_restarts_;
  ++incarnation_;
  for (CacheEntry& cache : caches_) {
    // Convergence accounting across the wipe: everything in notice_log was
    // externalized (sent, or already delivered) except the batching layer's
    // pending tail, which died in process memory without ever reaching the
    // wire — those notices can never be applied by anyone, so they are
    // retracted from the "owed" ledger. The rest stays owed via the base.
    cache.ledger_base +=
        static_cast<std::int64_t>(cache.notice_log.size()) -
        static_cast<std::int64_t>(cache.pending_notices.size());
    cache.notice_log.clear();
    cache.notice_ingest.clear();
    cache.pending_notices.clear();
    cache.pending_notice_ingest.clear();
    cache.pending_first_sent_at = 0;
    if (!cache.recent_requests.empty()) {
      std::fill(cache.recent_requests.begin(), cache.recent_requests.end(),
                ~std::uint64_t{0});
    }
    cache.recent_next = 0;
    cache.resync_epoch = -1;
    cache.replay_from = 0;
    cache.replay_to = 0;
    cache.next_resync_from = 0;
    // The registration table and subscriptions are exactly the per-client
    // soft state a crash-stop restart loses: caches rebuild them through
    // kRecoverRequest once they detect the new incarnation.
    std::fill(cache.registered.begin(), cache.registered.end(), 0);
    cache.subscription = MetadataSubscription::kNone;
    std::fill(cache.reg_epoch.begin(), cache.reg_epoch.end(), 0);
  }
}

void ServerNode::set_subscription(std::size_t cache_slot,
                                  MetadataSubscription subscription) {
  DELTA_CHECK(cache_slot < caches_.size());
  caches_[cache_slot].subscription = subscription;
}

std::size_t ServerNode::checked(ObjectId o) const {
  DELTA_CHECK(o.valid());
  const auto idx = static_cast<std::size_t>(o.value());
  DELTA_CHECK(idx < object_bytes_.size());
  return idx;
}

ServerNode::CacheEntry& ServerNode::sender_entry(const net::Message& m) {
  // Fast path: requests from attached CacheNodes carry their assigned slot.
  if (m.sender_slot >= 0 &&
      static_cast<std::size_t>(m.sender_slot) < caches_.size()) {
    CacheEntry& entry = caches_[static_cast<std::size_t>(m.sender_slot)];
    // A slot from another server instance (or a forged one) must not be
    // silently attributed to the wrong cache.
    DELTA_DCHECK(entry.name == m.sender);
    return entry;
  }
  const auto it = slot_by_name_.find(m.sender);
  DELTA_CHECK_MSG(it != slot_by_name_.end(),
                  "request from unattached cache '" << m.sender << "'");
  return caches_[it->second];
}

void ServerNode::handle_message(const net::Message& m) {
  // Correlated requests pass the dedup window first: a fault-duplicated
  // delivery (or a retransmit whose original did arrive) must be handled
  // exactly once — the reply to the first delivery is, or was, on the wire.
  if (protocol_.enabled && m.correlation_id >= 0 &&
      is_duplicate_request(sender_entry(m), m)) {
    ++duplicates_suppressed_;
    return;
  }
  // The server answers requests with data-bearing replies addressed to the
  // requesting cache endpoint. The prebuilt reply is safe to reuse per
  // request: the transport parks a copy or delivers it before returning.
  net::Message& reply = reply_template_;
  reply.subject_id = m.subject_id;
  reply.sent_at = m.sent_at;
  // Echo the request's correlation id so the cache's pending-request table
  // can match the reply even when deliveries interleave (DelayedTransport).
  reply.correlation_id = m.correlation_id;
  // Incarnation stamp (ISSUE 10): every server->cache message carries the
  // process incarnation so a cache can detect that the server it was
  // talking to died and restarted (and must be re-registered with). The
  // initial incarnation is 0, which caches also start at, so the stamp is
  // inert until a crash actually happens.
  reply.protocol_epoch = protocol_.enabled ? incarnation_ : -1;
  switch (m.kind) {
    case net::MessageKind::kQueryRequest: {
      CacheEntry& cache = sender_entry(m);
      if (admission_.enabled &&
          transport_->egress_backlog_seconds(transport_slot_,
                                             cache.transport_slot) >
              admission_.shed_backlog_seconds) {
        // Overloaded reply link: shed instead of queueing another result
        // behind a multi-second backlog. The tiny reject still completes
        // the cache's request (accounted, not lost).
        ++shed_queries_;
        reply.kind = net::MessageKind::kQueryReject;
        reply.payload = Bytes{};
        send_reply(cache, reply, net::Mechanism::kOverhead);
        break;
      }
      const auto& q = trace_->queries[static_cast<std::size_t>(m.subject_id)];
      reply.kind = net::MessageKind::kQueryResult;
      reply.payload = q.cost;
      send_reply(cache, reply, net::Mechanism::kQueryShip);
      break;
    }
    case net::MessageKind::kControl: {
      // "ship update <id>" request.
      const auto& u = trace_->updates[static_cast<std::size_t>(m.subject_id)];
      reply.kind = net::MessageKind::kUpdateShip;
      reply.payload = u.cost;
      send_reply(sender_entry(m), reply, net::Mechanism::kUpdateShip);
      break;
    }
    case net::MessageKind::kLoadRequest: {
      const auto idx = checked(ObjectId{m.subject_id});
      CacheEntry& cache = sender_entry(m);
      reply.kind = net::MessageKind::kLoadData;
      reply.payload = object_bytes_[idx] + kLoadOverheadBytes;
      cache.registered[idx] = 1;
      if (protocol_.enabled && m.protocol_epoch >= 0) {
        cache.reg_epoch[idx] =
            std::max(cache.reg_epoch[idx], m.protocol_epoch);
      }
      send_reply(cache, reply, net::Mechanism::kObjectLoad);
      break;
    }
    case net::MessageKind::kInvalidation: {
      // Cache -> server: eviction notice (re-using the kind for the
      // reverse coherence direction).
      const auto idx = checked(ObjectId{m.subject_id});
      CacheEntry& cache = sender_entry(m);
      if (protocol_.enabled && m.protocol_epoch >= 0 &&
          m.protocol_epoch < cache.reg_epoch[idx]) {
        // A reorder fault delivered this eviction after the load that
        // re-registered the object; honoring it would silence future
        // invalidations for a resident object.
        break;
      }
      cache.registered[idx] = 0;
      break;
    }
    case net::MessageKind::kResyncRequest: {
      DELTA_CHECK_MSG(protocol_.enabled,
                      "resync request without the protocol layer armed");
      serve_resync(sender_entry(m), m);
      break;
    }
    case net::MessageKind::kRecoverRequest: {
      DELTA_CHECK_MSG(protocol_.enabled,
                      "recover request without the protocol layer armed");
      // Crash recovery: reset this cache's registration row to exactly the
      // carried resident set (empty after a cache's own cold restart; the
      // surviving store after a *server* restart), then serve the same
      // epoch-snapshotted ledger replay a partition heal would get.
      // Retransmits re-execute harmlessly: the row reset is last-write-wins
      // over the same set, and serve_resync is epoch-idempotent.
      CacheEntry& cache = sender_entry(m);
      std::fill(cache.registered.begin(), cache.registered.end(), 0);
      std::fill(cache.reg_epoch.begin(), cache.reg_epoch.end(), 0);
      for (const std::int64_t oid : m.batched_invalidations) {
        cache.registered[checked(ObjectId{oid})] = 1;
      }
      serve_resync(cache, m);
      break;
    }
    default:
      DELTA_CHECK_MSG(false, "server received unexpected message kind");
  }
}

void ServerNode::serve_resync(CacheEntry& cache, const net::Message& m) {
  const std::int64_t epoch = m.subject_id;
  if (epoch > cache.resync_epoch) {
    // New epoch: snapshot the span of notices the cache has never been
    // replayed. A retransmit (same epoch, lost reply) or a reordered stale
    // request replays the SAME span — serving resync is idempotent.
    cache.resync_epoch = epoch;
    cache.replay_from = cache.next_resync_from;
    cache.replay_to = cache.notice_log.size();
    cache.next_resync_from = cache.replay_to;
  }
  ++resyncs_served_;
  net::Message& reply = reply_template_;
  reply.kind = net::MessageKind::kResyncData;
  reply.payload = Bytes{};
  reply.batched_invalidations.assign(
      cache.notice_log.begin() + static_cast<std::ptrdiff_t>(cache.replay_from),
      cache.notice_log.begin() + static_cast<std::ptrdiff_t>(cache.replay_to));
  reply.batched_ingest_at.assign(
      cache.notice_ingest.begin() +
          static_cast<std::ptrdiff_t>(cache.replay_from),
      cache.notice_ingest.begin() +
          static_cast<std::ptrdiff_t>(cache.replay_to));
  reply.batch_bytes =
      net::kBatchedNoticeBytes *
      static_cast<std::int64_t>(cache.replay_to - cache.replay_from);
  // Recovery traffic is pure overhead — never figure traffic — and must
  // not piggyback pending notices (send_reply would overwrite the replay).
  transport_->send_to(cache.transport_slot, reply, net::Mechanism::kOverhead);
  reply.batched_invalidations.clear();
  reply.batched_ingest_at.clear();
  reply.batch_bytes = Bytes{};
}

void ServerNode::ingest_update(const workload::Update& u) {
  // Invalidation notices carry only the update id; subscribed caches
  // resolve it against the shared trace. The update must therefore BE the
  // trace entry its id names (or an identical copy), or cache-side
  // accounting would silently diverge from the repository.
  const auto uidx = static_cast<std::size_t>(u.id.value());
  DELTA_CHECK_MSG(u.id.valid() && uidx < trace_->updates.size() &&
                      trace_->updates[uidx].object == u.object &&
                      trace_->updates[uidx].cost == u.cost &&
                      trace_->updates[uidx].time == u.time,
                  "ingest_update requires an update from the system's trace");
  apply_update(u);
}

void ServerNode::ingest_update_at(std::int64_t update_index) {
  DELTA_CHECK(update_index >= 0 &&
              static_cast<std::size_t>(update_index) <
                  trace_->updates.size());
  apply_update(trace_->updates[static_cast<std::size_t>(update_index)]);
}

void ServerNode::apply_update(const workload::Update& u) {
  const std::size_t idx = checked(u.object);
  object_bytes_[idx] += u.cost;  // inserts grow the repository object
  for (CacheEntry& cache : caches_) {
    const bool notify =
        cache.subscription == MetadataSubscription::kAll ||
        (cache.subscription == MetadataSubscription::kRegisteredOnly &&
         cache.registered[idx] != 0);
    if (!notify) continue;
    // Ledger + ingest stamp (protocol on): the log is the epoch-resync
    // replay source and the convergence yardstick's "notices owed" side;
    // the stamp lets the staleness observer date every notice even when it
    // later rides a batch or a resync replay.
    const double ingest = protocol_.enabled ? transport_->now() : 0.0;
    if (protocol_.enabled) {
      cache.notice_log.push_back(u.id.value());
      cache.notice_ingest.push_back(ingest);
    }
    if (!batching_.enabled) {
      net::Message msg;
      msg.kind = net::MessageKind::kInvalidation;
      msg.subject_id = u.id.value();
      msg.sent_at = u.time;
      msg.sender = name_;
      msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
      if (protocol_.enabled) {
        msg.subject_ingest_at = ingest;
        // Ledger stamp: this notice is position notice_log.size() of the
        // cache's stream (just pushed above) — the cache's gap detector
        // turns a missing predecessor into an immediate resync.
        msg.notice_ledger =
            static_cast<std::int64_t>(cache.notice_log.size());
        msg.protocol_epoch = incarnation_;
      }
      ++notice_messages_;
      transport_->send_to(cache.transport_slot, msg,
                          net::Mechanism::kOverhead);
      continue;
    }
    if (cache.pending_notices.empty()) cache.pending_first_sent_at = u.time;
    cache.pending_notices.push_back(u.id.value());
    if (protocol_.enabled) cache.pending_notice_ingest.push_back(ingest);
    // Hold the notice only while this cache's egress link is congested;
    // otherwise flush immediately — a single-id flush emits a message
    // byte-identical to the unbatched path, so batching changes nothing
    // until the uplink actually backs up.
    const double backlog = transport_->egress_backlog_seconds(
        transport_slot_, cache.transport_slot);
    if (backlog <= batching_.backlog_threshold_seconds ||
        cache.pending_notices.size() >= batching_.max_batch) {
      flush_cache_notices(cache);
    }
  }
}

void ServerNode::flush_cache_notices(CacheEntry& cache) {
  if (cache.pending_notices.empty()) return;
  net::Message msg;
  msg.kind = net::MessageKind::kInvalidation;
  msg.subject_id = cache.pending_notices.front();
  msg.sent_at = cache.pending_first_sent_at;
  msg.sender = name_;
  msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
  const std::size_t n = cache.pending_notices.size();
  if (n > 1) {
    msg.batched_invalidations.assign(cache.pending_notices.begin() + 1,
                                     cache.pending_notices.end());
    msg.batch_bytes =
        net::kBatchedNoticeBytes * static_cast<std::int64_t>(n - 1);
    coalesced_notices_ += static_cast<std::int64_t>(n - 1);
  }
  if (!cache.pending_notice_ingest.empty()) {
    msg.subject_ingest_at = cache.pending_notice_ingest.front();
    if (n > 1) {
      msg.batched_ingest_at.assign(cache.pending_notice_ingest.begin() + 1,
                                   cache.pending_notice_ingest.end());
    }
    cache.pending_notice_ingest.clear();
  }
  if (protocol_.enabled) {
    // The pending ids are exactly the ledger's tail, so the batch covers
    // positions (size - n, size] of the cache's notice stream.
    msg.notice_ledger = static_cast<std::int64_t>(cache.notice_log.size());
    msg.protocol_epoch = incarnation_;
  }
  cache.pending_notices.clear();
  ++notice_messages_;
  transport_->send_to(cache.transport_slot, msg, net::Mechanism::kOverhead);
}

void ServerNode::flush_pending_notices() {
  for (CacheEntry& cache : caches_) flush_cache_notices(cache);
}

void ServerNode::send_reply(CacheEntry& cache, net::Message& reply,
                            net::Mechanism mechanism) {
  if (batching_.enabled && !cache.pending_notices.empty()) {
    // Piggyback every pending notice on this data-bearing reply: the ids
    // ride in the reply's batch fields (metered as overhead, priced into
    // its serialization) instead of paying their own message.
    reply.batched_invalidations = std::move(cache.pending_notices);
    cache.pending_notices.clear();
    if (!cache.pending_notice_ingest.empty()) {
      reply.batched_ingest_at = std::move(cache.pending_notice_ingest);
      cache.pending_notice_ingest.clear();
    }
    reply.batch_bytes =
        net::kBatchedNoticeBytes *
        static_cast<std::int64_t>(reply.batched_invalidations.size());
    coalesced_notices_ +=
        static_cast<std::int64_t>(reply.batched_invalidations.size());
    if (protocol_.enabled) {
      // Piggybacked ids are the ledger tail too — stamp so the cache's
      // gap detector sees one contiguous stream across both carriers.
      reply.notice_ledger =
          static_cast<std::int64_t>(cache.notice_log.size());
    }
    transport_->send_to(cache.transport_slot, reply, mechanism);
    // The reply template is reused across requests — the batch fields must
    // not leak into the next reply.
    reply.batched_invalidations.clear();
    reply.batched_ingest_at.clear();
    reply.batch_bytes = Bytes{};
    reply.notice_ledger = -1;
    return;
  }
  transport_->send_to(cache.transport_slot, reply, mechanism);
}

Bytes ServerNode::object_bytes(ObjectId o) const {
  return object_bytes_[checked(o)];
}

Bytes ServerNode::load_cost(ObjectId o) const {
  return object_bytes(o) + kLoadOverheadBytes;
}

bool ServerNode::is_registered(std::size_t cache_slot, ObjectId o) const {
  DELTA_CHECK(cache_slot < caches_.size());
  return caches_[cache_slot].registered[checked(o)] != 0;
}

MetadataSubscription ServerNode::subscription(std::size_t cache_slot) const {
  DELTA_CHECK(cache_slot < caches_.size());
  return caches_[cache_slot].subscription;
}

const std::vector<std::uint8_t>& ServerNode::registered_row(
    std::size_t cache_slot) const {
  DELTA_CHECK(cache_slot < caches_.size());
  return caches_[cache_slot].registered;
}

}  // namespace delta::core
