// The cache-policy strategy interface: how the middleware reacts to each
// arriving query and update. Implementations: VCoverPolicy (the paper's
// contribution), BenefitPolicy (§5 comparator), and the yardsticks
// NoCachePolicy / ReplicaPolicy / SOptimalPolicy (§6.1).
#pragma once

#include <functional>
#include <vector>

#include "core/protocol.h"
#include "util/types.h"
#include "workload/events.h"

namespace delta::core {

/// How a query was satisfied, with enough detail for the latency model.
struct QueryOutcome {
  enum class Path : std::uint8_t {
    kCacheFresh,         // answered at cache, no update wait
    kCacheAfterUpdates,  // answered at cache after shipping updates
    kShipped,            // routed to the repository
  };
  Path path = Path::kShipped;
  /// Largest single update shipped synchronously for this query (drives the
  /// response-time proxy: updates ship in parallel).
  Bytes max_update_bytes;
  /// Total update bytes shipped by this query's cover decision.
  Bytes updates_shipped_bytes;
  /// Result bytes if the query was shipped (ν(q)); zero otherwise.
  Bytes result_bytes;
  /// Objects loaded in the background because of this query.
  int objects_loaded = 0;
  /// Updates shipped by this query's cover decision (empty for policies
  /// that ship updates on arrival). Used by the currency-invariant tests.
  std::vector<UpdateId> shipped_update_ids;
};

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// An update arrived at the repository (the simulator has already applied
  /// it server-side). The policy reacts per its design: ship it, record it
  /// as outstanding, or ignore it.
  virtual void on_update(const workload::Update& u) = 0;

  /// A query arrived at the cache; the policy must satisfy it within its
  /// currency requirement and report how.
  virtual QueryOutcome on_query(const workload::Query& q) = 0;

  /// Completion for on_query_async: fires exactly once, when every reply
  /// the query's decision required has been delivered. The outcome
  /// reference is valid only for the duration of the call.
  using QueryDone = std::function<void(const QueryOutcome&)>;

  /// Non-blocking variant of on_query, for open-loop engines that keep
  /// many queries in flight per cache. The contract: the policy makes the
  /// same decisions as on_query and applies all of its state transitions
  /// synchronously at dispatch (decisions never depend on reply payloads —
  /// replies only carry sizes), issues its traffic through the CacheNode
  /// *_async API, and calls `done` once the last reply for this query has
  /// landed. The default adapter runs the synchronous on_query, which is
  /// correct over any transport (the sync façade pumps the event queue)
  /// but closed-loop — it admits no overlap. Policies override it to
  /// sustain a real in-flight window.
  virtual void on_query_async(const workload::Query& q, QueryDone done) {
    done(on_query(q));
  }

  /// Open-loop engines keep many queries in flight per cache; a policy
  /// whose invalidation handler does a blocking refresh per notice would
  /// serialize the entire arrival drive behind one round trip (and, under
  /// a partition, behind one retry ladder). Policies that can ship their
  /// refresh traffic through the *_async API switch here; the default
  /// ignores it (handlers that are already non-blocking, or whose
  /// blocking refresh is the modeled behavior).
  virtual void set_nonblocking_invalidations(bool on) { (void)on; }

  /// Arms the policy-side overload path: under uplink pressure a policy
  /// may serve a degraded (stale-but-within-tolerance) answer instead of
  /// adding load to a congested server. Default: ignored — most policies
  /// have no degraded mode.
  virtual void set_admission(const AdmissionOptions& options) {
    (void)options;
  }
  /// Queries answered degraded under overload (0 for policies without a
  /// degraded mode).
  [[nodiscard]] virtual std::int64_t degraded_queries() const { return 0; }

  /// Crash-stop fault injection (ISSUE 10): the cache process hosting this
  /// policy died and restarted cold. All in-memory policy state — store
  /// contents, pending-update bookkeeping, popularity/heat signals — is
  /// lost; run counters are instruments of the experiment, not process
  /// memory, and survive. The engine calls this one event after
  /// CacheNode::crash_restart(), never under a live dispatch frame.
  /// Default: no-op, for yardstick policies whose "store" is implicit
  /// (NoCache ships everything; Replica's content is the repository's;
  /// SOptimal's chosen set is offline configuration, not soft state).
  virtual void on_crash_restart() {}

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace delta::core
