// The three yardstick policies of §6.1:
//   NoCache  — ship every query; an algorithm doing worse is useless.
//   Replica  — full copy kept current by shipping every update (load costs
//              and cache capacity ignored, as in the paper).
//   SOptimal — the best *static* object set chosen with hindsight over the
//              whole trace (Benefit's rule with one trace-sized window,
//              offline); loads everything up front, never evicts. An online
//              algorithm close to it is outstanding.
#pragma once

#include <vector>

#include "core/cache_node.h"
#include "core/delta_system.h"
#include "core/policy.h"
#include "util/flat_map.h"
#include "workload/trace.h"

namespace delta::core {

class NoCachePolicy final : public CachePolicy {
 public:
  explicit NoCachePolicy(CacheNode* cache);
  /// Single-cache compatibility: bind to the façade's cache endpoint.
  explicit NoCachePolicy(DeltaSystem* system)
      : NoCachePolicy(cache_endpoint(system)) {}

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  void on_query_async(const workload::Query& q, QueryDone done) override;
  [[nodiscard]] const char* name() const override { return "NoCache"; }

 private:
  CacheNode* system_;
};

class ReplicaPolicy final : public CachePolicy {
 public:
  explicit ReplicaPolicy(CacheNode* cache);
  /// Single-cache compatibility: bind to the façade's cache endpoint.
  explicit ReplicaPolicy(DeltaSystem* system)
      : ReplicaPolicy(cache_endpoint(system)) {}

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  void set_nonblocking_invalidations(bool on) override { async_ship_ = on; }
  [[nodiscard]] const char* name() const override { return "Replica"; }

 private:
  CacheNode* system_;
  bool async_ship_ = false;
};

struct SOptimalOptions {
  Bytes cache_capacity;
  /// The default refines the hindsight ranking with add/drop passes against
  /// the exact replay cost, keeping the yardstick genuinely strong ("an
  /// online algorithm close to SOptimal is outstanding"). Ablation A5 turns
  /// this off to get the paper's literal Benefit-one-window ranking.
  bool local_search = true;
  /// Multi-endpoint runs: the trace split (indexed like Trace::queries)
  /// and this policy's endpoint, so hindsight only counts the queries
  /// actually routed here — otherwise every shard would "optimize" for
  /// queries it never receives. Null = single cache, all queries. The
  /// vector must outlive policy construction.
  const std::vector<std::uint32_t>* query_assignment = nullptr;
  std::uint32_t endpoint = 0;
};

class SOptimalPolicy final : public CachePolicy {
 public:
  /// Inspects the whole trace up front (it is an offline yardstick) and
  /// loads its chosen set immediately — before any event, i.e. within the
  /// warm-up window.
  SOptimalPolicy(CacheNode* cache, const workload::Trace* trace,
                 const SOptimalOptions& options);
  /// Single-cache compatibility: bind to the façade's cache endpoint.
  SOptimalPolicy(DeltaSystem* system, const workload::Trace* trace,
                 const SOptimalOptions& options)
      : SOptimalPolicy(cache_endpoint(system), trace, options) {}

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  void on_query_async(const workload::Query& q, QueryDone done) override;
  [[nodiscard]] const char* name() const override { return "SOptimal"; }

  [[nodiscard]] const util::FlatSet<ObjectId>& chosen() const {
    return chosen_;
  }

 private:
  CacheNode* system_;
  util::FlatSet<ObjectId> chosen_;

  static util::FlatSet<ObjectId> choose_set(const workload::Trace& trace,
                                            const SOptimalOptions& options);
};

}  // namespace delta::core
