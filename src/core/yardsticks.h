// The three yardstick policies of §6.1:
//   NoCache  — ship every query; an algorithm doing worse is useless.
//   Replica  — full copy kept current by shipping every update (load costs
//              and cache capacity ignored, as in the paper).
//   SOptimal — the best *static* object set chosen with hindsight over the
//              whole trace (Benefit's rule with one trace-sized window,
//              offline); loads everything up front, never evicts. An online
//              algorithm close to it is outstanding.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/delta_system.h"
#include "core/policy.h"
#include "workload/trace.h"

namespace delta::core {

class NoCachePolicy final : public CachePolicy {
 public:
  explicit NoCachePolicy(DeltaSystem* system);

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  [[nodiscard]] const char* name() const override { return "NoCache"; }

 private:
  DeltaSystem* system_;
};

class ReplicaPolicy final : public CachePolicy {
 public:
  explicit ReplicaPolicy(DeltaSystem* system);

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  [[nodiscard]] const char* name() const override { return "Replica"; }

 private:
  DeltaSystem* system_;
};

struct SOptimalOptions {
  Bytes cache_capacity;
  /// The default refines the hindsight ranking with add/drop passes against
  /// the exact replay cost, keeping the yardstick genuinely strong ("an
  /// online algorithm close to SOptimal is outstanding"). Ablation A5 turns
  /// this off to get the paper's literal Benefit-one-window ranking.
  bool local_search = true;
};

class SOptimalPolicy final : public CachePolicy {
 public:
  /// Inspects the whole trace up front (it is an offline yardstick) and
  /// loads its chosen set immediately — before any event, i.e. within the
  /// warm-up window.
  SOptimalPolicy(DeltaSystem* system, const workload::Trace* trace,
                 const SOptimalOptions& options);

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  [[nodiscard]] const char* name() const override { return "SOptimal"; }

  [[nodiscard]] const std::unordered_set<ObjectId>& chosen() const {
    return chosen_;
  }

 private:
  DeltaSystem* system_;
  std::unordered_set<ObjectId> chosen_;

  static std::unordered_set<ObjectId> choose_set(
      const DeltaSystem& system, const workload::Trace& trace,
      const SOptimalOptions& options);
};

}  // namespace delta::core
