// ServerNode: the repository endpoint of the paper's middleware (Figure 1).
//
// It owns the server-side object sizes, answers data requests arriving over
// the transport (query shipping, update shipping, object loading), and runs
// the registration-based cache-coherence protocol: a per-cache registration
// table plus a per-cache metadata subscription drive the invalidation
// fan-out when updates arrive. Any number of CacheNode endpoints can attach,
// all communicating with the server only through net::Transport messages.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "net/transport.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

/// Which update notices a cache endpoint subscribes to.
enum class MetadataSubscription : std::uint8_t {
  kNone,            // NoCache: the cache never hears about updates
  kRegisteredOnly,  // VCover: invalidations only for loaded objects
  kAll,             // Replica / Benefit: metadata notices for every update
};

/// Congestion batching of invalidation notices. When the server's egress
/// link to a cache is backlogged past `backlog_threshold_seconds`
/// (Transport::egress_backlog_seconds), per-update notices are held in a
/// per-cache pending list instead of each paying its own message header
/// and serialization slot. Pending notices drain three ways: merged into
/// one kInvalidation once the backlog recedes or `max_batch` is reached,
/// piggybacked onto the next data-bearing reply to that cache, or by the
/// end-of-run flush_pending_notices(). Off by default — the unbatched
/// one-notice-per-message fan-out is the golden-pinned behavior, and a
/// flush of a single pending notice emits a byte-identical message to the
/// unbatched path.
struct NoticeBatchingOptions {
  bool enabled = false;
  /// Hold notices while the egress backlog exceeds this many simulated
  /// seconds; 0.0 batches only while the link is busy at all.
  double backlog_threshold_seconds = 0.0;
  /// Pending-list bound per cache: the merge flushes at this size even if
  /// the backlog persists (bounds notice latency under saturation).
  std::size_t max_batch = 64;
};

class ServerNode {
 public:
  /// Bulk-copy framing added to every object load.
  static constexpr Bytes kLoadOverheadBytes{256 * 1024};

  /// Builds the repository from the trace's initial object sizes and
  /// registers the endpoint on the transport. Trace and transport outlive
  /// the node.
  ServerNode(const workload::Trace* trace, net::Transport* transport,
             std::string name = "server");

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// This endpoint's transport slot (for send_to-style fast addressing).
  [[nodiscard]] std::size_t transport_slot() const { return transport_slot_; }

  /// Checked-failure unless `cache_name` is attachable (not a duplicate,
  /// not the server's own name). CacheNode calls this BEFORE registering
  /// its transport handler so a failing construction cannot leave a
  /// handler bound to a destroyed node.
  void validate_cache_name(const std::string& cache_name) const;

  /// Adds a cache endpoint to the registration table and returns its slot
  /// index (the handle CacheNode uses for cheap metadata reads, and the
  /// sender_slot its requests carry). The cache must already be registered
  /// on the transport: replies and invalidations are addressed by its
  /// transport slot.
  std::size_t attach_cache(const std::string& cache_name,
                           std::size_t cache_transport_slot);

  void set_subscription(std::size_t cache_slot,
                        MetadataSubscription subscription);

  /// Applies an arriving update to the repository and fans out an
  /// invalidation notice to every attached cache whose subscription covers
  /// it (in attach order — deterministic). The update must be the trace
  /// entry its id names (validated per call).
  void ingest_update(const workload::Update& u);

  /// Trusted ingest by trace index: identical side effects, but the update
  /// is read straight from the shared trace, so there is nothing to
  /// validate beyond the bound. This is the replicated-replay fast path —
  /// N partitions ingesting the same decoded stream pay the identity check
  /// zero times instead of N times per update.
  void ingest_update_at(std::int64_t update_index);

  // ---- protocol hardening & admission control (ISSUE 8) ----

  /// Arms the server side of the hardened protocol: the per-cache
  /// (correlation, attempt) dedup ring, notice ingest stamping, the
  /// per-cache notice log that backs epoch resync, and the per-object
  /// registration generations that make reordered eviction notices safe.
  /// Every behavior gates on options.enabled — the default-constructed
  /// options leave the node byte-identical to the pre-protocol build.
  void set_protocol(const ProtocolOptions& options);
  /// Arms shedding: overloaded kQueryRequests are answered kQueryReject.
  void set_admission(const AdmissionOptions& options) { admission_ = options; }

  /// Total invalidation notices ever destined to `cache_slot` (logged
  /// whether the wire delivered them or not). With the cache's dedup
  /// accounting this pins the convergence invariant: after heal + resync,
  /// notices_logged == the cache's distinct applied notices.
  [[nodiscard]] std::int64_t notices_logged(std::size_t cache_slot) const;
  [[nodiscard]] std::int64_t shed_queries() const { return shed_queries_; }
  [[nodiscard]] std::int64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::int64_t resyncs_served() const { return resyncs_served_; }

  // ---- crash-stop endpoint faults (ISSUE 10) ----

  /// The server process dies and restarts cold. Soft state is lost: every
  /// cache's registration row, subscription, dedup ring, notice ledger,
  /// pending (batched) notices, and resync bookkeeping. Durable state —
  /// the repository's object bytes — survives, as does the convergence
  /// ledger accounting: notices already externalized (sent or in flight)
  /// stay "owed" via a per-cache ledger base, while notices still pending
  /// in process memory died unsent and are retracted (they can never be
  /// applied by anyone). The incarnation number increments; it is stamped
  /// on every subsequent server->cache message so caches can detect the
  /// restart and re-register (kRecoverRequest). Requires the hardened
  /// protocol.
  void crash_restart();
  [[nodiscard]] std::int64_t crash_restarts() const { return crash_restarts_; }
  /// Monotone process-incarnation number (0 = never crashed). Stamped as
  /// protocol_epoch on server->cache messages while the protocol is armed.
  [[nodiscard]] std::int64_t incarnation() const { return incarnation_; }

  // ---- congestion batching of invalidation notices ----

  void set_notice_batching(const NoticeBatchingOptions& options) {
    batching_ = options;
  }
  /// Merges and sends every pending notice (end-of-run drain; no-op when
  /// nothing is pending or batching is off).
  void flush_pending_notices();
  /// Notices coalesced behind another message instead of paying their own
  /// (merged into a multi-id kInvalidation or piggybacked on a reply).
  [[nodiscard]] std::int64_t coalesced_notices() const {
    return coalesced_notices_;
  }
  /// Standalone kInvalidation messages actually sent.
  [[nodiscard]] std::int64_t notice_messages() const {
    return notice_messages_;
  }

  // ---- repository state (metadata caches may read cheaply) ----

  [[nodiscard]] Bytes object_bytes(ObjectId o) const;
  [[nodiscard]] Bytes load_cost(ObjectId o) const;
  [[nodiscard]] bool is_registered(std::size_t cache_slot, ObjectId o) const;
  /// The metadata subscription of the cache at `cache_slot` (as set by the
  /// attached policy). The parallel engine's update prefilter reads it
  /// after the policy factories have run.
  [[nodiscard]] MetadataSubscription subscription(
      std::size_t cache_slot) const;
  /// Read-only registration row of the cache at `cache_slot`, indexed by
  /// object (nonzero = resident). The prefilter snapshots it post-factory
  /// to fold preloaded objects into each partition's touch set.
  [[nodiscard]] const std::vector<std::uint8_t>& registered_row(
      std::size_t cache_slot) const;
  [[nodiscard]] std::size_t object_count() const {
    return object_bytes_.size();
  }
  [[nodiscard]] std::size_t cache_count() const { return caches_.size(); }

 private:
  struct CacheEntry {
    std::string name;
    std::size_t transport_slot = 0;  // where replies/invalidations go
    MetadataSubscription subscription = MetadataSubscription::kNone;
    std::vector<std::uint8_t> registered;  // objects resident at this cache
    /// Notices held back by congestion batching (update ids, ingest order).
    std::vector<std::int64_t> pending_notices;
    /// sent_at for a merged flush: the first pending update's trace time.
    EventTime pending_first_sent_at = 0;
    /// Ingest instants parallel to pending_notices (protocol on only).
    std::vector<double> pending_notice_ingest;
    /// Dedup ring of recent (correlation << 8) ^ attempt keys.
    std::vector<std::uint64_t> recent_requests;
    std::size_t recent_next = 0;
    /// Every notice destined to this cache, in send order (protocol on):
    /// the replay source for epoch resync and the convergence ledger.
    std::vector<std::int64_t> notice_log;
    std::vector<double> notice_ingest;
    /// Epoch-resync bookkeeping. A NEW epoch snapshots the unreplayed span
    /// [next_resync_from, log end); a retransmitted (or reordered stale)
    /// kResyncRequest replays the SAME recorded span — retry-idempotent.
    std::int64_t resync_epoch = -1;
    std::size_t replay_from = 0;
    std::size_t replay_to = 0;
    std::size_t next_resync_from = 0;
    /// Per-object registration generation (protocol on): a reordered
    /// eviction notice carrying an older generation than the load that
    /// re-registered the object must not deregister it.
    std::vector<std::int64_t> reg_epoch;
    /// Notices owed to this cache by *earlier server incarnations* that
    /// were externalized before the crash wiped the log they lived in.
    /// notices_logged() = ledger_base + notice_log.size(), so the
    /// convergence invariant survives the log being soft state.
    std::int64_t ledger_base = 0;
  };

  const workload::Trace* trace_;
  net::Transport* transport_;
  std::string name_;
  std::size_t transport_slot_ = 0;
  /// Prebuilt reply message: sender identity set once at construction,
  /// handle_message fills the per-reply fields (see the note there).
  net::Message reply_template_;
  std::vector<Bytes> object_bytes_;  // server-side current sizes
  std::vector<CacheEntry> caches_;
  std::unordered_map<std::string, std::size_t> slot_by_name_;

  NoticeBatchingOptions batching_;
  std::int64_t coalesced_notices_ = 0;
  std::int64_t notice_messages_ = 0;

  ProtocolOptions protocol_;
  AdmissionOptions admission_;
  std::int64_t shed_queries_ = 0;
  std::int64_t duplicates_suppressed_ = 0;
  std::int64_t resyncs_served_ = 0;
  std::int64_t crash_restarts_ = 0;
  std::int64_t incarnation_ = 0;

  [[nodiscard]] std::size_t checked(ObjectId o) const;
  [[nodiscard]] CacheEntry& sender_entry(const net::Message& m);
  void handle_message(const net::Message& m);
  void apply_update(const workload::Update& u);
  /// Sends `reply` to `cache`, piggybacking its pending notices (batching
  /// on) and restoring the reusable template's batch fields afterwards.
  void send_reply(CacheEntry& cache, net::Message& reply,
                  net::Mechanism mechanism);
  /// Merges `cache`'s pending notices into one kInvalidation and sends it.
  void flush_cache_notices(CacheEntry& cache);
  /// True (and the key remembered) when this correlated delivery was
  /// already handled — a server-side retransmit/duplicate filter.
  [[nodiscard]] bool is_duplicate_request(CacheEntry& cache,
                                          const net::Message& m);
  void serve_resync(CacheEntry& cache, const net::Message& m);
};

}  // namespace delta::core
