// ServerNode: the repository endpoint of the paper's middleware (Figure 1).
//
// It owns the server-side object sizes, answers data requests arriving over
// the transport (query shipping, update shipping, object loading), and runs
// the registration-based cache-coherence protocol: a per-cache registration
// table plus a per-cache metadata subscription drive the invalidation
// fan-out when updates arrive. Any number of CacheNode endpoints can attach,
// all communicating with the server only through net::Transport messages.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

/// Which update notices a cache endpoint subscribes to.
enum class MetadataSubscription : std::uint8_t {
  kNone,            // NoCache: the cache never hears about updates
  kRegisteredOnly,  // VCover: invalidations only for loaded objects
  kAll,             // Replica / Benefit: metadata notices for every update
};

class ServerNode {
 public:
  /// Bulk-copy framing added to every object load.
  static constexpr Bytes kLoadOverheadBytes{256 * 1024};

  /// Builds the repository from the trace's initial object sizes and
  /// registers the endpoint on the transport. Trace and transport outlive
  /// the node.
  ServerNode(const workload::Trace* trace, net::Transport* transport,
             std::string name = "server");

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// This endpoint's transport slot (for send_to-style fast addressing).
  [[nodiscard]] std::size_t transport_slot() const { return transport_slot_; }

  /// Checked-failure unless `cache_name` is attachable (not a duplicate,
  /// not the server's own name). CacheNode calls this BEFORE registering
  /// its transport handler so a failing construction cannot leave a
  /// handler bound to a destroyed node.
  void validate_cache_name(const std::string& cache_name) const;

  /// Adds a cache endpoint to the registration table and returns its slot
  /// index (the handle CacheNode uses for cheap metadata reads, and the
  /// sender_slot its requests carry). The cache must already be registered
  /// on the transport: replies and invalidations are addressed by its
  /// transport slot.
  std::size_t attach_cache(const std::string& cache_name,
                           std::size_t cache_transport_slot);

  void set_subscription(std::size_t cache_slot,
                        MetadataSubscription subscription);

  /// Applies an arriving update to the repository and fans out an
  /// invalidation notice to every attached cache whose subscription covers
  /// it (in attach order — deterministic). The update must be the trace
  /// entry its id names (validated per call).
  void ingest_update(const workload::Update& u);

  /// Trusted ingest by trace index: identical side effects, but the update
  /// is read straight from the shared trace, so there is nothing to
  /// validate beyond the bound. This is the replicated-replay fast path —
  /// N partitions ingesting the same decoded stream pay the identity check
  /// zero times instead of N times per update.
  void ingest_update_at(std::int64_t update_index);

  // ---- repository state (metadata caches may read cheaply) ----

  [[nodiscard]] Bytes object_bytes(ObjectId o) const;
  [[nodiscard]] Bytes load_cost(ObjectId o) const;
  [[nodiscard]] bool is_registered(std::size_t cache_slot, ObjectId o) const;
  [[nodiscard]] std::size_t object_count() const {
    return object_bytes_.size();
  }
  [[nodiscard]] std::size_t cache_count() const { return caches_.size(); }

 private:
  struct CacheEntry {
    std::string name;
    std::size_t transport_slot = 0;  // where replies/invalidations go
    MetadataSubscription subscription = MetadataSubscription::kNone;
    std::vector<std::uint8_t> registered;  // objects resident at this cache
  };

  const workload::Trace* trace_;
  net::Transport* transport_;
  std::string name_;
  std::size_t transport_slot_ = 0;
  /// Prebuilt reply message: sender identity set once at construction,
  /// handle_message fills the per-reply fields (see the note there).
  net::Message reply_template_;
  std::vector<Bytes> object_bytes_;  // server-side current sizes
  std::vector<CacheEntry> caches_;
  std::unordered_map<std::string, std::size_t> slot_by_name_;

  [[nodiscard]] std::size_t checked(ObjectId o) const;
  [[nodiscard]] CacheEntry& sender_entry(const net::Message& m);
  void handle_message(const net::Message& m);
  void apply_update(const workload::Update& u);
};

}  // namespace delta::core
