// UpdateManager (paper Fig. 4): the online ship-query-vs-ship-updates
// decision for queries whose objects are all cached.
//
// It maintains the internal interaction graph incrementally: outstanding
// updates on cached objects enter the graph lazily when a query first needs
// them; each arriving query becomes a query vertex with edges to the
// updates it interacts with (filtered by its staleness tolerance); the
// minimum-weight vertex cover — computed by incremental max-flow — dictates
// the shipping decision. After every cover the remainder rule applies:
// covered updates are shipped and removed, queries that became isolated are
// pruned, and shipped queries stay to justify future update shipping
// (ski-rental memory). Setting remember_shipped_queries=false disables that
// memory (ablation A4).
//
// Two exact graph reductions keep the remainder graph bounded by *active
// staleness*, not by trace length (without them the graph grows
// quadratically on update-heavy objects):
//
//  * One update-group vertex per object. All materialized outstanding
//    updates of an object form a single vertex whose weight is their total
//    shipping cost; newly needed updates extend it. Members ship together,
//    so currency is always met; at worst a cover ships updates slightly
//    newer than a tolerant query strictly required, which the tolerance
//    semantics permit (fresher-than-required answers are valid).
//
//  * Same-neighborhood query merging. Shipped query vertices with an
//    identical set of update neighbors are interchangeable in any vertex
//    cover, so they are merged into one vertex carrying their summed
//    weight. This is cover-exact. Neighborhood signatures are re-keyed when
//    groups are removed, merging again on collision.
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "flow/bipartite_cover.h"
#include "util/flat_map.h"
#include "util/types.h"
#include "workload/events.h"

namespace delta::core {

class UpdateManager {
 public:
  explicit UpdateManager(bool remember_shipped_queries = true);

  /// Records an outstanding (un-shipped) update for a cached object.
  void add_outstanding(const workload::Update& u);

  /// True when the object has at least one outstanding update (is stale).
  [[nodiscard]] bool is_stale(ObjectId o) const;

  /// Arrival time of the object's OLDEST outstanding update, or
  /// `kNoOutstanding` when none — how stale a degraded answer for this
  /// object would be (the admission controller's within-tolerance check).
  [[nodiscard]] EventTime oldest_outstanding(ObjectId o) const;
  static constexpr EventTime kNoOutstanding =
      std::numeric_limits<EventTime>::max();

  /// Drops all bookkeeping for an object (evicted, or re-loaded so its
  /// outstanding updates are folded into the load).
  void drop_object(ObjectId o);

  /// Crash-stop wipe (ISSUE 10): drops the entire interaction graph —
  /// pending updates, materialized groups, and the shipped-query memory.
  /// Uses the solver's public removal API (it is deliberately neither
  /// copyable nor movable — the incremental-flow engine points into its
  /// owned network), so the solver stays internally consistent and
  /// reusable. Run counters (peak nodes, covers computed) survive: they
  /// instrument the experiment, not the process.
  void clear();

  /// Pre-sizes the per-object maps for up to `n` stale objects (bounded by
  /// residency, not by trace length or total object count).
  void reserve(std::size_t n) {
    pending_.reserve(n);
    groups_.reserve(n);
    node_to_group_.reserve(n);
  }

  struct Decision {
    bool ship_query = false;
    /// Updates selected by the cover — ship them all (remainder rule).
    std::vector<const workload::Update*> ship_updates;
  };

  /// Decides for a query with all B(q) cached. Precondition enforced by the
  /// caller. Pure decision: the caller performs the shipping and applies
  /// update growth. The returned reference points at reused scratch, valid
  /// until the next decide() call (keeps the per-query replay path
  /// allocation-free).
  const Decision& decide(const workload::Query& q);

  // ---- introspection (ablation A4 / micro benches) ----
  [[nodiscard]] std::size_t graph_query_count() const {
    return solver_.query_count();
  }
  [[nodiscard]] std::size_t graph_update_count() const {
    return solver_.update_count();
  }
  [[nodiscard]] std::size_t graph_interaction_count() const {
    return solver_.interaction_count();
  }
  [[nodiscard]] std::int64_t flow_bfs_count() const {
    return solver_.bfs_count();
  }
  [[nodiscard]] std::size_t peak_graph_nodes() const {
    return peak_graph_nodes_;
  }
  [[nodiscard]] std::int64_t covers_computed() const {
    return covers_computed_;
  }

 private:
  using UpdateNode = flow::BipartiteCoverSolver::UpdateNode;
  using QueryNode = flow::BipartiteCoverSolver::QueryNode;
  using Signature = std::vector<std::int32_t>;  // sorted group node indices

  /// The single materialized interaction-graph vertex of an object,
  /// covering its needed outstanding updates (shipped together if covered).
  struct UpdateGroup {
    UpdateNode node;
    ObjectId object;
    std::vector<const workload::Update*> members;
    EventTime min_time = 0;
  };

  bool remember_shipped_queries_;
  flow::BipartiteCoverSolver solver_;
  /// Outstanding updates not yet in the graph, per object, arrival order.
  util::FlatMap<ObjectId, std::vector<const workload::Update*>> pending_;
  /// At most one materialized group per object.
  util::FlatMap<ObjectId, std::unique_ptr<UpdateGroup>> groups_;
  util::FlatMap<std::int32_t, UpdateGroup*> node_to_group_;
  /// Shipped-query merging state. sig_to_node_ is keyed by the (variable-
  /// length) signature itself, so it stays an ordered std::map; the
  /// fixed-key side lives in a FlatMap.
  std::map<Signature, QueryNode> sig_to_node_;
  util::FlatMap<std::int32_t, Signature> node_to_sig_;
  std::size_t peak_graph_nodes_ = 0;
  std::int64_t covers_computed_ = 0;

  // Reused per-decide() scratch (see Decision lifetime contract).
  Decision decision_;
  Signature connect_;
  Signature sig_scratch_;
  std::vector<QueryNode> affected_;

  void remove_group(UpdateGroup& group,
                    std::vector<QueryNode>* affected_queries);
  /// Prunes isolated query vertices and re-keys/merges the rest after
  /// group removals. Consumes `affected` in place (sorts + dedups).
  void rekey_queries(std::vector<QueryNode>& affected);
  void forget_signature(QueryNode node);
};

}  // namespace delta::core
