#include "core/update_manager.h"

#include <algorithm>

#include "util/check.h"

namespace delta::core {

UpdateManager::UpdateManager(bool remember_shipped_queries)
    : remember_shipped_queries_(remember_shipped_queries) {}

void UpdateManager::add_outstanding(const workload::Update& u) {
  auto& pend = pending_[u.object];
  DELTA_DCHECK(pend.empty() || pend.back()->time <= u.time);
  pend.push_back(&u);
}

bool UpdateManager::is_stale(ObjectId o) const {
  const auto* pend = pending_.find(o);
  if (pend != nullptr && !pend->empty()) return true;
  return groups_.contains(o);
}

EventTime UpdateManager::oldest_outstanding(ObjectId o) const {
  EventTime oldest = kNoOutstanding;
  const auto* pend = pending_.find(o);
  if (pend != nullptr && !pend->empty()) {
    oldest = pend->front()->time;  // arrival order: front is oldest
  }
  const auto* group = groups_.find(o);
  if (group != nullptr) {
    oldest = std::min(oldest, (*group)->min_time);
  }
  return oldest;
}

void UpdateManager::forget_signature(QueryNode node) {
  Signature* sig = node_to_sig_.find(node.index);
  if (sig == nullptr) return;
  const auto sit = sig_to_node_.find(*sig);
  if (sit != sig_to_node_.end() && sit->second == node) {
    sig_to_node_.erase(sit);
  }
  node_to_sig_.erase(node.index);
}

void UpdateManager::remove_group(UpdateGroup& group,
                                 std::vector<QueryNode>* affected_queries) {
  if (affected_queries != nullptr) {
    solver_.for_each_neighbor(group.node, [affected_queries](QueryNode q) {
      affected_queries->push_back(q);
    });
  }
  node_to_group_.erase(group.node.index);
  solver_.remove_update(group.node);
  groups_.erase(group.object);  // destroys `group`
}

void UpdateManager::rekey_queries(std::vector<QueryNode>& affected) {
  std::sort(affected.begin(), affected.end(),
            [](const QueryNode& a, const QueryNode& b) {
              return a.index < b.index;
            });
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const QueryNode qn : affected) {
    if (!solver_.alive(qn)) continue;  // already pruned or merged away
    forget_signature(qn);
    Signature& sig = sig_scratch_;
    sig.clear();
    solver_.for_each_neighbor(
        qn, [&sig](UpdateNode un) { sig.push_back(un.index); });
    if (sig.empty()) {
      // Isolated: the remainder rule discards it.
      solver_.remove_query(qn);
      continue;
    }
    std::sort(sig.begin(), sig.end());
    const auto [it, inserted] = sig_to_node_.try_emplace(sig, qn);
    if (inserted) {
      node_to_sig_[qn.index] = sig;
    } else if (solver_.alive(it->second) && !(it->second == qn)) {
      // Same neighborhood as an existing vertex: merge (cover-exact).
      solver_.add_weight(it->second, solver_.weight(qn));
      solver_.remove_query_force(qn);
    } else {
      it->second = qn;
      node_to_sig_[qn.index] = sig;
    }
  }
}

void UpdateManager::clear() {
  // Query vertices first, forced: shipped-query memory may still carry
  // interaction edges, and remove_query_force cancels any flow through
  // them. Then the update groups (their remaining edges vanish with them).
  for (const auto& [sig, node] : sig_to_node_) {
    solver_.remove_query_force(node);
  }
  sig_to_node_.clear();
  node_to_sig_.clear();
  groups_.for_each(
      [this](const ObjectId& /*o*/, const std::unique_ptr<UpdateGroup>& g) {
        solver_.remove_update(g->node);
      });
  groups_.clear();
  node_to_group_.clear();
  pending_.clear();
}

void UpdateManager::drop_object(ObjectId o) {
  pending_.erase(o);
  auto* group = groups_.find(o);
  if (group == nullptr) return;
  affected_.clear();
  remove_group(**group, &affected_);
  rekey_queries(affected_);
}

const UpdateManager::Decision& UpdateManager::decide(
    const workload::Query& q) {
  Decision& decision = decision_;
  decision.ship_query = false;
  decision.ship_updates.clear();

  // Updates this query interacts with: outstanding updates on its objects
  // that are older than its staleness tolerance (paper §3: answers must
  // incorporate all updates except those in the last t(q) time units).
  const EventTime needed_before = q.time - q.staleness_tolerance;

  Signature& connect = connect_;  // group vertices to link to q
  connect.clear();
  for (const ObjectId o : q.objects) {
    // Materialize the needed prefix of the object's pending updates into
    // its group vertex (pending lists are in arrival = time order).
    auto* pend_slot = pending_.find(o);
    if (pend_slot != nullptr && !pend_slot->empty() &&
        pend_slot->front()->time <= needed_before) {
      auto& pend = *pend_slot;
      const auto split = std::upper_bound(
          pend.begin(), pend.end(), needed_before,
          [](EventTime t, const workload::Update* u) { return t < u->time; });
      Bytes batch_cost;
      for (auto it = pend.begin(); it != split; ++it) {
        batch_cost += (*it)->cost;
      }
      auto* existing = groups_.find(o);
      if (existing == nullptr) {
        auto group = std::make_unique<UpdateGroup>();
        group->object = o;
        group->members.assign(pend.begin(), split);
        group->min_time = group->members.front()->time;
        group->node = solver_.add_update(batch_cost.count());
        node_to_group_[group->node.index] = group.get();
        groups_.try_emplace(o, std::move(group));
      } else {
        UpdateGroup& group = **existing;
        group.members.insert(group.members.end(), pend.begin(), split);
        solver_.add_weight(group.node, batch_cost.count());
      }
      pend.erase(pend.begin(), split);
    }
    const auto* group = groups_.find(o);
    if (group != nullptr && (*group)->min_time <= needed_before) {
      connect.push_back((*group)->node.index);
    }
  }
  if (connect.empty()) {
    // Fresh enough: execute at the cache, no graph changes (Fig. 4 line 12).
    return decision;
  }
  std::sort(connect.begin(), connect.end());

  // Incorporate the query into the graph — either as a fresh vertex or by
  // adding its weight to an existing shipped-query vertex with the same
  // neighborhood (cover-exact merging).
  QueryNode qnode;
  bool reused = false;
  if (remember_shipped_queries_) {
    const auto sit = sig_to_node_.find(connect);
    if (sit != sig_to_node_.end() && solver_.alive(sit->second)) {
      qnode = sit->second;
      solver_.add_weight(qnode, q.cost.count());
      reused = true;
    }
  }
  if (!reused) {
    qnode = solver_.add_query(q.cost.count());
    for (const std::int32_t node_index : connect) {
      UpdateGroup* const* group = node_to_group_.find(node_index);
      DELTA_CHECK_MSG(group != nullptr, "connect target has no group");
      solver_.connect((*group)->node, qnode);
    }
  }
  peak_graph_nodes_ = std::max(
      peak_graph_nodes_, solver_.query_count() + solver_.update_count());

  // Minimum-weight vertex cover via incremental max-flow (Fig. 5).
  const auto& cover = solver_.compute();
  ++covers_computed_;
  decision.ship_query = solver_.in_last_cover(qnode);

  // Remainder rule: ship every covered group and remove it; prune/re-key
  // affected query vertices.
  affected_.clear();
  for (const UpdateNode un : cover.updates) {
    UpdateGroup* const* slot = node_to_group_.find(un.index);
    DELTA_CHECK_MSG(slot != nullptr, "covered update node has no group");
    UpdateGroup& group = **slot;
    decision.ship_updates.insert(decision.ship_updates.end(),
                                 group.members.begin(), group.members.end());
    remove_group(group, &affected_);
  }
  if (!decision.ship_query) {
    // All of q's neighbours were covered groups, now shipped: q runs at the
    // cache and its (isolated) vertex is pruned by the re-key pass.
    affected_.push_back(qnode);
  } else if (!remember_shipped_queries_) {
    // Ablation A4: forget the shipped query immediately — future covers
    // lose the accumulated justification for shipping its updates.
    solver_.remove_query_force(qnode);
  } else if (!reused) {
    affected_.push_back(qnode);  // register its (possibly shrunk) signature
  }
  rekey_queries(affected_);
  return decision;
}

}  // namespace delta::core
