#include "core/update_manager.h"

#include <algorithm>

#include "util/check.h"

namespace delta::core {

UpdateManager::UpdateManager(bool remember_shipped_queries)
    : remember_shipped_queries_(remember_shipped_queries) {}

void UpdateManager::add_outstanding(const workload::Update& u) {
  auto& pend = pending_[u.object];
  DELTA_DCHECK(pend.empty() || pend.back()->time <= u.time);
  pend.push_back(&u);
}

bool UpdateManager::is_stale(ObjectId o) const {
  const auto pit = pending_.find(o);
  if (pit != pending_.end() && !pit->second.empty()) return true;
  return groups_.find(o) != groups_.end();
}

void UpdateManager::forget_signature(QueryNode node) {
  const auto it = node_to_sig_.find(node.index);
  if (it == node_to_sig_.end()) return;
  const auto sit = sig_to_node_.find(it->second);
  if (sit != sig_to_node_.end() && sit->second == node) {
    sig_to_node_.erase(sit);
  }
  node_to_sig_.erase(it);
}

void UpdateManager::remove_group(UpdateGroup& group,
                                 std::vector<QueryNode>* affected_queries) {
  if (affected_queries != nullptr) {
    const auto adjacent = solver_.neighbors(group.node);
    affected_queries->insert(affected_queries->end(), adjacent.begin(),
                             adjacent.end());
  }
  node_to_group_.erase(group.node.index);
  solver_.remove_update(group.node);
  groups_.erase(group.object);  // destroys `group`
}

void UpdateManager::rekey_queries(std::vector<QueryNode> affected) {
  std::sort(affected.begin(), affected.end(),
            [](const QueryNode& a, const QueryNode& b) {
              return a.index < b.index;
            });
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const QueryNode qn : affected) {
    if (!solver_.alive(qn)) continue;  // already pruned or merged away
    forget_signature(qn);
    const auto neighbours = solver_.neighbors(qn);
    if (neighbours.empty()) {
      // Isolated: the remainder rule discards it.
      solver_.remove_query(qn);
      continue;
    }
    Signature sig;
    sig.reserve(neighbours.size());
    for (const UpdateNode un : neighbours) sig.push_back(un.index);
    std::sort(sig.begin(), sig.end());
    const auto [it, inserted] = sig_to_node_.try_emplace(sig, qn);
    if (inserted) {
      node_to_sig_[qn.index] = std::move(sig);
    } else if (solver_.alive(it->second) && !(it->second == qn)) {
      // Same neighborhood as an existing vertex: merge (cover-exact).
      solver_.add_weight(it->second, solver_.weight(qn));
      solver_.remove_query_force(qn);
    } else {
      it->second = qn;
      node_to_sig_[qn.index] = std::move(sig);
    }
  }
}

void UpdateManager::drop_object(ObjectId o) {
  pending_.erase(o);
  const auto git = groups_.find(o);
  if (git == groups_.end()) return;
  std::vector<QueryNode> affected;
  remove_group(*git->second, &affected);
  rekey_queries(std::move(affected));
}

UpdateManager::Decision UpdateManager::decide(const workload::Query& q) {
  Decision decision;

  // Updates this query interacts with: outstanding updates on its objects
  // that are older than its staleness tolerance (paper §3: answers must
  // incorporate all updates except those in the last t(q) time units).
  const EventTime needed_before = q.time - q.staleness_tolerance;

  Signature connect;  // group vertices to link to q (sorted below)
  for (const ObjectId o : q.objects) {
    // Materialize the needed prefix of the object's pending updates into
    // its group vertex (pending lists are in arrival = time order).
    const auto pit = pending_.find(o);
    if (pit != pending_.end() && !pit->second.empty() &&
        pit->second.front()->time <= needed_before) {
      auto& pend = pit->second;
      const auto split = std::upper_bound(
          pend.begin(), pend.end(), needed_before,
          [](EventTime t, const workload::Update* u) { return t < u->time; });
      Bytes batch_cost;
      for (auto it = pend.begin(); it != split; ++it) {
        batch_cost += (*it)->cost;
      }
      auto git = groups_.find(o);
      if (git == groups_.end()) {
        auto group = std::make_unique<UpdateGroup>();
        group->object = o;
        group->members.assign(pend.begin(), split);
        group->min_time = group->members.front()->time;
        group->node = solver_.add_update(batch_cost.count());
        node_to_group_[group->node.index] = group.get();
        groups_.emplace(o, std::move(group));
      } else {
        UpdateGroup& group = *git->second;
        group.members.insert(group.members.end(), pend.begin(), split);
        solver_.add_weight(group.node, batch_cost.count());
      }
      pend.erase(pend.begin(), split);
    }
    const auto git = groups_.find(o);
    if (git != groups_.end() && git->second->min_time <= needed_before) {
      connect.push_back(git->second->node.index);
    }
  }
  if (connect.empty()) {
    // Fresh enough: execute at the cache, no graph changes (Fig. 4 line 12).
    return decision;
  }
  std::sort(connect.begin(), connect.end());

  // Incorporate the query into the graph — either as a fresh vertex or by
  // adding its weight to an existing shipped-query vertex with the same
  // neighborhood (cover-exact merging).
  QueryNode qnode;
  bool reused = false;
  if (remember_shipped_queries_) {
    const auto sit = sig_to_node_.find(connect);
    if (sit != sig_to_node_.end() && solver_.alive(sit->second)) {
      qnode = sit->second;
      solver_.add_weight(qnode, q.cost.count());
      reused = true;
    }
  }
  if (!reused) {
    qnode = solver_.add_query(q.cost.count());
    for (const std::int32_t node_index : connect) {
      solver_.connect(node_to_group_.at(node_index)->node, qnode);
    }
  }
  peak_graph_nodes_ = std::max(
      peak_graph_nodes_, solver_.query_count() + solver_.update_count());

  // Minimum-weight vertex cover via incremental max-flow (Fig. 5).
  const auto cover = solver_.compute();
  ++covers_computed_;
  decision.ship_query = solver_.in_last_cover(qnode);

  // Remainder rule: ship every covered group and remove it; prune/re-key
  // affected query vertices.
  std::vector<QueryNode> affected;
  for (const UpdateNode un : cover.updates) {
    UpdateGroup& group = *node_to_group_.at(un.index);
    decision.ship_updates.insert(decision.ship_updates.end(),
                                 group.members.begin(), group.members.end());
    remove_group(group, &affected);
  }
  if (!decision.ship_query) {
    // All of q's neighbours were covered groups, now shipped: q runs at the
    // cache and its (isolated) vertex is pruned by the re-key pass.
    affected.push_back(qnode);
  } else if (!remember_shipped_queries_) {
    // Ablation A4: forget the shipped query immediately — future covers
    // lose the accumulated justification for shipping its updates.
    solver_.remove_query_force(qnode);
  } else if (!reused) {
    affected.push_back(qnode);  // register its (possibly shrunk) signature
  }
  rekey_queries(std::move(affected));
  return decision;
}

}  // namespace delta::core
