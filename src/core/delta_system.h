// DeltaSystem: the single-cache wiring of the middleware — a thin façade
// over one ServerNode and one CacheNode joined by an in-process transport.
//
// The repository logic lives in ServerNode, the client endpoint logic in
// CacheNode (see their headers); DeltaSystem only assembles them and
// forwards the historical single-cache API so existing policies, tests,
// benches and examples keep working unchanged. Multi-endpoint deployments
// compose ServerNode + N CacheNodes directly (see sim/multi_cache.h).
#pragma once

#include <functional>
#include <string>

#include "core/cache_node.h"
#include "core/server_node.h"
#include "net/transport.h"
#include "util/check.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

class DeltaSystem {
 public:
  /// Builds the server from the trace's initial object sizes. The trace
  /// outlives the system.
  explicit DeltaSystem(const workload::Trace* trace)
      : server_(trace, &transport_), cache_(trace, &server_, &transport_) {}

  DeltaSystem(const DeltaSystem&) = delete;
  DeltaSystem& operator=(const DeltaSystem&) = delete;

  /// The layered nodes, for callers that want the real architecture.
  [[nodiscard]] ServerNode& server() { return server_; }
  [[nodiscard]] const ServerNode& server() const { return server_; }
  [[nodiscard]] CacheNode& cache() { return cache_; }
  [[nodiscard]] const CacheNode& cache() const { return cache_; }

  // ---- repository-side driver (called by the simulator) ----

  void ingest_update(const workload::Update& u) { server_.ingest_update(u); }

  // ---- cache-side client API (called by policies) ----

  void set_subscription(MetadataSubscription subscription) {
    cache_.set_subscription(subscription);
  }
  void set_invalidation_handler(
      std::function<void(const workload::Update&)> handler) {
    cache_.set_invalidation_handler(std::move(handler));
  }
  Bytes ship_query(const workload::Query& q) { return cache_.ship_query(q); }
  Bytes ship_update(const workload::Update& u) {
    return cache_.ship_update(u);
  }
  Bytes load_object(ObjectId o) { return cache_.load_object(o); }
  void notify_eviction(ObjectId o) { cache_.notify_eviction(o); }

  // ---- repository state (metadata the cache may query cheaply) ----

  [[nodiscard]] Bytes server_object_bytes(ObjectId o) const {
    return server_.object_bytes(o);
  }
  [[nodiscard]] Bytes load_cost(ObjectId o) const {
    return server_.load_cost(o);
  }
  [[nodiscard]] bool is_registered(ObjectId o) const {
    return cache_.is_registered(o);
  }
  [[nodiscard]] std::size_t object_count() const {
    return server_.object_count();
  }

  /// Aggregate accounting over the whole system (the figure numbers).
  [[nodiscard]] const net::TrafficMeter& meter() const {
    return transport_.meter();
  }

  /// Bulk-copy framing added to every object load.
  static constexpr Bytes kLoadOverheadBytes = ServerNode::kLoadOverheadBytes;

 private:
  net::LoopbackTransport transport_;
  ServerNode server_;
  CacheNode cache_;
};

/// Null-checked access to the façade's cache endpoint, for the policies'
/// single-cache compatibility constructors.
[[nodiscard]] inline CacheNode* cache_endpoint(DeltaSystem* system) {
  DELTA_CHECK(system != nullptr);
  return &system->cache();
}

}  // namespace delta::core
