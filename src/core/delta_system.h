// DeltaSystem: the wired middleware — a repository (ServerNode) and a cache
// endpoint joined by a message transport (Figure 1 of the paper).
//
// All data movement flows through real messages on the transport, so the
// TrafficMeter sees exactly what the paper's cost model counts:
//   query shipping  = QueryRequest (overhead) + QueryResult (ν(q))
//   update shipping = control request (overhead) + UpdateShip (ν(u))
//   object loading  = LoadRequest (overhead) + LoadData (l(o))
// plus Invalidation notices (overhead) from the server's registration-based
// cache-coherence protocol.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link_model.h"
#include "net/transport.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

/// Which update notices the cache endpoint subscribes to.
enum class MetadataSubscription : std::uint8_t {
  kNone,            // NoCache: the cache never hears about updates
  kRegisteredOnly,  // VCover: invalidations only for loaded objects
  kAll,             // Replica / Benefit: metadata notices for every update
};

class DeltaSystem {
 public:
  /// Builds the server from the trace's initial object sizes. The trace
  /// outlives the system.
  explicit DeltaSystem(const workload::Trace* trace);

  DeltaSystem(const DeltaSystem&) = delete;
  DeltaSystem& operator=(const DeltaSystem&) = delete;

  // ---- repository-side driver (called by the simulator) ----

  /// Applies an arriving update to the repository and, per the cache's
  /// subscription, delivers an invalidation notice.
  void ingest_update(const workload::Update& u);

  // ---- cache-side client API (called by policies) ----

  void set_subscription(MetadataSubscription subscription);

  /// Invoked (synchronously) when an invalidation notice is delivered.
  void set_invalidation_handler(
      std::function<void(const workload::Update&)> handler);

  /// Ships the query to the repository; the result (ν(q) bytes) comes back
  /// as a QueryResult message. Returns the result size.
  Bytes ship_query(const workload::Query& q);

  /// Requests the update's content; it arrives as an UpdateShip message.
  /// Returns the content size (ν(u)).
  Bytes ship_update(const workload::Update& u);

  /// Bulk-loads the object; returns the bytes transferred (current object
  /// size plus bulk-copy framing). Registers the object for invalidations.
  Bytes load_object(ObjectId o);

  /// Tells the server the cache dropped the object (stops invalidations).
  void notify_eviction(ObjectId o);

  // ---- repository state (metadata the cache may query cheaply) ----

  [[nodiscard]] Bytes server_object_bytes(ObjectId o) const;
  [[nodiscard]] Bytes load_cost(ObjectId o) const;
  [[nodiscard]] bool is_registered(ObjectId o) const;
  [[nodiscard]] std::size_t object_count() const {
    return object_bytes_.size();
  }

  [[nodiscard]] const net::TrafficMeter& meter() const {
    return transport_.meter();
  }
  [[nodiscard]] const net::LinkModel& link() const { return link_; }

  /// Bulk-copy framing added to every object load.
  static constexpr Bytes kLoadOverheadBytes{256 * 1024};

 private:
  const workload::Trace* trace_;
  net::LoopbackTransport transport_;
  net::LinkModel link_;
  std::vector<Bytes> object_bytes_;      // server-side current sizes
  std::vector<std::uint8_t> registered_; // objects resident at the cache
  MetadataSubscription subscription_ = MetadataSubscription::kNone;
  std::function<void(const workload::Update&)> invalidation_handler_;
  const workload::Update* pending_invalidation_ = nullptr;

  [[nodiscard]] std::size_t checked(ObjectId o) const;
  void handle_cache_message(const net::Message& m);
};

}  // namespace delta::core
