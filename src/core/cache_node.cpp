#include "core/cache_node.h"

#include <utility>

#include "util/check.h"

namespace delta::core {

CacheNode::CacheNode(const workload::Trace* trace, ServerNode* server,
                     net::Transport* transport, std::string name)
    : trace_(trace),
      server_(server),
      transport_(transport),
      name_(std::move(name)),
      slot_(0) {
  DELTA_CHECK(trace != nullptr);
  DELTA_CHECK(server != nullptr);
  DELTA_CHECK(transport != nullptr);
  // Validate the attach BEFORE registering the transport handler: a
  // failing construction must not leave a handler capturing this soon-
  // destroyed node. Registration then precedes attach_cache, which records
  // our transport slot so the server can address replies without
  // per-message name lookups.
  server_->validate_cache_name(name_);
  transport_slot_ = transport_->register_endpoint(
      name_, [this](const net::Message& m) { handle_message(m); });
  slot_ = server_->attach_cache(name_, transport_slot_);
  server_transport_slot_ = server_->transport_slot();
  transport_inline_ = transport_->synchronous();
  sync_request_ = request(net::MessageKind::kControl, -1, 0, -1);
}

net::Message CacheNode::request(net::MessageKind kind,
                                std::int64_t subject_id, EventTime sent_at,
                                std::int64_t correlation) const {
  net::Message msg;
  msg.kind = kind;
  msg.subject_id = subject_id;
  msg.sent_at = sent_at;
  msg.sender = name_;
  msg.sender_slot = static_cast<std::int32_t>(slot_);
  msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
  msg.correlation_id = correlation;
  return msg;
}

std::int64_t CacheNode::send_request(net::MessageKind kind,
                                     std::int64_t subject_id,
                                     EventTime sent_at,
                                     net::MessageKind expected_reply,
                                     Completion complete) {
  DELTA_CHECK(complete != nullptr);
  const std::int64_t correlation = next_correlation_++;
  pending_.push_back(Pending{correlation, expected_reply,
                             std::move(complete), nullptr, nullptr});
  // The send may deliver (and complete the request) inline on a
  // synchronous transport, so the pending entry must be parked first.
  transport_->send_to(server_transport_slot_,
                      request(kind, subject_id, sent_at, correlation),
                      net::Mechanism::kOverhead);
  return correlation;
}

Bytes CacheNode::request_and_wait(net::MessageKind kind,
                                  std::int64_t subject_id, EventTime sent_at,
                                  net::MessageKind expected_reply) {
  // Stack locals as the completion destination: reentrancy-safe (a nested
  // sync call during an event-queue pump gets its own pair) and free of
  // std::function construction on the replay hot path.
  bool done = false;
  Bytes reply_payload{};
  const std::int64_t correlation = next_correlation_++;
  pending_.push_back(
      Pending{correlation, expected_reply, Completion{}, &done,
              &reply_payload});
  // send_call, not send_to: we block on the reply below, which lets an
  // event-driven transport run the whole round trip on its inline fast
  // path when nothing else is due first. The prebuilt request is safe to
  // reuse — the transport either parks a copy or delivers it before
  // returning, so no other façade call can still be reading it.
  net::Message& msg = sync_request_;
  msg.kind = kind;
  msg.subject_id = subject_id;
  msg.sent_at = sent_at;
  msg.correlation_id = correlation;
  transport_->send_call(server_transport_slot_, msg,
                        net::Mechanism::kOverhead);
  if (transport_inline_) {
    // Synchronous transport: the reply was delivered inside the send.
    DELTA_CHECK_MSG(done, "request did not complete inline on a "
                          "synchronous transport");
  } else if (!done) {
    transport_->wait_until(
        [](void* flag) { return *static_cast<bool*>(flag); }, &done);
  }
  return reply_payload;
}

void CacheNode::apply_invalidation(std::int64_t update_id) {
  const auto idx = static_cast<std::size_t>(update_id);
  DELTA_CHECK(idx < trace_->updates.size());
  if (!invalidation_handler_) return;
  // Re-entrancy flattening: a handler that performs a blocking round trip
  // (Replica/SOptimal refresh their replicas with ship_update) pumps the
  // event queue while it waits, which can deliver the NEXT queued notice
  // — and under a saturating open-loop backlog thousands of notices sit
  // back-to-back on the link, so running handlers recursively overflows
  // the stack. Notices arriving while a handler is on the stack are
  // queued here and drained iteratively by the outermost frame, in
  // delivery order; the observable message set is unchanged (each queued
  // handler runs after, instead of nested inside, its predecessor).
  pending_invalidations_.push_back(update_id);
  if (in_invalidation_handler_) return;
  in_invalidation_handler_ = true;
  while (pending_invalidation_cursor_ < pending_invalidations_.size()) {
    const auto next = static_cast<std::size_t>(
        pending_invalidations_[pending_invalidation_cursor_++]);
    invalidation_handler_(trace_->updates[next]);
  }
  pending_invalidations_.clear();
  pending_invalidation_cursor_ = 0;
  in_invalidation_handler_ = false;
}

void CacheNode::handle_message(const net::Message& m) {
  switch (m.kind) {
    case net::MessageKind::kInvalidation: {
      apply_invalidation(m.subject_id);
      // Congestion batching: further notices merged into this message, in
      // server ingest order.
      for (const std::int64_t id : m.batched_invalidations) {
        apply_invalidation(id);
      }
      return;
    }
    case net::MessageKind::kQueryResult:
    case net::MessageKind::kUpdateShip:
    case net::MessageKind::kLoadData: {
      // Notices piggybacked on the reply are older than the reply itself —
      // apply them before releasing the request's completion.
      for (const std::int64_t id : m.batched_invalidations) {
        apply_invalidation(id);
      }
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].correlation != m.correlation_id) continue;
        DELTA_CHECK_MSG(pending_[i].expected_reply == m.kind,
                        "reply kind " << net::to_string(m.kind)
                                      << " does not match the pending "
                                         "request's expectation");
        // Detach before completing: the completion may issue new requests
        // (mutating pending_).
        Pending done = std::move(pending_[i]);
        pending_[i] = std::move(pending_.back());
        pending_.pop_back();
        if (done.sync_done != nullptr) {
          *done.sync_done = true;
          *done.sync_payload = m.payload;
        } else {
          done.complete(m.payload);
        }
        return;
      }
      DELTA_CHECK_MSG(false, "reply with unknown correlation id "
                                 << m.correlation_id);
      return;
    }
    default:
      return;  // control chatter carries no cache-side effects
  }
}

void CacheNode::set_subscription(MetadataSubscription subscription) {
  server_->set_subscription(slot_, subscription);
}

void CacheNode::set_invalidation_handler(
    std::function<void(const workload::Update&)> handler) {
  invalidation_handler_ = std::move(handler);
}

void CacheNode::ship_query_async(const workload::Query& q,
                                 Completion complete) {
  send_request(net::MessageKind::kQueryRequest, q.id.value(), q.time,
               net::MessageKind::kQueryResult, std::move(complete));
}

void CacheNode::ship_update_async(const workload::Update& u,
                                  Completion complete) {
  // "ship update <id>" request travels as control chatter.
  send_request(net::MessageKind::kControl, u.id.value(), u.time,
               net::MessageKind::kUpdateShip, std::move(complete));
}

void CacheNode::load_object_async(ObjectId o, Completion complete) {
  send_request(net::MessageKind::kLoadRequest, o.value(), 0,
               net::MessageKind::kLoadData, std::move(complete));
}

Bytes CacheNode::ship_query(const workload::Query& q) {
  return request_and_wait(net::MessageKind::kQueryRequest, q.id.value(),
                          q.time, net::MessageKind::kQueryResult);
}

Bytes CacheNode::ship_update(const workload::Update& u) {
  return request_and_wait(net::MessageKind::kControl, u.id.value(), u.time,
                          net::MessageKind::kUpdateShip);
}

Bytes CacheNode::load_object(ObjectId o) {
  const Bytes loaded = request_and_wait(net::MessageKind::kLoadRequest,
                                        o.value(), 0,
                                        net::MessageKind::kLoadData);
  DELTA_CHECK(is_registered(o));
  return loaded;
}

void CacheNode::notify_eviction(ObjectId o) {
  transport_->send_to(server_transport_slot_,
                      request(net::MessageKind::kInvalidation, o.value(), 0,
                              /*correlation=*/-1),
                      net::Mechanism::kOverhead);
  // The notice is unacknowledged; only a synchronous transport has
  // necessarily applied it by the time the send returns.
  if (transport_inline_) DELTA_CHECK(!is_registered(o));
}

}  // namespace delta::core
