#include "core/cache_node.h"

#include "util/check.h"

namespace delta::core {

CacheNode::CacheNode(const workload::Trace* trace, ServerNode* server,
                     net::Transport* transport, std::string name,
                     net::LinkModel link)
    : trace_(trace),
      server_(server),
      transport_(transport),
      name_(std::move(name)),
      slot_(0),
      link_(link) {
  DELTA_CHECK(trace != nullptr);
  DELTA_CHECK(server != nullptr);
  DELTA_CHECK(transport != nullptr);
  // Validate the attach BEFORE registering the transport handler: a
  // failing construction must not leave a handler capturing this soon-
  // destroyed node. Registration then precedes attach_cache, which records
  // our transport slot so the server can address replies without
  // per-message name lookups.
  server_->validate_cache_name(name_);
  const std::size_t transport_slot = transport_->register_endpoint(
      name_, [this](const net::Message& m) { handle_message(m); });
  slot_ = server_->attach_cache(name_, transport_slot);
  server_transport_slot_ = server_->transport_slot();
}

net::Message CacheNode::request(net::MessageKind kind,
                                std::int64_t subject_id,
                                EventTime sent_at) const {
  net::Message msg;
  msg.kind = kind;
  msg.subject_id = subject_id;
  msg.sent_at = sent_at;
  msg.sender = name_;
  msg.sender_slot = static_cast<std::int32_t>(slot_);
  return msg;
}

void CacheNode::handle_message(const net::Message& m) {
  // Data-bearing replies mutate nothing here: the calling policy applies
  // their effects synchronously after the send() returns. Invalidations are
  // forwarded to the policy's handler.
  if (m.kind == net::MessageKind::kInvalidation) {
    const auto idx = static_cast<std::size_t>(m.subject_id);
    DELTA_CHECK(idx < trace_->updates.size());
    if (invalidation_handler_) invalidation_handler_(trace_->updates[idx]);
  }
}

void CacheNode::set_subscription(MetadataSubscription subscription) {
  server_->set_subscription(slot_, subscription);
}

void CacheNode::set_invalidation_handler(
    std::function<void(const workload::Update&)> handler) {
  invalidation_handler_ = std::move(handler);
}

Bytes CacheNode::ship_query(const workload::Query& q) {
  transport_->send_to(server_transport_slot_,
                      request(net::MessageKind::kQueryRequest, q.id.value(),
                              q.time),
                      net::Mechanism::kOverhead);
  return q.cost;  // the QueryResult reply carried ν(q) bytes
}

Bytes CacheNode::ship_update(const workload::Update& u) {
  transport_->send_to(server_transport_slot_,
                      request(net::MessageKind::kControl, u.id.value(),
                              u.time),
                      net::Mechanism::kOverhead);
  return u.cost;
}

Bytes CacheNode::load_object(ObjectId o) {
  transport_->send_to(server_transport_slot_,
                      request(net::MessageKind::kLoadRequest, o.value(), 0),
                      net::Mechanism::kOverhead);
  DELTA_CHECK(is_registered(o));
  return server_->load_cost(o);
}

void CacheNode::notify_eviction(ObjectId o) {
  transport_->send_to(server_transport_slot_,
                      request(net::MessageKind::kInvalidation, o.value(), 0),
                      net::Mechanism::kOverhead);
  DELTA_CHECK(!is_registered(o));
}

}  // namespace delta::core
