#include "core/cache_node.h"

#include <algorithm>
#include <utility>

#include "net/fault_plan.h"
#include "util/check.h"

namespace delta::core {

CacheNode::CacheNode(const workload::Trace* trace, ServerNode* server,
                     net::Transport* transport, std::string name)
    : trace_(trace),
      server_(server),
      transport_(transport),
      name_(std::move(name)),
      slot_(0) {
  DELTA_CHECK(trace != nullptr);
  DELTA_CHECK(server != nullptr);
  DELTA_CHECK(transport != nullptr);
  // Validate the attach BEFORE registering the transport handler: a
  // failing construction must not leave a handler capturing this soon-
  // destroyed node. Registration then precedes attach_cache, which records
  // our transport slot so the server can address replies without
  // per-message name lookups.
  server_->validate_cache_name(name_);
  transport_slot_ = transport_->register_endpoint(
      name_, [this](const net::Message& m) { handle_message(m); });
  slot_ = server_->attach_cache(name_, transport_slot_);
  server_transport_slot_ = server_->transport_slot();
  transport_inline_ = transport_->synchronous();
  sync_request_ = request(net::MessageKind::kControl, -1, 0, -1);
}

net::Message CacheNode::request(net::MessageKind kind,
                                std::int64_t subject_id, EventTime sent_at,
                                std::int64_t correlation) const {
  net::Message msg;
  msg.kind = kind;
  msg.subject_id = subject_id;
  msg.sent_at = sent_at;
  msg.sender = name_;
  msg.sender_slot = static_cast<std::int32_t>(slot_);
  msg.sender_transport_slot = static_cast<std::int32_t>(transport_slot_);
  msg.correlation_id = correlation;
  return msg;
}

std::int64_t CacheNode::send_request(net::MessageKind kind,
                                     std::int64_t subject_id,
                                     EventTime sent_at,
                                     net::MessageKind expected_reply,
                                     Completion complete,
                                     std::int64_t protocol_epoch) {
  DELTA_CHECK(complete != nullptr);
  const std::int64_t correlation = next_correlation_++;
  Pending pending;
  pending.correlation = correlation;
  pending.expected_reply = expected_reply;
  pending.complete = std::move(complete);
  pending.kind = kind;
  pending.subject_id = subject_id;
  pending.sent_at = sent_at;
  pending.protocol_epoch = protocol_epoch;
  pending_.push_back(std::move(pending));
  // The send may deliver (and complete the request) inline on a
  // synchronous transport, so the pending entry must be parked first.
  net::Message msg = request(kind, subject_id, sent_at, correlation);
  msg.protocol_epoch = protocol_epoch;
  transport_->send_to(server_transport_slot_, msg, net::Mechanism::kOverhead);
  if (protocol_on_) {
    // An event-driven send only schedules — no delivery can have touched
    // pending_ — so the parked entry is still at the back.
    DELTA_DCHECK(pending_.back().correlation == correlation);
    arm_deadline(pending_.back());
  }
  return correlation;
}

Bytes CacheNode::request_and_wait(net::MessageKind kind,
                                  std::int64_t subject_id, EventTime sent_at,
                                  net::MessageKind expected_reply,
                                  std::int64_t protocol_epoch) {
  // Stack locals as the completion destination: reentrancy-safe (a nested
  // sync call during an event-queue pump gets its own pair) and free of
  // std::function construction on the replay hot path.
  bool done = false;
  Bytes reply_payload{};
  const std::int64_t correlation = next_correlation_++;
  Pending pending;
  pending.correlation = correlation;
  pending.expected_reply = expected_reply;
  pending.sync_done = &done;
  pending.sync_payload = &reply_payload;
  pending.kind = kind;
  pending.subject_id = subject_id;
  pending.sent_at = sent_at;
  pending.protocol_epoch = protocol_epoch;
  pending_.push_back(std::move(pending));
  // send_call, not send_to: we block on the reply below, which lets an
  // event-driven transport run the whole round trip on its inline fast
  // path when nothing else is due first. The prebuilt request is safe to
  // reuse — the transport either parks a copy or delivers it before
  // returning, so no other façade call can still be reading it.
  net::Message& msg = sync_request_;
  msg.kind = kind;
  msg.subject_id = subject_id;
  msg.sent_at = sent_at;
  msg.correlation_id = correlation;
  msg.protocol_epoch = protocol_epoch;
  transport_->send_call(server_transport_slot_, msg,
                        net::Mechanism::kOverhead);
  if (transport_inline_) {
    // Synchronous transport: the reply was delivered inside the send.
    DELTA_CHECK_MSG(done, "request did not complete inline on a "
                          "synchronous transport");
  } else if (!done) {
    if (protocol_on_) {
      // The round trip did not complete inside the send, so no delivery
      // ran and the parked entry is still at the back — arm its deadline
      // before blocking (the wait's pump is what fires it).
      DELTA_DCHECK(pending_.back().correlation == correlation);
      arm_deadline(pending_.back());
    }
    transport_->wait_until(
        [](void* flag) { return *static_cast<bool*>(flag); }, &done);
  }
  return reply_payload;
}

void CacheNode::set_protocol(const ProtocolOptions& options) {
  protocol_ = options;
  events_ = transport_->events();
  protocol_on_ = protocol_.enabled && !transport_inline_ && events_ != nullptr;
  if (!protocol_on_) return;
  applied_.assign(trace_->updates.size(), 0);
  reg_gen_.assign(server_->object_count(), 0);
  resident_.assign(server_->object_count(), 0);
  notice_stamp_high_ = 0;
}

void CacheNode::crash_restart() {
  DELTA_CHECK_MSG(protocol_on_,
                  "crash-stop faults require the armed protocol");
  ++stats_.crash_restarts;
  // The pending-correlation table dies with the process. Every outstanding
  // request completes empty and counts failed — sync waiters' pumps unwind
  // and open-loop in-flight windows drain, so no query leaks through a
  // crash. Detach the whole table first: completions may issue fresh
  // requests (which belong to the restarted process).
  std::vector<Pending> doomed = std::move(pending_);
  pending_.clear();
  for (Pending& p : doomed) {
    events_->cancel(p.deadline);
    ++stats_.failed_requests;
    finish(p, Bytes{});
  }
  // Soft state lost at the crash instant. The applied-notice ledger and the
  // monotone correlation / registration-generation / epoch counters are
  // deliberately kept: they model epoch-prefixed identifiers (a pre-crash
  // correlation can never match a post-crash request) and the run's
  // convergence instrument (wiping applied_ would double-count resync
  // replays of notices the pre-crash process already applied).
  std::fill(resident_.begin(), resident_.end(), 0);
  notice_stamp_high_ = 0;
  consecutive_failures_ = 0;
  suspected_ = false;
  // Cold phase: from the wipe until the recovery resync completes, loads
  // count as cold misses and replayed notices as post-restart staleness.
  recovering_ = true;
}

void CacheNode::fill_recover_payload(net::Message& msg) const {
  msg.batched_invalidations.clear();
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    if (resident_[i] != 0) {
      msg.batched_invalidations.push_back(static_cast<std::int64_t>(i));
    }
  }
  msg.batch_bytes =
      net::kBatchedNoticeBytes *
      static_cast<std::int64_t>(msg.batched_invalidations.size());
}

void CacheNode::begin_recovery() {
  if (!protocol_on_ || recovery_inflight_) return;
  recovery_inflight_ = true;
  recovering_ = true;
  recovery_started_at_ = transport_->now();
  // Re-establish the subscription out of band (control plane), then rebuild
  // the server's registration row and replay the missed notice ledger in
  // one kRecoverRequest under a fresh epoch. The request retries past the
  // attempt budget (its expected reply is kResyncData), so recovery
  // launched at a restart instant — or at a dead server — simply keeps
  // knocking until the other side is alive again.
  server_->set_subscription(slot_, subscription_);
  ++stats_.resyncs;
  ++epoch_;
  const std::int64_t correlation = next_correlation_++;
  Pending pending;
  pending.correlation = correlation;
  pending.expected_reply = net::MessageKind::kResyncData;
  pending.complete = [this](Bytes) {
    recovery_inflight_ = false;
    if (recovering_) {
      stats_.max_reconvergence_seconds =
          std::max(stats_.max_reconvergence_seconds,
                   transport_->now() - recovery_started_at_);
      recovering_ = false;
    }
  };
  pending.kind = net::MessageKind::kRecoverRequest;
  pending.subject_id = epoch_;
  pending.sent_at = 0;
  pending.protocol_epoch = epoch_;
  pending_.push_back(std::move(pending));
  net::Message msg =
      request(net::MessageKind::kRecoverRequest, epoch_, 0, correlation);
  msg.protocol_epoch = epoch_;
  fill_recover_payload(msg);
  transport_->send_to(server_transport_slot_, msg, net::Mechanism::kOverhead);
  DELTA_DCHECK(pending_.back().correlation == correlation);
  arm_deadline(pending_.back());
}

void CacheNode::observe_incarnation(const net::Message& m) {
  if (!protocol_on_ || m.protocol_epoch <= server_incarnation_seen_) return;
  // The server stamped a higher incarnation than any we have seen: it died
  // and restarted since our last contact. Its registration row for us is
  // gone and its notice ledger restarted at position zero, so the old
  // high-water mark must not poison the new stream's gap detection —
  // epoch-stamped notice stamps, reset on incarnation change.
  server_incarnation_seen_ = m.protocol_epoch;
  notice_stamp_high_ = 0;
  begin_recovery();
}

void CacheNode::finish(Pending& done, Bytes payload) {
  if (done.sync_done != nullptr) {
    *done.sync_done = true;
    *done.sync_payload = payload;
  } else {
    done.complete(payload);
  }
}

double CacheNode::deadline_delay(std::int32_t attempt,
                                 std::int64_t correlation) const {
  double delay = protocol_.timeout_seconds;
  for (std::int32_t i = 1; i < attempt; ++i) {
    delay = std::min(delay * protocol_.backoff_factor,
                     protocol_.max_timeout_seconds);
  }
  // Deterministic jitter in [-f, +f): a pure function of (seed,
  // correlation, attempt), so retry instants desynchronize across requests
  // without admitting any run-order dependence.
  const std::uint64_t mixed = net::fault_mix64(
      protocol_.seed ^
      (static_cast<std::uint64_t>(correlation) * 0x9e3779b97f4a7c15ULL) ^
      static_cast<std::uint64_t>(attempt));
  return delay *
         (1.0 + protocol_.jitter_fraction * (2.0 * net::fault_u01(mixed) - 1.0));
}

void CacheNode::arm_deadline(Pending& p) {
  p.deadline = events_->schedule_cancellable(
      events_->now() + deadline_delay(p.attempts, p.correlation),
      &CacheNode::on_deadline, this,
      static_cast<std::uint64_t>(p.correlation));
}

void CacheNode::on_deadline(void* self, std::uint64_t correlation) {
  static_cast<CacheNode*>(self)->handle_deadline(
      static_cast<std::int64_t>(correlation));
}

void CacheNode::handle_deadline(std::int64_t correlation) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].correlation != correlation) continue;
    ++stats_.timeouts;
    // note_failure() can fire the suspicion probe (start_resync ->
    // send_request), which appends to pending_ and may reallocate its
    // storage. It never removes entries, so index i stays valid — but a
    // reference must not be held across the call.
    note_failure();
    Pending& p = pending_[i];
    if (!retries_forever(p.expected_reply) &&
        p.attempts >= protocol_.max_attempts) {
      // Budget exhausted: the request completes empty — accounted as a
      // failure, never abandoned (every query conserves).
      ++stats_.failed_requests;
      Pending done = std::move(p);
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      finish(done, Bytes{});
      return;
    }
    if (retries_forever(p.expected_reply) &&
        p.attempts >= protocol_.max_attempts) {
      // Budget-exempt kinds (loads, resyncs/recovery) retry past the
      // attempt budget — their loss would diverge durable state. Count the
      // over-budget retries so the behavior is observable, not folklore.
      ++stats_.budget_exceeded_retries;
    }
    ++p.attempts;
    ++stats_.retries;
    net::Message msg =
        request(p.kind, p.subject_id, p.sent_at, correlation);
    msg.attempt = p.attempts;
    msg.protocol_epoch = p.protocol_epoch;
    if (p.kind == net::MessageKind::kRecoverRequest) {
      // The retransmit carries the sender's *current* resident set — which
      // is exactly what the server-side row reset means.
      fill_recover_payload(msg);
    }
    arm_deadline(p);
    transport_->send_to(server_transport_slot_, msg,
                        net::Mechanism::kOverhead);
    return;
  }
  // Unreachable in practice: completing a request cancels its deadline.
  // A fired deadline for a retired correlation is a harmless no-op.
}

void CacheNode::note_failure() {
  ++consecutive_failures_;
  if (!suspected_ &&
      consecutive_failures_ >= protocol_.partition_suspect_threshold) {
    suspected_ = true;
    suspect_since_ = transport_->now();
    // Crash-stop liveness: launch an epoch resync as a probe the moment
    // suspicion fires. Resyncs retry past the budget, so the probe keeps
    // knocking until the server answers — and its reply carries the
    // incarnation stamp that tells a cache its server didn't just
    // partition, it died and restarted (triggering begin_recovery).
    if (protocol_.probe_on_suspect) start_resync();
  }
}

void CacheNode::note_success() {
  consecutive_failures_ = 0;
  if (!suspected_) return;
  // First completed round trip after suspicion: the partition healed.
  suspected_ = false;
  stats_.unavailable_seconds += transport_->now() - suspect_since_;
  if (protocol_.resync_on_heal) start_resync();
}

void CacheNode::start_resync() {
  // A crash recovery in flight supersedes a plain resync: kRecoverRequest
  // ends with the same epoch-snapshotted ledger replay.
  if (resync_inflight_ || recovery_inflight_) return;
  resync_inflight_ = true;
  ++stats_.resyncs;
  ++epoch_;
  // The new epoch rides subject_id; the server replays every notice this
  // cache has not been replayed before (the missed-invalidations span).
  send_request(net::MessageKind::kResyncRequest, epoch_, 0,
               net::MessageKind::kResyncData,
               [this](Bytes) { resync_inflight_ = false; });
}

void CacheNode::apply_resync_payload(const net::Message& m) {
  const double now = transport_->now();
  const bool stamped =
      m.batched_ingest_at.size() == m.batched_invalidations.size();
  for (std::size_t i = 0; i < m.batched_invalidations.size(); ++i) {
    const std::int64_t id = m.batched_invalidations[i];
    ++stats_.replayed_notices;
    // The staleness spike only counts notices the wire really lost (ids
    // already applied are dedup'd, not stale).
    if (stamped && applied_[static_cast<std::size_t>(id)] == 0) {
      const double gap = now - m.batched_ingest_at[i];
      stats_.max_recovery_staleness_seconds =
          std::max(stats_.max_recovery_staleness_seconds, gap);
      if (recovering_) {
        // Replayed by a *crash recovery* resync: the post-restart
        // staleness spike, reported separately from partition recovery.
        stats_.post_restart_staleness_seconds =
            std::max(stats_.post_restart_staleness_seconds, gap);
      }
    }
    apply_invalidation(id);
  }
}

void CacheNode::observe_notice_stamp(const net::Message& m,
                                     std::int64_t ids) {
  if (!protocol_on_ || m.notice_ledger < 0) return;
  // The message covers ledger positions (notice_ledger - ids,
  // notice_ledger]. A range starting above the high-water mark means the
  // positions in between never arrived: either the wire lost them (a
  // partition is invisible to a cache with no request traffic — notices
  // are one-way) or a reorder let this message overtake them. Resync
  // either way; the replay is idempotent, so a reorder false-positive
  // costs one cheap round trip, while a real loss is repaired at the
  // FIRST post-heal notice instead of waiting for luck to put a request
  // in flight across the outage.
  if (m.notice_ledger - ids > notice_stamp_high_) start_resync();
  notice_stamp_high_ = std::max(notice_stamp_high_, m.notice_ledger);
}

void CacheNode::apply_invalidation(std::int64_t update_id) {
  const auto idx = static_cast<std::size_t>(update_id);
  DELTA_CHECK(idx < trace_->updates.size());
  if (protocol_on_) {
    // Applied-notice ledger: a fault-duplicated delivery, or a resync
    // replay of a notice that did arrive, must not double-run the policy's
    // invalidation handler (VCover counts pending updates per notice).
    if (applied_[idx] != 0) {
      ++stats_.duplicate_notices;
      return;
    }
    applied_[idx] = 1;
    ++stats_.notices_applied;
  }
  if (!invalidation_handler_) return;
  // Re-entrancy flattening: a handler that performs a blocking round trip
  // (Replica/SOptimal refresh their replicas with ship_update) pumps the
  // event queue while it waits, which can deliver the NEXT queued notice
  // — and under a saturating open-loop backlog thousands of notices sit
  // back-to-back on the link, so running handlers recursively overflows
  // the stack. Notices arriving while a handler is on the stack are
  // queued here and drained iteratively by the outermost frame, in
  // delivery order; the observable message set is unchanged (each queued
  // handler runs after, instead of nested inside, its predecessor).
  pending_invalidations_.push_back(update_id);
  if (in_invalidation_handler_) return;
  in_invalidation_handler_ = true;
  while (pending_invalidation_cursor_ < pending_invalidations_.size()) {
    const auto next = static_cast<std::size_t>(
        pending_invalidations_[pending_invalidation_cursor_++]);
    invalidation_handler_(trace_->updates[next]);
  }
  pending_invalidations_.clear();
  pending_invalidation_cursor_ = 0;
  in_invalidation_handler_ = false;
}

void CacheNode::handle_message(const net::Message& m) {
  // Every server->cache message carries the server's incarnation stamp
  // while the protocol is armed; a jump means the server restarted and we
  // must re-register before anything else in this message is interpreted.
  observe_incarnation(m);
  switch (m.kind) {
    case net::MessageKind::kInvalidation: {
      observe_notice_stamp(
          m, 1 + static_cast<std::int64_t>(m.batched_invalidations.size()));
      apply_invalidation(m.subject_id);
      // Congestion batching: further notices merged into this message, in
      // server ingest order.
      for (const std::int64_t id : m.batched_invalidations) {
        apply_invalidation(id);
      }
      return;
    }
    case net::MessageKind::kQueryResult:
    case net::MessageKind::kUpdateShip:
    case net::MessageKind::kLoadData:
    case net::MessageKind::kQueryReject:
    case net::MessageKind::kResyncData: {
      if (m.kind == net::MessageKind::kResyncData) {
        // Replayed notices carry their ingest instants — the recovery
        // staleness spike is measured before the ledger absorbs them.
        apply_resync_payload(m);
      } else {
        // Notices piggybacked on the reply are older than the reply itself
        // — apply them before releasing the request's completion.
        observe_notice_stamp(
            m, static_cast<std::int64_t>(m.batched_invalidations.size()));
        for (const std::int64_t id : m.batched_invalidations) {
          apply_invalidation(id);
        }
      }
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].correlation != m.correlation_id) continue;
        if (m.kind == net::MessageKind::kQueryReject) {
          // The server shed the query: the empty reject completes the
          // request (accounted, not lost).
          DELTA_CHECK_MSG(pending_[i].expected_reply ==
                              net::MessageKind::kQueryResult,
                          "kQueryReject answers only query requests");
          ++stats_.shed_replies;
        } else {
          DELTA_CHECK_MSG(pending_[i].expected_reply == m.kind,
                          "reply kind " << net::to_string(m.kind)
                                        << " does not match the pending "
                                           "request's expectation");
        }
        // Detach before completing: the completion (or the resync a healed
        // partition triggers) may issue new requests (mutating pending_).
        Pending done = std::move(pending_[i]);
        pending_[i] = std::move(pending_.back());
        pending_.pop_back();
        if (protocol_on_) {
          events_->cancel(done.deadline);
          note_success();
        }
        finish(done, m.payload);
        return;
      }
      if (protocol_on_) {
        // The request was retired before this reply landed: it timed out
        // past its budget, or an earlier attempt's reply won the race.
        ++stats_.late_replies;
        return;
      }
      DELTA_CHECK_MSG(false, "reply with unknown correlation id "
                                 << m.correlation_id);
      return;
    }
    default:
      return;  // control chatter carries no cache-side effects
  }
}

void CacheNode::set_subscription(MetadataSubscription subscription) {
  // Remembered locally so a crash restart can re-subscribe: the server's
  // copy is exactly the soft state a server crash wipes.
  subscription_ = subscription;
  server_->set_subscription(slot_, subscription);
}

void CacheNode::set_invalidation_handler(
    std::function<void(const workload::Update&)> handler) {
  invalidation_handler_ = std::move(handler);
}

void CacheNode::ship_query_async(const workload::Query& q,
                                 Completion complete) {
  send_request(net::MessageKind::kQueryRequest, q.id.value(), q.time,
               net::MessageKind::kQueryResult, std::move(complete));
}

void CacheNode::ship_update_async(const workload::Update& u,
                                  Completion complete) {
  // "ship update <id>" request travels as control chatter.
  send_request(net::MessageKind::kControl, u.id.value(), u.time,
               net::MessageKind::kUpdateShip, std::move(complete));
}

void CacheNode::load_object_async(ObjectId o, Completion complete) {
  std::int64_t generation = -1;
  if (protocol_on_) {
    generation = ++reg_gen_[static_cast<std::size_t>(o.value())];
    resident_[static_cast<std::size_t>(o.value())] = 1;
    if (recovering_) ++stats_.cold_misses;
  }
  send_request(net::MessageKind::kLoadRequest, o.value(), 0,
               net::MessageKind::kLoadData, std::move(complete), generation);
}

Bytes CacheNode::ship_query(const workload::Query& q) {
  return request_and_wait(net::MessageKind::kQueryRequest, q.id.value(),
                          q.time, net::MessageKind::kQueryResult);
}

Bytes CacheNode::ship_update(const workload::Update& u) {
  return request_and_wait(net::MessageKind::kControl, u.id.value(), u.time,
                          net::MessageKind::kUpdateShip);
}

Bytes CacheNode::load_object(ObjectId o) {
  std::int64_t generation = -1;
  if (protocol_on_) {
    generation = ++reg_gen_[static_cast<std::size_t>(o.value())];
    resident_[static_cast<std::size_t>(o.value())] = 1;
    if (recovering_) ++stats_.cold_misses;
  }
  const Bytes loaded = request_and_wait(net::MessageKind::kLoadRequest,
                                        o.value(), 0,
                                        net::MessageKind::kLoadData,
                                        generation);
  // Under the hardened protocol a reordered eviction notice can still be
  // in flight when the load completes — registration is guaranteed by the
  // generation guard, not instantaneously observable.
  if (!protocol_on_) DELTA_CHECK(is_registered(o));
  return loaded;
}

void CacheNode::notify_eviction(ObjectId o) {
  net::Message msg = request(net::MessageKind::kInvalidation, o.value(), 0,
                             /*correlation=*/-1);
  if (protocol_on_) {
    // Stamp the generation of the registration being dropped: the server
    // ignores this notice if a newer load re-registered the object first.
    msg.protocol_epoch = reg_gen_[static_cast<std::size_t>(o.value())];
    resident_[static_cast<std::size_t>(o.value())] = 0;
  }
  transport_->send_to(server_transport_slot_, msg, net::Mechanism::kOverhead);
  // The notice is unacknowledged; only a synchronous transport has
  // necessarily applied it by the time the send returns.
  if (transport_inline_) DELTA_CHECK(!is_registered(o));
}

}  // namespace delta::core
