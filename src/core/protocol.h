// Protocol-hardening and admission-control knobs (ISSUE 8).
//
// With a fault-injecting transport (net/fault_plan.h) a request or its
// reply can vanish, arrive twice, or arrive late. ProtocolOptions arms the
// cache side with per-request deadlines (timeout -> retry with exponential
// backoff, deterministic jitter, bounded attempt budget), the server side
// with a correlation-id dedup window (retries and duplicated deliveries are
// idempotent), and both sides with a registration-epoch resync so a cache
// that lived through a partition replays the invalidations it missed
// instead of serving indefinitely stale answers.
//
// AdmissionOptions is the overload controller from the ROADMAP follow-on:
// under measured egress backlog or in-flight pressure the server sheds
// (rejects with accounting) and the policy degrades (serves stale answers
// that still satisfy the query's t(q) tolerance) instead of collapsing.
//
// Everything defaults OFF. All golden-table configs run with both structs
// untouched, and every consumer gates on `enabled` before changing any
// behavior — the byte-identity contract of the seed tables is preserved by
// construction.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace delta::core {

/// Timeout/retry/dedup/resync configuration, shared by CacheNode (client
/// side) and ServerNode (server side).
struct ProtocolOptions {
  bool enabled = false;
  /// First-attempt deadline. Pick > the deployed RTT plus typical queueing;
  /// the retry path is for *lost* messages, not slow ones.
  double timeout_seconds = 0.25;
  /// Deadline grows by this factor per attempt, capped below.
  double backoff_factor = 2.0;
  double max_timeout_seconds = 2.0;
  /// Uniform jitter of +/- this fraction on each backoff deadline, drawn
  /// deterministically from (seed, correlation id, attempt) — desynchronizes
  /// retry storms without perturbing reproducibility.
  double jitter_fraction = 0.1;
  /// Total transmissions per request (1 = never retry). Exhausting the
  /// budget completes the request with an empty payload and counts a
  /// failed_request — bounded liveness even under a hard partition.
  std::int32_t max_attempts = 4;
  std::uint64_t seed = 0x9d57ea7ba11u;
  /// Consecutive request failures (timeouts) before the cache suspects a
  /// partition; the first success after suspicion triggers an epoch resync.
  std::int32_t partition_suspect_threshold = 2;
  bool resync_on_heal = true;
  /// Entries in the server's per-cache (correlation, attempt) dedup ring.
  std::int32_t dedup_window = 64;
  /// Crash-stop liveness (ISSUE 10): on first suspicion, immediately launch
  /// an epoch resync as a probe. Resyncs retry past the attempt budget, so
  /// the probe doubles as heal detection — and its reply carries the
  /// server's incarnation stamp, which is how a cache discovers that the
  /// server it suspected actually died and restarted (and must be
  /// re-registered, not just resynced). The engine arms this automatically
  /// for any run whose fault plan schedules crashes.
  bool probe_on_suspect = false;
};

/// Overload controller: shed at the server, degrade at the policy.
struct AdmissionOptions {
  bool enabled = false;
  /// Server sheds a query when its reply-link backlog exceeds this.
  double shed_backlog_seconds = 1.0;
  /// Policy serves degraded (stale-within-tolerance) answers when its
  /// uplink backlog exceeds this...
  double degrade_backlog_seconds = 0.25;
  /// ...or when this many correlated requests are already in flight
  /// (0 = no in-flight trigger).
  std::int64_t degrade_in_flight = 0;
  /// Extra staleness (trace ticks) a degraded answer may carry beyond the
  /// query's own t(q) tolerance. 0 = degraded answers still honor t(q)
  /// exactly (the "stale-within-tolerance" regime).
  EventTime degrade_extra_tolerance = 0;
};

/// Per-cache failure/recovery yardsticks, accumulated by CacheNode and
/// merged (in shard order) into the engine's chaos totals.
struct ProtocolStats {
  std::int64_t timeouts = 0;
  std::int64_t retries = 0;
  /// Requests that exhausted their attempt budget (completed empty).
  std::int64_t failed_requests = 0;
  /// Replies that arrived after their request was retired (timed out or
  /// already answered by an earlier attempt).
  std::int64_t late_replies = 0;
  /// Invalidation notices whose id was already applied (duplicate delivery
  /// or resync replay of a notice that did arrive).
  std::int64_t duplicate_notices = 0;
  /// Replies carrying a kQueryReject (the server shed the query).
  std::int64_t shed_replies = 0;
  /// Epoch resyncs run after a suspected partition healed.
  std::int64_t resyncs = 0;
  /// Invalidation ids replayed by kResyncData (applied or not).
  std::int64_t replayed_notices = 0;
  /// Distinct invalidation ids actually applied (first deliveries).
  std::int64_t notices_applied = 0;
  /// Simulated seconds spent with the server suspected unreachable.
  double unavailable_seconds = 0.0;
  /// Staleness spike: the largest (now - ingest) gap over all notices
  /// applied from a resync replay — how stale the cache had silently become
  /// before recovery caught it up.
  double max_recovery_staleness_seconds = 0.0;

  // ---- crash-stop endpoint faults (ISSUE 10) ----

  /// Times this cache process crashed and restarted.
  std::int64_t crash_restarts = 0;
  /// Loads issued while the cache was rewarming after a crash (from the
  /// wipe until its recovery resync completed) — the cold-miss burst.
  std::int64_t cold_misses = 0;
  /// Retries of budget-exempt requests (kLoadData/kResyncData expected
  /// replies) issued beyond max_attempts — the retry-past-budget behavior
  /// those kinds are documented to have, made countable.
  std::int64_t budget_exceeded_retries = 0;
  /// Largest restart/detection -> recovery-resync-completion gap: the
  /// time-to-reconvergence yardstick.
  double max_reconvergence_seconds = 0.0;
  /// Largest (now - ingest) gap over notices replayed by a *crash recovery*
  /// resync — the post-restart staleness spike (also folded into
  /// max_recovery_staleness_seconds).
  double post_restart_staleness_seconds = 0.0;
};

}  // namespace delta::core
